#!/usr/bin/env bash
# One-stop pre-merge gate: build, tests, docs, lints, and bench
# compilation. `--quick` runs the fast subset (build, tests, doc gate,
# service saturation smoke) for inner-loop use.
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
if [[ "${1:-}" == "--quick" ]]; then
    quick=1
fi

cargo fmt --check
cargo build --release
# --workspace matters: without it only the root package's suites run,
# and the other ~33 member suites silently stop gating merges.
cargo test -q --workspace
# Docs are part of the contract: perf-core, perf-petri and perf-service
# deny missing_docs, and broken intra-doc links fail the build.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet
# Service saturation smoke: a flooded queue must shed load instead of
# deadlocking, and every degraded answer must stay inside the serving
# representation's conformance budget.
cargo test -q --release -p perf-service --test e2e saturation
# Experiments gate: run every declarative spec at quick scale and
# check the committed EXPERIMENTS.md against the regenerated doc —
# prose and stable tables byte-exact, volatile numbers digit-masked.
# Exits nonzero on drift or on any pass-criteria failure.
cargo run --release -p perf-bench --bin repro -- --experiments --quick --check EXPERIMENTS.md

if [[ "$quick" == "1" ]]; then
    exit 0
fi

cargo clippy --workspace --all-targets -- -D warnings
# Static perf-lint audit of every shipped .pnet net and .pi program
# (plus the demo composite's glued net); exits nonzero on any error-
# or warning-severity finding.
cargo run --release -p perf-bench --bin repro -- --lint-all
# Cross-tier consistency audit: NL claims vs. program-tier interval
# bounds vs. Petri-net structural bounds for every accelerator and the
# demo composite, proven statically — no simulation. Exits nonzero on
# any error or warning.
cargo run --release -p perf-bench --bin repro -- --xcheck
# Differential conformance gate: every interface representation against
# its cycle-accurate simulator (nominal + fault-injected), fast seeds,
# all four accelerators plus the chain and DAG composite subjects.
# Exits nonzero past the recorded error budgets.
cargo run --release -p perf-bench --bin repro -- --conformance --quick
# Composite-pipeline smoke: parse both demo TOML topologies (linear
# chain and fan-out/fan-in DAG), lint the configs and glued nets,
# require interpreted/compiled agreement on the composite makespans,
# and run quick composite conformance for both subjects. Exits nonzero
# on any budget violation or engine divergence.
cargo run --release -p perf-bench --bin repro -- --compose --quick
# Engine fast-path smoke: the compiled stepper must beat the
# incremental engine on both stress shapes (repro exits nonzero
# otherwise). Quick scale; the throwaway artifact is discarded.
engine_tmp="$(mktemp)"
cargo run --release -p perf-bench --bin repro -- --bench-engine "$engine_tmp" --quick >/dev/null
rm -f "$engine_tmp"
cargo bench --no-run
