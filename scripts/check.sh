#!/usr/bin/env bash
# One-stop pre-merge gate: build, tests, lints, and bench compilation.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo bench --no-run
