#!/usr/bin/env bash
# One-stop pre-merge gate: build, tests, lints, and bench compilation.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release
# --workspace matters: without it only the root package's suites run,
# and the other ~33 member suites silently stop gating merges.
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# Static perf-lint audit of every shipped .pnet net and .pi program;
# exits nonzero on any error- or warning-severity finding.
cargo run --release -p perf-bench --bin repro -- --lint-all
# Differential conformance gate: every interface representation against
# its cycle-accurate simulator (nominal + fault-injected), fast seeds,
# all four accelerators. Exits nonzero past the recorded error budgets.
cargo run --release -p perf-bench --bin repro -- --conformance --quick
cargo bench --no-run
