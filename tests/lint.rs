//! Mutation corpus for the `perf-lint` static analyses.
//!
//! The lint suite's value claim is twofold: the artifacts we ship are
//! clean, and the analyses are not vacuous — injecting a known defect
//! into any shipped artifact makes the matching lint fire. These tests
//! check both directions: an exhaustive sweep (every net × every net
//! defect, every program × every program defect — zero false
//! negatives), and a randomized proptest pairing that re-checks the
//! same corpus under shuffled mutation sites.

use perf_core::{Diagnostics, Severity};
use proptest::prelude::*;

/// One shipped `.pnet` artifact plus the structural facts a mutation
/// needs: the token entry places, one entry to tap, one sink to feed.
struct NetCase {
    name: &'static str,
    src: String,
    entries: Vec<&'static str>,
    entry: &'static str,
    sink: &'static str,
}

fn net_cases() -> Vec<NetCase> {
    let vta_entries: Vec<&'static str> = accel_vta::interface::ENTRY_PLACES.to_vec();
    vec![
        NetCase {
            name: "jpeg",
            src: accel_jpeg::interface::petri::JPEG_PNET_SRC.to_string(),
            entries: vec!["blocks_in"],
            entry: "blocks_in",
            sink: "decoded",
        },
        NetCase {
            name: "protoacc",
            src: accel_protoacc::interface::petri::PROTOACC_PNET_SRC.to_string(),
            entries: vec!["msgs_in"],
            entry: "msgs_in",
            sink: "serialized",
        },
        NetCase {
            name: "vta_full",
            src: accel_vta::interface::petri::VTA_FULL_PNET_SRC.to_string(),
            entries: vta_entries.clone(),
            entry: "fetch_q",
            sink: "retired",
        },
        NetCase {
            name: "vta_lite",
            src: accel_vta::interface::petri::VTA_LITE_PNET_SRC.to_string(),
            entries: vta_entries,
            entry: "fetch_q",
            sink: "retired",
        },
        NetCase {
            name: "bitcoin",
            src: accel_bitcoin::interface::petri::pnet_source(
                &accel_bitcoin::miner::MinerConfig::default(),
            ),
            entries: vec!["nonces"],
            entry: "nonces",
            sink: "reported",
        },
    ]
}

/// A defect to graft onto a net, and the lint code that must catch it.
struct NetDefect {
    label: &'static str,
    code: &'static str,
    severity: Severity,
    mutate: fn(&NetCase) -> String,
}

fn net_defects() -> Vec<NetDefect> {
    vec![
        NetDefect {
            label: "orphan place",
            code: "PN102",
            severity: Severity::Warning,
            mutate: |c| format!("{}\nplace zz_orphan\n", c.src),
        },
        NetDefect {
            label: "token-leaking transition (consumes, never produces)",
            code: "PN108",
            severity: Severity::Warning,
            mutate: |c| format!("{}\ntrans zz_leak\n  in {}\n  delay 1\n", c.src, c.entry),
        },
        NetDefect {
            label: "zero-delay cycle (livelock)",
            code: "PN110",
            severity: Severity::Error,
            mutate: |c| {
                format!(
                    "{}\nplace zz_a\nplace zz_b\n\
                     trans zz_t1\n  in zz_a\n  out zz_b\n  delay 0\n\
                     trans zz_t2\n  in zz_b\n  out zz_a\n  delay 0\n",
                    c.src
                )
            },
        },
        NetDefect {
            label: "arc weight above place capacity (structurally dead)",
            code: "PN105",
            severity: Severity::Error,
            mutate: |c| {
                format!(
                    "{}\nplace zz_cap cap 1\n\
                     trans zz_over\n  in zz_cap x 2\n  out {}\n  delay 1\n",
                    c.src, c.sink
                )
            },
        },
        NetDefect {
            label: "constant-false guard (transition can never fire)",
            code: "PN106",
            severity: Severity::Error,
            mutate: |c| {
                format!(
                    "{}\ntrans zz_guarded\n  in {}\n  out {}\n  delay 1\n  guard 1 == 2\n",
                    c.src, c.entry, c.sink
                )
            },
        },
    ]
}

/// One shipped `.pi` program.
struct ProgCase {
    name: &'static str,
    src: &'static str,
}

fn prog_cases() -> Vec<ProgCase> {
    vec![
        ProgCase {
            name: "jpeg",
            src: accel_jpeg::interface::program::JPEG_PI_SRC,
        },
        ProgCase {
            name: "bitcoin",
            src: accel_bitcoin::interface::program::BITCOIN_PI_SRC,
        },
        ProgCase {
            name: "protoacc",
            src: accel_protoacc::interface::program::PROTOACC_PI_SRC,
        },
        ProgCase {
            name: "vta",
            src: accel_vta::interface::program::VTA_PI_SRC,
        },
    ]
}

/// A defect appended to a program as a fresh function, and the lint
/// code that must catch it.
struct ProgDefect {
    label: &'static str,
    code: &'static str,
    severity: Severity,
    appended: &'static str,
}

fn prog_defects() -> Vec<ProgDefect> {
    vec![
        ProgDefect {
            label: "unused parameter",
            code: "PIL009",
            severity: Severity::Warning,
            appended: "fn zz_unused_param(a, b) { return a; }\n",
        },
        ProgDefect {
            label: "unused let binding",
            code: "PIL010",
            severity: Severity::Warning,
            appended: "fn zz_unused_let(w) { let x = 1; return w; }\n",
        },
        ProgDefect {
            label: "division by provably-zero divisor",
            code: "PIL101",
            severity: Severity::Error,
            appended: "fn zz_div(w) { return w / (2 - 2); }\n",
        },
        ProgDefect {
            label: "statement after return",
            code: "PIL103",
            severity: Severity::Warning,
            appended: "fn zz_dead(w) { return w; return 0; }\n",
        },
        ProgDefect {
            label: "non-terminating while loop",
            code: "PIL104",
            severity: Severity::Error,
            appended: "fn zz_spin(w) { while 1 < 2 { let _q = w; } return 0; }\n",
        },
        ProgDefect {
            label: "provably-negative latency",
            code: "PIL105",
            severity: Severity::Error,
            appended: "fn latency_zz(w) { return 0 - 5 - w.size; }\n",
        },
    ]
}

fn assert_fires(ds: &Diagnostics, code: &str, severity: Severity, ctx: &str) {
    let hit = ds
        .items()
        .iter()
        .any(|d| d.code == code && d.severity == severity);
    assert!(
        hit,
        "{ctx}: expected {code} at {severity:?}, got:\n{}",
        ds.render()
    );
}

#[test]
fn shipped_artifacts_are_lint_clean() {
    for c in net_cases() {
        let ds = perf_petri::lint::lint_pnet_src(c.name, &c.src, &c.entries);
        assert_eq!(ds.count(Severity::Error), 0, "{}: {}", c.name, ds.render());
        assert_eq!(
            ds.count(Severity::Warning),
            0,
            "{}: {}",
            c.name,
            ds.render()
        );
    }
    for p in prog_cases() {
        let ds = perf_iface_lang::lint::lint_src(p.name, p.src);
        assert_eq!(ds.count(Severity::Error), 0, "{}: {}", p.name, ds.render());
        assert_eq!(
            ds.count(Severity::Warning),
            0,
            "{}: {}",
            p.name,
            ds.render()
        );
    }
}

/// Every net defect is caught in every shipped net: no false negatives
/// anywhere in the (net × defect) matrix.
#[test]
fn every_net_defect_is_caught_in_every_net() {
    for c in net_cases() {
        for d in net_defects() {
            let mutated = (d.mutate)(&c);
            let ds = perf_petri::lint::lint_pnet_src(c.name, &mutated, &c.entries);
            assert_fires(
                &ds,
                d.code,
                d.severity,
                &format!("{} + {}", c.name, d.label),
            );
        }
    }
}

/// Every program defect is caught in every shipped program.
#[test]
fn every_program_defect_is_caught_in_every_program() {
    for p in prog_cases() {
        for d in prog_defects() {
            let mutated = format!("{}\n{}", p.src, d.appended);
            let ds = perf_iface_lang::lint::lint_src(p.name, &mutated);
            assert_fires(
                &ds,
                d.code,
                d.severity,
                &format!("{} + {}", p.name, d.label),
            );
        }
    }
}

/// A defect is reported exactly where injected: mutating net A must
/// not change what the linter says about untouched net B, and the
/// finding disappears when the mutation is reverted.
#[test]
fn defects_do_not_leak_across_artifacts() {
    let cases = net_cases();
    let defect = &net_defects()[2]; // zero-delay cycle
    let mutated = (defect.mutate)(&cases[0]);
    let ds = perf_petri::lint::lint_pnet_src(cases[0].name, &mutated, &cases[0].entries);
    assert!(ds.has_code(defect.code));
    for other in &cases[1..] {
        let ds = perf_petri::lint::lint_pnet_src(other.name, &other.src, &other.entries);
        assert!(
            !ds.has_code(defect.code),
            "{} reports {} without the mutation",
            other.name,
            defect.code
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized re-pairing of the corpus: any (net, defect) and any
    /// (program, defect) combination fires the expected code. With the
    /// stub runner's deterministic seeding this revisits the matrix in
    /// shuffled order plus duplicated pairs — the property is that
    /// detection is independent of which artifact hosts the defect.
    #[test]
    fn mutation_pairing_always_detected(ni in 0usize..5, di in 0usize..5, pi in 0usize..4, pdi in 0usize..6) {
        let nets = net_cases();
        let ndefs = net_defects();
        let c = &nets[ni];
        let d = &ndefs[di];
        let ds = perf_petri::lint::lint_pnet_src(c.name, &(d.mutate)(c), &c.entries);
        prop_assert!(
            ds.items().iter().any(|x| x.code == d.code && x.severity == d.severity),
            "{} + {}: {} missing:\n{}", c.name, d.label, d.code, ds.render()
        );

        let progs = prog_cases();
        let pdefs = prog_defects();
        let p = &progs[pi];
        let pd = &pdefs[pdi];
        let ds = perf_iface_lang::lint::lint_src(p.name, &format!("{}\n{}", p.src, pd.appended));
        prop_assert!(
            ds.items().iter().any(|x| x.code == pd.code && x.severity == pd.severity),
            "{} + {}: {} missing:\n{}", p.name, pd.label, pd.code, ds.render()
        );
    }
}
