//! Cross-crate integration: every accelerator's vendor bundle is
//! complete, self-consistent, and ranked by precision as the paper
//! prescribes (natural language < program < Petri net).

use perf_interfaces::core::iface::{InterfaceKind, Metric};
use perf_interfaces::core::validate::validate;
use perf_interfaces::{bitcoin, jpeg, protoacc, vta};

#[test]
fn jpeg_bundle_precision_ordering() {
    let bundle = jpeg::interface::bundle();
    assert_eq!(
        bundle.most_precise().expect("has interfaces").kind(),
        InterfaceKind::PetriNet
    );
    let mut sim = jpeg::JpegCycleSim::default();
    let mut g = jpeg::ImageGen::new(314);
    let imgs = g.gen_many(20);
    let prog = bundle.get(InterfaceKind::Program).expect("shipped");
    let petri = bundle.get(InterfaceKind::PetriNet).expect("shipped");
    let rp = validate(&mut sim, prog, Metric::Latency, &imgs).expect("validates");
    let rn = validate(&mut sim, petri, Metric::Latency, &imgs).expect("validates");
    assert!(
        rn.point.avg < rp.point.avg,
        "petri {:.4} must beat program {:.4}",
        rn.point.avg,
        rp.point.avg
    );
}

#[test]
fn vta_bundle_precision_ordering() {
    let bundle = vta::interface::bundle();
    let mut sim = vta::VtaCycleSim::new_timing_only(vta::VtaHwConfig::default());
    let mut g = vta::gen::ProgGen::new(314);
    let progs = g.gen_many(15);
    let prog = bundle.get(InterfaceKind::Program).expect("shipped");
    let petri = bundle.get(InterfaceKind::PetriNet).expect("shipped");
    let rp = validate(&mut sim, prog, Metric::Latency, &progs).expect("validates");
    let rn = validate(&mut sim, petri, Metric::Latency, &progs).expect("validates");
    assert!(rn.point.avg < rp.point.avg);
    assert!(rn.point.avg < 0.05, "petri avg {:.4}", rn.point.avg);
}

#[test]
fn protoacc_bundle_throughput_and_bounds() {
    let bundle = protoacc::interface::bundle();
    let mut sim = protoacc::simx::ProtoaccSim::default();
    let workloads: Vec<_> = protoacc::suite::formats()
        .iter()
        .take(8)
        .map(|d| protoacc::simx::ProtoWorkload::of_format(d, 10, 3))
        .collect();
    let prog = bundle.get(InterfaceKind::Program).expect("shipped");
    let tput = validate(&mut sim, prog, Metric::Throughput, &workloads).expect("validates");
    assert!(tput.point.avg < 0.2, "tput avg err {:.3}", tput.point.avg);
    let lat_workloads: Vec<_> = protoacc::suite::formats()
        .iter()
        .take(8)
        .map(|d| protoacc::simx::ProtoWorkload::of_format(d, 1, 3))
        .collect();
    let lat = validate(&mut sim, prog, Metric::Latency, &lat_workloads).expect("validates");
    assert_eq!(lat.bounds.coverage(), 1.0, "latency always within bounds");
}

#[test]
fn bitcoin_bundle_exact() {
    let cfg = bitcoin::miner::MinerConfig::default();
    let bundle = bitcoin::interface::bundle(cfg);
    let mut sim = bitcoin::miner::MinerCycleSim::new(cfg);
    let jobs: Vec<_> = (0..5)
        .map(|s| bitcoin::miner::MineJob::random(s, 300, 256))
        .collect();
    let petri = bundle.get(InterfaceKind::PetriNet).expect("shipped");
    let r = validate(&mut sim, petri, Metric::Latency, &jobs).expect("validates");
    assert_eq!(r.point.avg, 0.0, "miner net is exact on exhaustive scans");
}

#[test]
fn every_shipped_artifact_parses_and_analyzes() {
    use perf_interfaces::petri::{analysis, text};
    for (name, src) in [
        ("jpeg", jpeg::interface::petri::JPEG_PNET_SRC),
        ("protoacc", protoacc::interface::petri::PROTOACC_PNET_SRC),
        ("vta_full", vta::interface::petri::VTA_FULL_PNET_SRC),
        ("vta_lite", vta::interface::petri::VTA_LITE_PNET_SRC),
    ] {
        let net = text::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let s = analysis::structure(&net);
        assert!(!s.sinks.is_empty(), "{name} needs a sink");
        assert!(
            s.dead_ends.is_empty(),
            "{name} has dead-end places {:?}",
            s.dead_ends
        );
        // DOT export renders.
        let dot = perf_interfaces::petri::dot::to_dot(&net);
        assert!(dot.contains("digraph"), "{name} DOT export");
    }
    for (name, src) in [
        ("jpeg", jpeg::interface::program::JPEG_PI_SRC),
        ("bitcoin", bitcoin::interface::program::BITCOIN_PI_SRC),
        ("protoacc", protoacc::interface::program::PROTOACC_PI_SRC),
        ("vta", vta::interface::program::VTA_PI_SRC),
    ] {
        perf_interfaces::lang::Program::parse(src).unwrap_or_else(|e| panic!("{name}.pi: {e}"));
    }
}
