//! Integration tests asserting the paper's headline result shapes at
//! reduced scale (the `repro` binary runs them at paper scale).

use perf_bench::experiments;

fn value(out: &experiments::ExperimentOutput, key: &str) -> f64 {
    out.values
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("{} lacks {key}", out.id))
        .1
}

#[test]
fn fig1_all_nl_claims_hold() {
    let out = experiments::e1_nl_interfaces().expect("e1 runs");
    for (k, v) in &out.values {
        assert_eq!(*v, 1.0, "{k}");
    }
}

#[test]
fn fig2_jpeg_program_interface_accuracy_band() {
    let out = experiments::e2_jpeg_program(100).expect("e2 runs");
    // Paper: 2.1% (10.3%). Shape: single-digit average, max below 30%.
    assert!(value(&out, "e2_lat_avg") < 0.08);
    assert!(value(&out, "e2_lat_max") < 0.30);
    assert!(value(&out, "e2_tput_avg") < 0.08);
}

#[test]
fn fig3_protoacc_bounds_always_hold() {
    let out = experiments::e3_protoacc_program(10).expect("e3 runs");
    assert_eq!(value(&out, "e3_bounds_coverage"), 1.0);
    // Paper: 5.9% (13.3%) throughput error.
    assert!(value(&out, "e3_tput_avg") < 0.12);
}

#[test]
fn table1_petri_bands() {
    let out = experiments::e4_table1(12, 40).expect("e4 runs");
    // JPEG: sub-1% average (paper 0.09%).
    assert!(value(&out, "e4_jpeg_lat_avg") < 0.01);
    // VTA: low-single-digit average (paper 1.49%).
    assert!(value(&out, "e4_vta_lat_avg") < 0.05);
    // Both interfaces are a small fraction of the implementation.
    assert!(value(&out, "e4_jpeg_complexity") < 0.10);
    assert!(value(&out, "e4_vta_complexity") < 0.12);
}

#[test]
fn e5_petri_always_faster_than_cycle_sim() {
    let out = experiments::e5_profiling_speedup(8).expect("e5 runs");
    assert!(value(&out, "e5_min_speedup") > 1.0);
    assert!(value(&out, "e5_max_speedup") >= value(&out, "e5_mean_speedup"));
}

#[test]
fn e6_crossover_claims() {
    let out = experiments::e6_crossover().expect("e6 runs");
    assert_eq!(value(&out, "e6_small_pa_loses_to_cpu"), 1.0);
    assert!(value(&out, "e6_peak_over_eff") > 1.5);
}

#[test]
fn e10_petri_tuning_matches_ground_truth() {
    let out = experiments::e10_autotune_quality().expect("e10 runs");
    assert!(value(&out, "e10_spearman") > 0.95);
    assert!(value(&out, "e10_regret") < 0.05);
}

#[test]
fn e11_composition_reveals_interconnect_bound_regime() {
    let out = experiments::e11_noc_composition().expect("e11 runs");
    assert!(value(&out, "e11_small_optimism") < 1.1);
    assert!(value(&out, "e11_large_optimism") > 2.0);
}
