//! Example #3 from the paper: auto-tuning tensor programs for VTA with
//! the Petri-net IR as the cost model instead of cycle-accurate
//! simulation.
//!
//! ```text
//! cargo run --release --example autotune_vta
//! ```

use perf_interfaces::autotune::cost::{CostBackend, CycleCost, PetriCost};
use perf_interfaces::autotune::{GemmWorkload, Tuner};

fn main() {
    let w = GemmWorkload::new(256, 256, 256);
    println!(
        "=== Auto-tuning a {}x{}x{} GEMM on VTA (paper Example #3) ===\n",
        w.m, w.n, w.k
    );

    let budget = 25;
    for make in [true, false] {
        let mut tuner = Tuner::new(w, 2024).expect("schedules exist");
        let (name, result) = if make {
            let mut backend = CycleCost::new_rtl();
            let r = tuner.anneal(&mut backend, budget).expect("search runs");
            (backend.name(), (r, backend.time_spent()))
        } else {
            let mut backend = PetriCost::new().expect("net parses");
            let r = tuner.anneal(&mut backend, budget).expect("search runs");
            (backend.name(), (r, backend.time_spent()))
        };
        let (res, spent) = result;
        println!(
            "{name:>18}: best {:?} @ {:.0} cycles, {} evaluations, profiling took {:?}",
            res.best,
            res.best_cost,
            res.history.len(),
            spent
        );
    }

    println!(
        "\nSame tuning decisions, profiling orders of magnitude cheaper — the\n\
         paper's argument for a performance IR that tools can execute."
    );
}
