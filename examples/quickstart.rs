//! Quickstart: ask an accelerator's performance interfaces the three
//! questions the paper opens with, without running the accelerator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use perf_interfaces::core::iface::{InterfaceKind, Metric};
use perf_interfaces::core::GroundTruth;
use perf_interfaces::jpeg;

fn main() {
    // The vendor ships this bundle with the JPEG decoder: prose, an
    // executable program, and a Petri-net IR.
    let bundle = jpeg::interface::bundle();

    println!("=== {} performance interface ===\n", bundle.accelerator);
    println!("Natural language:\n  {}\n", bundle.natural_language.text);

    // "What latency can I expect for my workload?" — answered from the
    // interfaces alone.
    let mut gen = jpeg::ImageGen::new(7);
    let img = gen.gen_sized(256, 192, 80);
    println!(
        "workload: {}x{} image, quality {}, compression rate {:.2}\n",
        img.width,
        img.height,
        img.quality,
        img.compress_rate()
    );

    for kind in [InterfaceKind::Program, InterfaceKind::PetriNet] {
        let iface = bundle.get(kind).expect("bundle ships this kind");
        let lat = iface.predict(&img, Metric::Latency).expect("predicts");
        println!(
            "{:>12} interface predicts latency: {lat} cycles",
            kind.name()
        );
    }

    // The developer who *does* have the hardware can check: the
    // cycle-accurate model stands in for the RTL.
    let mut hw = jpeg::JpegCycleSim::default();
    let obs = hw.measure(&img).expect("decodes");
    println!(
        "{:>12} measures  latency: {} cycles\n",
        "hardware", obs.latency
    );

    let petri = bundle.get(InterfaceKind::PetriNet).expect("shipped");
    let pred = petri.predict(&img, Metric::Latency).expect("predicts");
    let err = (pred.midpoint() - obs.latency.as_f64()).abs() / obs.latency.as_f64();
    println!("Petri-net prediction error: {:.3}%", err * 100.0);
}
