//! Example #1 from the paper: an SoC designer sizes a Bitcoin-miner IP
//! block using nothing but its performance interface — no RTL, no
//! simulator — and then validates the choice against the cycle model.
//!
//! ```text
//! cargo run --release --example soc_designer
//! ```

use perf_interfaces::workloads::soc;

fn main() {
    println!("=== SoC design from interfaces alone (paper Example #1) ===\n");
    println!("The miner's interface: latency (cycles) equals Loop; area grows");
    println!("inversely with Loop. The whole design space, read off the interface:\n");
    println!(
        "{:>6} {:>12} {:>18} {:>16}",
        "Loop", "area (kGE)", "latency (cyc/hash)", "tput (hash/cyc)"
    );
    let space = soc::design_space().expect("interface enumerates");
    for p in &space {
        println!(
            "{:>6} {:>12.0} {:>18.0} {:>16.4}",
            p.loop_, p.area_kge, p.latency, p.throughput
        );
    }

    for budget in [100.0, 300.0, 1000.0] {
        match soc::pick_within_area(budget).expect("selection runs") {
            Some(p) => {
                let (claimed, measured) = soc::validate_point(&p).expect("validates");
                println!(
                    "\nbudget {budget:>6.0} kGE -> Loop {} ({:.0} kGE); interface says {:.0} cyc/hash, cycle model measures {:.2}",
                    p.loop_, p.area_kge, claimed, measured
                );
            }
            None => println!("\nbudget {budget:>6.0} kGE -> no configuration fits"),
        }
    }
    println!("\nEvery claim checked out: the design decision was safe to make from the interface.");
}
