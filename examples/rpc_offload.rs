//! Example #2 from the paper: an infrastructure engineer chooses a
//! serialization backend for an RPC stack, then predicts the end-to-end
//! effect of offloading with the §5 record/replay strawman.
//!
//! ```text
//! cargo run --release --example rpc_offload
//! ```

use perf_interfaces::workloads::{offload, rpc};

fn main() {
    println!("=== Choosing a serialization backend (paper Example #2) ===\n");
    println!(
        "{:>10} {:>9} {:>9} {:>9}   winner",
        "wire bytes", "CPU", "Optimus", "Protoacc"
    );
    for c in rpc::crossover_sweep(42) {
        println!(
            "{:>10} {:>9.0} {:>9.0} {:>9.0}   {}",
            c.bytes,
            c.cpu,
            c.optimus,
            c.protoacc,
            c.winner()
        );
    }
    let (peak, eff) = rpc::peak_vs_realistic(3, 400);
    println!(
        "\nDatasheet peak vs realistic mix: {:.2} vs {:.2} B/cycle ({:.1}x gap)",
        peak,
        eff,
        peak / eff
    );
    println!("-> exactly why upper bounds make poor interfaces (paper §4).\n");

    println!("=== Predicting the end-to-end offload (paper §5 strawman) ===\n");
    let trace = offload::record_trace(120, 11);
    let study = offload::run_study(&trace).expect("study runs");
    let (pred, actual) = study.speedups();
    println!(
        "software serializer total:      {:>12} cycles",
        study.software
    );
    println!(
        "offload, interface-predicted:   {:>12.0} cycles",
        study.predicted_offload
    );
    println!(
        "offload, accelerator-simulated: {:>12} cycles",
        study.actual_offload
    );
    println!(
        "\npredicted speedup {pred:.2}x vs measured {actual:.2}x (error {:.2}%)",
        study.prediction_error() * 100.0
    );
}
