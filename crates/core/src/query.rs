//! The performance-query abstraction served by `perf-service`.
//!
//! The paper's pitch is that a performance interface is cheap enough to
//! query *at scale*: a design-space explorer or an admission controller
//! can ask "what would this workload cost?" thousands of times per
//! second, which a cycle-accurate simulator cannot sustain. This module
//! defines the vocabulary of that query path:
//!
//! * a [`WorkloadSpec`] — an accelerator-agnostic, wire-friendly
//!   description of one workload (a spec kind plus named numeric
//!   fields), cheap to hash and to ship as JSON;
//! * a [`QueryBackend`] — the adapter each accelerator crate implements
//!   to realize specs into workloads and answer predictions from any of
//!   the three interface representations, including the coarse
//!   natural-language closed-form bound used as the last rung of the
//!   service's degradation ladder.
//!
//! The trait lives here (not in `perf-service`) so accelerator crates
//! can implement it without depending on the server, mirroring how
//! [`crate::iface::PerfInterface`] keeps interfaces independent of the
//! validation harness.

use crate::budget::Budget;
use crate::iface::{InterfaceKind, Metric};
use crate::predict::{Observation, Prediction};
use crate::CoreError;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher used for workload-spec fingerprints.
///
/// Deliberately tiny and dependency-free (the workspace carries no
/// hashing crates); the same construction fingerprints VTA instruction
/// streams (`accel_vta::isa::Program::fingerprint`) and Petri-net
/// markings (`perf_petri::Net::fingerprint`).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by its bit pattern (distinguishes `-0.0` from
    /// `0.0`, which is fine for fingerprinting: equal bits hash equal).
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Which evaluation substrate answers Petri- and program-tier queries.
///
/// Both substrates are observably identical (the differential suites
/// hold them to byte-identical results and error messages), so the
/// choice is purely a cost knob: `Compiled` runs the static-topology
/// Petri stepper (`perf_petri::CompiledNet`) and the `.pi` bytecode VM
/// (`perf_iface_lang::vm::CompiledProgram`); `Interpreted` runs the
/// generic event engine and the tree-walking interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineChoice {
    /// Generic event engine + tree-walking interpreter.
    Interpreted,
    /// Compiled stepper + bytecode VM (the default service backend).
    Compiled,
}

impl EngineChoice {
    /// Wire/report name: `"interpreted"` or `"compiled"`.
    pub fn name(self) -> &'static str {
        match self {
            EngineChoice::Interpreted => "interpreted",
            EngineChoice::Compiled => "compiled",
        }
    }

    /// Parses a wire/report name (inverse of [`EngineChoice::name`]).
    pub fn parse(s: &str) -> Option<EngineChoice> {
        match s {
            "interpreted" => Some(EngineChoice::Interpreted),
            "compiled" => Some(EngineChoice::Compiled),
            _ => None,
        }
    }
}

/// A wire-friendly description of one workload: a spec `kind` chosen
/// from the backend's [`QueryBackend::spec_kinds`] plus named numeric
/// fields.
///
/// Specs are generator-level, like the conformance harness's case
/// specs: the backend deterministically realizes them into concrete
/// workloads, so a spec is both small on the wire and a stable cache
/// key.
///
/// # Examples
///
/// ```
/// use perf_core::query::WorkloadSpec;
///
/// let spec = WorkloadSpec::new("sized")
///     .with("width", 128.0)
///     .with("height", 64.0)
///     .with("quality", 75.0);
/// assert_eq!(spec.get("width"), Some(128.0));
/// assert_eq!(spec.get_or("seed", 1.0), 1.0);
/// // Field order does not change the fingerprint.
/// let reordered = WorkloadSpec::new("sized")
///     .with("quality", 75.0)
///     .with("height", 64.0)
///     .with("width", 128.0);
/// assert_eq!(spec.fingerprint(), reordered.fingerprint());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Which of the backend's spec shapes this is (e.g. `"sized"`,
    /// `"flat"` for the JPEG decoder).
    pub kind: String,
    /// Named numeric parameters, in insertion order.
    pub fields: Vec<(String, f64)>,
}

impl WorkloadSpec {
    /// Creates a spec of the given kind with no fields.
    pub fn new(kind: impl Into<String>) -> WorkloadSpec {
        WorkloadSpec {
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// Adds (or overwrites) a field; returns `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, value: f64) -> WorkloadSpec {
        let name = name.into();
        if let Some(f) = self.fields.iter_mut().find(|(n, _)| *n == name) {
            f.1 = value;
        } else {
            self.fields.push((name, value));
        }
        self
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.fields.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a field, falling back to `default` when absent.
    pub fn get_or(&self, name: &str, default: f64) -> f64 {
        self.get(name).unwrap_or(default)
    }

    /// A field interpreted as a non-negative integer (floored); errors
    /// when absent, negative, or non-finite.
    pub fn get_uint(&self, name: &str) -> Result<u64, CoreError> {
        let v = self.get(name).ok_or_else(|| {
            CoreError::Artifact(format!("spec `{}` lacks field `{name}`", self.kind))
        })?;
        if !v.is_finite() || v < 0.0 {
            return Err(CoreError::Artifact(format!(
                "spec `{}` field `{name}` is not a non-negative integer: {v}",
                self.kind
            )));
        }
        Ok(v as u64)
    }

    /// A 64-bit content fingerprint: FNV-1a over the kind and the
    /// fields in name-sorted order, so field insertion order does not
    /// matter. Used as the service's cache key component.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.kind.as_bytes());
        h.write(&[0xff]);
        let mut sorted: Vec<&(String, f64)> = self.fields.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, value) in sorted {
            h.write(name.as_bytes());
            h.write(&[0xfe]);
            h.write_f64(*value);
        }
        h.finish()
    }
}

/// The adapter one accelerator ships to join the performance-query
/// service: realizes [`WorkloadSpec`]s and answers predictions from
/// each interface representation.
///
/// Implementations live next to the interface bundles in the
/// `accel-*` crates (module `interface::service`). Backends must be
/// cheap to construct — each service worker thread builds its own
/// instances (the interpreter state inside interfaces is not `Send`,
/// so backends never cross threads; only their constructors do) — and
/// `predict` must not run the cycle-accurate simulator;
/// [`QueryBackend::measure`] exists for calibration and tests only.
pub trait QueryBackend {
    /// Accelerator name, matching the conformance report (e.g.
    /// `"jpeg-decoder"`).
    fn accel(&self) -> &'static str;

    /// Which evaluation substrate this backend's interfaces run on.
    /// Answers and benchmark rows are tagged with it so performance
    /// deltas stay attributable.
    fn engine(&self) -> EngineChoice {
        EngineChoice::Interpreted
    }

    /// The spec kinds [`QueryBackend::predict`] accepts, for error
    /// messages and service discovery.
    fn spec_kinds(&self) -> &'static [&'static str];

    /// Predicts `metric` for the workload described by `spec` using
    /// representation `repr`.
    ///
    /// `InterfaceKind::NaturalLanguage` must be answered with the
    /// closed-form bound (an interval wide enough to contain the true
    /// value), never by silently upgrading to a costlier
    /// representation: the service's degradation ladder relies on each
    /// rung honestly reporting its own precision.
    fn predict(
        &mut self,
        spec: &WorkloadSpec,
        repr: InterfaceKind,
        metric: Metric,
    ) -> Result<Prediction, CoreError>;

    /// The conformance error budget for one (representation, metric)
    /// channel — what a response served from that representation is
    /// accountable to.
    fn budget(&self, repr: InterfaceKind, metric: Metric) -> Budget;

    /// A cache fingerprint for `spec` as evaluated by `repr`.
    ///
    /// Defaults to the spec's own content fingerprint mixed with the
    /// accelerator name and representation. Backends override this
    /// when a deeper key canonicalizes better — VTA hashes the
    /// realized instruction stream (`Program::fingerprint`), the JPEG
    /// Petri tier hashes the net structure plus the injected marking —
    /// so distinct specs that evaluate identically share a cache slot.
    fn fingerprint(&mut self, spec: &WorkloadSpec, repr: InterfaceKind) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.accel().as_bytes());
        h.write(&[repr as u8]);
        h.write_u64(spec.fingerprint());
        h.finish()
    }

    /// Ground truth: realizes the spec and runs the cycle-accurate
    /// simulator. For conformance spot-checks and service tests only —
    /// never on the serving hot path.
    fn measure(&mut self, spec: &WorkloadSpec) -> Result<Observation, CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_insensitive_and_content_sensitive() {
        let a = WorkloadSpec::new("k").with("x", 1.0).with("y", 2.0);
        let b = WorkloadSpec::new("k").with("y", 2.0).with("x", 1.0);
        let c = WorkloadSpec::new("k").with("x", 1.0).with("y", 3.0);
        let d = WorkloadSpec::new("other").with("x", 1.0).with("y", 2.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn with_overwrites_existing_field() {
        let s = WorkloadSpec::new("k").with("x", 1.0).with("x", 5.0);
        assert_eq!(s.fields.len(), 1);
        assert_eq!(s.get("x"), Some(5.0));
    }

    #[test]
    fn get_uint_validates() {
        let s = WorkloadSpec::new("k").with("n", 3.9).with("neg", -1.0);
        assert_eq!(s.get_uint("n").unwrap(), 3);
        assert!(s.get_uint("neg").is_err());
        assert!(s.get_uint("missing").is_err());
    }

    #[test]
    fn fnv_distinguishes_field_boundaries() {
        // ("ab", "c") must not collide with ("a", "bc").
        let a = WorkloadSpec::new("k").with("ab", 0.0);
        let b = WorkloadSpec::new("k").with("a", 0.0).with("b", 0.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
