//! Physical units used throughout the workspace.
//!
//! Accelerator models report time in clock cycles ([`Cycles`]) and rates
//! in items (or bytes) per cycle ([`Throughput`]). A clock frequency
//! ([`Freq`]) converts cycle-denominated quantities into wall-clock or
//! bits-per-second figures when a benchmark wants paper-style units
//! (e.g. Gb/s for serializers).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration measured in clock cycles of the accelerator's clock.
///
/// # Examples
///
/// ```
/// use perf_core::units::Cycles;
///
/// let a = Cycles(100);
/// let b = Cycles(36);
/// assert_eq!(a + b, Cycles(136));
/// assert_eq!((a - b).get(), 64);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the raw cycle count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Returns the cycle count as a floating-point number, for error
    /// computations.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

/// A rate in items per cycle.
///
/// "Item" is workload-defined: images for the JPEG decoder, messages for
/// Protoacc, hashes for the Bitcoin miner, instructions for VTA. Bytes
/// per cycle are represented the same way with the item being one byte.
///
/// # Examples
///
/// ```
/// use perf_core::units::{Cycles, Throughput};
///
/// // One image finished every 1365 cycles.
/// let t = Throughput::per(Cycles(1365));
/// assert!((t.items_per_cycle() - 1.0 / 1365.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Throughput(f64);

impl Throughput {
    /// Creates a throughput of `items_per_cycle`.
    ///
    /// Negative and non-finite rates are invalid inputs and are clamped
    /// to zero so downstream error math stays well defined.
    #[inline]
    pub fn new(items_per_cycle: f64) -> Throughput {
        if items_per_cycle.is_finite() && items_per_cycle > 0.0 {
            Throughput(items_per_cycle)
        } else {
            Throughput(0.0)
        }
    }

    /// One item per `period`.
    #[inline]
    pub fn per(period: Cycles) -> Throughput {
        if period.0 == 0 {
            Throughput(0.0)
        } else {
            Throughput(1.0 / period.as_f64())
        }
    }

    /// `items` completed over `elapsed` cycles.
    #[inline]
    pub fn of(items: u64, elapsed: Cycles) -> Throughput {
        if elapsed.0 == 0 {
            Throughput(0.0)
        } else {
            Throughput(items as f64 / elapsed.as_f64())
        }
    }

    /// The rate in items per cycle.
    #[inline]
    pub fn items_per_cycle(self) -> f64 {
        self.0
    }

    /// Converts a byte-denominated throughput to bits per second at
    /// clock frequency `freq`.
    #[inline]
    pub fn to_bits_per_sec(self, freq: Freq) -> f64 {
        self.0 * 8.0 * freq.hz()
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} items/cyc", self.0)
    }
}

/// A clock frequency.
///
/// # Examples
///
/// ```
/// use perf_core::units::Freq;
///
/// let f = Freq::mhz(700.0);
/// assert_eq!(f.hz(), 700.0e6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Freq(f64);

impl Freq {
    /// Creates a frequency from hertz.
    #[inline]
    pub fn hz_new(hz: f64) -> Freq {
        Freq(hz.max(0.0))
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub fn mhz(mhz: f64) -> Freq {
        Freq::hz_new(mhz * 1.0e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn ghz(ghz: f64) -> Freq {
        Freq::hz_new(ghz * 1.0e9)
    }

    /// The frequency in hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Converts a cycle count at this frequency into seconds.
    #[inline]
    pub fn cycles_to_secs(self, c: Cycles) -> f64 {
        if self.0 == 0.0 {
            0.0
        } else {
            c.as_f64() / self.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(10) + Cycles(5);
        assert_eq!(a, Cycles(15));
        assert_eq!(a * 2, Cycles(30));
        assert_eq!(a / 3, Cycles(5));
        assert_eq!(Cycles(3).saturating_sub(Cycles(10)), Cycles::ZERO);
        assert_eq!(Cycles(3).max(Cycles(10)), Cycles(10));
        assert_eq!(Cycles(3).min(Cycles(10)), Cycles(3));
    }

    #[test]
    fn cycles_sum_and_display() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
        assert_eq!(total.to_string(), "6 cyc");
    }

    #[test]
    fn throughput_construction() {
        assert_eq!(Throughput::per(Cycles(0)).items_per_cycle(), 0.0);
        assert_eq!(Throughput::new(-1.0).items_per_cycle(), 0.0);
        assert_eq!(Throughput::new(f64::NAN).items_per_cycle(), 0.0);
        let t = Throughput::of(10, Cycles(100));
        assert!((t.items_per_cycle() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn throughput_to_bits_per_sec() {
        // 1 byte/cycle at 1 GHz = 8 Gb/s.
        let t = Throughput::new(1.0);
        let bps = t.to_bits_per_sec(Freq::ghz(1.0));
        assert!((bps - 8.0e9).abs() < 1.0);
    }

    #[test]
    fn freq_conversions() {
        assert_eq!(Freq::mhz(1.0).hz(), 1.0e6);
        assert_eq!(Freq::ghz(2.5).hz(), 2.5e9);
        let secs = Freq::ghz(1.0).cycles_to_secs(Cycles(1_000_000_000));
        assert!((secs - 1.0).abs() < 1e-9);
        assert_eq!(Freq::hz_new(0.0).cycles_to_secs(Cycles(5)), 0.0);
    }
}
