//! Small statistics helpers used by the validation harness and the
//! natural-language claim checker.

/// Arithmetic mean; returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Maximum; ignores NaNs, returns 0 only when no non-NaN value exists.
///
/// Folding from `-inf` (not `0.0`) matters for error samples that are
/// all negative: a signed-error series of `[-3, -1]` has max `-1`, not
/// a phantom `0`.
pub fn max(xs: &[f64]) -> f64 {
    let m = xs
        .iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        0.0
    } else {
        m
    }
}

/// Population standard deviation; returns 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// The `p`-th percentile (0–100) by linear interpolation; ignores NaNs
/// and returns 0 for empty (or all-NaN) input.
///
/// NaNs must be filtered before sorting: `partial_cmp` reports them as
/// `Equal` to everything, so they land at arbitrary sort positions and
/// corrupt every quantile above them.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Least-squares fit `y = a + b·x`; returns `(a, b)`. Requires at least
/// two points with distinct x; otherwise returns `(mean(y), 0)`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return (mean(ys), 0.0);
    }
    let mx = mean(&xs[..n]);
    let my = mean(&ys[..n]);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        sxy += (xs[i] - mx) * (ys[i] - my);
    }
    if sxx == 0.0 {
        return (my, 0.0);
    }
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// Pearson correlation coefficient of paired samples; 0 when undefined.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let mx = mean(&xs[..n]);
    let my = mean(&ys[..n]);
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for i in 0..n {
        sxx += (xs[i] - mx) * (xs[i] - mx);
        syy += (ys[i] - my) * (ys[i] - my);
        sxy += (xs[i] - mx) * (ys[i] - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Spearman rank correlation of paired samples; 0 when undefined.
///
/// Used by the autotuner-quality experiment: an interface is useful for
/// tuning if it *ranks* candidate schedules like the ground truth does,
/// even if absolute predictions are off.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let rx = ranks(&xs[..n]);
    let ry = ranks(&ys[..n]);
    pearson(&rx, &ry)
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(core::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg;
        }
        i = j + 1;
    }
    out
}

/// Relative error `|pred - truth| / |truth|`; returns `None` when the
/// truth is zero or either value is non-finite.
pub fn rel_error(pred: f64, truth: f64) -> Option<f64> {
    if !pred.is_finite() || !truth.is_finite() || truth == 0.0 {
        None
    } else {
        Some((pred - truth).abs() / truth.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_max_stddev() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(max(&xs), 4.0);
        assert!((stddev(&xs) - 1.118033988).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn max_of_all_negative_sample_is_negative() {
        // Regression: folding from 0.0 reported max 0 for all-negative
        // error samples.
        assert_eq!(max(&[-3.0, -1.5, -2.0]), -1.5);
        assert_eq!(max(&[-3.0, f64::NAN, -2.0]), -2.0);
        assert_eq!(max(&[f64::NAN]), 0.0);
        assert_eq!(max(&[f64::NAN, f64::NAN]), 0.0);
        assert_eq!(max(&[-1.0, 2.0]), 2.0);
    }

    #[test]
    fn percentile_ignores_nans() {
        // Regression: NaNs sorted to arbitrary positions and corrupted
        // upper quantiles (ErrorStats::p99).
        let xs = [10.0, f64::NAN, 20.0, 30.0, f64::NAN, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
        assert!(!percentile(&xs, 99.0).is_nan());
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 99.0), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_small_n_sees_the_tail() {
        // Regression (conformance summaries): truncating the rank
        // ((n-1)*0.99 as usize) reported p99 = 0 at n = 16 when only
        // the max sample was nonzero. Interpolation must not.
        let mut xs = vec![0.0; 15];
        xs.push(0.04);
        let p = percentile(&xs, 99.0);
        assert!(p > 0.0 && p <= 0.04);
        assert!((p - 0.04 * 0.85).abs() < 1e-12); // rank 14.85
        assert_eq!(percentile(&[0.25], 99.0), 0.25);
        assert!((percentile(&[1.0, 3.0], 99.0) - (1.0 + 2.0 * 0.99)).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 7.0, 9.0, 11.0];
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 5.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate() {
        let (a, b) = linear_fit(&[1.0, 1.0], &[2.0, 4.0]);
        assert_eq!(b, 0.0);
        assert_eq!(a, 3.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but nonlinear: Spearman 1, Pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 2.0, 2.0, 3.0];
        let ys = [10.0, 20.0, 20.0, 30.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rel_error_cases() {
        assert_eq!(rel_error(110.0, 100.0), Some(0.1));
        assert_eq!(rel_error(1.0, 0.0), None);
        assert_eq!(rel_error(f64::NAN, 1.0), None);
    }
}
