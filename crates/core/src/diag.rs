//! The shared diagnostics model behind `perf-lint`.
//!
//! A performance interface is only trustworthy if a tool can audit it,
//! and an audit is only usable if its findings have a uniform shape.
//! Every static analysis in the workspace — the Petri-net structural
//! lints in `perf-petri`, the abstract interpreter over PIL programs in
//! `perf-iface-lang`, and the per-accelerator artifact audits — reports
//! through this module: a [`Diagnostic`] carries a stable lint code, a
//! severity, the artifact it was found in and an optional location;
//! a [`Diagnostics`] set accumulates findings (never fail-fast),
//! renders them rustc-style for humans and as JSON for tools, and
//! decides the process exit code.

use crate::trace::json_escape;
use core::fmt;

/// How bad a finding is.
///
/// Ordering is by badness: `Info < Warning < Error`, so `max()` over a
/// set yields the severity that should drive the exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A structural fact worth surfacing (e.g. a P-invariant); never
    /// gates a merge.
    Info,
    /// Probably a mistake, but the artifact still runs.
    Warning,
    /// The artifact is broken or will mislead any tool that trusts it.
    Error,
}

impl Severity {
    /// Lower-case name used in rendered output and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding from a static analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code (`PN...` for Petri-net lints, `PIL...` for
    /// interface-language lints). Listed in DESIGN.md.
    pub code: String,
    /// How bad the finding is.
    pub severity: Severity,
    /// One-line description of the defect.
    pub message: String,
    /// The artifact the finding is about (file path or asset name,
    /// e.g. `jpeg.pnet`). Empty until [`Diagnostics::set_origin`] or
    /// [`Diagnostic::with_origin`] fills it in.
    pub origin: String,
    /// The object within the artifact (e.g. ``transition `writer` ``).
    pub at: Option<String>,
    /// 1-based source line, when the analysis has one.
    pub line: Option<u32>,
    /// 1-based source column, when the analysis has one.
    pub col: Option<u32>,
    /// Supporting detail rendered as `= note:` lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Creates a finding with no location attached yet.
    pub fn new(code: impl Into<String>, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code: code.into(),
            severity,
            message: message.into(),
            origin: String::new(),
            at: None,
            line: None,
            col: None,
            notes: Vec::new(),
        }
    }

    /// Shorthand for an error finding.
    pub fn error(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Error, message)
    }

    /// Shorthand for a warning finding.
    pub fn warning(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Warning, message)
    }

    /// Shorthand for an info finding.
    pub fn info(code: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Info, message)
    }

    /// Sets the artifact name.
    pub fn with_origin(mut self, origin: impl Into<String>) -> Self {
        self.origin = origin.into();
        self
    }

    /// Sets the object within the artifact.
    pub fn with_at(mut self, at: impl Into<String>) -> Self {
        self.at = Some(at.into());
        self
    }

    /// Sets a 1-based source position.
    pub fn with_pos(mut self, line: u32, col: u32) -> Self {
        self.line = Some(line);
        self.col = Some(col);
        self
    }

    /// Appends a `= note:` line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the finding rustc-style:
    ///
    /// ```text
    /// error[PN103]: structural deadlock: siphon {load_free} starts empty and can never gain tokens
    ///   --> vta_full.pnet: transition `load_plain`
    ///    = note: 2 transitions consume from the siphon and can never fire
    /// ```
    pub fn render(&self) -> String {
        let mut s = format!("{}[{}]: {}", self.severity, self.code, self.message);
        let mut loc = String::new();
        if !self.origin.is_empty() {
            loc.push_str(&self.origin);
        }
        if let Some(line) = self.line {
            if !loc.is_empty() {
                loc.push(':');
            }
            loc.push_str(&line.to_string());
            if let Some(col) = self.col {
                loc.push(':');
                loc.push_str(&col.to_string());
            }
        }
        if let Some(at) = &self.at {
            if !loc.is_empty() {
                loc.push_str(": ");
            }
            loc.push_str(at);
        }
        if !loc.is_empty() {
            s.push_str("\n  --> ");
            s.push_str(&loc);
        }
        for n in &self.notes {
            s.push_str("\n   = note: ");
            s.push_str(n);
        }
        s
    }

    /// Renders the finding as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"origin\":\"{}\"",
            json_escape(&self.code),
            self.severity,
            json_escape(&self.message),
            json_escape(&self.origin),
        );
        if let Some(at) = &self.at {
            s.push_str(&format!(",\"at\":\"{}\"", json_escape(at)));
        }
        if let Some(line) = self.line {
            s.push_str(&format!(",\"line\":{line}"));
        }
        if let Some(col) = self.col {
            s.push_str(&format!(",\"col\":{col}"));
        }
        s.push_str(",\"notes\":[");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", json_escape(n)));
        }
        s.push_str("]}");
        s
    }
}

/// An accumulating set of findings.
///
/// Analyses push into one of these instead of returning early, so a
/// single run reports every problem in an artifact.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty set.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Moves every finding of `other` into `self`.
    pub fn merge(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// The findings, in insertion order.
    pub fn items(&self) -> &[Diagnostic] {
        &self.items
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if there are no findings.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == severity).count()
    }

    /// `true` if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// The worst severity present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.items.iter().map(|d| d.severity).max()
    }

    /// `true` if some finding carries lint code `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.items.iter().any(|d| d.code == code)
    }

    /// The first finding with lint code `code`.
    pub fn find(&self, code: &str) -> Option<&Diagnostic> {
        self.items.iter().find(|d| d.code == code)
    }

    /// Sets `origin` on every finding that does not have one yet, and
    /// returns the set (builder-style, for labeling a whole analysis).
    pub fn with_origin(mut self, origin: &str) -> Diagnostics {
        self.set_origin(origin);
        self
    }

    /// Sets `origin` on every finding that does not have one yet.
    pub fn set_origin(&mut self, origin: &str) {
        for d in &mut self.items {
            if d.origin.is_empty() {
                d.origin = origin.to_string();
            }
        }
    }

    /// The canonical finding order: worst-first, then origin, code,
    /// position, object and message. A *total* order over every field
    /// an analysis sets, so two runs that find the same facts render
    /// byte-identically even when the analyses visited hash maps in
    /// different orders.
    fn order(a: &Diagnostic, b: &Diagnostic) -> core::cmp::Ordering {
        b.severity
            .cmp(&a.severity)
            .then_with(|| a.origin.cmp(&b.origin))
            .then_with(|| a.code.cmp(&b.code))
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.col.cmp(&b.col))
            .then_with(|| a.at.cmp(&b.at))
            .then_with(|| a.message.cmp(&b.message))
    }

    /// Sorts findings into the canonical order (see
    /// [`Diagnostics::render`]) — the order a reader wants and the
    /// order the JSON report uses.
    pub fn sort(&mut self) {
        self.items.sort_by(Self::order);
    }

    /// The findings in canonical order, without mutating the set.
    fn sorted(&self) -> Vec<&Diagnostic> {
        let mut v: Vec<&Diagnostic> = self.items.iter().collect();
        v.sort_by(|a, b| Self::order(a, b));
        v
    }

    /// Renders every finding rustc-style, followed by a summary line.
    /// Output is always in canonical order regardless of insertion
    /// order, so lint output and golden tests stay deterministic.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for d in self.sorted() {
            s.push_str(&d.render());
            s.push_str("\n\n");
        }
        s.push_str(&self.summary());
        s.push('\n');
        s
    }

    /// The one-line summary (`lint: 1 error, 2 warnings, 3 infos`).
    pub fn summary(&self) -> String {
        fn plural(n: usize, what: &str) -> String {
            format!("{n} {what}{}", if n == 1 { "" } else { "s" })
        }
        if self.items.is_empty() {
            "lint: clean".to_string()
        } else {
            format!(
                "lint: {}, {}, {}",
                plural(self.count(Severity::Error), "error"),
                plural(self.count(Severity::Warning), "warning"),
                plural(self.count(Severity::Info), "info"),
            )
        }
    }

    /// Renders the whole set as one machine-readable JSON object, in
    /// the same canonical order as [`Diagnostics::render`].
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\"diagnostics\":[");
        for (i, d) in self.sorted().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&d.to_json());
        }
        s.push_str(&format!(
            "],\"errors\":{},\"warnings\":{},\"infos\":{}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        s
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Diagnostics {
        Diagnostics {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.name(), "error");
    }

    #[test]
    fn render_includes_code_location_and_notes() {
        let d = Diagnostic::error("PN101", "tokens strand in `trap`")
            .with_origin("jpeg.pnet")
            .with_at("place `trap`")
            .with_note("no path to any sink");
        let r = d.render();
        assert!(r.starts_with("error[PN101]: tokens strand in `trap`"));
        assert!(r.contains("--> jpeg.pnet: place `trap`"));
        assert!(r.contains("= note: no path to any sink"));
    }

    #[test]
    fn render_with_line_and_col() {
        let d = Diagnostic::warning("PIL009", "unused parameter `x`")
            .with_origin("jpeg.pi")
            .with_pos(3, 7);
        assert!(d.render().contains("--> jpeg.pi:3:7"));
    }

    #[test]
    fn accumulation_counts_and_worst() {
        let mut ds = Diagnostics::new();
        assert!(ds.is_empty());
        assert_eq!(ds.worst(), None);
        ds.push(Diagnostic::info("PN111", "invariant"));
        ds.push(Diagnostic::warning("PN102", "orphan"));
        assert_eq!(ds.worst(), Some(Severity::Warning));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::error("PN110", "livelock"));
        assert!(ds.has_errors());
        assert_eq!(ds.count(Severity::Error), 1);
        assert_eq!(ds.len(), 3);
        assert!(ds.has_code("PN102"));
        assert!(!ds.has_code("PN999"));
        assert_eq!(ds.find("PN110").unwrap().message, "livelock");
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::info("A", "i"));
        ds.push(Diagnostic::error("B", "e"));
        ds.push(Diagnostic::warning("C", "w"));
        ds.sort();
        let sevs: Vec<Severity> = ds.items().iter().map(|d| d.severity).collect();
        assert_eq!(
            sevs,
            vec![Severity::Error, Severity::Warning, Severity::Info]
        );
    }

    #[test]
    fn rendering_is_insertion_order_independent() {
        // Same findings pushed in opposite orders must render (text and
        // JSON) byte-identically, even without an explicit sort() —
        // analyses that walk hash maps depend on this.
        let a1 = Diagnostic::error("PN105", "arc too wide").with_at("transition `a`");
        let a2 = Diagnostic::error("PN105", "arc too wide").with_at("transition `b`");
        let mut fwd = Diagnostics::new();
        fwd.push(a1.clone());
        fwd.push(a2.clone());
        let mut rev = Diagnostics::new();
        rev.push(a2);
        rev.push(a1);
        assert_eq!(fwd.render(), rev.render());
        assert_eq!(fwd.render_json(), rev.render_json());
        // And sort() itself agrees with the rendered order.
        fwd.sort();
        rev.sort();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn summary_pluralizes() {
        let mut ds = Diagnostics::new();
        assert_eq!(ds.summary(), "lint: clean");
        ds.push(Diagnostic::error("X", "x"));
        ds.push(Diagnostic::warning("Y", "y"));
        ds.push(Diagnostic::warning("Z", "z"));
        assert_eq!(ds.summary(), "lint: 1 error, 2 warnings, 0 infos");
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::error("PN1", "bad \"name\"")
                .with_origin("a.pnet")
                .with_pos(2, 5)
                .with_note("line\nbreak"),
        );
        let j = ds.render_json();
        assert!(j.contains("\"code\":\"PN1\""));
        assert!(j.contains("bad \\\"name\\\""));
        assert!(j.contains("\"line\":2"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"errors\":1"));
        assert!(j.ends_with('}'));
    }

    #[test]
    fn set_origin_respects_existing() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::error("A", "x").with_origin("keep.pnet"));
        ds.push(Diagnostic::error("B", "y"));
        ds.set_origin("new.pnet");
        assert_eq!(ds.items()[0].origin, "keep.pnet");
        assert_eq!(ds.items()[1].origin, "new.pnet");
    }

    #[test]
    fn merge_and_iterate() {
        let mut a = Diagnostics::new();
        a.push(Diagnostic::info("A", "1"));
        let mut b = Diagnostics::new();
        b.push(Diagnostic::info("B", "2"));
        a.merge(b);
        let codes: Vec<&str> = (&a).into_iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["A", "B"]);
    }
}
