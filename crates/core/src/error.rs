//! Error type shared by the core validation and reporting machinery.

use core::fmt;

/// Errors produced by the core crate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A validation run was given no workloads.
    EmptyWorkloadSet,
    /// An interface produced a prediction that cannot be scored (e.g. a
    /// non-finite value).
    InvalidPrediction(String),
    /// A ground-truth measurement was unusable (e.g. zero latency for a
    /// relative-error computation).
    InvalidObservation(String),
    /// A natural-language claim could not be checked on the provided
    /// samples (e.g. fewer than two points on the claimed axis).
    UncheckableClaim(String),
    /// An interface artifact (program text, Petri-net text) failed to
    /// load or evaluate; carries the lower layer's message.
    Artifact(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyWorkloadSet => write!(f, "validation requires at least one workload"),
            CoreError::InvalidPrediction(m) => write!(f, "invalid prediction: {m}"),
            CoreError::InvalidObservation(m) => write!(f, "invalid observation: {m}"),
            CoreError::UncheckableClaim(m) => write!(f, "claim cannot be checked: {m}"),
            CoreError::Artifact(m) => write!(f, "interface artifact error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::EmptyWorkloadSet.to_string(),
            "validation requires at least one workload"
        );
        assert!(CoreError::InvalidPrediction("NaN".into())
            .to_string()
            .contains("NaN"));
        assert!(CoreError::Artifact("parse".into())
            .to_string()
            .contains("parse"));
    }
}
