//! Natural-language performance interfaces with machine-checkable
//! claims.
//!
//! The paper's Fig. 1 interfaces are one-line English statements such as
//! "Latency is inversely proportional to the input image's compression
//! rate". Plain prose cannot be validated, so this module pairs the
//! prose with a structured [`Claim`] that a harness can check against
//! samples from the ground-truth model: the text is what a human reads,
//! the claim is what the machine verifies.

use crate::stats;
use crate::CoreError;

/// The quantity a natural-language claim constrains. Unlike
/// [`crate::iface::Metric`], this includes design-time quantities such
/// as silicon area (the Bitcoin miner's Fig. 1 interface trades area
/// against latency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantity {
    /// End-to-end latency.
    Latency,
    /// Sustained throughput.
    Throughput,
    /// Silicon area.
    Area,
}

impl Quantity {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Quantity::Latency => "latency",
            Quantity::Throughput => "throughput",
            Quantity::Area => "area",
        }
    }
}

/// The direction of a monotone relationship.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// The metric grows as the axis grows.
    Increasing,
    /// The metric shrinks as the axis grows.
    Decreasing,
}

/// A machine-checkable qualitative law about one metric along one
/// workload axis (an axis is a named scalar property of the workload,
/// e.g. `compress_rate` or `nesting_depth`).
#[derive(Clone, Debug, PartialEq)]
pub enum Claim {
    /// The metric varies monotonically with the axis.
    Monotone {
        /// The quantity the law constrains.
        metric: Quantity,
        /// The workload axis the law is about.
        axis: String,
        /// Direction of the relationship.
        direction: Direction,
    },
    /// `metric ≈ k · axis` for some k: proportionality up to
    /// `tolerance` relative deviation from the best linear fit through
    /// the origin.
    Proportional {
        /// The quantity the law constrains.
        metric: Quantity,
        /// The workload axis the law is about.
        axis: String,
        /// Allowed relative deviation from `k·axis`.
        tolerance: f64,
    },
    /// `metric ≈ k / axis`: inverse proportionality up to `tolerance`.
    InverselyProportional {
        /// The quantity the law constrains.
        metric: Quantity,
        /// The workload axis the law is about.
        axis: String,
        /// Allowed relative deviation from `k/axis`.
        tolerance: f64,
    },
    /// `metric == axis` exactly (e.g. the Bitcoin miner: latency in
    /// cycles equals the `Loop` parameter).
    Equals {
        /// The quantity the law constrains.
        metric: Quantity,
        /// The workload axis whose value the metric equals.
        axis: String,
    },
}

impl Claim {
    /// The axis this claim constrains.
    pub fn axis(&self) -> &str {
        match self {
            Claim::Monotone { axis, .. }
            | Claim::Proportional { axis, .. }
            | Claim::InverselyProportional { axis, .. }
            | Claim::Equals { axis, .. } => axis,
        }
    }

    /// The metric this claim constrains.
    pub fn metric(&self) -> Quantity {
        match self {
            Claim::Monotone { metric, .. }
            | Claim::Proportional { metric, .. }
            | Claim::InverselyProportional { metric, .. }
            | Claim::Equals { metric, .. } => *metric,
        }
    }

    /// Checks the claim against paired samples `(axis value, metric
    /// value)`. Samples need not be sorted. At least two samples with
    /// distinct axis values are required.
    pub fn check(&self, samples: &[(f64, f64)]) -> Result<ClaimVerdict, CoreError> {
        let mut pts: Vec<(f64, f64)> = samples.to_vec();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(core::cmp::Ordering::Equal));
        pts.dedup_by(|a, b| a.0 == b.0);
        if pts.len() < 2 {
            return Err(CoreError::UncheckableClaim(format!(
                "claim on axis `{}` needs >= 2 distinct axis values, got {}",
                self.axis(),
                pts.len()
            )));
        }
        match self {
            Claim::Monotone { direction, .. } => Ok(check_monotone(&pts, *direction)),
            Claim::Proportional { tolerance, .. } => Ok(check_fit(&pts, *tolerance, |x| x)),
            Claim::InverselyProportional { tolerance, .. } => {
                if pts.iter().any(|&(x, _)| x == 0.0) {
                    return Err(CoreError::UncheckableClaim(
                        "inverse proportionality undefined at axis value 0".into(),
                    ));
                }
                Ok(check_fit(&pts, *tolerance, |x| 1.0 / x))
            }
            Claim::Equals { .. } => {
                let worst = pts
                    .iter()
                    .filter_map(|&(x, y)| stats::rel_error(y, x))
                    .fold(0.0, f64::max);
                Ok(ClaimVerdict {
                    holds: pts.iter().all(|&(x, y)| x == y),
                    worst_violation: worst,
                })
            }
        }
    }
}

/// Result of checking one claim.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClaimVerdict {
    /// Whether the claim held on all samples.
    pub holds: bool,
    /// Largest observed violation (claim-specific units: relative
    /// deviation for fits, magnitude of the wrong-direction step for
    /// monotonicity).
    pub worst_violation: f64,
}

fn check_monotone(pts: &[(f64, f64)], dir: Direction) -> ClaimVerdict {
    let mut holds = true;
    let mut worst = 0.0f64;
    for w in pts.windows(2) {
        let dy = w[1].1 - w[0].1;
        let bad = match dir {
            Direction::Increasing => dy < 0.0,
            Direction::Decreasing => dy > 0.0,
        };
        if bad {
            holds = false;
            worst = worst.max(dy.abs());
        }
    }
    ClaimVerdict {
        holds,
        worst_violation: worst,
    }
}

/// Fits `y = k·f(x)` by least squares through the origin and reports the
/// worst relative deviation.
fn check_fit(pts: &[(f64, f64)], tolerance: f64, f: impl Fn(f64) -> f64) -> ClaimVerdict {
    let num: f64 = pts.iter().map(|&(x, y)| f(x) * y).sum();
    let den: f64 = pts.iter().map(|&(x, _)| f(x) * f(x)).sum();
    if den == 0.0 {
        return ClaimVerdict {
            holds: false,
            worst_violation: f64::INFINITY,
        };
    }
    let k = num / den;
    let worst = pts
        .iter()
        .filter_map(|&(x, y)| stats::rel_error(k * f(x), y))
        .fold(0.0, f64::max);
    ClaimVerdict {
        holds: worst <= tolerance,
        worst_violation: worst,
    }
}

/// A natural-language performance interface: prose plus checkable
/// claims.
///
/// # Examples
///
/// ```
/// use perf_core::nl::{Claim, Direction, NlInterface};
/// use perf_core::nl::Quantity;
///
/// let nl = NlInterface::new(
///     "jpeg-decoder",
///     "Latency is inversely proportional to the input image's compression rate.",
/// )
/// .with_claim(Claim::Monotone {
///     metric: Quantity::Latency,
///     axis: "compress_rate".into(),
///     direction: Direction::Decreasing,
/// });
/// // Latency falls as compression rate rises: the claim holds.
/// let verdict = nl.claims[0]
///     .check(&[(2.0, 100.0), (4.0, 60.0), (8.0, 35.0)])
///     .unwrap();
/// assert!(verdict.holds);
/// ```
#[derive(Clone, Debug)]
pub struct NlInterface {
    /// Accelerator this interface describes.
    pub accelerator: String,
    /// The human-readable one-liner(s), Fig. 1 style.
    pub text: String,
    /// Machine-checkable versions of the statements in `text`.
    pub claims: Vec<Claim>,
}

impl NlInterface {
    /// Creates an interface with the given prose and no claims yet.
    pub fn new(accelerator: impl Into<String>, text: impl Into<String>) -> NlInterface {
        NlInterface {
            accelerator: accelerator.into(),
            text: text.into(),
            claims: Vec::new(),
        }
    }

    /// Attaches a checkable claim; returns `self` for chaining.
    pub fn with_claim(mut self, claim: Claim) -> NlInterface {
        self.claims.push(claim);
        self
    }

    /// Checks all claims against per-claim sample sets. `samples[i]`
    /// must correspond to `claims[i]`.
    pub fn check_all(&self, samples: &[Vec<(f64, f64)>]) -> Result<Vec<ClaimVerdict>, CoreError> {
        if samples.len() != self.claims.len() {
            return Err(CoreError::UncheckableClaim(format!(
                "{} claims but {} sample sets",
                self.claims.len(),
                samples.len()
            )));
        }
        self.claims
            .iter()
            .zip(samples)
            .map(|(c, s)| c.check(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mono_dec() -> Claim {
        Claim::Monotone {
            metric: Quantity::Latency,
            axis: "x".into(),
            direction: Direction::Decreasing,
        }
    }

    #[test]
    fn monotone_decreasing_holds_and_fails() {
        let c = mono_dec();
        assert!(
            c.check(&[(1.0, 9.0), (2.0, 5.0), (3.0, 1.0)])
                .unwrap()
                .holds
        );
        let v = c.check(&[(1.0, 9.0), (2.0, 12.0), (3.0, 1.0)]).unwrap();
        assert!(!v.holds);
        assert_eq!(v.worst_violation, 3.0);
    }

    #[test]
    fn monotone_unsorted_input_is_sorted_first() {
        let c = mono_dec();
        assert!(
            c.check(&[(3.0, 1.0), (1.0, 9.0), (2.0, 5.0)])
                .unwrap()
                .holds
        );
    }

    #[test]
    fn too_few_samples_is_uncheckable() {
        let c = mono_dec();
        assert!(matches!(
            c.check(&[(1.0, 2.0)]),
            Err(CoreError::UncheckableClaim(_))
        ));
        // Duplicated axis values collapse to one point.
        assert!(matches!(
            c.check(&[(1.0, 2.0), (1.0, 3.0)]),
            Err(CoreError::UncheckableClaim(_))
        ));
    }

    #[test]
    fn proportional_claim() {
        let c = Claim::Proportional {
            metric: Quantity::Latency,
            axis: "size".into(),
            tolerance: 0.05,
        };
        // y = 3x exactly.
        assert!(
            c.check(&[(1.0, 3.0), (2.0, 6.0), (10.0, 30.0)])
                .unwrap()
                .holds
        );
        // 20% off on one point.
        let v = c.check(&[(1.0, 3.0), (2.0, 6.0), (10.0, 36.0)]).unwrap();
        assert!(!v.holds);
    }

    #[test]
    fn inverse_proportional_claim() {
        let c = Claim::InverselyProportional {
            metric: Quantity::Latency,
            axis: "rate".into(),
            tolerance: 0.02,
        };
        assert!(
            c.check(&[(1.0, 12.0), (2.0, 6.0), (4.0, 3.0)])
                .unwrap()
                .holds
        );
        assert!(matches!(
            c.check(&[(0.0, 1.0), (1.0, 2.0)]),
            Err(CoreError::UncheckableClaim(_))
        ));
    }

    #[test]
    fn equals_claim() {
        let c = Claim::Equals {
            metric: Quantity::Latency,
            axis: "loop".into(),
        };
        assert!(c.check(&[(4.0, 4.0), (8.0, 8.0)]).unwrap().holds);
        let v = c.check(&[(4.0, 4.0), (8.0, 9.0)]).unwrap();
        assert!(!v.holds);
        assert!((v.worst_violation - 0.125).abs() < 1e-12);
    }

    #[test]
    fn check_all_requires_matching_lengths() {
        let nl = NlInterface::new("a", "t").with_claim(mono_dec());
        assert!(nl.check_all(&[]).is_err());
        let ok = nl.check_all(&[vec![(1.0, 2.0), (2.0, 1.0)]]).unwrap();
        assert!(ok[0].holds);
    }
}
