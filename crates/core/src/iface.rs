//! The performance-interface and ground-truth traits, and the bundle of
//! all three interface representations an accelerator ships with.

use crate::nl::NlInterface;
use crate::predict::{Observation, Prediction};
use crate::CoreError;

/// The metric an interface predicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// End-to-end latency, in cycles.
    Latency,
    /// Sustained throughput, in items per cycle.
    Throughput,
}

impl Metric {
    /// Extracts this metric's value from an observation, as `f64`.
    pub fn of(self, obs: &Observation) -> f64 {
        match self {
            Metric::Latency => obs.latency.as_f64(),
            Metric::Throughput => obs.throughput.items_per_cycle(),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Latency => "latency",
            Metric::Throughput => "throughput",
        }
    }
}

/// The representation kind of a performance interface, in increasing
/// order of precision and decreasing order of human readability (§3 of
/// the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InterfaceKind {
    /// One-line qualitative laws (paper Fig. 1).
    NaturalLanguage,
    /// An executable interface program (paper Figs. 2–3).
    Program,
    /// A timed Petri net, the "performance IR" (paper Table 1).
    PetriNet,
}

impl InterfaceKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            InterfaceKind::NaturalLanguage => "natural language",
            InterfaceKind::Program => "program",
            InterfaceKind::PetriNet => "petri net",
        }
    }
}

/// A ground-truth performance model: the cycle-accurate simulator that
/// stands in for the accelerator's RTL.
///
/// `W` is the accelerator-specific workload type (an image, a message, a
/// mining job, a VTA program).
pub trait GroundTruth<W> {
    /// Runs `workload` to completion and reports its measured latency
    /// and throughput.
    fn measure(&mut self, workload: &W) -> Result<Observation, CoreError>;
}

/// A quantitative performance interface: predicts a metric for a
/// workload without running the accelerator.
pub trait PerfInterface<W> {
    /// Which representation this interface is.
    fn kind(&self) -> InterfaceKind;

    /// Predicts `metric` for `workload`.
    fn predict(&self, workload: &W, metric: Metric) -> Result<Prediction, CoreError>;
}

/// The full set of interface artifacts an accelerator vendor ships, per
/// the paper's proposal: one natural-language interface plus any number
/// of executable representations.
pub struct InterfaceBundle<W> {
    /// Accelerator name (e.g. `"jpeg-decoder"`).
    pub accelerator: String,
    /// The natural-language interface with machine-checkable claims.
    pub natural_language: NlInterface,
    /// Executable interfaces (program and/or Petri net), most precise
    /// last by convention.
    pub executable: Vec<Box<dyn PerfInterface<W>>>,
}

impl<W> InterfaceBundle<W> {
    /// Creates a bundle with no executable interfaces yet.
    pub fn new(accelerator: impl Into<String>, nl: NlInterface) -> InterfaceBundle<W> {
        InterfaceBundle {
            accelerator: accelerator.into(),
            natural_language: nl,
            executable: Vec::new(),
        }
    }

    /// Adds an executable interface and returns the bundle for chaining.
    pub fn with(mut self, iface: Box<dyn PerfInterface<W>>) -> InterfaceBundle<W> {
        self.executable.push(iface);
        self
    }

    /// Returns the first executable interface of the given kind.
    pub fn get(&self, kind: InterfaceKind) -> Option<&dyn PerfInterface<W>> {
        self.executable
            .iter()
            .map(|b| b.as_ref())
            .find(|i| i.kind() == kind)
    }

    /// The most precise executable interface available (Petri net if
    /// present, otherwise a program interface).
    pub fn most_precise(&self) -> Option<&dyn PerfInterface<W>> {
        self.executable
            .iter()
            .map(|b| b.as_ref())
            .max_by_key(|i| i.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nl::NlInterface;
    use crate::units::Cycles;

    struct Fixed(InterfaceKind, f64);

    impl PerfInterface<u64> for Fixed {
        fn kind(&self) -> InterfaceKind {
            self.0
        }
        fn predict(&self, w: &u64, _m: Metric) -> Result<Prediction, CoreError> {
            Ok(Prediction::point(self.1 * *w as f64))
        }
    }

    #[test]
    fn metric_extraction() {
        let o = Observation::single_item(Cycles(50));
        assert_eq!(Metric::Latency.of(&o), 50.0);
        assert!((Metric::Throughput.of(&o) - 0.02).abs() < 1e-12);
        assert_eq!(Metric::Latency.name(), "latency");
    }

    #[test]
    fn bundle_lookup_and_precision_order() {
        let bundle: InterfaceBundle<u64> =
            InterfaceBundle::new("toy", NlInterface::new("toy", "Latency is linear in size."))
                .with(Box::new(Fixed(InterfaceKind::Program, 2.0)))
                .with(Box::new(Fixed(InterfaceKind::PetriNet, 1.0)));
        assert!(bundle.get(InterfaceKind::Program).is_some());
        assert!(bundle.get(InterfaceKind::NaturalLanguage).is_none());
        let best = bundle.most_precise().unwrap();
        assert_eq!(best.kind(), InterfaceKind::PetriNet);
        let p = best.predict(&3, Metric::Latency).unwrap();
        assert_eq!(p, Prediction::point(3.0));
    }

    #[test]
    fn interface_kind_ordering_matches_precision() {
        assert!(InterfaceKind::NaturalLanguage < InterfaceKind::Program);
        assert!(InterfaceKind::Program < InterfaceKind::PetriNet);
        assert_eq!(InterfaceKind::PetriNet.name(), "petri net");
    }
}
