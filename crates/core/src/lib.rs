//! Core traits and types for accelerator performance interfaces.
//!
//! This crate defines the vocabulary of the whole workspace: physical
//! units ([`units`]), the prediction and observation types
//! ([`predict`]), the traits implemented by ground-truth models and by
//! interfaces ([`iface`]), machine-checkable natural-language claims
//! ([`nl`]), the validation harness that scores an interface against a
//! ground truth ([`validate`]), the interface-complexity metric
//! ([`complexity`]), small statistics helpers ([`stats`]), plain-text
//! report rendering ([`report`]), the [`trace`] observability
//! interface every execution substrate emits into, the [`diag`]
//! diagnostics model shared by the `perf-lint` static analyses, the
//! error budgets and measures the conformance harness and the query
//! service score predictions with ([`budget`]), and the
//! workload-spec/backend vocabulary of the `perf-service` query
//! server ([`query`]).
//!
//! The design follows the HotOS '23 paper "The Case for Performance
//! Interfaces for Hardware Accelerators": an accelerator ships with an
//! [`iface::InterfaceBundle`] holding three representations of its
//! performance behavior — natural-language text, an executable program,
//! and a Petri-net IR — each trading readability for precision.

#![deny(missing_docs)]

pub mod budget;
pub mod complexity;
pub mod diag;
pub mod error;
pub mod iface;
pub mod nl;
pub mod predict;
pub mod query;
pub mod report;
pub mod stats;
pub mod trace;
pub mod units;
pub mod validate;

pub use budget::{Budget, Contract};
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use error::CoreError;
pub use iface::{GroundTruth, InterfaceBundle, InterfaceKind, PerfInterface};
pub use predict::{Observation, Prediction};
pub use query::{QueryBackend, WorkloadSpec};
pub use trace::{ChromeTrace, MemorySink, NullSink, StageCycles, TraceSink};
pub use units::{Cycles, Freq, Throughput};
pub use validate::{ErrorStats, ValidationReport};
