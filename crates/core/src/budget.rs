//! Error budgets, fault-operating contracts, and the error measures
//! they are checked with.
//!
//! A [`Budget`] says how far an interface representation's predictions
//! may drift from the cycle-accurate simulator before the harness
//! flags a divergence — one budget per (representation, metric)
//! channel, mirroring the per-accelerator error columns of the paper's
//! Table 1. A [`Contract`] declares the fault-injection regime an
//! interface is still accountable under: within the declared intensity
//! its (widened) budget must hold; beyond it the harness only requires
//! that predictions stay finite and the region is explicitly reported
//! as out of contract.
//!
//! The error measures ([`relative_error`], [`cycle_distance`],
//! [`channel_error`]) live here, next to the budgets they are judged
//! against, so that every consumer — the `perf-conformance`
//! differential harness and the `perf-service` query server's
//! degradation checks — scores predictions identically.

use crate::iface::Metric;
use crate::predict::Prediction;

/// Relative-error budget for one (representation, metric) channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Budget {
    /// Ceiling on the mean relative error across all cases.
    pub avg: f64,
    /// Ceiling on any single case's relative error. For interval
    /// predictions the per-case error is zero when the observation is
    /// contained and the relative overshoot past the nearer bound
    /// otherwise, so `max` doubles as the containment tolerance.
    pub max: f64,
    /// Absolute deadband in *cycles* (throughput channels are compared
    /// in the reciprocal cycles-per-item domain). A prediction within
    /// `atol` cycles of the observation counts as zero error: on a
    /// one-cycle degenerate workload, being one cycle off is not a
    /// model divergence even though the relative error is 100%.
    pub atol: f64,
}

impl Budget {
    /// Creates a budget with no absolute deadband.
    pub const fn new(avg: f64, max: f64) -> Budget {
        Budget {
            avg,
            max,
            atol: 0.0,
        }
    }

    /// Sets the absolute cycle deadband.
    pub const fn with_atol(self, atol: f64) -> Budget {
        Budget { atol, ..self }
    }

    /// Returns this budget widened by an absolute relative-error
    /// `slack`, as allowed for in-contract fault-injected operation.
    /// The per-case ceiling gets three times the slack because a
    /// single unlucky case concentrates more injected cycles than the
    /// mean does.
    pub fn widen(self, slack: f64) -> Budget {
        Budget {
            avg: self.avg + slack,
            max: self.max + 3.0 * slack,
            atol: self.atol,
        }
    }
}

/// Fault-operating contract for one accelerator's interfaces.
///
/// `intensity` here is `perf_sim::FaultPlan::intensity`: the expected
/// number of extra cycles injected per fault opportunity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Contract {
    /// Highest fault intensity the interfaces remain accountable
    /// under. Regions beyond this are reported as out of contract.
    pub max_intensity: f64,
    /// Relative-error slack granted per unit of intensity while in
    /// contract (accelerator-specific: it reflects how many fault
    /// opportunities one predicted cycle spans).
    pub err_per_intensity: f64,
}

impl Contract {
    /// Creates a contract.
    pub const fn new(max_intensity: f64, err_per_intensity: f64) -> Contract {
        Contract {
            max_intensity,
            err_per_intensity,
        }
    }

    /// The absolute relative-error slack granted at `intensity`.
    pub fn slack(&self, intensity: f64) -> f64 {
        self.err_per_intensity * intensity
    }
}

/// Relative error of a prediction against an observation: distance
/// for points, overshoot past the nearer bound (zero if contained)
/// for intervals.
pub fn relative_error(pred: &Prediction, actual: f64) -> f64 {
    let denom = actual.abs().max(1e-12);
    match *pred {
        Prediction::Point(v) => (v - actual).abs() / denom,
        Prediction::Bounds { min, max } => {
            if actual < min {
                (min - actual) / denom
            } else if actual > max {
                (actual - max) / denom
            } else {
                0.0
            }
        }
    }
}

/// Absolute distance between prediction and observation in the
/// time domain: cycles for latency, cycles-per-item (the reciprocal)
/// for throughput. Zero when an interval prediction contains the
/// observation.
pub fn cycle_distance(pred: &Prediction, actual: f64, metric: Metric) -> f64 {
    let to_cycles = |v: f64| match metric {
        Metric::Latency => v,
        Metric::Throughput => 1.0 / v.abs().max(1e-12),
    };
    let a = to_cycles(actual);
    match *pred {
        Prediction::Point(v) => (to_cycles(v) - a).abs(),
        Prediction::Bounds { min, max } => {
            // Reciprocation flips interval endpoints for throughput.
            let (c1, c2) = (to_cycles(min), to_cycles(max));
            let (lo, hi) = (c1.min(c2), c1.max(c2));
            if a < lo {
                lo - a
            } else if a > hi {
                a - hi
            } else {
                0.0
            }
        }
    }
}

/// Per-case channel error: the relative error, except that predictions
/// within `atol` cycles of the observation (time domain) count as
/// exact. The deadband keeps relative budgets meaningful on degenerate
/// one-cycle workloads without masking real divergences, which are
/// tens of cycles or more off.
pub fn channel_error(pred: &Prediction, actual: f64, metric: Metric, atol: f64) -> f64 {
    if cycle_distance(pred, actual, metric) <= atol {
        0.0
    } else {
        relative_error(pred, actual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_adds_slack() {
        let b = Budget::new(0.10, 0.30).widen(0.05);
        assert!((b.avg - 0.15).abs() < 1e-12);
        assert!((b.max - 0.45).abs() < 1e-12);
    }

    #[test]
    fn widen_preserves_atol() {
        let b = Budget::new(0.10, 0.30).with_atol(4.0).widen(0.05);
        assert_eq!(b.atol, 4.0);
    }

    #[test]
    fn contract_slack_scales() {
        let c = Contract::new(1.0, 0.2);
        assert!((c.slack(0.5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_error_point_and_bounds() {
        assert!((relative_error(&Prediction::point(110.0), 100.0) - 0.1).abs() < 1e-12);
        let b = Prediction::bounds(90.0, 120.0);
        assert_eq!(relative_error(&b, 100.0), 0.0);
        assert!((relative_error(&b, 150.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(&b, 60.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn atol_deadband_zeroes_tiny_absolute_gaps() {
        // 2 vs 1 cycle: 100% relative, but inside a 4-cycle deadband.
        let p = Prediction::point(2.0);
        assert_eq!(channel_error(&p, 1.0, Metric::Latency, 4.0), 0.0);
        assert!(channel_error(&p, 1.0, Metric::Latency, 0.5) > 0.9);
        // Throughput compares in the reciprocal (cycles-per-item)
        // domain: 0.5 vs 1.0 items/cycle is a 1-cycle gap.
        let t = Prediction::point(0.5);
        assert_eq!(cycle_distance(&t, 1.0, Metric::Throughput), 1.0);
        assert_eq!(channel_error(&t, 1.0, Metric::Throughput, 4.0), 0.0);
    }
}
