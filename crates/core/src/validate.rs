//! The validation harness: scores an interface's predictions against a
//! ground-truth model over a workload set.
//!
//! This is the machinery behind every accuracy number in the paper:
//! "average (maximum) prediction error of 2.1% (10.3%)" is an
//! [`ErrorStats`] computed over 1500 random images.

use crate::iface::{GroundTruth, Metric, PerfInterface};
use crate::predict::Prediction;
use crate::stats;
use crate::CoreError;

/// Error statistics of point predictions over a workload set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ErrorStats {
    /// Number of scored workloads.
    pub n: usize,
    /// Mean relative error.
    pub avg: f64,
    /// Maximum relative error.
    pub max: f64,
    /// 99th-percentile relative error.
    pub p99: f64,
}

impl ErrorStats {
    /// Computes statistics from raw relative errors.
    pub fn from_errors(errs: &[f64]) -> ErrorStats {
        ErrorStats {
            n: errs.len(),
            avg: stats::mean(errs),
            max: stats::max(errs),
            p99: stats::percentile(errs, 99.0),
        }
    }

    /// Renders as the paper's "avg% (max%)" form.
    pub fn paper_style(&self) -> String {
        format!("{:.2}% ({:.2}%)", self.avg * 100.0, self.max * 100.0)
    }
}

/// Statistics for interval (bounds) predictions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoundsStats {
    /// Number of scored workloads.
    pub n: usize,
    /// How many measurements fell inside their predicted interval.
    pub within: usize,
    /// Mean relative interval width (`(max-min)/truth`), a measure of
    /// how informative the bounds are.
    pub avg_rel_width: f64,
}

impl BoundsStats {
    /// Fraction of measurements inside their interval.
    pub fn coverage(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.within as f64 / self.n as f64
        }
    }
}

/// Outcome of validating one interface on one metric.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// Point-prediction error statistics (workloads whose prediction was
    /// a point).
    pub point: ErrorStats,
    /// Bounds statistics (workloads whose prediction was an interval).
    pub bounds: BoundsStats,
    /// The raw per-workload relative errors, for histograms.
    pub errors: Vec<f64>,
}

/// Validates `iface` against `truth` on `metric` over `workloads`.
///
/// Point predictions contribute relative errors; bounds predictions
/// contribute coverage. Mixed interfaces (Protoacc latency is bounds,
/// its throughput a point) are handled per-prediction.
pub fn validate<W>(
    truth: &mut dyn GroundTruth<W>,
    iface: &dyn PerfInterface<W>,
    metric: Metric,
    workloads: &[W],
) -> Result<ValidationReport, CoreError> {
    if workloads.is_empty() {
        return Err(CoreError::EmptyWorkloadSet);
    }
    let mut errors = Vec::with_capacity(workloads.len());
    let mut bounds = BoundsStats::default();
    let mut widths = Vec::new();
    for w in workloads {
        let obs = truth.measure(w)?;
        let measured = metric.of(&obs);
        let pred = iface.predict(w, metric)?;
        if !pred.is_finite() {
            return Err(CoreError::InvalidPrediction(format!(
                "non-finite {} prediction",
                metric.name()
            )));
        }
        match pred {
            Prediction::Point(v) => {
                let e = stats::rel_error(v, measured).ok_or_else(|| {
                    CoreError::InvalidObservation(format!(
                        "measured {} is zero or non-finite",
                        metric.name()
                    ))
                })?;
                errors.push(e);
            }
            Prediction::Bounds { min, max } => {
                bounds.n += 1;
                if pred.contains(measured) {
                    bounds.within += 1;
                }
                if measured != 0.0 {
                    widths.push((max - min).abs() / measured.abs());
                }
            }
        }
    }
    bounds.avg_rel_width = stats::mean(&widths);
    Ok(ValidationReport {
        point: ErrorStats::from_errors(&errors),
        bounds,
        errors,
    })
}

/// Collects `(axis, metric)` samples from a ground truth for checking a
/// natural-language claim: `axis_of` extracts the claimed axis value
/// from each workload.
pub fn collect_axis_samples<W>(
    truth: &mut dyn GroundTruth<W>,
    metric: Metric,
    workloads: &[W],
    axis_of: impl Fn(&W) -> f64,
) -> Result<Vec<(f64, f64)>, CoreError> {
    workloads
        .iter()
        .map(|w| {
            let obs = truth.measure(w)?;
            Ok((axis_of(w), metric.of(&obs)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::InterfaceKind;
    use crate::predict::Observation;
    use crate::units::Cycles;

    /// Toy accelerator: latency = 10 * w.
    struct Toy;

    impl GroundTruth<u64> for Toy {
        fn measure(&mut self, w: &u64) -> Result<Observation, CoreError> {
            Ok(Observation::single_item(Cycles(10 * *w)))
        }
    }

    /// Interface that over-predicts latency by 10%.
    struct Off10;

    impl PerfInterface<u64> for Off10 {
        fn kind(&self) -> InterfaceKind {
            InterfaceKind::Program
        }
        fn predict(&self, w: &u64, m: Metric) -> Result<Prediction, CoreError> {
            let lat = 10.0 * *w as f64 * 1.1;
            Ok(match m {
                Metric::Latency => Prediction::point(lat),
                Metric::Throughput => Prediction::point(1.0 / lat),
            })
        }
    }

    /// Interface that predicts bounds [0.5x, 2x] around the truth.
    struct Wide;

    impl PerfInterface<u64> for Wide {
        fn kind(&self) -> InterfaceKind {
            InterfaceKind::Program
        }
        fn predict(&self, w: &u64, _m: Metric) -> Result<Prediction, CoreError> {
            let lat = 10.0 * *w as f64;
            Ok(Prediction::bounds(lat * 0.5, lat * 2.0))
        }
    }

    #[test]
    fn empty_workloads_rejected() {
        let r = validate(&mut Toy, &Off10, Metric::Latency, &[]);
        assert!(matches!(r, Err(CoreError::EmptyWorkloadSet)));
    }

    #[test]
    fn point_errors_scored() {
        let ws = [1u64, 2, 5, 9];
        let r = validate(&mut Toy, &Off10, Metric::Latency, &ws).unwrap();
        assert_eq!(r.point.n, 4);
        assert!((r.point.avg - 0.1).abs() < 1e-9);
        assert!((r.point.max - 0.1).abs() < 1e-9);
        assert_eq!(r.bounds.n, 0);
    }

    #[test]
    fn throughput_errors_scored() {
        let ws = [3u64, 4];
        let r = validate(&mut Toy, &Off10, Metric::Throughput, &ws).unwrap();
        // Throughput under-predicted by factor 1/1.1 => error ~ 0.0909.
        assert!((r.point.avg - (1.0 - 1.0 / 1.1)).abs() < 1e-9);
    }

    #[test]
    fn bounds_coverage() {
        let ws = [1u64, 2, 3];
        let r = validate(&mut Toy, &Wide, Metric::Latency, &ws).unwrap();
        assert_eq!(r.bounds.n, 3);
        assert_eq!(r.bounds.within, 3);
        assert_eq!(r.bounds.coverage(), 1.0);
        assert!((r.bounds.avg_rel_width - 1.5).abs() < 1e-9);
        assert_eq!(r.point.n, 0);
    }

    #[test]
    fn paper_style_string() {
        let e = ErrorStats {
            n: 10,
            avg: 0.021,
            max: 0.103,
            p99: 0.1,
        };
        assert_eq!(e.paper_style(), "2.10% (10.30%)");
    }

    #[test]
    fn axis_sample_collection() {
        let ws = [2u64, 4, 8];
        let samples = collect_axis_samples(&mut Toy, Metric::Latency, &ws, |w| *w as f64).unwrap();
        assert_eq!(samples, vec![(2.0, 20.0), (4.0, 40.0), (8.0, 80.0)]);
    }
}
