//! Plain-text table rendering for the benchmark harness.
//!
//! The `repro` binary prints each of the paper's tables and figures as
//! an aligned ASCII table; this module is the shared renderer.

use core::fmt;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use perf_core::report::Table;
///
/// let mut t = Table::new(vec!["Accel", "Avg err", "Max err"]);
/// t.row(vec!["JPEG".into(), "0.09%".into(), "0.50%".into()]);
/// let s = t.to_string();
/// assert!(s.contains("JPEG"));
/// assert!(s.starts_with("Accel"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Table {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// extend the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Rebuilds a table from owned headers and rows (the experiment
    /// framework merges per-variant row sets into one table).
    pub fn from_parts(headers: Vec<String>, rows: Vec<Vec<String>>) -> Table {
        Table { headers, rows }
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(core::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut w = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| {
            let mut line = String::from("|");
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &w));
        let mut sep = String::from("|");
        for width in &w {
            sep.push_str(&format!("{:-<1$}|", "", width + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for r in &self.rows {
            out.push_str(&fmt_row(r, &w));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in w.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        writeln!(f, "{:-<total$}", "")?;
        for r in &self.rows {
            write_row(f, r)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a speedup factor (e.g. `1312.4x`).
pub fn speedup(x: f64) -> String {
    format!("{x:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "y".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "a      bbbb");
        assert_eq!(lines[2], "xxxxx  y   ");
    }

    #[test]
    fn ragged_rows_padded() {
        let mut t = Table::new(vec!["h"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec![]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains('2'));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| x"));
        assert!(md.lines().nth(1).unwrap().starts_with("|--"));
        assert!(md.contains("| 1"));
    }

    #[test]
    fn format_helpers() {
        assert_eq!(pct(0.021), "2.10%");
        assert_eq!(speedup(1312.04), "1312.0x");
    }
}
