//! Predictions made by interfaces and observations made on ground truth.

use crate::units::{Cycles, Throughput};
use core::fmt;

/// A performance prediction for one workload.
///
/// Interfaces may predict a point value or, when a closed form is out of
/// reach (Protoacc's latency in the paper's Fig. 3), an interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Prediction {
    /// A single predicted value.
    Point(f64),
    /// An interval `[min, max]` guaranteed to contain the true value.
    Bounds {
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
}

impl Prediction {
    /// Builds a point prediction.
    pub fn point(v: f64) -> Prediction {
        Prediction::Point(v)
    }

    /// Builds an interval prediction, normalizing order.
    pub fn bounds(a: f64, b: f64) -> Prediction {
        Prediction::Bounds {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Returns `true` if every carried value is finite.
    pub fn is_finite(&self) -> bool {
        match *self {
            Prediction::Point(v) => v.is_finite(),
            Prediction::Bounds { min, max } => min.is_finite() && max.is_finite(),
        }
    }

    /// The representative value used for error computations: the point
    /// itself, or the interval midpoint.
    pub fn midpoint(&self) -> f64 {
        match *self {
            Prediction::Point(v) => v,
            Prediction::Bounds { min, max } => 0.5 * (min + max),
        }
    }

    /// Whether `value` is consistent with the prediction: equal-ish for
    /// a point (caller applies its own tolerance via error stats), or
    /// inside the interval for bounds.
    pub fn contains(&self, value: f64) -> bool {
        match *self {
            Prediction::Point(_) => true,
            Prediction::Bounds { min, max } => value >= min && value <= max,
        }
    }
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Prediction::Point(v) => write!(f, "{v:.3}"),
            Prediction::Bounds { min, max } => write!(f, "[{min:.3}, {max:.3}]"),
        }
    }
}

/// A ground-truth measurement of one workload on a cycle-accurate model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Observation {
    /// End-to-end latency of the workload.
    pub latency: Cycles,
    /// Sustained throughput while processing the workload.
    pub throughput: Throughput,
}

impl Observation {
    /// Creates an observation.
    pub fn new(latency: Cycles, throughput: Throughput) -> Observation {
        Observation {
            latency,
            throughput,
        }
    }

    /// An observation for a single item whose throughput is the inverse
    /// of its latency (the paper's JPEG decoder processes images
    /// one-by-one, so `tput = 1 / latency`).
    pub fn single_item(latency: Cycles) -> Observation {
        Observation {
            latency,
            throughput: Throughput::per(latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_normalized() {
        let p = Prediction::bounds(10.0, 2.0);
        assert_eq!(
            p,
            Prediction::Bounds {
                min: 2.0,
                max: 10.0
            }
        );
        assert!(p.contains(5.0));
        assert!(!p.contains(11.0));
        assert_eq!(p.midpoint(), 6.0);
    }

    #[test]
    fn point_prediction() {
        let p = Prediction::point(3.5);
        assert_eq!(p.midpoint(), 3.5);
        assert!(p.is_finite());
        assert!(p.contains(1e9));
        assert_eq!(p.to_string(), "3.500");
    }

    #[test]
    fn non_finite_detected() {
        assert!(!Prediction::point(f64::NAN).is_finite());
        assert!(!Prediction::bounds(1.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn single_item_observation() {
        let o = Observation::single_item(Cycles(200));
        assert_eq!(o.latency, Cycles(200));
        assert!((o.throughput.items_per_cycle() - 0.005).abs() < 1e-12);
    }
}
