//! The `TraceSink` observability interface.
//!
//! Every execution substrate in this workspace — the tick-accurate
//! accelerator models, the event-driven Petri-net engine and the
//! autotuner's search loop — can explain where its cycles (or its wall
//! time) went by emitting records into a [`TraceSink`]. The trait is
//! deliberately tiny and monomorphizable: code paths instrumented with
//! a [`NullSink`] compile to nothing, so tracing can be threaded
//! through hot loops without a measurable cost when disabled.
//!
//! Three record kinds cover the substrates:
//!
//! * **stage** — per clocked component: busy / stall / idle cycle
//!   totals ([`StageCycles`]), e.g. a pipeline stage or a VTA module;
//! * **span** — a timed unit of host work, e.g. one autotuner candidate
//!   evaluation (backend, cache hit/miss, wall nanoseconds);
//! * **event** — a point occurrence at a simulated cycle.
//!
//! [`MemorySink`] collects everything in memory and renders JSON plus
//! flame-graph-ready folded-stack text (`component;stage;state cycles`,
//! one line per stack — feed directly to `flamegraph.pl` or speedscope).

/// Busy/stall/idle cycle totals of one clocked component or stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCycles {
    /// Cycles spent doing useful work.
    pub busy: u64,
    /// Cycles blocked on a full downstream buffer (backpressure).
    pub stall: u64,
    /// Cycles with nothing to do.
    pub idle: u64,
}

impl StageCycles {
    /// Total cycles accounted for.
    pub fn total(&self) -> u64 {
        self.busy + self.stall + self.idle
    }

    /// Busy fraction of the accounted cycles (0 when nothing was
    /// recorded).
    pub fn utilization(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.busy as f64 / self.total() as f64
        }
    }
}

/// A consumer of trace records.
///
/// All methods default to no-ops so implementors override only what
/// they store. `is_enabled` lets producers skip expensive record
/// *construction* (string formatting, provenance walks); cheap emits
/// may skip the check and rely on inlining.
pub trait TraceSink {
    /// Whether this sink retains anything. Producers may consult this
    /// before doing work only needed for tracing.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records busy/stall/idle totals for `stage` of `component`.
    fn stage(&mut self, component: &str, stage: &str, cycles: StageCycles) {
        let _ = (component, stage, cycles);
    }

    /// Records a timed span of host work under `component`, labelled
    /// `label`, with free-form `detail` and a wall-clock duration.
    fn span(&mut self, component: &str, label: &str, detail: &str, nanos: u64) {
        let _ = (component, label, detail, nanos);
    }

    /// Records a point event at simulated `cycle`.
    fn event(&mut self, cycle: u64, source: &str, what: &str) {
        let _ = (cycle, source, what);
    }
}

/// The disabled sink: every emit is a no-op the optimizer erases.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// A stage record retained by [`MemorySink`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageRecord {
    /// Component (e.g. `jpeg`, `vta`).
    pub component: String,
    /// Stage within the component (e.g. `huffman`, `compute`).
    pub stage: String,
    /// Cycle totals.
    pub cycles: StageCycles,
}

/// A span record retained by [`MemorySink`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Component (e.g. `autotune`).
    pub component: String,
    /// Label (e.g. the cost backend's name).
    pub label: String,
    /// Free-form detail (e.g. `cache=hit cost=1234`).
    pub detail: String,
    /// Wall-clock duration in nanoseconds.
    pub nanos: u64,
}

/// An event record retained by [`MemorySink`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Simulated cycle.
    pub cycle: u64,
    /// Emitting component.
    pub source: String,
    /// Description.
    pub what: String,
}

/// An in-memory sink collecting every record, with JSON and
/// folded-stack renderers.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    /// Stage records, in emit order.
    pub stages: Vec<StageRecord>,
    /// Span records, in emit order.
    pub spans: Vec<SpanRecord>,
    /// Event records, in emit order.
    pub events: Vec<EventRecord>,
}

/// Minimal JSON string escaping (the workspace carries no serde).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Total records of all kinds.
    pub fn len(&self) -> usize {
        self.stages.len() + self.spans.len() + self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders all records as one JSON object.
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "    {{\"component\": \"{}\", \"stage\": \"{}\", \"busy\": {}, \"stall\": {}, \"idle\": {}}}",
                    json_escape(&s.component),
                    json_escape(&s.stage),
                    s.cycles.busy,
                    s.cycles.stall,
                    s.cycles.idle
                )
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "    {{\"component\": \"{}\", \"label\": \"{}\", \"detail\": \"{}\", \"nanos\": {}}}",
                    json_escape(&s.component),
                    json_escape(&s.label),
                    json_escape(&s.detail),
                    s.nanos
                )
            })
            .collect();
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "    {{\"cycle\": {}, \"source\": \"{}\", \"what\": \"{}\"}}",
                    e.cycle,
                    json_escape(&e.source),
                    json_escape(&e.what)
                )
            })
            .collect();
        format!(
            "{{\n  \"stages\": [\n{}\n  ],\n  \"spans\": [\n{}\n  ],\n  \"events\": [\n{}\n  ]\n}}\n",
            stages.join(",\n"),
            spans.join(",\n"),
            events.join(",\n")
        )
    }

    /// Renders stage records as folded stacks
    /// (`component;stage;state count` per line): cycle-weighted for
    /// stages, nanosecond-weighted for spans.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for s in &self.stages {
            for (state, n) in [
                ("busy", s.cycles.busy),
                ("stall", s.cycles.stall),
                ("idle", s.cycles.idle),
            ] {
                if n > 0 {
                    out.push_str(&format!("{};{};{} {}\n", s.component, s.stage, state, n));
                }
            }
        }
        for s in &self.spans {
            out.push_str(&format!("{};{} {}\n", s.component, s.label, s.nanos));
        }
        out
    }
}

/// A Chrome JSON ("Trace Event Format") trace builder, loadable by
/// ui.perfetto.dev and `chrome://tracing`.
///
/// The workspace ships no protobuf stack, so Perfetto export uses the
/// JSON form of the trace-event format: one `"X"` (complete) event per
/// slice with microsecond `ts`/`dur`, plus `"M"` metadata events
/// naming processes and threads. Simulated **cycles map 1:1 to
/// microseconds** — a slice of `dur: 9` is a 9-cycle occupancy. Each
/// `(pid, tid)` pair is one named track; producers group related
/// tracks under one pid (e.g. all transitions of one net).
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// Creates an empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Events emitted so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Names the process `pid` (one per track group).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Names the track `(pid, tid)`.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ));
    }

    /// Emits a complete slice on track `(pid, tid)` covering
    /// `[ts, ts + dur)` microseconds (= simulated cycles). `args` are
    /// extra key/value pairs; each value must already be a valid JSON
    /// literal (use [`ChromeTrace::json_str`] for strings).
    pub fn slice(
        &mut self,
        pid: u32,
        tid: u32,
        ts: u64,
        dur: u64,
        name: &str,
        args: &[(&str, String)],
    ) {
        let args_json = if args.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = args
                .iter()
                .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
                .collect();
            format!(",\"args\":{{{}}}", pairs.join(","))
        };
        self.events.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts},\"dur\":{dur}{args_json}}}",
            json_escape(name)
        ));
    }

    /// Emits a thread-scoped instant event at `ts` microseconds.
    pub fn instant(&mut self, pid: u32, tid: u32, ts: u64, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"name\":\"{}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}",
            json_escape(name)
        ));
    }

    /// Renders a string as a JSON literal for [`ChromeTrace::slice`]
    /// args.
    pub fn json_str(s: &str) -> String {
        format!("\"{}\"", json_escape(s))
    }

    /// Renders the whole trace as one JSON document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
            self.events.join(",\n")
        )
    }
}

impl MemorySink {
    /// Exports the sink's records into a Chrome trace under process
    /// `pid`: one track per `component.stage` with its busy → stall →
    /// idle cycles tiled from 0 (totals, not a timeline — the sims
    /// record aggregates); one track per span component with its spans
    /// laid end to end (nanoseconds floored to microseconds, minimum
    /// 1 µs so every span stays visible); point events as instants on
    /// track 0.
    pub fn chrome_events(&self, pid: u32, ct: &mut ChromeTrace) {
        let mut tid = 1u32;
        for s in &self.stages {
            ct.thread_name(pid, tid, &format!("{}.{}", s.component, s.stage));
            let mut at = 0u64;
            for (state, n) in [
                ("busy", s.cycles.busy),
                ("stall", s.cycles.stall),
                ("idle", s.cycles.idle),
            ] {
                if n > 0 {
                    ct.slice(pid, tid, at, n, state, &[]);
                    at += n;
                }
            }
            tid += 1;
        }
        let mut span_tracks: Vec<(String, u32, u64)> = Vec::new();
        for s in &self.spans {
            let entry = match span_tracks.iter_mut().find(|(c, _, _)| *c == s.component) {
                Some(e) => e,
                None => {
                    ct.thread_name(pid, tid, &format!("{}.spans", s.component));
                    span_tracks.push((s.component.clone(), tid, 0));
                    tid += 1;
                    span_tracks.last_mut().expect("just pushed")
                }
            };
            let dur = (s.nanos / 1_000).max(1);
            ct.slice(
                pid,
                entry.1,
                entry.2,
                dur,
                &s.label,
                &[("detail", ChromeTrace::json_str(&s.detail))],
            );
            entry.2 += dur;
        }
        for e in &self.events {
            ct.instant(pid, 0, e.cycle, &format!("{}: {}", e.source, e.what));
        }
    }
}

impl TraceSink for MemorySink {
    fn stage(&mut self, component: &str, stage: &str, cycles: StageCycles) {
        self.stages.push(StageRecord {
            component: component.to_string(),
            stage: stage.to_string(),
            cycles,
        });
    }

    fn span(&mut self, component: &str, label: &str, detail: &str, nanos: u64) {
        self.spans.push(SpanRecord {
            component: component.to_string(),
            label: label.to_string(),
            detail: detail.to_string(),
            nanos,
        });
    }

    fn event(&mut self, cycle: u64, source: &str, what: &str) {
        self.events.push(EventRecord {
            cycle,
            source: source.to_string(),
            what: what.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut s = NullSink;
        assert!(!s.is_enabled());
        // All no-ops; nothing to observe, but they must not panic.
        s.stage("c", "s", StageCycles::default());
        s.span("c", "l", "d", 1);
        s.event(0, "c", "w");
    }

    #[test]
    fn memory_sink_collects_all_kinds() {
        let mut m = MemorySink::new();
        assert!(m.is_empty());
        m.stage(
            "jpeg",
            "huffman",
            StageCycles {
                busy: 10,
                stall: 2,
                idle: 3,
            },
        );
        m.span("autotune", "petri-net", "cache=miss", 1500);
        m.event(42, "vta", "finish retired");
        assert_eq!(m.len(), 3);
        assert_eq!(m.stages[0].cycles.total(), 15);
        assert!((m.stages[0].cycles.utilization() - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn folded_output_weights_by_cycles() {
        let mut m = MemorySink::new();
        m.stage(
            "jpeg",
            "idct",
            StageCycles {
                busy: 7,
                stall: 0,
                idle: 1,
            },
        );
        m.span("autotune", "cycle-accurate", "cache=hit", 99);
        let folded = m.to_folded();
        assert!(folded.contains("jpeg;idct;busy 7\n"));
        assert!(folded.contains("jpeg;idct;idle 1\n"));
        // Zero-count states are omitted.
        assert!(!folded.contains("stall"));
        assert!(folded.contains("autotune;cycle-accurate 99\n"));
    }

    #[test]
    fn json_escapes_and_renders() {
        let mut m = MemorySink::new();
        m.span("a", "b\"c", "line\nbreak", 5);
        let j = m.to_json();
        assert!(j.contains("b\\\"c"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"nanos\": 5"));
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn stage_cycles_utilization_handles_empty() {
        assert_eq!(StageCycles::default().utilization(), 0.0);
    }

    #[test]
    fn chrome_trace_renders_metadata_and_slices() {
        let mut ct = ChromeTrace::new();
        assert!(ct.is_empty());
        ct.process_name(3, "petri:demo");
        ct.thread_name(3, 1, "huffman");
        ct.slice(3, 1, 10, 9, "service", &[("seq", "4".to_string())]);
        ct.slice(
            3,
            1,
            19,
            0,
            "zero-width",
            &[("kind", ChromeTrace::json_str("queue"))],
        );
        ct.instant(3, 0, 42, "finish");
        assert_eq!(ct.len(), 5);
        let j = ct.to_json();
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\":\"M\""));
        assert!(j.contains("\"name\":\"process_name\""));
        assert!(j.contains("\"ts\":10,\"dur\":9,\"args\":{\"seq\":4}"));
        assert!(j.contains("\"args\":{\"kind\":\"queue\"}"));
        assert!(j.contains("\"ph\":\"i\""));
    }

    #[test]
    fn memory_sink_chrome_export_tiles_stage_states() {
        let mut m = MemorySink::new();
        m.stage(
            "jpeg",
            "idct",
            StageCycles {
                busy: 7,
                stall: 2,
                idle: 0,
            },
        );
        m.span("autotune", "petri-net", "cache=miss", 2_500);
        m.span("autotune", "petri-net", "cache=hit", 10);
        m.event(5, "vta", "finish retired");
        let mut ct = ChromeTrace::new();
        m.chrome_events(9, &mut ct);
        let j = ct.to_json();
        // Stage states tile from 0: busy [0,7), stall [7,9); idle omitted.
        assert!(j.contains("\"name\":\"jpeg.idct\""));
        assert!(j.contains("\"ts\":0,\"dur\":7"));
        assert!(j.contains("\"ts\":7,\"dur\":2"));
        assert!(!j.contains("\"name\":\"idle\""));
        // Spans lay end to end on one per-component track, with a
        // 1 µs floor keeping sub-microsecond spans visible.
        assert!(j.contains("\"name\":\"autotune.spans\""));
        assert!(j.contains("\"ts\":0,\"dur\":2"));
        assert!(j.contains("\"ts\":2,\"dur\":1"));
        // Point events become instants.
        assert!(j.contains("vta: finish retired"));
    }
}
