//! Interface-complexity metric.
//!
//! Table 1 of the paper reports interface complexity as the ratio of
//! lines of code in the Petri net to lines of code in the accelerator's
//! implementation (2.5% for the JPEG decoder, 2.6% for VTA). This module
//! measures lines of code on source text: non-blank lines that are not
//! pure comments, for either Rust-style (`//`) or script-style (`#`)
//! comment syntax.

/// Comment syntax to strip when counting lines of code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommentStyle {
    /// `//` line comments (Rust, Verilog).
    Slashes,
    /// `#` line comments (the `.pnet`/`.pi` text formats, Python).
    Hash,
}

/// Counts lines of code in `src`: non-blank lines whose first non-space
/// characters are not a comment marker.
///
/// # Examples
///
/// ```
/// use perf_core::complexity::{loc, CommentStyle};
///
/// let src = "# a comment\n\nplace q cap=4\ntrans t delay=1  # trailing ok\n";
/// assert_eq!(loc(src, CommentStyle::Hash), 2);
/// ```
pub fn loc(src: &str, style: CommentStyle) -> usize {
    src.lines()
        .map(str::trim_start)
        .filter(|l| !l.is_empty())
        .filter(|l| match style {
            CommentStyle::Slashes => !l.starts_with("//"),
            CommentStyle::Hash => !l.starts_with('#'),
        })
        .count()
}

/// The complexity of an interface relative to the implementation it
/// summarizes: `loc(interface) / loc(implementation)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Complexity {
    /// Lines of code in the interface artifact.
    pub interface_loc: usize,
    /// Lines of code in the implementation.
    pub implementation_loc: usize,
}

impl Complexity {
    /// Measures complexity from two source texts.
    pub fn measure(
        interface_src: &str,
        interface_style: CommentStyle,
        implementation_src: &str,
        implementation_style: CommentStyle,
    ) -> Complexity {
        Complexity {
            interface_loc: loc(interface_src, interface_style),
            implementation_loc: loc(implementation_src, implementation_style),
        }
    }

    /// The ratio reported in Table 1; 0 when the implementation is
    /// empty.
    pub fn ratio(&self) -> f64 {
        if self.implementation_loc == 0 {
            0.0
        } else {
            self.interface_loc as f64 / self.implementation_loc as f64
        }
    }

    /// Renders as the paper's percentage form (e.g. `"2.5%"`).
    pub fn paper_style(&self) -> String {
        format!("{:.1}%", self.ratio() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_skips_blanks_and_comments() {
        let rust = "// header\n\nfn f() {}\n   // indented comment\nlet x = 1; // trailing\n";
        assert_eq!(loc(rust, CommentStyle::Slashes), 2);
        let script = "# h\nplace p\n\n# c\ntrans t\n";
        assert_eq!(loc(script, CommentStyle::Hash), 2);
    }

    #[test]
    fn loc_empty() {
        assert_eq!(loc("", CommentStyle::Hash), 0);
        assert_eq!(loc("\n\n  \n", CommentStyle::Slashes), 0);
    }

    #[test]
    fn ratio_and_paper_style() {
        let c = Complexity {
            interface_loc: 25,
            implementation_loc: 1000,
        };
        assert!((c.ratio() - 0.025).abs() < 1e-12);
        assert_eq!(c.paper_style(), "2.5%");
        let z = Complexity {
            interface_loc: 5,
            implementation_loc: 0,
        };
        assert_eq!(z.ratio(), 0.0);
    }

    #[test]
    fn measure_from_sources() {
        let c = Complexity::measure(
            "a\nb\n",
            CommentStyle::Hash,
            "x\ny\nz\nw\n",
            CommentStyle::Slashes,
        );
        assert_eq!(c.interface_loc, 2);
        assert_eq!(c.implementation_loc, 4);
        assert_eq!(c.ratio(), 0.5);
    }
}
