//! Property tests for the core statistics and claim machinery.

use perf_core::nl::{Claim, Direction, Quantity};
use perf_core::stats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Percentiles stay within the sample range and are monotone in p.
    #[test]
    fn percentile_bounds(
        xs in prop::collection::vec(-1e6f64..1e6, 1..50),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let v1 = stats::percentile(&xs, p1);
        prop_assert!(v1 >= lo - 1e-9 && v1 <= hi + 1e-9);
        let (a, b) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(stats::percentile(&xs, a) <= stats::percentile(&xs, b) + 1e-9);
    }

    /// Correlations live in [-1, 1]; a series correlates perfectly with
    /// itself.
    #[test]
    fn correlation_range(xs in prop::collection::vec(-1e3f64..1e3, 2..40)) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = stats::pearson(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        let s = stats::spearman(&xs, &ys);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        // Distinct values => strictly monotone map => rho = 1.
        let mut distinct = xs.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        distinct.dedup();
        if distinct.len() == xs.len() {
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    /// The linear fit reproduces exact lines.
    #[test]
    fn linear_fit_exact(
        a in -100.0f64..100.0,
        b in -100.0f64..100.0,
        xs in prop::collection::vec(-1e3f64..1e3, 2..30),
    ) {
        let mut dedup = xs.clone();
        dedup.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        dedup.dedup();
        prop_assume!(dedup.len() >= 2);
        let ys: Vec<f64> = dedup.iter().map(|x| a + b * x).collect();
        let (fa, fb) = stats::linear_fit(&dedup, &ys);
        prop_assert!((fa - a).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!((fb - b).abs() < 1e-6 * (1.0 + b.abs()));
    }

    /// A monotone-increasing claim accepts every sorted increasing
    /// series and rejects any series with a strict decrease.
    #[test]
    fn monotone_claim_consistent(
        mut ys in prop::collection::vec(0.0f64..1e6, 2..30),
    ) {
        let claim = Claim::Monotone {
            metric: Quantity::Latency,
            axis: "x".into(),
            direction: Direction::Increasing,
        };
        ys.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let samples: Vec<(f64, f64)> = ys
            .iter()
            .enumerate()
            .map(|(i, &y)| (i as f64, y))
            .collect();
        prop_assert!(claim.check(&samples).expect("checkable").holds);
        // Introduce a violation.
        let mut bad = samples.clone();
        let last = bad.len() - 1;
        bad[last].1 = -1.0;
        if bad.len() >= 2 && bad[last - 1].1 > -1.0 {
            prop_assert!(!claim.check(&bad).expect("checkable").holds);
        }
    }

    /// Proportionality accepts exact proportional data for any k > 0.
    #[test]
    fn proportional_claim_accepts_exact(
        k in 0.001f64..1e4,
        xs in prop::collection::vec(0.1f64..1e4, 2..20),
    ) {
        let mut dedup = xs.clone();
        dedup.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        dedup.dedup();
        prop_assume!(dedup.len() >= 2);
        let claim = Claim::Proportional {
            metric: Quantity::Latency,
            axis: "x".into(),
            tolerance: 1e-6,
        };
        let samples: Vec<(f64, f64)> = dedup.iter().map(|&x| (x, k * x)).collect();
        prop_assert!(claim.check(&samples).expect("checkable").holds);
    }
}
