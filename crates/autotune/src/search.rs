//! Schedule-space search: random sampling and simulated annealing.

use crate::cost::CostBackend;
use crate::schedule::Schedule;
use crate::workload::GemmWorkload;
use perf_core::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The best schedule found.
    pub best: Schedule,
    /// The backend's cost estimate for it.
    pub best_cost: f64,
    /// Every `(schedule, cost)` the tuner evaluated, in order.
    pub history: Vec<(Schedule, f64)>,
    /// Wall-clock time the backend spent profiling.
    pub profiling_time: Duration,
}

/// The tuner: a search strategy over the valid-schedule space.
pub struct Tuner {
    rng: StdRng,
    /// Candidate pool (all valid schedules).
    pub space: Vec<Schedule>,
    workload: GemmWorkload,
}

impl Tuner {
    /// Creates a tuner for a workload.
    ///
    /// # Errors
    ///
    /// Fails if the workload admits no valid schedule.
    pub fn new(workload: GemmWorkload, seed: u64) -> Result<Tuner, CoreError> {
        let space = Schedule::enumerate(&workload);
        if space.is_empty() {
            return Err(CoreError::InvalidObservation(
                "workload has no valid schedules".into(),
            ));
        }
        Ok(Tuner {
            rng: StdRng::seed_from_u64(seed),
            space,
            workload,
        })
    }

    /// The tuned workload.
    pub fn workload(&self) -> &GemmWorkload {
        &self.workload
    }

    fn eval(
        &self,
        backend: &mut dyn CostBackend,
        s: Schedule,
        history: &mut Vec<(Schedule, f64)>,
    ) -> Result<f64, CoreError> {
        let c = backend.cost(&s.lower(&self.workload))?;
        history.push((s, c));
        Ok(c)
    }

    /// Random search: evaluates `budget` uniformly sampled schedules.
    pub fn random_search(
        &mut self,
        backend: &mut dyn CostBackend,
        budget: usize,
    ) -> Result<SearchResult, CoreError> {
        let t0 = backend.time_spent();
        let mut history = Vec::new();
        let mut best: Option<(Schedule, f64)> = None;
        for _ in 0..budget {
            let s = self.space[self.rng.gen_range(0..self.space.len())];
            let c = self.eval(backend, s, &mut history)?;
            if best.map_or(true, |(_, bc)| c < bc) {
                best = Some((s, c));
            }
        }
        let (best, best_cost) = best.expect("budget >= 1");
        Ok(SearchResult {
            best,
            best_cost,
            history,
            profiling_time: backend.time_spent() - t0,
        })
    }

    /// Simulated annealing: walks the schedule space by perturbing one
    /// tiling knob at a time.
    pub fn anneal(
        &mut self,
        backend: &mut dyn CostBackend,
        iters: usize,
    ) -> Result<SearchResult, CoreError> {
        let t0 = backend.time_spent();
        let mut history = Vec::new();
        let mut cur = self.space[self.rng.gen_range(0..self.space.len())];
        let mut cur_cost = self.eval(backend, cur, &mut history)?;
        let mut best = cur;
        let mut best_cost = cur_cost;
        for i in 0..iters {
            let temp = 0.3 * (1.0 - i as f64 / iters.max(1) as f64) + 0.01;
            let cand = self.neighbor(cur);
            let c = self.eval(backend, cand, &mut history)?;
            let accept = c < cur_cost || {
                let p = ((cur_cost - c) / (cur_cost * temp)).exp();
                self.rng.gen_bool(p.clamp(0.0, 1.0))
            };
            if accept {
                cur = cand;
                cur_cost = c;
            }
            if c < best_cost {
                best = cand;
                best_cost = c;
            }
        }
        Ok(SearchResult {
            best,
            best_cost,
            history,
            profiling_time: backend.time_spent() - t0,
        })
    }

    /// A random valid neighbor of `s` differing in one knob (falls back
    /// to a random point when `s` is isolated).
    fn neighbor(&mut self, s: Schedule) -> Schedule {
        let candidates: Vec<Schedule> = self
            .space
            .iter()
            .copied()
            .filter(|c| {
                let diffs = [c.tm != s.tm, c.tn != s.tn, c.tk != s.tk];
                diffs.iter().filter(|&&d| d).count() == 1
            })
            .collect();
        if candidates.is_empty() {
            self.space[self.rng.gen_range(0..self.space.len())]
        } else {
            candidates[self.rng.gen_range(0..candidates.len())]
        }
    }

    /// Evaluates every schedule (used to compute rank correlations
    /// between backends in experiment E10).
    pub fn exhaustive(
        &mut self,
        backend: &mut dyn CostBackend,
    ) -> Result<Vec<(Schedule, f64)>, CoreError> {
        let mut out = Vec::new();
        for &s in &self.space {
            let c = backend.cost(&s.lower(&self.workload))?;
            out.push((s, c));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CycleCost, PetriCost};
    use perf_core::stats::spearman;

    fn workload() -> GemmWorkload {
        GemmWorkload::new(128, 128, 128)
    }

    #[test]
    fn random_search_finds_a_decent_schedule() {
        let mut tuner = Tuner::new(workload(), 1).unwrap();
        let mut backend = PetriCost::new().unwrap();
        let res = tuner.random_search(&mut backend, 12).unwrap();
        assert_eq!(res.history.len(), 12);
        assert!(res.best_cost > 0.0);
        // The best must be no worse than the median of the history.
        let mut costs: Vec<f64> = res.history.iter().map(|(_, c)| *c).collect();
        costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(res.best_cost <= costs[costs.len() / 2]);
    }

    #[test]
    fn annealing_improves_over_its_start() {
        let mut tuner = Tuner::new(workload(), 2).unwrap();
        let mut backend = PetriCost::new().unwrap();
        let res = tuner.anneal(&mut backend, 20).unwrap();
        let first = res.history.first().unwrap().1;
        assert!(res.best_cost <= first);
    }

    #[test]
    fn petri_ranks_schedules_like_the_cycle_sim() {
        // E10 in miniature: rank correlation between the two oracles
        // over a subsample of the space.
        let mut tuner = Tuner::new(workload(), 3).unwrap();
        tuner.space.truncate(10);
        let mut cyc = CycleCost::new();
        let mut pet = PetriCost::new().unwrap();
        let xs: Vec<f64> = tuner
            .exhaustive(&mut cyc)
            .unwrap()
            .iter()
            .map(|(_, c)| *c)
            .collect();
        let ys: Vec<f64> = tuner
            .exhaustive(&mut pet)
            .unwrap()
            .iter()
            .map(|(_, c)| *c)
            .collect();
        let rho = spearman(&xs, &ys);
        assert!(rho > 0.9, "rank correlation {rho:.3}");
    }

    #[test]
    fn empty_space_rejected() {
        // A workload too large for any tile to fit cannot happen with
        // tm=tn=tk=1 unless blocks exceed scratchpads; craft one.
        let w = GemmWorkload::new(16 * 5000, 16, 16);
        // 5000 M-blocks: tm=1 still fits; so instead check constructor
        // success and that the space is nonempty.
        let t = Tuner::new(w, 1).unwrap();
        assert!(!t.space.is_empty());
    }
}
