//! Schedule-space search: random sampling and simulated annealing.

use crate::cost::CostBackend;
use crate::schedule::Schedule;
use crate::workload::GemmWorkload;
use perf_core::CoreError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The best schedule found.
    pub best: Schedule,
    /// The backend's cost estimate for it.
    pub best_cost: f64,
    /// Every `(schedule, cost)` the tuner evaluated, in order.
    pub history: Vec<(Schedule, f64)>,
    /// Wall-clock time the backend spent profiling.
    pub profiling_time: Duration,
}

/// The tuner: a search strategy over the valid-schedule space.
pub struct Tuner {
    rng: StdRng,
    /// Candidate pool (all valid schedules).
    pub space: Vec<Schedule>,
    /// One-knob neighbors per space index (ascending space order),
    /// precomputed once so annealing does not rescan the space per
    /// step. Kept consistent with `space` at construction; truncating
    /// `space` afterwards (tests do) only orphans table entries.
    neighbors: Vec<Vec<usize>>,
    workload: GemmWorkload,
}

impl Tuner {
    /// Creates a tuner for a workload.
    ///
    /// # Errors
    ///
    /// Fails if the workload admits no valid schedule.
    pub fn new(workload: GemmWorkload, seed: u64) -> Result<Tuner, CoreError> {
        let space = Schedule::enumerate(&workload);
        if space.is_empty() {
            return Err(CoreError::InvalidObservation(
                "workload has no valid schedules".into(),
            ));
        }
        let neighbors = one_knob_neighbors(&space);
        Ok(Tuner {
            rng: StdRng::seed_from_u64(seed),
            space,
            neighbors,
            workload,
        })
    }

    /// The tuned workload.
    pub fn workload(&self) -> &GemmWorkload {
        &self.workload
    }

    fn eval(
        &self,
        backend: &mut dyn CostBackend,
        s: Schedule,
        history: &mut Vec<(Schedule, f64)>,
    ) -> Result<f64, CoreError> {
        let c = backend.cost(&s.lower(&self.workload))?;
        history.push((s, c));
        Ok(c)
    }

    /// Random search: evaluates `budget` uniformly sampled schedules.
    pub fn random_search(
        &mut self,
        backend: &mut dyn CostBackend,
        budget: usize,
    ) -> Result<SearchResult, CoreError> {
        let t0 = backend.time_spent();
        let mut history = Vec::new();
        let mut best: Option<(Schedule, f64)> = None;
        for _ in 0..budget {
            let s = self.space[self.rng.gen_range(0..self.space.len())];
            let c = self.eval(backend, s, &mut history)?;
            if best.is_none_or(|(_, bc)| c < bc) {
                best = Some((s, c));
            }
        }
        let (best, best_cost) = best.expect("budget >= 1");
        Ok(SearchResult {
            best,
            best_cost,
            history,
            profiling_time: backend.time_spent() - t0,
        })
    }

    /// Simulated annealing: walks the schedule space by perturbing one
    /// tiling knob at a time.
    pub fn anneal(
        &mut self,
        backend: &mut dyn CostBackend,
        iters: usize,
    ) -> Result<SearchResult, CoreError> {
        let t0 = backend.time_spent();
        let mut history = Vec::new();
        let mut cur_idx = self.rng.gen_range(0..self.space.len());
        let mut cur_cost = self.eval(backend, self.space[cur_idx], &mut history)?;
        let mut best = self.space[cur_idx];
        let mut best_cost = cur_cost;
        for i in 0..iters {
            let temp = 0.3 * (1.0 - i as f64 / iters.max(1) as f64) + 0.01;
            let cand_idx = self.neighbor(cur_idx);
            let cand = self.space[cand_idx];
            let c = self.eval(backend, cand, &mut history)?;
            let accept = c < cur_cost || {
                let p = ((cur_cost - c) / (cur_cost * temp)).exp();
                self.rng.gen_bool(p.clamp(0.0, 1.0))
            };
            if accept {
                cur_idx = cand_idx;
                cur_cost = c;
            }
            if c < best_cost {
                best = cand;
                best_cost = c;
            }
        }
        Ok(SearchResult {
            best,
            best_cost,
            history,
            profiling_time: backend.time_spent() - t0,
        })
    }

    /// A random one-knob neighbor of the schedule at `idx`, from the
    /// precomputed table (falls back to a random point when isolated).
    /// The table lists neighbors in space order, so the RNG draw
    /// sequence is identical to filtering the space on every step.
    fn neighbor(&mut self, idx: usize) -> usize {
        let nbrs = self
            .neighbors
            .get(idx)
            .map(Vec::as_slice)
            .unwrap_or_default();
        if nbrs.is_empty() {
            self.rng.gen_range(0..self.space.len())
        } else {
            nbrs[self.rng.gen_range(0..nbrs.len())]
        }
    }

    /// Evaluates every schedule (used to compute rank correlations
    /// between backends in experiment E10).
    pub fn exhaustive(
        &mut self,
        backend: &mut dyn CostBackend,
    ) -> Result<Vec<(Schedule, f64)>, CoreError> {
        let mut out = Vec::new();
        for &s in &self.space {
            let c = backend.cost(&s.lower(&self.workload))?;
            out.push((s, c));
        }
        Ok(out)
    }

    /// [`Tuner::exhaustive`] fanned out across `threads` worker
    /// threads (0 = one per available core). `factory` builds one
    /// private backend per worker — backends need not be `Send`, they
    /// are constructed and used entirely inside their thread. Results
    /// come back in space order, identical to the sequential path.
    pub fn exhaustive_parallel<B, F>(
        &self,
        factory: F,
        threads: usize,
    ) -> Result<Vec<(Schedule, f64)>, CoreError>
    where
        B: CostBackend,
        F: Fn() -> Result<B, CoreError> + Sync,
    {
        let results = eval_chunked(&self.space, &self.workload, &factory, threads)?;
        Ok(results)
    }

    /// [`Tuner::random_search`] with parallel evaluation. The sample
    /// is drawn up front with the tuner's RNG — the same draw sequence
    /// as the sequential path, so for a given seed both visit the same
    /// schedules and return the same best.
    pub fn random_search_parallel<B, F>(
        &mut self,
        factory: F,
        budget: usize,
        threads: usize,
    ) -> Result<SearchResult, CoreError>
    where
        B: CostBackend,
        F: Fn() -> Result<B, CoreError> + Sync,
    {
        let sample: Vec<Schedule> = (0..budget)
            .map(|_| self.space[self.rng.gen_range(0..self.space.len())])
            .collect();
        let t0 = std::time::Instant::now();
        let history = eval_chunked(&sample, &self.workload, &factory, threads)?;
        let (best, best_cost) = history
            .iter()
            .copied()
            // Strict `<` keeps the earliest minimum, matching the
            // sequential scan.
            .reduce(|acc, cur| if cur.1 < acc.1 { cur } else { acc })
            .ok_or_else(|| {
                CoreError::InvalidObservation("random search needs budget >= 1".into())
            })?;
        Ok(SearchResult {
            best,
            best_cost,
            history,
            // Per-worker backend clocks overlap; wall-clock of the
            // whole fan-out is the meaningful figure here.
            profiling_time: t0.elapsed(),
        })
    }
}

/// One-knob-differs adjacency over `space`, each row in ascending
/// space order.
fn one_knob_neighbors(space: &[Schedule]) -> Vec<Vec<usize>> {
    space
        .iter()
        .map(|s| {
            space
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    let diffs = [c.tm != s.tm, c.tn != s.tn, c.tk != s.tk];
                    diffs.iter().filter(|&&d| d).count() == 1
                })
                .map(|(j, _)| j)
                .collect()
        })
        .collect()
}

/// Evaluates `schedules` across worker threads (chunked, order
/// preserving), each worker on a backend built by `factory`.
fn eval_chunked<B, F>(
    schedules: &[Schedule],
    workload: &GemmWorkload,
    factory: &F,
    threads: usize,
) -> Result<Vec<(Schedule, f64)>, CoreError>
where
    B: CostBackend,
    F: Fn() -> Result<B, CoreError> + Sync,
{
    if schedules.is_empty() {
        return Ok(Vec::new());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(schedules.len());
    let chunk = schedules.len().div_ceil(threads);
    let per_chunk: Vec<Result<Vec<(Schedule, f64)>, CoreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .chunks(chunk)
            .map(|ch| {
                scope.spawn(move || -> Result<Vec<(Schedule, f64)>, CoreError> {
                    let mut backend = factory()?;
                    ch.iter()
                        .map(|&s| backend.cost(&s.lower(workload)).map(|c| (s, c)))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cost worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(schedules.len());
    for r in per_chunk {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CycleCost, PetriCost};
    use perf_core::stats::spearman;

    fn workload() -> GemmWorkload {
        GemmWorkload::new(128, 128, 128)
    }

    #[test]
    fn random_search_finds_a_decent_schedule() {
        let mut tuner = Tuner::new(workload(), 1).unwrap();
        let mut backend = PetriCost::new().unwrap();
        let res = tuner.random_search(&mut backend, 12).unwrap();
        assert_eq!(res.history.len(), 12);
        assert!(res.best_cost > 0.0);
        // The best must be no worse than the median of the history.
        let mut costs: Vec<f64> = res.history.iter().map(|(_, c)| *c).collect();
        costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(res.best_cost <= costs[costs.len() / 2]);
    }

    #[test]
    fn annealing_improves_over_its_start() {
        let mut tuner = Tuner::new(workload(), 2).unwrap();
        let mut backend = PetriCost::new().unwrap();
        let res = tuner.anneal(&mut backend, 20).unwrap();
        let first = res.history.first().unwrap().1;
        assert!(res.best_cost <= first);
    }

    #[test]
    fn petri_ranks_schedules_like_the_cycle_sim() {
        // E10 in miniature: rank correlation between the two oracles
        // over a subsample of the space.
        let mut tuner = Tuner::new(workload(), 3).unwrap();
        tuner.space.truncate(10);
        let mut cyc = CycleCost::new();
        let mut pet = PetriCost::new().unwrap();
        let xs: Vec<f64> = tuner
            .exhaustive(&mut cyc)
            .unwrap()
            .iter()
            .map(|(_, c)| *c)
            .collect();
        let ys: Vec<f64> = tuner
            .exhaustive(&mut pet)
            .unwrap()
            .iter()
            .map(|(_, c)| *c)
            .collect();
        let rho = spearman(&xs, &ys);
        assert!(rho > 0.9, "rank correlation {rho:.3}");
    }

    /// Deterministic, instant cost oracle for sequence-equality tests:
    /// any fixed pure function of the program works.
    #[derive(Default)]
    struct StubCost {
        evals: u64,
    }

    impl CostBackend for StubCost {
        fn name(&self) -> &'static str {
            "stub"
        }

        fn cost(&mut self, prog: &accel_vta::isa::Program) -> Result<f64, CoreError> {
            self.evals += 1;
            Ok((prog.fingerprint() % 1009) as f64 + 1.0)
        }

        fn time_spent(&self) -> Duration {
            Duration::ZERO
        }

        fn evaluations(&self) -> u64 {
            self.evals
        }
    }

    /// The pre-refactor annealer: neighbors found by filtering the
    /// whole space on every step. The RNG draw sequence must match
    /// the table-driven [`Tuner::anneal`] exactly.
    fn anneal_per_step_filter(
        space: &[Schedule],
        w: &GemmWorkload,
        seed: u64,
        iters: usize,
        backend: &mut dyn CostBackend,
    ) -> Vec<(Schedule, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut history = Vec::new();
        let eval =
            |backend: &mut dyn CostBackend, s: Schedule, history: &mut Vec<(Schedule, f64)>| {
                let c = backend.cost(&s.lower(w)).unwrap();
                history.push((s, c));
                c
            };
        let mut cur = space[rng.gen_range(0..space.len())];
        let mut cur_cost = eval(backend, cur, &mut history);
        for i in 0..iters {
            let temp = 0.3 * (1.0 - i as f64 / iters.max(1) as f64) + 0.01;
            let candidates: Vec<Schedule> = space
                .iter()
                .copied()
                .filter(|c| {
                    let diffs = [c.tm != cur.tm, c.tn != cur.tn, c.tk != cur.tk];
                    diffs.iter().filter(|&&d| d).count() == 1
                })
                .collect();
            let cand = if candidates.is_empty() {
                space[rng.gen_range(0..space.len())]
            } else {
                candidates[rng.gen_range(0..candidates.len())]
            };
            let c = eval(backend, cand, &mut history);
            let accept = c < cur_cost || {
                let p = ((cur_cost - c) / (cur_cost * temp)).exp();
                rng.gen_bool(p.clamp(0.0, 1.0))
            };
            if accept {
                cur = cand;
                cur_cost = c;
            }
        }
        history
    }

    #[test]
    fn anneal_with_neighbor_table_matches_per_step_filter() {
        let (seed, iters) = (11, 40);
        let mut tuner = Tuner::new(workload(), seed).unwrap();
        let mut backend = StubCost::default();
        let res = tuner.anneal(&mut backend, iters).unwrap();
        let space = Schedule::enumerate(&workload());
        let mut ref_backend = StubCost::default();
        let ref_history =
            anneal_per_step_filter(&space, &workload(), seed, iters, &mut ref_backend);
        assert_eq!(res.history.len(), ref_history.len());
        for (got, want) in res.history.iter().zip(&ref_history) {
            assert_eq!(got.0, want.0);
            assert_eq!(got.1.to_bits(), want.1.to_bits());
        }
    }

    #[test]
    fn neighbor_table_rows_are_one_knob_and_sorted() {
        let tuner = Tuner::new(workload(), 5).unwrap();
        assert_eq!(tuner.neighbors.len(), tuner.space.len());
        for (i, row) in tuner.neighbors.iter().enumerate() {
            let s = tuner.space[i];
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row {i} not sorted");
            for &j in row {
                let c = tuner.space[j];
                let diffs = [c.tm != s.tm, c.tn != s.tn, c.tk != s.tk];
                assert_eq!(diffs.iter().filter(|&&d| d).count(), 1);
            }
        }
    }

    #[test]
    fn exhaustive_parallel_matches_sequential() {
        let mut tuner = Tuner::new(workload(), 6).unwrap();
        let mut backend = StubCost::default();
        let seq = tuner.exhaustive(&mut backend).unwrap();
        for threads in [1, 3, 0] {
            let par = tuner
                .exhaustive_parallel(|| Ok(StubCost::default()), threads)
                .unwrap();
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    #[test]
    fn random_search_parallel_matches_sequential_for_same_seed() {
        let (seed, budget) = (9, 24);
        let mut seq_tuner = Tuner::new(workload(), seed).unwrap();
        let mut backend = StubCost::default();
        let seq = seq_tuner.random_search(&mut backend, budget).unwrap();
        let mut par_tuner = Tuner::new(workload(), seed).unwrap();
        let par = par_tuner
            .random_search_parallel(|| Ok(StubCost::default()), budget, 4)
            .unwrap();
        assert_eq!(seq.best, par.best);
        assert_eq!(seq.best_cost.to_bits(), par.best_cost.to_bits());
        assert_eq!(seq.history.len(), par.history.len());
        for (a, b) in seq.history.iter().zip(&par.history) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn cached_backend_skips_revisits_during_anneal() {
        let mut tuner = Tuner::new(workload(), 12).unwrap();
        let mut cached = crate::cost::CachedCost::new(StubCost::default());
        let res = tuner.anneal(&mut cached, 60).unwrap();
        let queries = res.history.len() as u64;
        assert_eq!(cached.hits() + cached.misses(), queries);
        // An annealing walk over a small space revisits schedules, so
        // the cache must absorb some queries, and `evaluations` must
        // report only real inner work.
        assert!(cached.hits() > 0, "walk of {queries} never revisited");
        assert_eq!(cached.evaluations(), cached.misses());
        assert!(cached.evaluations() < queries);
    }

    #[test]
    fn empty_space_rejected() {
        // A workload too large for any tile to fit cannot happen with
        // tm=tn=tk=1 unless blocks exceed scratchpads; craft one.
        let w = GemmWorkload::new(16 * 5000, 16, 16);
        // 5000 M-blocks: tm=1 still fits; so instead check constructor
        // success and that the space is nonempty.
        let t = Tuner::new(w, 1).unwrap();
        assert!(!t.space.is_empty());
    }
}
