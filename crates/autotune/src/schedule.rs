//! Tiling schedules and their lowering to VTA programs.
//!
//! A schedule partitions the GEMM into `tm×tn×tk`-block macro-tiles
//! (TVM's tiling knobs). Lowering produces the same double-buffered
//! load/GEMM/store structure a TVM backend emits, so the cost of a
//! schedule reflects the real trade-offs: large tiles amortize DMA
//! setup but must fit the scratchpads; small tiles pipeline better but
//! pay more per-transfer overhead.

use crate::workload::GemmWorkload;
use accel_vta::func::{ACC_DEPTH, INP_DEPTH, WGT_DEPTH};
use accel_vta::isa::{DepFlags, Insn, MemBuffer, Opcode, Program};

/// A tiling schedule, in 16-element blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Macro-tile height (blocks of M).
    pub tm: usize,
    /// Macro-tile width (blocks of N).
    pub tn: usize,
    /// Macro-tile depth (blocks of K).
    pub tk: usize,
}

impl Schedule {
    /// Whether this schedule tiles `w` exactly and fits the
    /// scratchpads.
    pub fn is_valid(&self, w: &GemmWorkload) -> bool {
        let (mb, nb, kb) = w.blocks();
        if self.tm == 0 || self.tn == 0 || self.tk == 0 {
            return false;
        }
        if mb % self.tm != 0 || nb % self.tn != 0 || kb % self.tk != 0 {
            return false;
        }
        // Scratchpad budgets (double buffered: half capacity usable).
        let inp_vecs = self.tm * self.tk * 16;
        let wgt_blocks = self.tk * self.tn;
        let acc_vecs = self.tm * self.tn * 16;
        inp_vecs <= INP_DEPTH / 2 && wgt_blocks <= WGT_DEPTH / 2 && acc_vecs <= ACC_DEPTH / 2
    }

    /// Enumerates all valid schedules for a workload.
    pub fn enumerate(w: &GemmWorkload) -> Vec<Schedule> {
        let (mb, nb, kb) = w.blocks();
        let divisors =
            |x: usize| -> Vec<usize> { (1..=x).filter(|d| x.is_multiple_of(*d)).collect() };
        let mut out = Vec::new();
        for &tm in &divisors(mb) {
            for &tn in &divisors(nb) {
                for &tk in &divisors(kb) {
                    let s = Schedule { tm, tn, tk };
                    if s.is_valid(w) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// Lowers the schedule to a VTA program.
    pub fn lower(&self, w: &GemmWorkload) -> Program {
        let (mb, nb, kb) = w.blocks();
        let (mo, no, ko) = (mb / self.tm, nb / self.tn, kb / self.tk);
        let mut insns = Vec::new();
        // Micro-op table for one macro-tile: tm*tn destination rows.
        insns.push(Insn::plain(Opcode::Load {
            buffer: MemBuffer::Uop,
            sram_base: 0,
            dram_base: 0,
            count: (self.tm * self.tn).min(4096) as u16,
        }));
        let mut first_block = true;
        for i in 0..mo {
            for j in 0..no {
                for l in 0..ko {
                    let wait = !first_block;
                    // Load the A and B macro-tiles.
                    insns.push(Insn::plain(Opcode::Load {
                        buffer: MemBuffer::Inp,
                        sram_base: 0,
                        dram_base: ((i * ko + l) * 1024) as u32,
                        count: (self.tm * self.tk * 16) as u16,
                    }));
                    insns.push(Insn {
                        op: Opcode::Load {
                            buffer: MemBuffer::Wgt,
                            sram_base: 0,
                            dram_base: ((l * no + j) * 512) as u32,
                            count: (self.tk * self.tn) as u16,
                        },
                        flags: DepFlags {
                            pop_next: wait,
                            push_next: true,
                            ..DepFlags::NONE
                        },
                    });
                    // One GEMM per macro-tile: uops cover the tm*tn
                    // destination blocks, loops walk tk and the 16
                    // rows within a block.
                    insns.push(Insn {
                        op: Opcode::Gemm {
                            uop_begin: 0,
                            uop_end: (self.tm * self.tn).min(4096) as u16,
                            lp_out: self.tk as u16,
                            lp_in: 16,
                            dst_factor: (0, 1),
                            src_factor: (1, 1),
                            wgt_factor: (1, 0),
                            reset: false,
                        },
                        flags: DepFlags {
                            pop_prev: true,
                            pop_next: wait,
                            push_prev: true,
                            push_next: true,
                        },
                    });
                    // Store the C macro-tile after the last k slice.
                    insns.push(Insn {
                        op: Opcode::Store {
                            sram_base: 0,
                            dram_base: ((i * no + j) * 1024) as u32,
                            count: if l == ko - 1 {
                                (self.tm * self.tn * 16).min(65535) as u16
                            } else {
                                1 // Dependency bookkeeping only.
                            },
                        },
                        flags: DepFlags {
                            pop_prev: true,
                            push_prev: true,
                            ..DepFlags::NONE
                        },
                    });
                    first_block = false;
                }
            }
        }
        insns.push(Insn::plain(Opcode::Finish));
        Program { insns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> GemmWorkload {
        GemmWorkload::new(256, 256, 256) // 16x16x16 blocks.
    }

    #[test]
    fn enumeration_yields_valid_schedules_only() {
        let w = wl();
        let all = Schedule::enumerate(&w);
        assert!(!all.is_empty());
        for s in &all {
            assert!(s.is_valid(&w), "{s:?}");
        }
        // The oversized tile must be excluded (inp = 16*16*16 = 4096 >
        // INP_DEPTH/2).
        assert!(!all.contains(&Schedule {
            tm: 16,
            tn: 16,
            tk: 16
        }));
    }

    #[test]
    fn lowered_programs_are_dependency_correct() {
        let w = wl();
        for s in Schedule::enumerate(&w).into_iter().take(12) {
            let p = s.lower(&w);
            p.check_deps().unwrap_or_else(|e| panic!("{s:?}: {e}"));
            assert!(p.len() > 4);
        }
    }

    #[test]
    fn total_macs_independent_of_schedule() {
        let w = wl();
        let schedules = Schedule::enumerate(&w);
        let expect = {
            let (mb, nb, kb) = w.blocks();
            (mb * nb * kb * 16) as u64
        };
        for s in schedules.into_iter().take(8) {
            let p = s.lower(&w);
            assert_eq!(p.total_macs(), expect, "{s:?}");
        }
    }

    #[test]
    fn invalid_schedules_detected() {
        let w = wl();
        assert!(!Schedule {
            tm: 3,
            tn: 1,
            tk: 1
        }
        .is_valid(&w)); // Does not divide 16.
        assert!(!Schedule {
            tm: 0,
            tn: 1,
            tk: 1
        }
        .is_valid(&w));
    }
}
