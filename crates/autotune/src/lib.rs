//! A TVM-style autotuner for VTA with pluggable cost backends.
//!
//! §2 Example #3 of the paper: TVM auto-tunes tensor programs by
//! profiling many candidate schedules on the accelerator, and that
//! profiling step — cycle-accurate simulation or on-device runs — is
//! the bottleneck. §3 shows that swapping the profiler for the Petri-
//! net performance IR speeds profiling up by 2.1–1312× while preserving
//! tuning quality.
//!
//! This crate reproduces that loop end to end:
//!
//! * [`workload`] — GEMM and conv2d tuning problems,
//! * [`schedule`] — tiling schedules and their lowering to VTA
//!   programs (the schedule space TVM would search),
//! * [`cost`] — pluggable cost backends: the cycle-accurate simulator,
//!   the Petri-net IR, and the coarse program interface,
//! * [`search`] — random search and simulated annealing over the
//!   schedule space, with profiling-cost accounting.

pub mod cost;
pub mod schedule;
pub mod search;
pub mod workload;

pub use cost::{CachedCost, CostBackend, CycleCost, PetriCost, ProgramCost, TracedCost};
pub use schedule::Schedule;
pub use search::{SearchResult, Tuner};
pub use workload::GemmWorkload;
