//! Tuning problems: GEMM and convolution workloads.

/// A dense matrix-multiply workload `C[m×n] = A[m×k] × B[k×n]`, with
/// dimensions in elements (multiples of the 16-element VTA block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmWorkload {
    /// Rows of A/C.
    pub m: usize,
    /// Columns of B/C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmWorkload {
    /// Creates a workload; dimensions are rounded up to multiples of
    /// 16.
    pub fn new(m: usize, n: usize, k: usize) -> GemmWorkload {
        let r = |x: usize| x.div_ceil(16) * 16;
        GemmWorkload {
            m: r(m.max(16)),
            n: r(n.max(16)),
            k: r(k.max(16)),
        }
    }

    /// Dimensions in 16-element blocks `(M, N, K)`.
    pub fn blocks(&self) -> (usize, usize, usize) {
        (self.m / 16, self.n / 16, self.k / 16)
    }

    /// Total scalar multiply-accumulates.
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// A 2-D convolution workload, lowered to GEMM via im2col (how VTA
/// executes convolutions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dWorkload {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel size (square).
    pub kernel: usize,
}

impl Conv2dWorkload {
    /// The equivalent GEMM after im2col: `m = h·w` output positions,
    /// `k = c_in·kernel²` patch elements, `n = c_out` filters.
    pub fn to_gemm(&self) -> GemmWorkload {
        GemmWorkload::new(
            self.h * self.w,
            self.c_out,
            self.c_in * self.kernel * self.kernel,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_rounded_to_blocks() {
        let g = GemmWorkload::new(100, 30, 17);
        assert_eq!((g.m, g.n, g.k), (112, 32, 32));
        assert_eq!(g.blocks(), (7, 2, 2));
        assert_eq!(g.flops(), 2 * 112 * 32 * 32);
    }

    #[test]
    fn conv_lowering() {
        let c = Conv2dWorkload {
            h: 14,
            w: 14,
            c_in: 64,
            c_out: 128,
            kernel: 3,
        };
        let g = c.to_gemm();
        assert_eq!(g.m, 196_usize.div_ceil(16) * 16);
        assert_eq!(g.n, 128);
        assert_eq!(g.k, 576);
    }
}

#[cfg(test)]
mod conv_tuning_tests {
    use super::*;
    use crate::cost::{CostBackend, PetriCost};
    use crate::search::Tuner;

    #[test]
    fn conv2d_tunes_end_to_end() {
        // A ResNet-style layer lowered via im2col and tuned with the
        // Petri-net oracle.
        let conv = Conv2dWorkload {
            h: 14,
            w: 14,
            c_in: 64,
            c_out: 64,
            kernel: 3,
        };
        let gemm = conv.to_gemm();
        let mut tuner = Tuner::new(gemm, 7).expect("schedules exist");
        let mut backend = PetriCost::new().expect("net parses");
        let res = tuner.random_search(&mut backend, 10).expect("search runs");
        assert!(res.best_cost > 0.0);
        // The tuned schedule must beat the degenerate 1x1x1 tiling.
        let naive = crate::schedule::Schedule {
            tm: 1,
            tn: 1,
            tk: 1,
        };
        assert!(naive.is_valid(&gemm));
        let naive_cost = backend.cost(&naive.lower(&gemm)).expect("costs");
        assert!(
            res.best_cost < naive_cost,
            "tuned {:.0} should beat naive {naive_cost:.0}",
            res.best_cost
        );
    }
}
