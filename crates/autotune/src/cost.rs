//! Pluggable cost backends for the tuner.
//!
//! The tuner asks "how many cycles would this program take?" thousands
//! of times. The backend answering that question is what the paper's
//! Example #3 is about: a cycle-accurate simulator answers slowly; the
//! Petri-net IR answers the same question orders of magnitude faster.

use accel_vta::cycle::VtaCycleSim;
use accel_vta::interface::petri::VtaPetriInterface;
use accel_vta::interface::program::VtaProgramInterface;
use accel_vta::isa::Program;
use perf_core::iface::{Metric, PerfInterface};
use perf_core::{CoreError, GroundTruth};
use std::time::{Duration, Instant};

/// A cost oracle with profiling-time accounting.
pub trait CostBackend {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Estimated cycles for `prog`.
    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError>;

    /// Wall-clock time spent answering queries so far.
    fn time_spent(&self) -> Duration;

    /// Queries answered so far.
    fn evaluations(&self) -> u64;
}

/// Ground truth: the cycle-accurate (RTL-fidelity) simulator.
pub struct CycleCost {
    sim: VtaCycleSim,
    spent: Duration,
    evals: u64,
}

impl CycleCost {
    /// Creates the backend at timing-only fidelity (the timing model is
    /// identical; the per-cycle datapath evaluation only matters when
    /// measuring profiling cost).
    pub fn new() -> CycleCost {
        CycleCost {
            sim: VtaCycleSim::new_timing_only(accel_vta::VtaHwConfig::default()),
            spent: Duration::ZERO,
            evals: 0,
        }
    }

    /// Creates the backend at RTL fidelity (pays Verilator-class cost
    /// per simulated cycle; use when profiling time itself is the
    /// quantity under study, as in experiment E5).
    pub fn new_rtl() -> CycleCost {
        CycleCost {
            sim: VtaCycleSim::default(),
            spent: Duration::ZERO,
            evals: 0,
        }
    }
}

impl Default for CycleCost {
    fn default() -> CycleCost {
        CycleCost::new()
    }
}

impl CostBackend for CycleCost {
    fn name(&self) -> &'static str {
        "cycle-accurate"
    }

    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError> {
        let t0 = Instant::now();
        let obs = self.sim.measure(prog)?;
        self.spent += t0.elapsed();
        self.evals += 1;
        Ok(obs.latency.as_f64())
    }

    fn time_spent(&self) -> Duration {
        self.spent
    }

    fn evaluations(&self) -> u64 {
        self.evals
    }
}

/// The Petri-net performance IR.
pub struct PetriCost {
    iface: VtaPetriInterface,
    spent: Duration,
    evals: u64,
}

impl PetriCost {
    /// Creates the backend over the full-fidelity net.
    pub fn new() -> Result<PetriCost, CoreError> {
        Ok(PetriCost {
            iface: VtaPetriInterface::new_full()?,
            spent: Duration::ZERO,
            evals: 0,
        })
    }

    /// Creates the backend over the corner-cut net (E9).
    pub fn new_lite() -> Result<PetriCost, CoreError> {
        Ok(PetriCost {
            iface: VtaPetriInterface::new_lite()?,
            spent: Duration::ZERO,
            evals: 0,
        })
    }
}

impl CostBackend for PetriCost {
    fn name(&self) -> &'static str {
        "petri-net"
    }

    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError> {
        let t0 = Instant::now();
        let p = self.iface.predict(prog, Metric::Latency)?;
        self.spent += t0.elapsed();
        self.evals += 1;
        Ok(p.midpoint())
    }

    fn time_spent(&self) -> Duration {
        self.spent
    }

    fn evaluations(&self) -> u64 {
        self.evals
    }
}

/// The coarse program interface (fastest, least accurate).
pub struct ProgramCost {
    iface: VtaProgramInterface,
    spent: Duration,
    evals: u64,
}

impl ProgramCost {
    /// Creates the backend.
    pub fn new() -> Result<ProgramCost, CoreError> {
        Ok(ProgramCost {
            iface: VtaProgramInterface::new()?,
            spent: Duration::ZERO,
            evals: 0,
        })
    }
}

impl CostBackend for ProgramCost {
    fn name(&self) -> &'static str {
        "program-interface"
    }

    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError> {
        let t0 = Instant::now();
        let p = self.iface.predict(prog, Metric::Latency)?;
        self.spent += t0.elapsed();
        self.evals += 1;
        Ok(p.midpoint())
    }

    fn time_spent(&self) -> Duration {
        self.spent
    }

    fn evaluations(&self) -> u64 {
        self.evals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use crate::workload::GemmWorkload;

    #[test]
    fn backends_agree_on_ordering_of_extremes() {
        let w = GemmWorkload::new(128, 128, 128);
        let tiny = Schedule {
            tm: 1,
            tn: 1,
            tk: 1,
        }
        .lower(&w);
        let chunky = Schedule {
            tm: 4,
            tn: 4,
            tk: 2,
        }
        .lower(&w);
        let mut cyc = CycleCost::new();
        let mut pet = PetriCost::new().unwrap();
        // The tiny tiling pays DMA setup per block: it must be slower
        // under both oracles.
        let (ct, cc) = (cyc.cost(&tiny).unwrap(), cyc.cost(&chunky).unwrap());
        let (pt, pc) = (pet.cost(&tiny).unwrap(), pet.cost(&chunky).unwrap());
        assert!(ct > cc, "cycle: tiny {ct} chunky {cc}");
        assert!(pt > pc, "petri: tiny {pt} chunky {pc}");
        assert_eq!(cyc.evaluations(), 2);
        // At RTL fidelity the cycle oracle is far costlier than the net.
        let mut rtl = CycleCost::new_rtl();
        rtl.cost(&tiny).unwrap();
        rtl.cost(&chunky).unwrap();
        assert!(rtl.time_spent() > pet.time_spent());
    }
}
