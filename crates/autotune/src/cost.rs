//! Pluggable cost backends for the tuner.
//!
//! The tuner asks "how many cycles would this program take?" thousands
//! of times. The backend answering that question is what the paper's
//! Example #3 is about: a cycle-accurate simulator answers slowly; the
//! Petri-net IR answers the same question orders of magnitude faster.

use accel_vta::cycle::VtaCycleSim;
use accel_vta::interface::petri::VtaPetriInterface;
use accel_vta::interface::program::VtaProgramInterface;
use accel_vta::isa::Program;
use perf_core::iface::{Metric, PerfInterface};
use perf_core::trace::TraceSink;
use perf_core::{CoreError, GroundTruth};
use std::time::{Duration, Instant};

/// A cost oracle with profiling-time accounting.
pub trait CostBackend {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Estimated cycles for `prog`.
    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError>;

    /// Wall-clock time spent answering queries so far.
    fn time_spent(&self) -> Duration;

    /// Queries answered so far.
    fn evaluations(&self) -> u64;
}

/// Ground truth: the cycle-accurate (RTL-fidelity) simulator.
pub struct CycleCost {
    sim: VtaCycleSim,
    spent: Duration,
    evals: u64,
}

impl CycleCost {
    /// Creates the backend at timing-only fidelity (the timing model is
    /// identical; the per-cycle datapath evaluation only matters when
    /// measuring profiling cost).
    pub fn new() -> CycleCost {
        CycleCost {
            sim: VtaCycleSim::new_timing_only(accel_vta::VtaHwConfig::default()),
            spent: Duration::ZERO,
            evals: 0,
        }
    }

    /// Creates the backend at RTL fidelity (pays Verilator-class cost
    /// per simulated cycle; use when profiling time itself is the
    /// quantity under study, as in experiment E5).
    pub fn new_rtl() -> CycleCost {
        CycleCost {
            sim: VtaCycleSim::default(),
            spent: Duration::ZERO,
            evals: 0,
        }
    }
}

impl Default for CycleCost {
    fn default() -> CycleCost {
        CycleCost::new()
    }
}

impl CostBackend for CycleCost {
    fn name(&self) -> &'static str {
        "cycle-accurate"
    }

    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError> {
        let t0 = Instant::now();
        let obs = self.sim.measure(prog)?;
        self.spent += t0.elapsed();
        self.evals += 1;
        Ok(obs.latency.as_f64())
    }

    fn time_spent(&self) -> Duration {
        self.spent
    }

    fn evaluations(&self) -> u64 {
        self.evals
    }
}

/// The Petri-net performance IR.
pub struct PetriCost {
    iface: VtaPetriInterface,
    spent: Duration,
    evals: u64,
}

impl PetriCost {
    /// Creates the backend over the full-fidelity net.
    pub fn new() -> Result<PetriCost, CoreError> {
        Ok(PetriCost {
            iface: VtaPetriInterface::new_full()?,
            spent: Duration::ZERO,
            evals: 0,
        })
    }

    /// Creates the backend over the corner-cut net (E9).
    pub fn new_lite() -> Result<PetriCost, CoreError> {
        Ok(PetriCost {
            iface: VtaPetriInterface::new_lite()?,
            spent: Duration::ZERO,
            evals: 0,
        })
    }
}

impl CostBackend for PetriCost {
    fn name(&self) -> &'static str {
        "petri-net"
    }

    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError> {
        let t0 = Instant::now();
        let p = self.iface.predict(prog, Metric::Latency)?;
        self.spent += t0.elapsed();
        self.evals += 1;
        Ok(p.midpoint())
    }

    fn time_spent(&self) -> Duration {
        self.spent
    }

    fn evaluations(&self) -> u64 {
        self.evals
    }
}

/// The coarse program interface (fastest, least accurate).
pub struct ProgramCost {
    iface: VtaProgramInterface,
    spent: Duration,
    evals: u64,
}

impl ProgramCost {
    /// Creates the backend.
    pub fn new() -> Result<ProgramCost, CoreError> {
        Ok(ProgramCost {
            iface: VtaProgramInterface::new()?,
            spent: Duration::ZERO,
            evals: 0,
        })
    }
}

impl CostBackend for ProgramCost {
    fn name(&self) -> &'static str {
        "program-interface"
    }

    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError> {
        let t0 = Instant::now();
        let p = self.iface.predict(prog, Metric::Latency)?;
        self.spent += t0.elapsed();
        self.evals += 1;
        Ok(p.midpoint())
    }

    fn time_spent(&self) -> Duration {
        self.spent
    }

    fn evaluations(&self) -> u64 {
        self.evals
    }
}

/// A memoizing decorator over any backend: repeated queries for the
/// same program (by [`Program::fingerprint`]) are answered from a
/// cache instead of re-simulating.
///
/// Searches revisit schedules constantly — annealing walks back and
/// forth over neighbors, random search resamples — so wrapping an
/// expensive oracle here removes redundant simulation entirely.
/// [`CostBackend::evaluations`] reports only *misses* (real inner
/// evaluations); cache traffic is visible via [`CachedCost::hits`].
pub struct CachedCost<B> {
    inner: B,
    memo: std::collections::HashMap<u64, f64>,
    hits: u64,
}

impl<B: CostBackend> CachedCost<B> {
    /// Wraps `inner` with an empty cache.
    pub fn new(inner: B) -> CachedCost<B> {
        CachedCost {
            inner,
            memo: std::collections::HashMap::new(),
            hits: 0,
        }
    }

    /// Queries answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Queries that reached the inner backend.
    pub fn misses(&self) -> u64 {
        self.inner.evaluations()
    }

    /// Distinct programs cached.
    pub fn cached(&self) -> usize {
        self.memo.len()
    }

    /// Unwraps the inner backend.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: CostBackend> CostBackend for CachedCost<B> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError> {
        let key = prog.fingerprint();
        if let Some(&c) = self.memo.get(&key) {
            self.hits += 1;
            return Ok(c);
        }
        let c = self.inner.cost(prog)?;
        self.memo.insert(key, c);
        Ok(c)
    }

    fn time_spent(&self) -> Duration {
        self.inner.time_spent()
    }

    fn evaluations(&self) -> u64 {
        self.inner.evaluations()
    }
}

/// A tracing decorator over any backend: each `cost` query is logged
/// as a span — backend name, cache hit/miss and wall nanoseconds — so
/// a search's per-candidate evaluation profile lands in the same sink
/// as the simulators' per-stage cycle accounting.
///
/// Hit/miss is detected generically from the inner backend's
/// [`CostBackend::evaluations`] delta: [`CachedCost`] advances it only
/// on real inner work, so an unchanged count means the query was
/// answered from cache. Over an uncached backend every query is a
/// miss. With a [`perf_core::NullSink`] the whole span construction is
/// skipped (`is_enabled` gate), so tracing costs nothing when off.
pub struct TracedCost<B, S> {
    inner: B,
    sink: S,
}

impl<B: CostBackend, S: TraceSink> TracedCost<B, S> {
    /// Wraps `inner`, logging every query into `sink`.
    pub fn new(inner: B, sink: S) -> TracedCost<B, S> {
        TracedCost { inner, sink }
    }

    /// The sink collected so far.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Unwraps into the inner backend and the sink.
    pub fn into_parts(self) -> (B, S) {
        (self.inner, self.sink)
    }
}

impl<B: CostBackend, S: TraceSink> CostBackend for TracedCost<B, S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn cost(&mut self, prog: &Program) -> Result<f64, CoreError> {
        let before = self.inner.evaluations();
        let t0 = Instant::now();
        let c = self.inner.cost(prog)?;
        let nanos = t0.elapsed().as_nanos() as u64;
        if self.sink.is_enabled() {
            let verdict = if self.inner.evaluations() == before {
                "hit"
            } else {
                "miss"
            };
            self.sink.span(
                "autotune",
                self.inner.name(),
                &format!("cache={verdict} cost={c}"),
                nanos,
            );
        }
        Ok(c)
    }

    fn time_spent(&self) -> Duration {
        self.inner.time_spent()
    }

    fn evaluations(&self) -> u64 {
        self.inner.evaluations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use crate::workload::GemmWorkload;

    #[test]
    fn backends_agree_on_ordering_of_extremes() {
        let w = GemmWorkload::new(128, 128, 128);
        let tiny = Schedule {
            tm: 1,
            tn: 1,
            tk: 1,
        }
        .lower(&w);
        let chunky = Schedule {
            tm: 4,
            tn: 4,
            tk: 2,
        }
        .lower(&w);
        let mut cyc = CycleCost::new();
        let mut pet = PetriCost::new().unwrap();
        // The tiny tiling pays DMA setup per block: it must be slower
        // under both oracles.
        let (ct, cc) = (cyc.cost(&tiny).unwrap(), cyc.cost(&chunky).unwrap());
        let (pt, pc) = (pet.cost(&tiny).unwrap(), pet.cost(&chunky).unwrap());
        assert!(ct > cc, "cycle: tiny {ct} chunky {cc}");
        assert!(pt > pc, "petri: tiny {pt} chunky {pc}");
        assert_eq!(cyc.evaluations(), 2);
        // At RTL fidelity the cycle oracle is far costlier than the net.
        let mut rtl = CycleCost::new_rtl();
        rtl.cost(&tiny).unwrap();
        rtl.cost(&chunky).unwrap();
        assert!(rtl.time_spent() > pet.time_spent());
    }

    #[test]
    fn cached_cost_hits_return_identical_costs() {
        let w = GemmWorkload::new(128, 128, 128);
        let a = Schedule {
            tm: 1,
            tn: 1,
            tk: 1,
        }
        .lower(&w);
        let b = Schedule {
            tm: 4,
            tn: 4,
            tk: 2,
        }
        .lower(&w);
        let mut cached = CachedCost::new(PetriCost::new().unwrap());
        let ca1 = cached.cost(&a).unwrap();
        let cb1 = cached.cost(&b).unwrap();
        let ca2 = cached.cost(&a).unwrap();
        let cb2 = cached.cost(&b).unwrap();
        let ca3 = cached.cost(&a).unwrap();
        assert_eq!(ca1.to_bits(), ca2.to_bits());
        assert_eq!(ca1.to_bits(), ca3.to_bits());
        assert_eq!(cb1.to_bits(), cb2.to_bits());
        assert_ne!(ca1.to_bits(), cb1.to_bits());
    }

    #[test]
    fn cached_cost_counts_only_misses() {
        let w = GemmWorkload::new(128, 128, 128);
        let a = Schedule {
            tm: 1,
            tn: 1,
            tk: 1,
        }
        .lower(&w);
        let b = Schedule {
            tm: 2,
            tn: 2,
            tk: 2,
        }
        .lower(&w);
        let mut cached = CachedCost::new(PetriCost::new().unwrap());
        for _ in 0..3 {
            cached.cost(&a).unwrap();
            cached.cost(&b).unwrap();
        }
        // Six queries: two misses (first sight of each program), four
        // hits. `evaluations` reports real inner work only.
        assert_eq!(cached.evaluations(), 2);
        assert_eq!(cached.misses(), 2);
        assert_eq!(cached.hits(), 4);
        assert_eq!(cached.cached(), 2);
        assert_eq!(cached.into_inner().evaluations(), 2);
    }

    #[test]
    fn cached_cost_matches_uncached_backend() {
        let w = GemmWorkload::new(128, 128, 128);
        let mut plain = PetriCost::new().unwrap();
        let mut cached = CachedCost::new(PetriCost::new().unwrap());
        for s in [
            Schedule {
                tm: 1,
                tn: 1,
                tk: 1,
            },
            Schedule {
                tm: 4,
                tn: 4,
                tk: 2,
            },
            Schedule {
                tm: 1,
                tn: 1,
                tk: 1,
            },
        ] {
            let p = s.lower(&w);
            assert_eq!(
                plain.cost(&p).unwrap().to_bits(),
                cached.cost(&p).unwrap().to_bits()
            );
        }
    }

    #[test]
    fn traced_cost_spans_record_cache_hits_and_misses() {
        let w = GemmWorkload::new(128, 128, 128);
        let a = Schedule {
            tm: 1,
            tn: 1,
            tk: 1,
        }
        .lower(&w);
        let b = Schedule {
            tm: 4,
            tn: 4,
            tk: 2,
        }
        .lower(&w);
        let cached = CachedCost::new(PetriCost::new().unwrap());
        let mut traced = TracedCost::new(cached, perf_core::MemorySink::new());
        traced.cost(&a).unwrap();
        traced.cost(&a).unwrap();
        traced.cost(&b).unwrap();
        let spans = &traced.sink().spans;
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.component == "autotune"));
        assert!(spans.iter().all(|s| s.label == "petri-net"));
        assert!(spans[0].detail.contains("cache=miss"));
        assert!(spans[1].detail.contains("cache=hit"));
        assert!(spans[2].detail.contains("cache=miss"));
        let (cached, sink) = traced.into_parts();
        assert_eq!(cached.misses(), 2);
        assert_eq!(sink.spans.len(), 3);
    }

    #[test]
    fn traced_cost_over_null_sink_is_transparent() {
        let w = GemmWorkload::new(128, 128, 128);
        let p = Schedule {
            tm: 2,
            tn: 2,
            tk: 2,
        }
        .lower(&w);
        let mut plain = PetriCost::new().unwrap();
        let expect = plain.cost(&p).unwrap();
        let mut traced = TracedCost::new(PetriCost::new().unwrap(), perf_core::NullSink);
        assert_eq!(traced.cost(&p).unwrap().to_bits(), expect.to_bits());
        assert_eq!(traced.name(), "petri-net");
        assert_eq!(traced.evaluations(), 1);
    }

    #[test]
    fn fingerprints_distinguish_programs() {
        let w = GemmWorkload::new(128, 128, 128);
        let a = Schedule {
            tm: 1,
            tn: 1,
            tk: 1,
        }
        .lower(&w);
        let b = Schedule {
            tm: 4,
            tn: 4,
            tk: 2,
        }
        .lower(&w);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
