//! Composition-boundary mutation corpus.
//!
//! `compose()` fuses boundary places with min-capacity and
//! both-must-be-sinks semantics precisely so that gluing cannot
//! silently weaken either component's model. These tests seed the
//! classic boundary mistakes — capacity mismatches that make a
//! downstream burst impossible, and sink-to-sink fusions that cut a
//! component off from its token supply — and assert the structural
//! lints (`PN0xx`/`PN1xx`) catch every one.

use perf_petri::compose::compose;
use perf_petri::lint::lint;
use perf_petri::text::parse;

fn net(src: &str) -> perf_petri::Net {
    parse(src).expect("component net parses")
}

/// Correct-by-construction baseline: producer's `out` glued onto
/// consumer's `in`, capacities compatible, downstream still reachable.
#[test]
fn healthy_glue_lints_clean() {
    let a =
        net("net a\nplace in_a\nplace out_a cap 4\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b = net("net b\nplace in_b cap 4\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "in_b")], "glued").unwrap();
    let entries = [g.place_id("in_a").unwrap()];
    let ds = lint(&g, Some(&entries));
    assert!(!ds.has_errors(), "{}", ds.render());
}

/// Fused boundary capacity is the min of the two sides: neither
/// component ever sees more buffered tokens than its own model allowed.
#[test]
fn boundary_capacity_takes_the_min() {
    let a =
        net("net a\nplace in_a\nplace out_a cap 2\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b = net("net b\nplace in_b cap 8\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "in_b")], "glued").unwrap();
    let fused = g.place_id("out_a").unwrap();
    assert_eq!(g.places()[fused.index()].capacity, Some(2));
}

/// Mutation: the consumer drains the boundary in bursts of 4, but the
/// producer's boundary model is capped at 2 — after min-fusion the
/// burst can never be enabled. `PN105` (arc weight exceeds place
/// capacity) must fire, and `PN104` marks the starved transition dead.
#[test]
fn mismatched_boundary_capacity_burst_is_pn105() {
    let a =
        net("net a\nplace in_a\nplace out_a cap 2\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b =
        net("net b\nplace in_b cap 8\nsink done\ntrans tb\n  in in_b x 4\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "in_b")], "glued").unwrap();
    let entries = [g.place_id("in_a").unwrap()];
    let ds = lint(&g, Some(&entries));
    assert!(ds.find("PN105").is_some(), "{}", ds.render());
}

/// Mutation: gluing the producer's sink onto the consumer's *sink*
/// (instead of its input) leaves the consumer's real input place with
/// no token source: an initially-unmarked siphon that kills its
/// transition. `PN103`/`PN104` must fire.
#[test]
fn sink_to_sink_fusion_starves_the_consumer() {
    let a = net("net a\nplace in_a\nsink out_a\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b = net("net b\nplace in_b\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "done")], "glued").unwrap();
    let entries = [g.place_id("in_a").unwrap()];
    let ds = lint(&g, Some(&entries));
    assert!(
        ds.find("PN103").is_some() || ds.find("PN104").is_some(),
        "{}",
        ds.render()
    );
    // The fused place stays a sink — both sides were sinks — so the
    // consumer's pipeline is provably dead, not merely re-routed.
    let fused = g.place_id("out_a").unwrap();
    assert!(g.places()[fused.index()].is_sink);
}

/// Gluing a sink onto a *consumed* place clears the sink flag: tokens
/// flow onward instead of completing at the boundary.
#[test]
fn sink_to_input_fusion_clears_the_sink_flag() {
    let a = net("net a\nplace in_a\nsink out_a\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b = net("net b\nplace in_b\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "in_b")], "glued").unwrap();
    let fused = g.place_id("out_a").unwrap();
    assert!(!g.places()[fused.index()].is_sink);
}

/// Mutation: glue names that don't exist on either side are hard
/// errors, not silent no-ops.
#[test]
fn unknown_glue_places_are_rejected() {
    const A: &str = "net a\nplace in_a\nsink out_a\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n";
    const B: &str = "net b\nplace in_b\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n";
    assert!(compose(net(A), net(B), &[("nope", "in_b")], "g").is_err());
    assert!(compose(net(A), net(B), &[("out_a", "nope")], "g").is_err());
}

/// Mutation: double-gluing one consumer place onto two producer places
/// is rejected — a fused place must have exactly one identity.
#[test]
fn double_glue_is_rejected() {
    let a = net(
        "net a\nplace in_a\nsink out_a\nsink out_a2\ntrans ta\n  in in_a\n  out out_a\n  delay 1\ntrans ta2\n  in in_a\n  out out_a2\n  delay 1\n",
    );
    let b = net("net b\nplace in_b\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    assert!(compose(a, b, &[("out_a", "in_b"), ("out_a2", "in_b")], "g").is_err());
}
