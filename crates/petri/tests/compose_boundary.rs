//! Composition-boundary mutation corpus.
//!
//! `compose()` fuses boundary places with min-capacity and
//! both-must-be-sinks semantics precisely so that gluing cannot
//! silently weaken either component's model. These tests seed the
//! classic boundary mistakes — capacity mismatches that make a
//! downstream burst impossible, and sink-to-sink fusions that cut a
//! component off from its token supply — and assert the structural
//! lints (`PN0xx`/`PN1xx`) catch every one.

use perf_iface_lang::Value;
use perf_petri::behavior::Behavior;
use perf_petri::compose::compose;
use perf_petri::engine::{Engine, Options, SimResult};
use perf_petri::lint::lint;
use perf_petri::net::{Net, NetBuilder, Transition};
use perf_petri::text::parse;
use perf_petri::token::Token;
use perf_petri::CompiledNet;

fn net(src: &str) -> perf_petri::Net {
    parse(src).expect("component net parses")
}

/// Correct-by-construction baseline: producer's `out` glued onto
/// consumer's `in`, capacities compatible, downstream still reachable.
#[test]
fn healthy_glue_lints_clean() {
    let a =
        net("net a\nplace in_a\nplace out_a cap 4\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b = net("net b\nplace in_b cap 4\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "in_b")], "glued").unwrap();
    let entries = [g.place_id("in_a").unwrap()];
    let ds = lint(&g, Some(&entries));
    assert!(!ds.has_errors(), "{}", ds.render());
}

/// Fused boundary capacity is the min of the two sides: neither
/// component ever sees more buffered tokens than its own model allowed.
#[test]
fn boundary_capacity_takes_the_min() {
    let a =
        net("net a\nplace in_a\nplace out_a cap 2\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b = net("net b\nplace in_b cap 8\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "in_b")], "glued").unwrap();
    let fused = g.place_id("out_a").unwrap();
    assert_eq!(g.places()[fused.index()].capacity, Some(2));
}

/// Mutation: the consumer drains the boundary in bursts of 4, but the
/// producer's boundary model is capped at 2 — after min-fusion the
/// burst can never be enabled. `PN105` (arc weight exceeds place
/// capacity) must fire, and `PN104` marks the starved transition dead.
#[test]
fn mismatched_boundary_capacity_burst_is_pn105() {
    let a =
        net("net a\nplace in_a\nplace out_a cap 2\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b =
        net("net b\nplace in_b cap 8\nsink done\ntrans tb\n  in in_b x 4\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "in_b")], "glued").unwrap();
    let entries = [g.place_id("in_a").unwrap()];
    let ds = lint(&g, Some(&entries));
    assert!(ds.find("PN105").is_some(), "{}", ds.render());
}

/// Mutation: gluing the producer's sink onto the consumer's *sink*
/// (instead of its input) leaves the consumer's real input place with
/// no token source: an initially-unmarked siphon that kills its
/// transition. `PN103`/`PN104` must fire.
#[test]
fn sink_to_sink_fusion_starves_the_consumer() {
    let a = net("net a\nplace in_a\nsink out_a\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b = net("net b\nplace in_b\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "done")], "glued").unwrap();
    let entries = [g.place_id("in_a").unwrap()];
    let ds = lint(&g, Some(&entries));
    assert!(
        ds.find("PN103").is_some() || ds.find("PN104").is_some(),
        "{}",
        ds.render()
    );
    // The fused place stays a sink — both sides were sinks — so the
    // consumer's pipeline is provably dead, not merely re-routed.
    let fused = g.place_id("out_a").unwrap();
    assert!(g.places()[fused.index()].is_sink);
}

/// Gluing a sink onto a *consumed* place clears the sink flag: tokens
/// flow onward instead of completing at the boundary.
#[test]
fn sink_to_input_fusion_clears_the_sink_flag() {
    let a = net("net a\nplace in_a\nsink out_a\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b = net("net b\nplace in_b\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    let g = compose(a, b, &[("out_a", "in_b")], "glued").unwrap();
    let fused = g.place_id("out_a").unwrap();
    assert!(!g.places()[fused.index()].is_sink);
}

/// Mutation: glue names that don't exist on either side are hard
/// errors, not silent no-ops.
#[test]
fn unknown_glue_places_are_rejected() {
    const A: &str = "net a\nplace in_a\nsink out_a\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n";
    const B: &str = "net b\nplace in_b\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n";
    assert!(compose(net(A), net(B), &[("nope", "in_b")], "g").is_err());
    assert!(compose(net(A), net(B), &[("out_a", "nope")], "g").is_err());
}

/// Mutation: one *producer* place glued onto two consumer places is
/// rejected too — before the check, `compose` silently three-way-merged
/// the places, aliasing what looks like fan-out into a single queue.
/// Fan-out must be modeled with explicit router/broadcast transitions.
#[test]
fn aliased_producer_glue_is_rejected() {
    let a = net("net a\nplace in_a\nsink out_a\ntrans ta\n  in in_a\n  out out_a\n  delay 1\n");
    let b = net(
        "net b\nplace in_b\nplace in_b2\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\ntrans tb2\n  in in_b2\n  out done\n  delay 1\n",
    );
    let e = compose(a, b, &[("out_a", "in_b"), ("out_a", "in_b2")], "g")
        .expect_err("aliased producer glue must be a Structure error");
    assert!(e.to_string().contains("out_a"), "{e}");
    assert!(e.to_string().contains("glued more than once"), "{e}");
}

/// Mutation: double-gluing one consumer place onto two producer places
/// is rejected — a fused place must have exactly one identity.
#[test]
fn double_glue_is_rejected() {
    let a = net(
        "net a\nplace in_a\nsink out_a\nsink out_a2\ntrans ta\n  in in_a\n  out out_a\n  delay 1\ntrans ta2\n  in in_a\n  out out_a2\n  delay 1\n",
    );
    let b = net("net b\nplace in_b\nsink done\ntrans tb\n  in in_b\n  out done\n  delay 1\n");
    assert!(compose(a, b, &[("out_a", "in_b"), ("out_a2", "in_b")], "g").is_err());
}

// ---------------------------------------------------------------------
// Differential: a fan-out/fan-in diamond built by gluing four component
// nets must be observably identical to the same diamond hand-built as
// one monolithic net — on the incremental engine, the reference scan,
// and the compiled stepper. This is the semantic half of the aliasing
// story above: the *legal* way to express fan-out (explicit guarded
// router transitions, distinct 1-to-1 glue pairs) must cost nothing.
// ---------------------------------------------------------------------

/// Passthrough behavior with a fixed delay.
fn work(delay: u64) -> Behavior {
    Behavior::Native {
        guard: None,
        delay: Box::new(move |_: &[Token]| delay),
        transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
    }
}

/// Passthrough with a payload-dependent delay so token order matters.
fn serve() -> Behavior {
    Behavior::Native {
        guard: None,
        delay: Box::new(|ts: &[Token]| 1 + (ts[0].data.as_num().unwrap_or(0.0) as u64) % 2),
        transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
    }
}

/// Router: forwards only tokens whose payload parity is `s`, delay 0.
fn route(s: u64) -> Behavior {
    Behavior::Native {
        guard: Some(Box::new(move |ts: &[Token]| {
            (ts[0].data.as_num().unwrap_or(0.0) as u64) % 2 == s
        })),
        delay: Box::new(|_: &[Token]| 0),
        transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
    }
}

fn tr(
    name: &str,
    inputs: Vec<(perf_petri::PlaceId, usize)>,
    outputs: Vec<(perf_petri::PlaceId, usize)>,
    behavior: Behavior,
) -> Transition {
    Transition {
        name: name.to_string(),
        inputs,
        outputs,
        behavior,
        servers: 1,
        priority: 0,
    }
}

/// The diamond as four components glued pairwise: a guarded router
/// source, two unlike branches, and a latch-and-merge collector. Every
/// glue pair is a distinct 1-to-1 fusion.
fn glued_diamond() -> Net {
    let src = {
        let mut b = NetBuilder::new("src");
        let inp = b.place("in", None);
        let mid = b.place("mid", Some(2));
        let out0 = b.sink("out0");
        let out1 = b.sink("out1");
        b.add_transition(tr("serve", vec![(inp, 1)], vec![(mid, 1)], serve()));
        b.add_transition(tr("r0", vec![(mid, 1)], vec![(out0, 1)], route(0)));
        b.add_transition(tr("r1", vec![(mid, 1)], vec![(out1, 1)], route(1)));
        b.build().unwrap()
    };
    let branch = |name: &str, delay: u64| {
        let mut b = NetBuilder::new(name);
        let inp = b.place("in", Some(2));
        let done = b.sink("done");
        b.add_transition(tr("work", vec![(inp, 1)], vec![(done, 1)], work(delay)));
        b.build().unwrap()
    };
    let merge = {
        let mut b = NetBuilder::new("merge");
        let in0 = b.place("in0", Some(1));
        let in1 = b.place("in1", Some(1));
        let q = b.place("q", Some(4));
        let out = b.sink("out");
        b.add_transition(tr("m0", vec![(in0, 1)], vec![(q, 1)], work(0)));
        b.add_transition(tr("m1", vec![(in1, 1)], vec![(q, 1)], work(0)));
        b.add_transition(tr("ser", vec![(q, 1)], vec![(out, 1)], work(1)));
        b.build().unwrap()
    };
    let g = compose(src, branch("b0", 2), &[("out0", "in")], "g1").unwrap();
    let g = compose(g, branch("b1", 3), &[("out1", "in")], "g2").unwrap();
    compose(g, merge, &[("b0.done", "in0"), ("b1.done", "in1")], "glued").unwrap()
}

/// The same diamond declared directly, mirroring the fused boundary
/// semantics (min capacities, cleared sink flags) and the glued net's
/// place/transition declaration order so tie-breaks agree.
fn monolithic_diamond() -> Net {
    let mut b = NetBuilder::new("mono");
    let inp = b.place("in", None);
    let mid = b.place("mid", Some(2));
    let out0 = b.place("out0", Some(2));
    let out1 = b.place("out1", Some(2));
    let d0 = b.place("d0", Some(1));
    let d1 = b.place("d1", Some(1));
    let q = b.place("q", Some(4));
    let out = b.sink("out");
    b.add_transition(tr("serve", vec![(inp, 1)], vec![(mid, 1)], serve()));
    b.add_transition(tr("r0", vec![(mid, 1)], vec![(out0, 1)], route(0)));
    b.add_transition(tr("r1", vec![(mid, 1)], vec![(out1, 1)], route(1)));
    b.add_transition(tr("w0", vec![(out0, 1)], vec![(d0, 1)], work(2)));
    b.add_transition(tr("w1", vec![(out1, 1)], vec![(d1, 1)], work(3)));
    b.add_transition(tr("m0", vec![(d0, 1)], vec![(q, 1)], work(0)));
    b.add_transition(tr("m1", vec![(d1, 1)], vec![(q, 1)], work(0)));
    b.add_transition(tr("ser", vec![(q, 1)], vec![(out, 1)], work(1)));
    b.build().unwrap()
}

fn run_diamond(n: &Net, compiled: bool, reference: bool) -> SimResult {
    let opts = Options {
        max_events: 10_000,
        fail_on_deadlock: false,
        trace: None,
    };
    let entry = n.place_id("in").unwrap();
    let inject: Vec<Token> = (0..8)
        .map(|i| Token::at(Value::num(i as f64), i / 2))
        .collect();
    if compiled {
        let plan = CompiledNet::compile(n);
        let mut s = plan.stepper(n, opts);
        for t in inject {
            s.inject(entry, t);
        }
        s.run().expect("diamond runs to completion")
    } else {
        let mut e = Engine::new(n, opts);
        for t in inject {
            e.inject(entry, t);
        }
        if reference {
            e.run_reference().expect("diamond runs to completion")
        } else {
            e.run().expect("diamond runs to completion")
        }
    }
}

/// The glued diamond and its hand-built monolithic twin agree on
/// makespan, completion stream, per-transition firing counts and
/// high-water marks — under all three evaluators.
#[test]
fn glued_diamond_matches_monolithic_equivalent_on_all_evaluators() {
    let glued = glued_diamond();
    let mono = monolithic_diamond();
    assert_eq!(glued.places().len(), mono.places().len());
    for (label, compiled, reference) in [
        ("incremental", false, false),
        ("reference", false, true),
        ("compiled", true, false),
    ] {
        let rg = run_diamond(&glued, compiled, reference);
        let rm = run_diamond(&mono, compiled, reference);
        assert_eq!(rg.makespan, rm.makespan, "{label}: makespan");
        assert_eq!(rg.completions, rm.completions, "{label}: completions");
        assert_eq!(rg.firings, rm.firings, "{label}: firings");
        assert_eq!(rg.high_water, rm.high_water, "{label}: high-water");
        // Both branches actually ran: 4 even and 4 odd payloads.
        let w0 = rg.firings[3];
        let w1 = rg.firings[4];
        assert_eq!((w0, w1), (4, 4), "{label}: branch loads");
        assert_eq!(rg.completions.len(), 8, "{label}: all items retired");
    }
}
