//! Three-way differential suite: the compiled static-topology stepper
//! ([`perf_petri::CompiledNet`]) must be observably identical to the
//! incremental worklist engine ([`Engine::run`]), which in turn must
//! match the reference full-net fixpoint scan
//! ([`Engine::run_reference`]), on randomly generated nets — same
//! makespan, same completions (payload, birth, arrival, order), same
//! event and firing counts, same high-water marks, same stranded
//! report, and the same error on pathological nets. The stepper must
//! additionally match the incremental engine's `enablement_checks`
//! (it runs the same worklist algorithm on specialized data).
//!
//! Nets mix `Native` closures (forcing the stepper's dynamic fallback)
//! with compiled `Expr` behaviors (exercising the specialized
//! guard/delay/emit fast paths), so both execution tiers are covered
//! by every run.

use perf_iface_lang::Value;
use perf_petri::behavior::{Behavior, ExprBehavior};
use perf_petri::engine::{Engine, Options, SimResult};
use perf_petri::net::{Net, NetBuilder, Transition};
use perf_petri::token::Token;
use perf_petri::{CompiledNet, PetriError};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct NetSpec {
    places: Vec<Option<usize>>,
    sinks: usize,
    transitions: Vec<TransSpec>,
    /// Injections: (raw place index, payload, arrival time). Late
    /// arrivals push events past the calendar-wheel horizon, forcing
    /// the stepper's far-heap path.
    injections: Vec<(usize, u64, u64)>,
}

#[derive(Clone, Debug)]
struct TransSpec {
    inputs: Vec<(usize, usize)>,
    outputs: Vec<(usize, usize)>,
    base_delay: u64,
    priority: i32,
    servers: usize,
    /// `Some(threshold)` guards the transition on `payload % 16 < threshold`.
    guard: Option<u64>,
    /// Compiled-expression behavior instead of a native closure.
    expr: bool,
    /// For expr behaviors: emit `t` unchanged (the stepper's
    /// token-reuse fast path) instead of a transformed payload.
    passthrough: bool,
}

fn spec_strategy() -> impl Strategy<Value = NetSpec> {
    let place = prop_oneof![Just(None), (1usize..=3).prop_map(Some)];
    let trans = (
        prop::collection::vec((0usize..100, 1usize..=2), 1..=2),
        prop::collection::vec((0usize..100, 1usize..=2), 0..=2),
        0u64..=4,
        -1i32..=2,
        0usize..=2,
        prop_oneof![Just(None), (4u64..=14).prop_map(Some)],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(inputs, outputs, base_delay, priority, servers, guard, expr, passthrough)| {
                TransSpec {
                    inputs,
                    outputs,
                    base_delay,
                    priority,
                    servers,
                    guard,
                    expr,
                    passthrough,
                }
            },
        );
    (
        prop::collection::vec(place, 2..=5),
        1usize..=2,
        prop::collection::vec(trans, 1..=6),
        prop::collection::vec((0usize..100, 0u64..100, 0u64..5_000), 1..=20),
    )
        .prop_map(|(places, sinks, transitions, injections)| NetSpec {
            places,
            sinks,
            transitions,
            injections,
        })
}

fn native_behavior(t: &TransSpec, n_out: usize) -> Behavior {
    let base = t.base_delay;
    let guard = t.guard.map(|thr| {
        Box::new(move |ts: &[Token]| (ts[0].data.as_num().unwrap_or(0.0) as u64) % 16 < thr)
            as Box<dyn Fn(&[Token]) -> bool>
    });
    Behavior::Native {
        guard,
        delay: Box::new(move |ts: &[Token]| base + (ts[0].data.as_num().unwrap_or(0.0) as u64) % 3),
        transform: Box::new(move |ts: &[Token]| {
            let v = ts
                .iter()
                .map(|t| t.data.as_num().unwrap_or(0.0))
                .sum::<f64>();
            vec![Value::num((v + 1.0) % 1024.0); n_out]
        }),
    }
}

fn expr_behavior(t: &TransSpec, n_out: usize) -> Behavior {
    let delay = format!("{} + t % 3", t.base_delay);
    let guard = t.guard.map(|thr| format!("t % 16 < {thr}"));
    let emit = if t.passthrough {
        None
    } else {
        Some("(sum(ts) + 1) % 1024".to_string())
    };
    let emits: Vec<Option<String>> = (0..n_out).map(|_| emit.clone()).collect();
    Behavior::Expr(
        ExprBehavior::compile("", &delay, guard.as_deref(), &emits)
            .expect("generated behavior source is valid"),
    )
}

fn build(spec: &NetSpec) -> Net {
    let mut b = NetBuilder::new("rand");
    let n_regular = spec.places.len();
    let n_total = n_regular + spec.sinks;
    let mut pids = Vec::new();
    for (i, cap) in spec.places.iter().enumerate() {
        pids.push(b.place(format!("p{i}"), *cap));
    }
    for s in 0..spec.sinks {
        pids.push(b.sink(format!("z{s}")));
    }
    for (i, t) in spec.transitions.iter().enumerate() {
        let mut inputs: Vec<(perf_petri::PlaceId, usize)> = Vec::new();
        for &(p, w) in &t.inputs {
            let pid = pids[p % n_regular];
            if !inputs.iter().any(|&(q, _)| q == pid) {
                inputs.push((pid, w));
            }
        }
        let outputs: Vec<_> = t
            .outputs
            .iter()
            .map(|&(p, w)| (pids[p % n_total], w))
            .collect();
        let n_out = outputs.len();
        let behavior = if t.expr {
            expr_behavior(t, n_out)
        } else {
            native_behavior(t, n_out)
        };
        b.add_transition(Transition {
            name: format!("t{i}"),
            inputs,
            outputs,
            behavior,
            servers: t.servers,
            priority: t.priority,
        });
    }
    b.build().expect("spec-built nets are structurally valid")
}

fn place_name(spec: &NetSpec, idx: usize) -> String {
    if idx < spec.places.len() {
        format!("p{idx}")
    } else {
        format!("z{}", idx - spec.places.len())
    }
}

const OPTS: Options = Options {
    max_events: 5_000,
    fail_on_deadlock: false,
    trace: None,
};

fn run_engine(spec: &NetSpec, net: &Net, incremental: bool) -> Result<SimResult, PetriError> {
    let n_total = spec.places.len() + spec.sinks;
    let mut e = Engine::new(net, OPTS);
    for &(p, v, at) in &spec.injections {
        e.inject(
            net.place_id(&place_name(spec, p % n_total)).unwrap(),
            Token::at(Value::num(v as f64), at),
        );
    }
    if incremental {
        e.run()
    } else {
        e.run_reference()
    }
}

fn run_compiled(spec: &NetSpec, net: &Net) -> Result<SimResult, PetriError> {
    let n_total = spec.places.len() + spec.sinks;
    let plan = CompiledNet::compile(net);
    let mut s = plan.stepper(net, OPTS);
    for &(p, v, at) in &spec.injections {
        s.inject(
            net.place_id(&place_name(spec, p % n_total)).unwrap(),
            Token::at(Value::num(v as f64), at),
        );
    }
    s.run()
}

/// `check_enablement`: the reference scan re-checks far more often, so
/// only compiled-vs-incremental compares that counter.
fn assert_identical(
    label: &str,
    a: &Result<SimResult, PetriError>,
    b: &Result<SimResult, PetriError>,
    check_enablement: bool,
) {
    match (a, b) {
        (Ok(ra), Ok(rb)) => {
            assert_eq!(ra.makespan, rb.makespan, "{label}: makespan");
            assert_eq!(ra.events, rb.events, "{label}: event count");
            assert_eq!(ra.firings, rb.firings, "{label}: firings");
            assert_eq!(ra.busy, rb.busy, "{label}: busy cycles");
            assert_eq!(ra.high_water, rb.high_water, "{label}: high-water marks");
            assert_eq!(ra.stranded, rb.stranded, "{label}: stranded report");
            assert_eq!(ra.completions, rb.completions, "{label}: completions");
            if check_enablement {
                assert_eq!(
                    ra.enablement_checks, rb.enablement_checks,
                    "{label}: enablement checks"
                );
            }
        }
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{label}: errors differ"),
        (a, b) => panic!("{label}: one evaluator errored, the other did not:\n  {a:?}\n  {b:?}"),
    }
}

/// Deterministic branched regression: a fan-out/fan-in diamond whose
/// routers guard on a token *field* (the shape `perf-compose` emits
/// for round-robin DAG stages: record payloads, `r`-field dispatch,
/// multi-server serve, delay-0 merge) must agree across all three
/// evaluators. The random corpus above reaches branched topologies but
/// only number payloads; this pins the record/field path.
#[test]
fn field_routed_diamond_matches_across_evaluators() {
    type Guard = Option<Box<dyn Fn(&[Token]) -> bool>>;
    let passthrough = |delay: u64, guard: Guard| Behavior::Native {
        guard,
        delay: Box::new(move |_: &[Token]| delay),
        transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
    };
    let route = |s: u64| -> Guard {
        Some(Box::new(move |ts: &[Token]| {
            ts[0]
                .data
                .field("r")
                .and_then(Value::as_num)
                .map(|v| v as u64 == s)
                .unwrap_or(false)
        }))
    };
    let mut b = NetBuilder::new("diamond");
    let inp = b.place("in", None);
    let mid = b.place("mid", Some(2));
    let q0 = b.place("q0", Some(2));
    let q1 = b.place("q1", Some(2));
    let acc = b.place("acc", Some(4));
    let out = b.sink("out");
    let tr = |name: &str, i, o, behavior, servers| Transition {
        name: name.to_string(),
        inputs: vec![(i, 1)],
        outputs: vec![(o, 1)],
        behavior,
        servers,
        priority: 0,
    };
    // Two servers up front so in-flight tokens overlap, like a
    // `replicas = 2` stage.
    b.add_transition(tr("serve", inp, mid, passthrough(2, None), 2));
    b.add_transition(tr("r0", mid, q0, passthrough(0, route(0)), 1));
    b.add_transition(tr("r1", mid, q1, passthrough(0, route(1)), 1));
    b.add_transition(tr("w0", q0, acc, passthrough(3, None), 1));
    b.add_transition(tr("w1", q1, acc, passthrough(5, None), 1));
    b.add_transition(tr("ser", acc, out, passthrough(1, None), 1));
    let net = b.build().unwrap();

    let run = |mode: usize| -> Result<SimResult, PetriError> {
        let opts = Options {
            max_events: 10_000,
            fail_on_deadlock: false,
            trace: None,
        };
        let entry = net.place_id("in").unwrap();
        let tokens = (0..10).map(|i| {
            let fields = [
                ("r".to_string(), Value::num((i % 2) as f64)),
                ("v".to_string(), Value::num(i as f64)),
            ];
            Token::at(Value::record_owned(fields), i)
        });
        match mode {
            0 => {
                let plan = CompiledNet::compile(&net);
                let mut s = plan.stepper(&net, opts);
                tokens.for_each(|t| s.inject(entry, t));
                s.run()
            }
            _ => {
                let mut e = Engine::new(&net, opts);
                tokens.for_each(|t| e.inject(entry, t));
                if mode == 1 {
                    e.run()
                } else {
                    e.run_reference()
                }
            }
        }
    };
    let compiled = run(0);
    let inc = run(1);
    let refr = run(2);
    assert_identical("compiled vs incremental", &compiled, &inc, true);
    assert_identical("compiled vs reference", &compiled, &refr, false);
    let r = compiled.expect("diamond completes");
    assert_eq!(
        r.completions.len(),
        10,
        "all items retired through the merge"
    );
    assert_eq!(
        (r.firings[3], r.firings[4]),
        (5, 5),
        "branch loads split 5/5"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn compiled_stepper_matches_both_engines(spec in spec_strategy()) {
        let net = build(&spec);
        let compiled = run_compiled(&spec, &net);
        let inc = run_engine(&spec, &net, true);
        let refr = run_engine(&spec, &net, false);
        assert_identical("compiled vs incremental", &compiled, &inc, true);
        assert_identical("compiled vs reference", &compiled, &refr, false);
    }

    #[test]
    fn marking_fingerprints_agree(spec in spec_strategy()) {
        let net = build(&spec);
        let n_total = spec.places.len() + spec.sinks;
        let plan = CompiledNet::compile(&net);
        let mut s = plan.stepper(&net, Options::default());
        let mut e = Engine::new(&net, Options::default());
        for &(p, v, at) in &spec.injections {
            let pid = net.place_id(&place_name(&spec, p % n_total)).unwrap();
            let tok = Token::at(Value::num(v as f64), at);
            s.inject(pid, tok.clone());
            e.inject(pid, tok);
        }
        prop_assert_eq!(s.marking_fingerprint(), e.marking_fingerprint());
    }
}
