//! Differential suite: the incremental worklist engine ([`Engine::run`])
//! must produce results byte-identical to the reference full-net
//! fixpoint scan ([`Engine::run_reference`]) on randomly generated
//! nets — same makespan, same completions (payload, birth and arrival
//! of every token), same event and firing counts, same high-water
//! marks, same stranded report, and the same error on pathological
//! nets (event-budget blowups, deadlocks).

use perf_iface_lang::Value;
use perf_petri::engine::{Engine, Options, SimResult};
use perf_petri::net::{Net, NetBuilder, Transition};
use perf_petri::token::Token;
use perf_petri::PetriError;
use proptest::prelude::*;

/// A randomly drawn net + workload, as plain data so the same spec can
/// deterministically build two identical nets.
#[derive(Clone, Debug)]
struct NetSpec {
    /// Regular places: capacity (None = unbounded).
    places: Vec<Option<usize>>,
    /// Number of sink places.
    sinks: usize,
    transitions: Vec<TransSpec>,
    /// Injections: (raw place index, payload, arrival time).
    injections: Vec<(usize, u64, u64)>,
}

#[derive(Clone, Debug)]
struct TransSpec {
    /// Input arcs: (raw regular-place index, weight).
    inputs: Vec<(usize, usize)>,
    /// Output arcs: (raw any-place index, weight).
    outputs: Vec<(usize, usize)>,
    base_delay: u64,
    priority: i32,
    servers: usize,
    /// `Some(threshold)` guards the transition on `payload % 16 < threshold`.
    guard: Option<u64>,
}

fn spec_strategy() -> impl Strategy<Value = NetSpec> {
    let place = prop_oneof![Just(None), (1usize..=3).prop_map(Some),];
    let trans = (
        prop::collection::vec((0usize..100, 1usize..=2), 1..=2),
        prop::collection::vec((0usize..100, 1usize..=2), 0..=2),
        0u64..=4,
        -1i32..=2,
        0usize..=2,
        prop_oneof![Just(None), (4u64..=14).prop_map(Some)],
    )
        .prop_map(
            |(inputs, outputs, base_delay, priority, servers, guard)| TransSpec {
                inputs,
                outputs,
                base_delay,
                priority,
                servers,
                guard,
            },
        );
    (
        prop::collection::vec(place, 2..=5),
        1usize..=2,
        prop::collection::vec(trans, 1..=6),
        prop::collection::vec((0usize..100, 0u64..100, 0u64..20), 1..=20),
    )
        .prop_map(|(places, sinks, transitions, injections)| NetSpec {
            places,
            sinks,
            transitions,
            injections,
        })
}

/// Builds the net described by `spec`. Raw indices are reduced modulo
/// the relevant place count, so every spec is structurally valid.
fn build(spec: &NetSpec) -> Net {
    let mut b = NetBuilder::new("rand");
    let n_regular = spec.places.len();
    let n_total = n_regular + spec.sinks;
    let mut pids = Vec::new();
    for (i, cap) in spec.places.iter().enumerate() {
        pids.push(b.place(format!("p{i}"), *cap));
    }
    for s in 0..spec.sinks {
        pids.push(b.sink(format!("z{s}")));
    }
    for (i, t) in spec.transitions.iter().enumerate() {
        // Duplicate input arcs from one place are structurally invalid
        // (weights express multi-token consumption); keep the first.
        let mut inputs: Vec<(perf_petri::PlaceId, usize)> = Vec::new();
        for &(p, w) in &t.inputs {
            let pid = pids[p % n_regular];
            if !inputs.iter().any(|&(q, _)| q == pid) {
                inputs.push((pid, w));
            }
        }
        let outputs: Vec<_> = t
            .outputs
            .iter()
            .map(|&(p, w)| (pids[p % n_total], w))
            .collect();
        let n_out = outputs.len();
        let base = t.base_delay;
        let guard = t.guard.map(|thr| {
            Box::new(move |ts: &[Token]| (ts[0].data.as_num().unwrap_or(0.0) as u64) % 16 < thr)
                as Box<dyn Fn(&[Token]) -> bool>
        });
        b.add_transition(Transition {
            name: format!("t{i}"),
            inputs,
            outputs,
            behavior: perf_petri::behavior::Behavior::Native {
                guard,
                delay: Box::new(move |ts: &[Token]| {
                    base + (ts[0].data.as_num().unwrap_or(0.0) as u64) % 3
                }),
                transform: Box::new(move |ts: &[Token]| {
                    let v = ts
                        .iter()
                        .map(|t| t.data.as_num().unwrap_or(0.0))
                        .sum::<f64>();
                    vec![Value::num((v + 1.0) % 1024.0); n_out]
                }),
            },
            servers: t.servers,
            priority: t.priority,
        });
    }
    b.build().expect("spec-built nets are structurally valid")
}

fn run(spec: &NetSpec, net: &Net, incremental: bool) -> Result<SimResult, PetriError> {
    let n_total = spec.places.len() + spec.sinks;
    let mut e = Engine::new(
        net,
        Options {
            // Tight budget so cyclic nets terminate quickly; both
            // engines must hit it at the same event count.
            max_events: 5_000,
            ..Options::default()
        },
    );
    for &(p, v, at) in &spec.injections {
        e.inject(
            net.place_id(&place_name(spec, p % n_total)).unwrap(),
            Token::at(Value::num(v as f64), at),
        );
    }
    if incremental {
        e.run()
    } else {
        e.run_reference()
    }
}

fn place_name(spec: &NetSpec, idx: usize) -> String {
    if idx < spec.places.len() {
        format!("p{idx}")
    } else {
        format!("z{}", idx - spec.places.len())
    }
}

fn assert_identical(a: &Result<SimResult, PetriError>, b: &Result<SimResult, PetriError>) {
    match (a, b) {
        (Ok(ra), Ok(rb)) => {
            assert_eq!(ra.makespan, rb.makespan, "makespan");
            assert_eq!(ra.events, rb.events, "event count");
            assert_eq!(ra.firings, rb.firings, "firings");
            assert_eq!(ra.busy, rb.busy, "busy cycles");
            assert_eq!(ra.high_water, rb.high_water, "high-water marks");
            assert_eq!(ra.stranded, rb.stranded, "stranded report");
            assert_eq!(ra.completions, rb.completions, "completions");
        }
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "errors differ"),
        (a, b) => panic!(
            "one engine errored, the other did not:\n  incremental: {a:?}\n  reference: {b:?}"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn incremental_engine_matches_reference_scan(spec in spec_strategy()) {
        let net_a = build(&spec);
        let net_b = build(&spec);
        let inc = run(&spec, &net_a, true);
        let refr = run(&spec, &net_b, false);
        assert_identical(&inc, &refr);
    }
}

/// Deterministic shapes that stress the worklist's pass semantics:
/// priorities, guards competing for one place, bounded-capacity
/// backpressure, joins, forks and self-loops.
#[test]
fn handcrafted_shapes_match() {
    // Guarded routing with priorities + bounded middle stage.
    let build = || {
        let mut b = NetBuilder::new("mix");
        let src = b.place("src", None);
        let mid = b.place("mid", Some(2));
        let small = b.sink("small");
        let big = b.sink("big");
        b.add_transition(Transition {
            name: "classify".into(),
            inputs: vec![(src, 1)],
            outputs: vec![(mid, 1)],
            behavior: perf_petri::behavior::Behavior::Native {
                guard: None,
                delay: Box::new(|_| 1),
                transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
            },
            servers: 1,
            priority: 0,
        });
        b.add_transition(Transition {
            name: "small_path".into(),
            inputs: vec![(mid, 1)],
            outputs: vec![(small, 1)],
            behavior: perf_petri::behavior::Behavior::Native {
                guard: Some(Box::new(|ts: &[Token]| ts[0].data.as_num().unwrap() < 5.0)),
                delay: Box::new(|_| 2),
                transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
            },
            servers: 1,
            priority: 1,
        });
        b.add_transition(Transition {
            name: "big_path".into(),
            inputs: vec![(mid, 1)],
            outputs: vec![(big, 1)],
            behavior: perf_petri::behavior::Behavior::Native {
                guard: None,
                delay: Box::new(|_| 7),
                transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
            },
            servers: 2,
            priority: 0,
        });
        b.build().unwrap()
    };
    let run = |incremental: bool| {
        let net = build();
        let mut e = Engine::new(&net, Options::default());
        for i in 0..40u64 {
            e.inject(
                net.place_id("src").unwrap(),
                Token::at(Value::num((i % 9) as f64), i / 3),
            );
        }
        if incremental {
            e.run()
        } else {
            e.run_reference()
        }
    };
    assert_identical(&run(true), &run(false));
}
