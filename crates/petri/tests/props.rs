//! Property tests for the Petri-net engine: token conservation,
//! determinism, and throughput bounds on randomly shaped pipelines.

use perf_iface_lang::Value;
use perf_petri::engine::{Engine, Options};
use perf_petri::net::{Net, NetBuilder};
use perf_petri::token::Token;
use proptest::prelude::*;

/// Builds a linear pipeline with the given stage delays and queue caps.
fn pipeline(delays: &[u64], caps: &[usize]) -> Net {
    let mut b = NetBuilder::new("prop_pipe");
    let src = b.place("src", None);
    let mut prev = src;
    let mut places = vec![src];
    for (i, &cap) in caps.iter().enumerate() {
        let p = b.place(format!("q{i}"), Some(cap));
        places.push(p);
        let _ = prev;
        prev = p;
    }
    let sink = b.sink("done");
    places.push(sink);
    for (i, &d) in delays.iter().enumerate() {
        let from = places[i];
        let to = places[i + 1];
        b.transition(
            format!("t{i}"),
            &[from],
            &[to],
            move |_| d,
            |ts| vec![ts[0].data.clone()],
        );
    }
    b.build().expect("valid pipeline")
}

fn run(net: &Net, n: usize) -> perf_petri::engine::SimResult {
    let src = net.place_id("src").expect("src exists");
    let mut e = Engine::new(net, Options::default());
    for i in 0..n {
        e.inject(src, Token::at(Value::num(i as f64), 0));
    }
    e.run().expect("runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every injected token reaches the sink; none are created or lost.
    #[test]
    fn tokens_conserved(
        delays in prop::collection::vec(1u64..40, 1..5),
        n in 1usize..60,
    ) {
        let caps = vec![3usize; delays.len().saturating_sub(1)];
        let net = pipeline(&delays, &caps);
        let res = run(&net, n);
        prop_assert_eq!(res.completions.len(), n);
        prop_assert!(res.stranded.is_empty());
    }

    /// The same injection sequence always yields the same timing.
    #[test]
    fn deterministic(
        delays in prop::collection::vec(1u64..40, 1..5),
        n in 1usize..40,
    ) {
        let caps = vec![2usize; delays.len().saturating_sub(1)];
        let net1 = pipeline(&delays, &caps);
        let net2 = pipeline(&delays, &caps);
        let r1 = run(&net1, n);
        let r2 = run(&net2, n);
        prop_assert_eq!(r1.makespan, r2.makespan);
        prop_assert_eq!(r1.latencies(), r2.latencies());
        prop_assert_eq!(r1.events, r2.events);
    }

    /// Makespan is bounded below by the bottleneck stage's serial work
    /// and above by fully serial execution.
    #[test]
    fn makespan_bounds(
        delays in prop::collection::vec(1u64..40, 1..5),
        n in 1u64..50,
    ) {
        let caps = vec![4usize; delays.len().saturating_sub(1)];
        let net = pipeline(&delays, &caps);
        let res = run(&net, n as usize);
        let bottleneck = *delays.iter().max().expect("nonempty");
        let serial: u64 = delays.iter().sum::<u64>() * n;
        prop_assert!(res.makespan >= bottleneck * n);
        prop_assert!(res.makespan <= serial);
    }

    /// Latency of each completion is at least the sum of stage delays
    /// and completions arrive in injection order for a FIFO pipeline.
    #[test]
    fn latency_floor_and_order(
        delays in prop::collection::vec(1u64..25, 1..4),
        n in 1usize..30,
    ) {
        let caps = vec![2usize; delays.len().saturating_sub(1)];
        let net = pipeline(&delays, &caps);
        let res = run(&net, n);
        let floor: u64 = delays.iter().sum();
        for lat in res.latencies() {
            prop_assert!(lat >= floor);
        }
        let ids: Vec<f64> = res
            .completions
            .iter()
            .map(|t| t.data.as_num().expect("payload"))
            .collect();
        let mut sorted = ids.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(ids, sorted);
    }

    /// Tightening a queue capacity never makes the pipeline faster.
    #[test]
    fn smaller_queues_never_faster(
        delays in prop::collection::vec(1u64..30, 2..4),
        n in 5usize..40,
    ) {
        let tight = vec![1usize; delays.len() - 1];
        let roomy = vec![8usize; delays.len() - 1];
        let rt = run(&pipeline(&delays, &tight), n);
        let rr = run(&pipeline(&delays, &roomy), n);
        prop_assert!(rt.makespan >= rr.makespan);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `.pnet` text nets behave identically to native-closure nets with
    /// the same structure and delays.
    #[test]
    fn text_net_matches_native_net(
        delays in prop::collection::vec(1u64..30, 1..4),
        n in 1usize..30,
    ) {
        // Native variant.
        let caps = vec![3usize; delays.len().saturating_sub(1)];
        let native = pipeline(&delays, &caps);
        let rn = run(&native, n);
        // Text variant with the same structure.
        let mut src = String::from("net text_pipe\nplace src\n");
        for i in 0..caps.len() {
            src.push_str(&format!("place q{i} cap 3\n"));
        }
        src.push_str("sink done\n");
        for (i, d) in delays.iter().enumerate() {
            let from = if i == 0 { "src".to_string() } else { format!("q{}", i - 1) };
            let to = if i == delays.len() - 1 { "done".to_string() } else { format!("q{i}") };
            src.push_str(&format!(
                "trans t{i}\n  in {from}\n  out {to}\n  delay {d}\n"
            ));
        }
        let text_net = perf_petri::text::parse(&src).expect("generated net parses");
        let rt = run(&text_net, n);
        prop_assert_eq!(rn.makespan, rt.makespan);
        prop_assert_eq!(rn.latencies(), rt.latencies());
    }
}
