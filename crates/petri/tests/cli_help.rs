//! Checks that `pnet --help` and the short usage line stay in sync
//! with the actual subcommand surface — PR 3 added `lint` flags that
//! the usage text missed, and this test makes that class of drift a
//! build failure.

use std::process::Command;

const SUBCOMMANDS: [&str; 6] = ["check", "lint", "bound", "dot", "run", "trace"];
const LINT_FLAGS: [&str; 2] = ["--entry", "--json"];

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pnet"))
        .args(args)
        .output()
        .expect("spawn pnet")
}

#[test]
fn help_mentions_every_subcommand() {
    let out = run(&["--help"]);
    assert!(out.status.success(), "--help should exit 0");
    let text = String::from_utf8(out.stdout).expect("utf8 help");
    for sub in SUBCOMMANDS {
        assert!(
            text.contains(&format!("pnet {sub} ")),
            "help omits subcommand `{sub}`:\n{text}"
        );
    }
    for flag in LINT_FLAGS {
        assert!(
            text.contains(flag),
            "help omits lint flag `{flag}`:\n{text}"
        );
    }
    assert!(
        text.contains("--folded"),
        "help omits trace flag `--folded`:\n{text}"
    );
    assert!(
        text.contains("--perfetto"),
        "help omits trace flag `--perfetto`:\n{text}"
    );
    assert!(
        text.contains("ui.perfetto.dev"),
        "help should say where to open the Chrome trace:\n{text}"
    );
    // The trace-report JSON schema is part of the CLI contract: every
    // top-level field of `trace_report_json` must be named in --help.
    for field in [
        "makespan",
        "events",
        "enablement_checks",
        "firings_recorded",
        "firings_evicted",
        "critical_path_total",
        "transitions[]",
        "critical_path[]",
    ] {
        assert!(
            text.contains(field),
            "help omits trace JSON field `{field}`:\n{text}"
        );
    }
}

#[test]
fn short_usage_mentions_every_subcommand_and_lint_flags() {
    let out = run(&["no-such-subcommand"]);
    assert_eq!(out.status.code(), Some(2), "bad args should exit 2");
    let text = String::from_utf8(out.stderr).expect("utf8 usage");
    for sub in SUBCOMMANDS {
        assert!(
            text.contains(&format!("pnet {sub} ")),
            "usage omits subcommand `{sub}`:\n{text}"
        );
    }
    for flag in LINT_FLAGS {
        assert!(
            text.contains(flag),
            "usage omits lint flag `{flag}`:\n{text}"
        );
    }
    assert!(
        text.contains("--perfetto"),
        "usage omits trace flag `--perfetto`:\n{text}"
    );
}

#[test]
fn trace_perfetto_writes_a_chrome_trace() {
    let dir = std::env::temp_dir().join("pnet-cli-perfetto-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let net = dir.join("tiny.pnet");
    std::fs::write(
        &net,
        "net tiny\n\nplace in\nplace q cap 2\nsink out\n\n\
         trans a\n  in in\n  out q\n  delay 2\n\n\
         trans b\n  in q\n  out out\n  delay 5\n",
    )
    .expect("write net");
    let chrome = dir.join("chrome.json");
    let out = run(&[
        "trace",
        net.to_str().unwrap(),
        "in",
        "4",
        "--perfetto",
        chrome.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "status: {:?}", out.status);
    // The regular JSON report still lands on stdout.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"critical_path_total\""), "{stdout}");
    let doc = std::fs::read_to_string(&chrome).expect("Chrome trace written");
    assert!(doc.contains("\"traceEvents\""));
    assert!(doc.contains("petri:tiny"));
    assert!(doc.contains("critical-path"));
    std::fs::remove_file(&chrome).ok();
    std::fs::remove_file(&net).ok();
}

#[test]
fn trace_perfetto_without_operand_exits_2() {
    let out = run(&["trace", "net.pnet", "in", "4", "--perfetto"]);
    assert_eq!(out.status.code(), Some(2), "missing OUT should exit 2");
    let text = String::from_utf8(out.stderr).expect("utf8 usage");
    assert!(text.contains("usage:"), "stderr was: {text}");
}

#[test]
fn help_aliases_agree() {
    let long = run(&["--help"]);
    for alias in ["-h", "help"] {
        let out = run(&[alias]);
        assert!(out.status.success(), "`{alias}` should exit 0");
        assert_eq!(out.stdout, long.stdout, "`{alias}` differs from --help");
    }
}
