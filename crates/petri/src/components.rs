//! A library of reusable component nets.
//!
//! §5 of the paper: "One possible solution to this challenge could be
//! to develop individual Petri nets for such components once and reuse
//! them across multiple accelerators." This module provides those
//! components — a banked memory system, a TLB front end, and a shared
//! interconnect — as nets with well-known boundary places, ready to be
//! fused onto an accelerator net with [`crate::compose::compose`].
//!
//! Conventions: every component exposes an input place named `req` and
//! a sink named `rsp`. Tokens carry a `bytes` field; delays are PIL
//! expressions so the components ship as text, like any interface.

use crate::net::Net;
use crate::text;
use crate::PetriError;

/// A banked memory system: `banks` parallel service stations behind a
/// shared channel.
///
/// * `req` (cap unbounded) — incoming requests with a `bytes` field.
/// * `rsp` (sink) — completions.
///
/// Delay per request: `lat + bytes / bw`.
pub fn memory_system(banks: usize, lat: u64, bytes_per_cycle: u64) -> Result<Net, PetriError> {
    let src = format!(
        "# Reusable memory-system component (see §5 of the paper).\n\
         net memsys\n\
         const LAT = {lat};\n\
         const BW = {bytes_per_cycle};\n\
         place req\n\
         sink rsp\n\
         trans bank\n\
         \x20 in req\n\
         \x20 out rsp\n\
         \x20 delay LAT + t.bytes / BW\n\
         \x20 servers {banks}\n"
    );
    text::parse(&src)
}

/// A TLB front end: hits pass through in `hit_cycles`, misses pay a
/// page walk. The token's `miss` field (0/1) selects the path —
/// computed upstream by whatever owns the access pattern.
///
/// * `req` — incoming translations.
/// * `rsp` (sink) — completed translations.
pub fn tlb(hit_cycles: u64, walk_cycles: u64) -> Result<Net, PetriError> {
    let src = format!(
        "# Reusable TLB component.\n\
         net tlb\n\
         const HIT = {hit_cycles};\n\
         const WALK = {walk_cycles};\n\
         place req\n\
         sink rsp\n\
         trans hit\n\
         \x20 in req\n\
         \x20 out rsp\n\
         \x20 guard t.miss == 0\n\
         \x20 delay HIT\n\
         \x20 priority 1\n\
         trans miss\n\
         \x20 in req\n\
         \x20 out rsp\n\
         \x20 guard t.miss == 1\n\
         \x20 delay HIT + WALK\n"
    );
    text::parse(&src)
}

/// A shared interconnect: a single channel all requesters contend for,
/// `flit_cycles` per `flit_bytes` of payload.
///
/// * `req` — incoming transfers with a `bytes` field.
/// * `rsp` (sink) — delivered transfers.
pub fn interconnect(flit_bytes: u64, flit_cycles: u64) -> Result<Net, PetriError> {
    let src = format!(
        "# Reusable interconnect component: one shared channel.\n\
         net noc\n\
         const FLIT_BYTES = {flit_bytes};\n\
         const FLIT_CYCLES = {flit_cycles};\n\
         place req\n\
         sink rsp\n\
         trans channel\n\
         \x20 in req\n\
         \x20 out rsp\n\
         \x20 delay ceil(t.bytes / FLIT_BYTES) * FLIT_CYCLES\n"
    );
    text::parse(&src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::compose;
    use crate::engine::{Engine, Options};
    use crate::token::Token;
    use perf_iface_lang::Value;

    fn bytes_token(bytes: f64, miss: f64) -> Token {
        Token::at(
            Value::record([("bytes", Value::num(bytes)), ("miss", Value::num(miss))]),
            0,
        )
    }

    #[test]
    fn memory_system_banks_run_in_parallel() {
        let net = memory_system(4, 100, 16).expect("parses");
        let req = net.place_id("req").expect("req");
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..4 {
            e.inject(req, bytes_token(160.0, 0.0));
        }
        let res = e.run().expect("runs");
        // Four banks: all requests serviced concurrently in 100+10.
        assert_eq!(res.makespan, 110);
        assert_eq!(res.completions.len(), 4);
        // One bank would serialize them.
        let net1 = memory_system(1, 100, 16).expect("parses");
        let req1 = net1.place_id("req").expect("req");
        let mut e1 = Engine::new(&net1, Options::default());
        for _ in 0..4 {
            e1.inject(req1, bytes_token(160.0, 0.0));
        }
        assert_eq!(e1.run().expect("runs").makespan, 440);
    }

    #[test]
    fn tlb_routes_hits_and_misses() {
        let net = tlb(2, 50).expect("parses");
        let req = net.place_id("req").expect("req");
        let mut e = Engine::new(&net, Options::default());
        e.inject(req, bytes_token(0.0, 0.0)); // Hit.
        e.inject(req, bytes_token(0.0, 1.0)); // Miss.
        let res = e.run().expect("runs");
        let lats = res.latencies();
        assert!(lats.contains(&2));
        assert!(lats.contains(&(2 + 50 + 2)) || lats.contains(&52));
        assert_eq!(res.completions.len(), 2);
    }

    #[test]
    fn accelerator_composed_with_interconnect() {
        // §5's SmartNIC point: an accelerator's net composed with a
        // shared-interconnect component. A 10-cycle engine feeds
        // transfers into the NoC; end-to-end latency includes both.
        let engine = text::parse(
            "net engine\nplace jobs\nsink out\ntrans work\n  in jobs\n  out out\n  delay 10\n  emit out { bytes: t.bytes }\n",
        )
        .expect("parses");
        let noc = interconnect(16, 1).expect("parses");
        let system = compose(engine, noc, &[("out", "req")], "engine_plus_noc").expect("composes");
        let jobs = system.place_id("jobs").expect("jobs");
        let mut e = Engine::new(&system, Options::default());
        for _ in 0..3 {
            e.inject(jobs, bytes_token(64.0, 0.0));
        }
        let res = e.run().expect("runs");
        assert_eq!(res.completions.len(), 3);
        // Engine 10/job serializes; each transfer takes 4 flits.
        // Last job finishes engine at 30, then 4 cycles of NoC.
        assert_eq!(res.makespan, 34);
        // Per-job latency: 10 (queued behind predecessors) + 4.
        assert_eq!(res.latencies().last(), Some(&34));
    }

    #[test]
    fn components_are_shippable_text() {
        // Each component's net round-trips through the .pnet parser by
        // construction; check they also analyze cleanly.
        for net in [
            memory_system(2, 80, 16).expect("parses"),
            tlb(1, 40).expect("parses"),
            interconnect(32, 2).expect("parses"),
        ] {
            let s = crate::analysis::structure(&net);
            assert!(s.dead_ends.is_empty());
            assert_eq!(s.sinks, vec!["rsp"]);
        }
    }
}
