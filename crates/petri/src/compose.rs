//! Net composition: gluing component nets together.
//!
//! §5 of the paper proposes building Petri nets for shared structures
//! (TLBs, interconnects, memory systems) *once* and reusing them across
//! accelerators. That requires composition: merging two nets by
//! identifying boundary places — tokens leaving one component's output
//! place flow into the other's input place.
//!
//! `compose(a, b, glue)` produces a net containing both components'
//! places and transitions, with each `(a_place, b_place)` pair in
//! `glue` fused into a single place. Ungled names from `b` are
//! prefixed with `"{b.name}."` to avoid collisions.

use crate::net::{Net, PlaceId};
use crate::PetriError;

/// Composes two nets by fusing the given boundary places.
///
/// For each `(in_a, in_b)` pair, the place named `in_a` in `a` and the
/// place named `in_b` in `b` become one place with the **minimum** of
/// the two capacities (`None` = unbounded, so `min(None, Some(c)) =
/// Some(c)`). Taking the min preserves both components' backpressure
/// guarantees: neither side ever sees more tokens buffered at the
/// boundary than its own model allowed. The fused place is a sink only
/// if *both* glued places are sinks; gluing a sink of `a` to a consumed
/// place of `b` clears the flag (tokens now flow onward instead of
/// completing).
pub fn compose(a: Net, b: Net, glue: &[(&str, &str)], name: &str) -> Result<Net, PetriError> {
    // Resolve glue pairs up front. Each place — on *either* side — may
    // appear in at most one pair: repeating a `b` place would give one
    // consumer two producers' identities, and repeating an `a` place
    // would three-way-merge places with no defined token-flow
    // semantics. Fan-out/fan-in must be modeled with explicit router
    // or merge transitions, not by aliasing the glue.
    let mut b_to_a: Vec<Option<PlaceId>> = vec![None; b.places().len()];
    let mut a_glued: Vec<bool> = vec![false; a.places().len()];
    for (an, bn) in glue {
        let pa = a.place_id(an).ok_or_else(|| {
            PetriError::Structure(format!("glue place `{an}` not in `{}`", a.name))
        })?;
        let pb = b.place_id(bn).ok_or_else(|| {
            PetriError::Structure(format!("glue place `{bn}` not in `{}`", b.name))
        })?;
        if b_to_a[pb.index()].is_some() {
            return Err(PetriError::Structure(format!(
                "place `{bn}` glued more than once"
            )));
        }
        if std::mem::replace(&mut a_glued[pa.index()], true) {
            return Err(PetriError::Structure(format!(
                "place `{an}` glued more than once"
            )));
        }
        b_to_a[pb.index()] = Some(pa);
    }

    let Net {
        mut places,
        mut transitions,
        ..
    } = a;

    // Import b's places, remapping ids. Glued places merge their
    // attributes into a's place instead of being dropped wholesale:
    // capacity takes the min (both components' backpressure bounds
    // hold), and the sink flag survives only if both sides are sinks.
    let b_prefix = format!("{}.", b.name);
    let Net {
        places: b_places,
        transitions: b_transitions,
        ..
    } = b;
    let mut b_map: Vec<PlaceId> = Vec::with_capacity(b_places.len());
    for (i, mut p) in b_places.into_iter().enumerate() {
        if let Some(target) = b_to_a[i] {
            let fused = &mut places[target.index()];
            fused.capacity = match (fused.capacity, p.capacity) {
                (Some(ca), Some(cb)) => Some(ca.min(cb)),
                (Some(c), None) | (None, Some(c)) => Some(c),
                (None, None) => None,
            };
            fused.is_sink = fused.is_sink && p.is_sink;
            b_map.push(target);
        } else {
            p.name = format!("{b_prefix}{}", p.name);
            places.push(p);
            b_map.push(PlaceId(places.len() - 1));
        }
    }

    for mut t in b_transitions {
        t.name = format!("{b_prefix}{}", t.name);
        for (p, _) in t.inputs.iter_mut().chain(t.outputs.iter_mut()) {
            *p = b_map[p.index()];
        }
        transitions.push(t);
    }

    let composed = Net::assemble(name.to_string(), places, transitions);
    // Re-validate the merged structure (e.g. a glued sink must not be
    // consumed from).
    revalidate(&composed)?;
    Ok(composed)
}

fn revalidate(net: &Net) -> Result<(), PetriError> {
    for t in net.transitions() {
        let mut in_places = std::collections::HashSet::new();
        for &(p, _) in &t.inputs {
            if net.places()[p.index()].is_sink {
                return Err(PetriError::Structure(format!(
                    "transition `{}` consumes from sink `{}` after composition",
                    t.name,
                    net.places()[p.index()].name
                )));
            }
            // Gluing two of a transition's input places into one would
            // make it select overlapping FIFO heads.
            if !in_places.insert(p.index()) {
                return Err(PetriError::Structure(format!(
                    "transition `{}` has duplicate input arcs from `{}` after composition",
                    t.name,
                    net.places()[p.index()].name
                )));
            }
        }
    }
    let mut names = std::collections::HashSet::new();
    for p in net.places() {
        if !names.insert(&p.name) {
            return Err(PetriError::Structure(format!(
                "duplicate place `{}` after composition",
                p.name
            )));
        }
    }
    Ok(())
}

/// Convenience: validates that `t` is exported unchanged (used by
/// tests poking at composition internals).
pub fn transition_names(net: &Net) -> Vec<String> {
    net.transitions().iter().map(|t| t.name.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Options};
    use crate::net::NetBuilder;
    use crate::token::Token;
    use perf_iface_lang::Value;

    /// Front component: a 3-cycle stage ending in a boundary place.
    fn front() -> Net {
        let mut b = NetBuilder::new("front");
        let src = b.place("src", None);
        let out = b.sink("boundary_out");
        b.transition(
            "stage_a",
            &[src],
            &[out],
            |_| 3,
            |ts| vec![ts[0].data.clone()],
        );
        b.build().expect("valid")
    }

    /// Back component: consumes from a boundary place, 5-cycle stage.
    fn back() -> Net {
        let mut b = NetBuilder::new("back");
        let inp = b.place("boundary_in", Some(2));
        let done = b.sink("done");
        b.transition(
            "stage_b",
            &[inp],
            &[done],
            |_| 5,
            |ts| vec![ts[0].data.clone()],
        );
        b.build().expect("valid")
    }

    /// The monolithic equivalent of front ∘ back.
    fn monolithic() -> Net {
        let mut b = NetBuilder::new("mono");
        let src = b.place("src", None);
        let mid = b.place("mid", None);
        let done = b.sink("done");
        b.transition(
            "stage_a",
            &[src],
            &[mid],
            |_| 3,
            |ts| vec![ts[0].data.clone()],
        );
        b.transition(
            "stage_b",
            &[mid],
            &[done],
            |_| 5,
            |ts| vec![ts[0].data.clone()],
        );
        b.build().expect("valid")
    }

    fn run(net: &Net, n: usize) -> crate::engine::SimResult {
        let src = net.place_id("src").expect("src");
        let mut e = Engine::new(net, Options::default());
        for i in 0..n {
            e.inject(src, Token::at(Value::num(i as f64), 0));
        }
        e.run().expect("runs")
    }

    #[test]
    fn composition_equals_monolithic() {
        let composed =
            compose(front(), back(), &[("boundary_out", "boundary_in")], "pipe").expect("composes");
        let rc = run(&composed, 20);
        let rm = run(&monolithic(), 20);
        assert_eq!(rc.completions.len(), 20);
        assert_eq!(rc.makespan, rm.makespan);
        assert_eq!(rc.latencies(), rm.latencies());
    }

    #[test]
    fn glued_sink_becomes_interior() {
        let composed =
            compose(front(), back(), &[("boundary_out", "boundary_in")], "pipe").expect("composes");
        let pid = composed.place_id("boundary_out").expect("kept a's name");
        assert!(!composed.places()[pid.index()].is_sink);
        // The back component's remaining places got prefixed.
        assert!(composed.place_id("back.done").is_some());
        assert!(transition_names(&composed).contains(&"back.stage_b".to_string()));
    }

    #[test]
    fn unknown_glue_place_rejected() {
        assert!(compose(front(), back(), &[("nope", "boundary_in")], "x").is_err());
        assert!(compose(front(), back(), &[("boundary_out", "nope")], "x").is_err());
    }

    #[test]
    fn double_glue_rejected() {
        let mut b = NetBuilder::new("two_outs");
        let src = b.place("src", None);
        let o1 = b.sink("o1");
        let o2 = b.sink("o2");
        b.transition(
            "t",
            &[src],
            &[o1, o2],
            |_| 1,
            |ts| vec![ts[0].data.clone(), ts[0].data.clone()],
        );
        let a = b.build().expect("valid");
        assert!(compose(
            a,
            back(),
            &[("o1", "boundary_in"), ("o2", "boundary_in")],
            "x"
        )
        .is_err());
    }

    #[test]
    fn double_glue_of_one_a_place_rejected() {
        // The dual of `double_glue_rejected`: one producer place named
        // in two pairs would merge both consumer inputs into it — a
        // three-way fusion that silently aliased fan-out before the
        // check existed.
        let mut b = NetBuilder::new("two_ins");
        let i1 = b.place("i1", Some(2));
        let i2 = b.place("i2", Some(2));
        let done = b.sink("done");
        b.transition("t1", &[i1], &[done], |_| 1, |ts| vec![ts[0].data.clone()]);
        b.transition("t2", &[i2], &[done], |_| 1, |ts| vec![ts[0].data.clone()]);
        let consumer = b.build().expect("valid");
        let err = compose(
            front(),
            consumer,
            &[("boundary_out", "i1"), ("boundary_out", "i2")],
            "x",
        )
        .expect_err("same a place in two pairs must be rejected");
        assert!(err.to_string().contains("glued more than once"), "{err}");
    }

    #[test]
    fn fused_capacity_takes_min() {
        // a's boundary is an unbounded sink; b's input holds 2. The
        // fused place must take b's bound — keeping a's unbounded
        // capacity would silently erase b's backpressure semantics.
        let composed =
            compose(front(), back(), &[("boundary_out", "boundary_in")], "pipe").expect("composes");
        let pid = composed.place_id("boundary_out").expect("kept a's name");
        assert_eq!(composed.places()[pid.index()].capacity, Some(2));

        // Both bounded: min wins, in either orientation.
        let bounded_front = |cap| {
            let mut b = NetBuilder::new("front");
            let src = b.place("src", None);
            let out = b.place("boundary_out", Some(cap));
            let done = b.sink("adrain");
            b.transition("fill", &[src], &[out], |_| 1, |ts| vec![ts[0].data.clone()]);
            b.transition(
                "adrain_t",
                &[out],
                &[done],
                |_| 1,
                |ts| vec![ts[0].data.clone()],
            );
            b.build().expect("valid")
        };
        let c = compose(
            bounded_front(7),
            back(),
            &[("boundary_out", "boundary_in")],
            "x",
        )
        .expect("composes");
        let pid = c.place_id("boundary_out").expect("place");
        assert_eq!(c.places()[pid.index()].capacity, Some(2));
        let c = compose(
            bounded_front(1),
            back(),
            &[("boundary_out", "boundary_in")],
            "y",
        )
        .expect("composes");
        let pid = c.place_id("boundary_out").expect("place");
        assert_eq!(c.places()[pid.index()].capacity, Some(1));
    }

    #[test]
    fn fused_capacity_matches_monolithic_backpressure() {
        // Fast producer (1 cy) into a 5-cycle consumer through a
        // 2-deep boundary: the composed net must reproduce the
        // monolithic bounded-queue timing exactly.
        let fast_front = || {
            let mut b = NetBuilder::new("front");
            let src = b.place("src", None);
            let out = b.sink("boundary_out");
            b.transition(
                "stage_a",
                &[src],
                &[out],
                |_| 1,
                |ts| vec![ts[0].data.clone()],
            );
            b.build().expect("valid")
        };
        let mono = {
            let mut b = NetBuilder::new("mono");
            let src = b.place("src", None);
            let mid = b.place("mid", Some(2));
            let done = b.sink("done");
            b.transition(
                "stage_a",
                &[src],
                &[mid],
                |_| 1,
                |ts| vec![ts[0].data.clone()],
            );
            b.transition(
                "stage_b",
                &[mid],
                &[done],
                |_| 5,
                |ts| vec![ts[0].data.clone()],
            );
            b.build().expect("valid")
        };
        let composed = compose(
            fast_front(),
            back(),
            &[("boundary_out", "boundary_in")],
            "pipe",
        )
        .expect("composes");
        let rc = run(&composed, 16);
        let rm = run(&mono, 16);
        assert_eq!(rc.completions.len(), 16);
        assert_eq!(rc.makespan, rm.makespan);
        assert_eq!(rc.latencies(), rm.latencies());
    }

    #[test]
    fn glued_sink_stays_sink_when_both_sides_are_sinks() {
        // Two components whose *final* places are fused: nobody
        // consumes from the fused place, so it must stay a sink —
        // clearing the flag would strand every completed token.
        let other = {
            let mut b = NetBuilder::new("other");
            let src = b.place("src2", None);
            let done = b.sink("done2");
            b.transition(
                "stage_o",
                &[src],
                &[done],
                |_| 7,
                |ts| vec![ts[0].data.clone()],
            );
            b.build().expect("valid")
        };
        let composed =
            compose(front(), other, &[("boundary_out", "done2")], "merged").expect("composes");
        let pid = composed.place_id("boundary_out").expect("kept a's name");
        assert!(composed.places()[pid.index()].is_sink);

        let src = composed.place_id("src").expect("src");
        let src2 = composed.place_id("other.src2").expect("src2");
        let mut e = Engine::new(&composed, Options::default());
        e.inject(src, Token::at(Value::num(0.0), 0));
        e.inject(src2, Token::at(Value::num(1.0), 0));
        let res = e.run().expect("runs");
        assert_eq!(res.completions.len(), 2);
        assert!(res.stranded.is_empty());
    }

    #[test]
    fn composed_expr_nets_work() {
        // Compose two nets parsed from `.pnet` text — the shipped-
        // artifact path of §5's reuse story.
        let producer = crate::text::parse(
            "net producer\nplace src\nsink out\ntrans p\n  in src\n  out out\n  delay t.cost\n",
        )
        .expect("parses");
        let memsys = crate::text::parse(
            "net memsys\nplace req cap 8\nsink served\ntrans serve\n  in req\n  out served\n  delay 40 + t.cost / 2\n",
        )
        .expect("parses");
        let composed = compose(producer, memsys, &[("out", "req")], "pipeline").expect("composes");
        let src = composed.place_id("src").expect("src");
        let mut e = Engine::new(&composed, Options::default());
        for _ in 0..4 {
            e.inject(
                src,
                Token::at(Value::record([("cost", Value::num(10.0))]), 0),
            );
        }
        let res = e.run().expect("runs");
        assert_eq!(res.completions.len(), 4);
        // Serial: producer 10/token (bottleneck is memsys at 45).
        assert_eq!(res.makespan, 10 + 4 * 45);
    }
}
