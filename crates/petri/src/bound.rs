//! Structural performance bounds extracted from net topology — no
//! simulation involved.
//!
//! This is the Petri-net half of the cross-tier consistency pass
//! (`perf-xcheck`). A timed net makes two kinds of structural promise
//! that can be read straight off its topology once every transition's
//! delay is enclosed in an interval (via
//! [`crate::behavior::Behavior::delay_interval`] over a declared token box):
//!
//! * **Critical-path latency floor** — a token injected at an entry
//!   place must traverse *some* place→transition→place path to reach a
//!   sink, and each transition on the path holds it for at least the
//!   delay's lower bound. The cheapest such path is a guaranteed lower
//!   bound on per-item latency: queueing, arc weights > 1 and finite
//!   servers only ever add to it.
//! * **Bottleneck throughput ceiling** — a transition whose removal
//!   disconnects every entry from every sink is on *every*
//!   entry-to-sink path, so sustained throughput cannot exceed its
//!   service rate `servers / delay_lo`. The ceiling is the minimum over
//!   all such cut transitions (infinite-server or possibly-zero-delay
//!   transitions impose none). For chain-shaped nets — the shape the
//!   [`crate::CompiledNet`] rank-1 stepper specializes — every
//!   transition is a cut, so this degenerates to the classic
//!   bottleneck-stage bound.
//!
//! Both bounds are *sound, not tight*: the program tier's interval must
//! lie above the latency floor and below the throughput ceiling, which
//! is exactly the containment direction `perf-xcheck` checks (`XT101`/
//! `XT102`).

use crate::lint::infer_entries;
use crate::net::{Net, PlaceId};
use perf_iface_lang::lint::{BoxVal, Interval};

/// Structural bounds extracted from a net's topology.
#[derive(Clone, Debug)]
pub struct NetBounds {
    /// Guaranteed per-item latency lower bound in cycles: the cheapest
    /// entry→sink path using each transition's delay lower bound.
    pub latency_lo: f64,
    /// Structural throughput ceiling in items/cycle: the tightest
    /// `servers / delay_lo` over cut transitions, or `+inf` when no
    /// finite-rate transition is unavoidable.
    pub throughput_hi: f64,
    /// Per-transition delay enclosures, in declaration order.
    pub delays: Vec<(String, Interval)>,
    /// Entry places the bounds were computed from (declared or
    /// inferred).
    pub entries: Vec<String>,
}

/// Extracts [`NetBounds`] from `net` for tokens drawn from the box
/// `tok`. `entries` defaults to the structurally source-like places
/// ([`infer_entries`]) when `None`. Errors when the net has no entry or
/// no sink is reachable from the entries — there is no entry→sink
/// story to bound.
pub fn bounds(net: &Net, entries: Option<&[PlaceId]>, tok: &BoxVal) -> Result<NetBounds, String> {
    let entry_ids: Vec<PlaceId> = match entries {
        Some(es) => es.to_vec(),
        None => infer_entries(net),
    };
    if entry_ids.is_empty() {
        return Err(format!(
            "net `{}` has no entry places (none declared, none source-like)",
            net.name
        ));
    }
    let delays: Vec<Interval> = net
        .transitions()
        .iter()
        .map(|t| t.behavior.delay_interval(tok))
        .collect();

    let latency_lo = critical_path_floor(net, &entry_ids, &delays)?;
    let throughput_hi = bottleneck_ceiling(net, &entry_ids, &delays);

    Ok(NetBounds {
        latency_lo,
        throughput_hi,
        delays: net
            .transitions()
            .iter()
            .zip(&delays)
            .map(|(t, iv)| (t.name.clone(), *iv))
            .collect(),
        entries: entry_ids
            .iter()
            .map(|p| net.places()[p.index()].name.clone())
            .collect(),
    })
}

/// Convenience wrapper for callers holding an unknown token payload:
/// bounds over the universal box `[0, +inf]` (every field of every
/// token abstracts to "any non-negative number").
pub fn bounds_any(net: &Net, entries: Option<&[PlaceId]>) -> Result<NetBounds, String> {
    bounds(net, entries, &BoxVal::num(0.0, f64::INFINITY))
}

/// Cheapest entry→sink path cost, where entering place `q` through
/// transition `t` costs `delay_lo(t)`. Bellman-Ford-style relaxation to
/// a fixpoint — delays are non-negative and nets are tiny, so the
/// simple loop beats carrying a priority queue.
fn critical_path_floor(net: &Net, entries: &[PlaceId], delays: &[Interval]) -> Result<f64, String> {
    let n = net.places().len();
    let mut dist = vec![f64::INFINITY; n];
    for p in entries {
        dist[p.index()] = 0.0;
    }
    loop {
        let mut changed = false;
        for (ti, t) in net.transitions().iter().enumerate() {
            // A transition cannot fire before every input place has
            // been reached; its outputs appear delay_lo later than the
            // *latest* input. Using the max over inputs keeps the
            // bound sound for joins (both operands must arrive).
            let from = t
                .inputs
                .iter()
                .map(|(p, _)| dist[p.index()])
                .fold(0.0_f64, f64::max);
            if !from.is_finite() {
                continue;
            }
            let cost = from + delays[ti].lo.max(0.0);
            for (q, _) in &t.outputs {
                if cost < dist[q.index()] {
                    dist[q.index()] = cost;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    net.places()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.is_sink)
        .map(|(i, _)| dist[i])
        .fold(None, |acc: Option<f64>, d| {
            Some(acc.map_or(d, |a| a.min(d)))
        })
        .filter(|d| d.is_finite())
        .ok_or_else(|| {
            format!(
                "net `{}`: no sink is reachable from the entry places",
                net.name
            )
        })
}

/// Minimum service rate over cut transitions. A transition is a cut
/// when removing it leaves no sink reachable from any entry; its rate
/// is `servers / delay_lo` (`servers == 0` means infinite-server, and
/// `delay_lo == 0` allows unbounded rate — neither constrains).
fn bottleneck_ceiling(net: &Net, entries: &[PlaceId], delays: &[Interval]) -> f64 {
    let mut ceiling = f64::INFINITY;
    for (ti, t) in net.transitions().iter().enumerate() {
        if t.servers == 0 || delays[ti].lo <= 0.0 {
            continue;
        }
        if sink_reachable(net, entries, Some(ti)) {
            continue;
        }
        let rate = t.servers as f64 / delays[ti].lo;
        ceiling = ceiling.min(rate);
    }
    ceiling
}

/// Whether any sink is reachable from the entries when transition
/// `skip` is removed from the net.
fn sink_reachable(net: &Net, entries: &[PlaceId], skip: Option<usize>) -> bool {
    let n = net.places().len();
    let mut seen = vec![false; n];
    let mut work: Vec<usize> = entries.iter().map(|p| p.index()).collect();
    for &p in &work {
        seen[p] = true;
    }
    while let Some(p) = work.pop() {
        if net.places()[p].is_sink {
            return true;
        }
        for &ti in &net.consumers[p] {
            if Some(ti) == skip {
                continue;
            }
            for (q, _) in &net.transitions()[ti].outputs {
                if !seen[q.index()] {
                    seen[q.index()] = true;
                    work.push(q.index());
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{fixed_delay, Behavior, ExprBehavior};
    use crate::net::{NetBuilder, Transition};

    fn expr(delay: &str) -> Behavior {
        Behavior::Expr(ExprBehavior::compile("", delay, None, &[None]).unwrap())
    }

    /// in -> a(d=5) -> mid -> b(d=7) -> out
    fn chain() -> Net {
        let mut b = NetBuilder::new("chain");
        let i = b.place("in", None);
        let m = b.place("mid", Some(4));
        let z = b.sink("out");
        b.add_transition(Transition {
            name: "a".into(),
            inputs: vec![(i, 1)],
            outputs: vec![(m, 1)],
            behavior: expr("5"),
            servers: 1,
            priority: 0,
        });
        b.add_transition(Transition {
            name: "b".into(),
            inputs: vec![(m, 1)],
            outputs: vec![(z, 1)],
            behavior: expr("7"),
            servers: 1,
            priority: 0,
        });
        b.build().unwrap()
    }

    #[test]
    fn chain_bounds_are_sum_and_bottleneck() {
        let nb = bounds_any(&chain(), None).unwrap();
        assert_eq!(nb.latency_lo, 12.0);
        assert_eq!(nb.throughput_hi, 1.0 / 7.0);
        assert_eq!(nb.entries, vec!["in".to_string()]);
        assert_eq!(nb.delays[0].1, Interval::point(5.0));
    }

    #[test]
    fn fork_takes_cheapest_path_and_shared_cut() {
        // in -> fast(2) -> out ; in -> slow(9) -> out: neither branch
        // is a cut, so no finite ceiling; floor is the fast path.
        let mut b = NetBuilder::new("fork");
        let i = b.place("in", None);
        let z = b.sink("out");
        for (name, d) in [("fast", "2"), ("slow", "9")] {
            b.add_transition(Transition {
                name: name.into(),
                inputs: vec![(i, 1)],
                outputs: vec![(z, 1)],
                behavior: expr(d),
                servers: 1,
                priority: 0,
            });
        }
        let nb = bounds_any(&b.build().unwrap(), None).unwrap();
        assert_eq!(nb.latency_lo, 2.0);
        assert_eq!(nb.throughput_hi, f64::INFINITY);
    }

    #[test]
    fn multi_server_raises_ceiling() {
        let mut b = NetBuilder::new("ms");
        let i = b.place("in", None);
        let z = b.sink("out");
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![(i, 1)],
            outputs: vec![(z, 1)],
            behavior: expr("4"),
            servers: 3,
            priority: 0,
        });
        let nb = bounds_any(&b.build().unwrap(), None).unwrap();
        assert_eq!(nb.throughput_hi, 3.0 / 4.0);
        // Infinite-server: no constraint.
        let mut b = NetBuilder::new("inf");
        let i = b.place("in", None);
        let z = b.sink("out");
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![(i, 1)],
            outputs: vec![(z, 1)],
            behavior: expr("4"),
            servers: 0,
            priority: 0,
        });
        let nb = bounds_any(&b.build().unwrap(), None).unwrap();
        assert_eq!(nb.throughput_hi, f64::INFINITY);
    }

    #[test]
    fn token_dependent_delay_uses_box() {
        let mut b = NetBuilder::new("tok");
        let i = b.place("in", None);
        let z = b.sink("out");
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![(i, 1)],
            outputs: vec![(z, 1)],
            behavior: expr("10 + t.bits / 2"),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let tok = BoxVal::record([("bits", BoxVal::num(8.0, 64.0))]);
        let nb = bounds(&net, None, &tok).unwrap();
        assert_eq!(nb.latency_lo, 14.0);
        assert_eq!(nb.throughput_hi, 1.0 / 14.0);
        assert_eq!(nb.delays[0].1, Interval::new(14.0, 42.0));
        // The universal box still gives the constant part as floor.
        let nb = bounds_any(&net, None).unwrap();
        assert_eq!(nb.latency_lo, 10.0);
    }

    #[test]
    fn native_behavior_is_opaque() {
        let mut b = NetBuilder::new("nat");
        let i = b.place("in", None);
        let z = b.sink("out");
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![(i, 1)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(9, 1),
            servers: 1,
            priority: 0,
        });
        let nb = bounds_any(&b.build().unwrap(), None).unwrap();
        assert_eq!(nb.latency_lo, 0.0);
        assert_eq!(nb.throughput_hi, f64::INFINITY);
    }

    #[test]
    fn join_waits_for_latest_input() {
        // in1 -> a(3) -> m1 ; in2 -> b(8) -> m2 ; join(m1, m2, d=1) -> out.
        let mut b = NetBuilder::new("join");
        let i1 = b.place("in1", None);
        let i2 = b.place("in2", None);
        let m1 = b.place("m1", None);
        let m2 = b.place("m2", None);
        let z = b.sink("out");
        for (name, d, i, m) in [("a", "3", i1, m1), ("b", "8", i2, m2)] {
            b.add_transition(Transition {
                name: name.into(),
                inputs: vec![(i, 1)],
                outputs: vec![(m, 1)],
                behavior: expr(d),
                servers: 1,
                priority: 0,
            });
        }
        b.add_transition(Transition {
            name: "join".into(),
            inputs: vec![(m1, 1), (m2, 1)],
            outputs: vec![(z, 1)],
            behavior: expr("1"),
            servers: 1,
            priority: 0,
        });
        let nb = bounds_any(&b.build().unwrap(), None).unwrap();
        // Both inputs must arrive: 8 (slow side) + 1.
        assert_eq!(nb.latency_lo, 9.0);
        // The join is a cut with delay 1.
        assert_eq!(nb.throughput_hi, 1.0);
    }

    #[test]
    fn unreachable_sink_is_an_error() {
        let mut b = NetBuilder::new("cut");
        let i = b.place("in", None);
        let m = b.place("m", None);
        b.sink("out");
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![(i, 1)],
            outputs: vec![(m, 1)],
            behavior: expr("1"),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        assert!(bounds_any(&net, None).is_err());
    }
}
