//! Compiled static-topology stepper: a specialization pass over a net
//! plus the runtime that executes the specialized form.
//!
//! [`crate::Engine`] is a general interpreter: every firing re-reads
//! the net's arc lists through `Vec<Vec<_>>` indirection, boxes each
//! consumed token through [`crate::token::Token`] clones, allocates a
//! fresh output vector, and funnels every event through a
//! `BinaryHeap`. For a net whose topology never changes — which is
//! every net, since nets are immutable after
//! [`crate::net::NetBuilder::build`] — all of that can be decided
//! once. [`CompiledNet::compile`] lowers a net into:
//!
//! * **monomorphized adjacency** — input/output arcs in flat arrays
//!   with precomputed per-arc capacity-prior sums, so an enablement
//!   check is a handful of array reads;
//! * **classified behaviors** — each transition's delay, guard and
//!   emits are resolved at compile time to a constant, a closed-form
//!   [`CExpr`], or a dynamic fallback, so the hot path never touches
//!   the interpreter;
//! * **branchless enabled-set maintenance** — the set of transitions a
//!   firing or deposit can wake is precomputed as bitmask words that
//!   are OR-ed into the dirty set, replacing per-arc adjacency walks;
//! * **arena/SoA token storage** — payloads, birth and arrival cycles
//!   live in parallel arrays indexed by `u32` handles; place queues
//!   hold handles, and a pass-through firing re-stamps a handle's
//!   arrival cycle instead of moving 40-byte tokens;
//! * **event-driven time-skip** — a calendar wheel with an occupancy
//!   bitmap finds the next populated cycle with a `trailing_zeros`
//!   scan, so a thousand idle cycles cost one word test (events past
//!   the wheel horizon overflow into a far heap, preserving the
//!   engine's exact `(time, sequence)` order).
//!
//! The stepper is *observably identical* to [`crate::Engine::run`]:
//! same completions (payload, birth, arrival, order), same makespan,
//! same event and firing counts, even the same `enablement_checks` —
//! it runs the same pass-structured dirty-set algorithm, just on
//! specialized data. The differential suite in
//! `tests/stepper_equivalence.rs` holds all three evaluators (compiled,
//! incremental, reference) to that contract. The one exception is
//! tracing: a [`crate::Options::trace`] request falls back to the
//! interpreted engine, which carries the provenance machinery.

use crate::behavior::Behavior;
use crate::compile::CExpr;
use crate::engine::{Engine, Options, SimResult};
use crate::net::{Net, PlaceId};
use crate::token::Token;
use crate::PetriError;
use perf_iface_lang::Value;
use std::collections::BinaryHeap;

/// Calendar-wheel width in cycles (power of two). Events scheduled
/// further than this past the current cycle overflow to the far heap.
const WHEEL: usize = 256;
const WMASK: u64 = (WHEEL as u64) - 1;

/// How a transition's delay is computed.
enum DelayPlan {
    /// Workload-independent: folded to a constant at compile time.
    Const(u64),
    /// Closed-form expression over the consumed payloads.
    Expr(CExpr),
}

/// How a transition's guard is evaluated.
enum GuardPlan {
    /// No guard: tokens are consumed unconditionally.
    Free,
    /// Closed-form boolean expression.
    Expr(CExpr),
    /// Fallback through [`Behavior::guard`] (native closures or
    /// interpreter-only expressions).
    Dyn,
}

/// How one output arc's payload is produced.
enum EmitPlan {
    /// The first consumed payload passes through unchanged.
    Passthrough,
    /// Closed-form expression over the consumed payloads.
    Expr(CExpr),
}

/// How a transition fires once its guard has passed.
enum FirePlan {
    /// Fallback through [`Behavior::fire`] (native closures,
    /// interpreter-only expressions, or arity mismatches whose error
    /// must surface at fire time).
    Dyn,
    /// Fully specialized delay + per-arc emits.
    Fast {
        delay: DelayPlan,
        emits: Vec<EmitPlan>,
        /// Whether delay/emit evaluation needs the payload list.
        needs_ts: bool,
        /// Single-input, single-output, weight-1, pass-through: the
        /// consumed token handle is re-stamped and forwarded with zero
        /// payload traffic.
        reuse: bool,
    },
}

/// Dense per-transition record for the fused pipeline-stage path (one
/// weight-1 input, one weight-1 output, constant delay, no guard,
/// pass-through emit): everything an enablement check or firing needs
/// in one 32-byte load, including the wake-fire dirty-set update.
/// `servers == 0` marks a transition the fused path does not cover
/// (real unlimited-server bounds fold to `u32::MAX`), so dispatch is a
/// single compare on the loaded record. Check outcomes and counter
/// updates are identical to the general `Fast { reuse: true }` path —
/// the same semantics, flattened.
#[derive(Clone, Copy)]
struct ChainCore {
    delay: u32,
    in_place: u32,
    out_place: u32,
    /// Capacity headroom bound: firing is blocked when
    /// `queue_len + reserved > cap_lim` at the output place
    /// (`u32::MAX` = unbounded, check passes vacuously).
    cap_lim: u32,
    /// Server bound with 0-means-unlimited folded to `u32::MAX`;
    /// `0` = this transition is not chain-shaped.
    servers: u32,
}

/// A [`ChainCore`] plus its wake-fire dirty-set update.
#[derive(Clone, Copy)]
struct ChainPlan {
    core: ChainCore,
    /// Dirty word the inlined wake-fire mask ORs into.
    wake_w: u32,
    /// Wake-fire bits for `dirty[wake_w]`.
    wake_bits: u64,
}

impl ChainCore {
    const INACTIVE: ChainCore = ChainCore {
        delay: 0,
        in_place: 0,
        out_place: 0,
        cap_lim: 0,
        servers: 0,
    };
}

/// A dirty-set rank paired with the plan of the transition holding it:
/// exactly 32 bytes, so the rank table packs two entries per cache
/// line with no straddling.
#[derive(Clone, Copy)]
struct RankEntry {
    core: ChainCore,
    ti: u32,
    /// Wake-fire bits (the word is always 0 in a [`Rank1`] net).
    wake_bits: u64,
}

/// The fully-fused tier: every transition is chain-shaped and all
/// ranks fit one dirty word, so [`Stepper::run_chain`] can keep the
/// entire dirty set in a register for the whole run. Entries are
/// indexed by *rank* (dirty-bit position), collapsing the general
/// scan's rank → `order` → `chain` double indirection into one load;
/// the fixed 64-entry table makes `rank & 63` indexing bounds-check
/// free. All wake masks are single-word here (one dirty word exists),
/// so they flatten to plain `u64`s the run loop ORs into its local
/// word.
struct Rank1 {
    by_rank: [RankEntry; 64],
    /// Per place: wake-deposit bits (the place's consumers).
    deposit_bits: Vec<u64>,
    /// Per transition: the full dirty-set update of a completed
    /// firing — its own rank bit, plus its output place's deposit
    /// bits (non-sink) or wake-free bits (bounded sink). One load
    /// indexed by the event's transition, no place-dependent lookups.
    deliver_wake: Vec<u64>,
    /// Per transition: whether its output place is a sink.
    sink_t: Vec<bool>,
}

/// Precomputed dirty-set update: words to OR into the rank bitmask.
/// Nets with at most 64 transitions (every shipped accelerator net)
/// always take the inline single-word form; the boxed form only
/// appears when a wake set genuinely spans multiple words.
enum WakeMask {
    /// Single-word update; the empty mask is `One(0, 0)` (OR-ing zero
    /// bits is a no-op), so applying is branchless.
    One(u32, u64),
    /// Multi-word update.
    Many(Vec<(u32, u64)>),
}

/// An output arc, flattened: target place, weight, and the summed
/// weight of this firing's *earlier* arcs into the same place (the
/// engine's capacity check counts those as already reserved).
struct OutArc {
    place: u32,
    weight: u32,
    prior: u32,
}

/// A net lowered to its static-topology executable form.
///
/// Compile once per net (the pass is linear in the net size), then
/// create any number of [`Stepper`]s from it. The plan borrows nothing
/// from the net, so a `Net` and its `CompiledNet` can live side by
/// side in one struct; [`CompiledNet::stepper`] checks (by structural
/// fingerprint, in debug builds) that the net it is handed is the one
/// it was compiled from.
///
/// # Examples
///
/// ```
/// use perf_petri::{CompiledNet, NetBuilder, Options, Token};
/// use perf_iface_lang::Value;
///
/// let mut b = NetBuilder::new("n");
/// let a = b.place("a", None);
/// let z = b.sink("z");
/// b.transition("t", &[a], &[z], |_| 7, |ts| vec![ts[0].data.clone()]);
/// let net = b.build().unwrap();
/// let plan = CompiledNet::compile(&net);
/// let mut s = plan.stepper(&net, Options::default());
/// s.inject(a, Token::at(Value::num(1.0), 0));
/// let r = s.run().unwrap();
/// assert_eq!(r.makespan, 7);
/// ```
pub struct CompiledNet {
    fp: u64,
    n_transitions: usize,
    /// Flat input arcs `(place, weight)`; `in_range[ti]` slices it.
    in_arcs: Vec<(u32, u32)>,
    in_range: Vec<(u32, u32)>,
    /// Flat output arcs; `out_range[ti]` slices it.
    out_arcs: Vec<OutArc>,
    out_range: Vec<(u32, u32)>,
    servers: Vec<u32>,
    order: Vec<u32>,
    guard: Vec<GuardPlan>,
    fire: Vec<FirePlan>,
    /// Per transition: dirty-set words to OR after it fires (consumers
    /// of its inputs, plus producers into its bounded inputs).
    wake_fire: Vec<WakeMask>,
    /// Per place: dirty-set words to OR after a token is deposited.
    wake_deposit: Vec<WakeMask>,
    /// Per place: dirty-set words to OR after capacity frees up
    /// (populated for bounded places only).
    wake_free: Vec<WakeMask>,
    /// Per transition: its single dirty-set word update (rank bit),
    /// applied when its firing completes.
    wake_self: Vec<(u32, u64)>,
    /// Per transition: the dense fused-path record (`servers == 0` =
    /// not chain-shaped, fall through to the general path).
    chain: Vec<ChainPlan>,
    /// Place capacity; `u32::MAX` means unbounded.
    cap: Vec<u32>,
    sink: Vec<bool>,
    dirty_words: usize,
    /// The register-resident fast tier; `Some` when every transition
    /// is chain-shaped and the dirty set fits one word.
    rank1: Option<Box<Rank1>>,
}

impl CompiledNet {
    /// Lowers `net` into its executable form.
    pub fn compile(net: &Net) -> CompiledNet {
        let nt = net.transitions().len();
        let np = net.places().len();
        let dirty_words = nt.div_ceil(64);
        let rank_mask = |ti: usize| -> (u32, u64) {
            let r = net.rank[ti];
            ((r / 64) as u32, 1u64 << (r % 64))
        };
        // Collapse a set of transitions into OR-able word updates.
        let mask_of = |tis: &mut Vec<usize>| -> WakeMask {
            tis.sort_unstable();
            tis.dedup();
            let mut words: Vec<(u32, u64)> = Vec::new();
            for &ti in tis.iter() {
                let (w, b) = rank_mask(ti);
                match words.iter_mut().find(|(wi, _)| *wi == w) {
                    Some((_, bits)) => *bits |= b,
                    None => words.push((w, b)),
                }
            }
            match words.len() {
                0 => WakeMask::One(0, 0),
                1 => WakeMask::One(words[0].0, words[0].1),
                _ => WakeMask::Many(words),
            }
        };

        let mut in_arcs = Vec::new();
        let mut in_range = Vec::with_capacity(nt);
        let mut out_arcs = Vec::new();
        let mut out_range = Vec::with_capacity(nt);
        let mut guard = Vec::with_capacity(nt);
        let mut fire = Vec::with_capacity(nt);
        let mut wake_fire = Vec::with_capacity(nt);
        let mut wake_self = Vec::with_capacity(nt);
        let mut servers = Vec::with_capacity(nt);

        for (ti, t) in net.transitions().iter().enumerate() {
            let is = in_arcs.len() as u32;
            for &(p, w) in &t.inputs {
                in_arcs.push((p.0 as u32, w as u32));
            }
            in_range.push((is, in_arcs.len() as u32));

            let os = out_arcs.len() as u32;
            for (j, &(p, w)) in t.outputs.iter().enumerate() {
                let prior: usize = t.outputs[..j]
                    .iter()
                    .filter(|&&(q, _)| q == p)
                    .map(|&(_, w2)| w2)
                    .sum();
                out_arcs.push(OutArc {
                    place: p.0 as u32,
                    weight: w as u32,
                    prior: prior as u32,
                });
            }
            out_range.push((os, out_arcs.len() as u32));
            servers.push(t.servers as u32);
            wake_self.push(rank_mask(ti));

            // Firing consumed from the inputs: competing consumers may
            // re-select, and producers into bounded inputs regain room.
            let mut woken: Vec<usize> = Vec::new();
            for &(p, _) in &t.inputs {
                woken.extend_from_slice(&net.consumers[p.0]);
                if net.places()[p.0].capacity.is_some() {
                    woken.extend_from_slice(&net.producers[p.0]);
                }
            }
            wake_fire.push(mask_of(&mut woken));

            guard.push(Self::plan_guard(&t.behavior));
            fire.push(Self::plan_fire(t));
        }

        // Flatten every chain-shaped transition (guard-free reuse with
        // a constant delay and a single-word wake-fire mask) into its
        // dense record.
        let mut chain = Vec::with_capacity(nt);
        for ti in 0..nt {
            let t = &net.transitions()[ti];
            let rec = match (&fire[ti], &guard[ti], &wake_fire[ti]) {
                (
                    FirePlan::Fast {
                        delay: DelayPlan::Const(d),
                        reuse: true,
                        ..
                    },
                    GuardPlan::Free,
                    &WakeMask::One(wake_w, wake_bits),
                ) if *d <= u32::MAX as u64 => {
                    let out = t.outputs[0].0;
                    // Builder rejects zero-capacity places, so `c - 1`
                    // cannot underflow for bounded places.
                    let cap_lim = match net.places()[out.0].capacity {
                        Some(c) => (c as u32) - 1,
                        None => u32::MAX,
                    };
                    ChainPlan {
                        core: ChainCore {
                            delay: *d as u32,
                            in_place: t.inputs[0].0 .0 as u32,
                            out_place: out.0 as u32,
                            cap_lim,
                            servers: if t.servers == 0 {
                                u32::MAX
                            } else {
                                t.servers as u32
                            },
                        },
                        wake_w,
                        wake_bits,
                    }
                }
                _ => ChainPlan {
                    core: ChainCore::INACTIVE,
                    wake_w: 0,
                    wake_bits: 0,
                },
            };
            chain.push(rec);
        }

        let mut wake_deposit = Vec::with_capacity(np);
        let mut wake_free = Vec::with_capacity(np);
        let mut cap = Vec::with_capacity(np);
        let mut sink = Vec::with_capacity(np);
        for (pi, p) in net.places().iter().enumerate() {
            wake_deposit.push(mask_of(&mut net.consumers[pi].clone()));
            wake_free.push(if p.capacity.is_some() {
                mask_of(&mut net.producers[pi].clone())
            } else {
                WakeMask::One(0, 0)
            });
            cap.push(p.capacity.map(|c| c as u32).unwrap_or(u32::MAX));
            sink.push(p.is_sink);
        }

        // The register-resident tier: all chain, one dirty word. With
        // a single dirty word, every mask `mask_of` built is `One`.
        // Eligibility requires every delay ≥ 1 so that no firing can
        // schedule back into the wheel slot currently being drained
        // (`run_chain` caches a raw pointer into it).
        let rank1 = if dirty_words == 1
            && nt > 0
            && chain
                .iter()
                .all(|c| c.core.servers != 0 && c.core.delay >= 1)
        {
            let one = |m: &WakeMask| match m {
                WakeMask::One(_, bits) => *bits,
                WakeMask::Many(_) => unreachable!("multi-word mask in a one-word dirty set"),
            };
            let mut by_rank = [RankEntry {
                core: ChainCore::INACTIVE,
                ti: 0,
                wake_bits: 0,
            }; 64];
            for ti in 0..nt {
                by_rank[net.rank[ti]] = RankEntry {
                    core: chain[ti].core,
                    ti: ti as u32,
                    wake_bits: chain[ti].wake_bits,
                };
            }
            let deliver_wake = (0..nt)
                .map(|ti| {
                    let out = chain[ti].core.out_place as usize;
                    let out_bits = if sink[out] {
                        // Unbounded sinks free no capacity; their
                        // `wake_free` is already the empty mask.
                        one(&wake_free[out])
                    } else {
                        one(&wake_deposit[out])
                    };
                    wake_self[ti].1 | out_bits
                })
                .collect();
            Some(Box::new(Rank1 {
                by_rank,
                deposit_bits: wake_deposit.iter().map(one).collect(),
                deliver_wake,
                sink_t: (0..nt)
                    .map(|ti| sink[chain[ti].core.out_place as usize])
                    .collect(),
            }))
        } else {
            None
        };

        CompiledNet {
            fp: net.fingerprint(),
            n_transitions: nt,
            in_arcs,
            in_range,
            out_arcs,
            out_range,
            servers,
            order: net.order.iter().map(|&t| t as u32).collect(),
            guard,
            fire,
            wake_fire,
            wake_deposit,
            wake_free,
            wake_self,
            chain,
            cap,
            sink,
            dirty_words,
            rank1,
        }
    }

    fn plan_guard(b: &Behavior) -> GuardPlan {
        if !b.has_guard() {
            return GuardPlan::Free;
        }
        match b {
            Behavior::Expr(e) => e
                .compiled_guard()
                .cloned()
                .map(GuardPlan::Expr)
                .unwrap_or(GuardPlan::Dyn),
            Behavior::Native { .. } => GuardPlan::Dyn,
        }
    }

    fn plan_fire(t: &crate::net::Transition) -> FirePlan {
        let e = match &t.behavior {
            Behavior::Expr(e) => e,
            // Native closures are opaque: evaluate through the behavior.
            Behavior::Native { .. } => return FirePlan::Dyn,
        };
        // An emit-slot arity mismatch must keep erroring at fire time.
        if e.emit_flags().len() != t.outputs.len() {
            return FirePlan::Dyn;
        }
        // A provably constant, valid delay folds completely. An invalid
        // constant (negative, non-finite, non-numeric) falls through so
        // the engine's per-firing validation error still surfaces.
        let delay = match e.const_fn_value("__delay").and_then(|v| v.as_num()) {
            Some(d) if d.is_finite() && d >= 0.0 => DelayPlan::Const(d.round() as u64),
            _ => match e.compiled_delay() {
                Some(c) => DelayPlan::Expr(c.clone()),
                None => return FirePlan::Dyn,
            },
        };
        let mut emits = Vec::with_capacity(t.outputs.len());
        for (i, has) in e.emit_flags().iter().enumerate() {
            if !*has {
                emits.push(EmitPlan::Passthrough);
            } else {
                match e.compiled_emits()[i].clone() {
                    Some(c) => emits.push(EmitPlan::Expr(c)),
                    None => return FirePlan::Dyn,
                }
            }
        }
        let needs_ts = matches!(delay, DelayPlan::Expr(_))
            || emits.iter().any(|e| matches!(e, EmitPlan::Expr(_)));
        let reuse = t.inputs.len() == 1
            && t.inputs[0].1 == 1
            && t.outputs.len() == 1
            && t.outputs[0].1 == 1
            && matches!(emits[0], EmitPlan::Passthrough);
        FirePlan::Fast {
            delay,
            emits,
            needs_ts,
            reuse,
        }
    }

    /// Creates a stepper over the net this plan was compiled from.
    ///
    /// In debug builds, handing it a different net panics (structural
    /// fingerprints are compared).
    pub fn stepper<'a>(&'a self, net: &'a Net, opts: Options) -> Stepper<'a> {
        debug_assert_eq!(
            self.fp,
            net.fingerprint(),
            "stepper created over a net it was not compiled from"
        );
        Stepper::new(net, self, opts)
    }
}

/// SoA token storage: payloads and timestamps in parallel arrays,
/// addressed by `u32` handles.
#[derive(Default)]
struct Arena {
    data: Vec<Value>,
    born: Vec<u64>,
    arrived: Vec<u64>,
    free: Vec<u32>,
}

impl Arena {
    fn alloc(&mut self, data: Value, born: u64, arrived: u64) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.data[i as usize] = data;
                self.born[i as usize] = born;
                self.arrived[i as usize] = arrived;
                i
            }
            None => {
                self.data.push(data);
                self.born.push(born);
                self.arrived.push(arrived);
                (self.data.len() - 1) as u32
            }
        }
    }

    /// Removes the token, returning its owned form.
    fn take(&mut self, i: u32) -> Token {
        let t = Token {
            data: core::mem::replace(&mut self.data[i as usize], Value::Bool(false)),
            born: self.born[i as usize],
            arrived: self.arrived[i as usize],
        };
        self.free.push(i);
        t
    }

    /// Releases the handle (payload dropped).
    fn release(&mut self, i: u32) {
        self.data[i as usize] = Value::Bool(false);
        self.free.push(i);
    }
}

/// Mutable per-transition run state, grouped so one bounds check and
/// one cache line cover an enablement check plus its counters.
#[derive(Clone, Copy)]
struct TransState {
    busy_servers: u32,
    firings: u64,
    busy: u64,
}

/// Mutable per-place run state: the token queue plus the in-flight
/// reservation count and occupancy high-water mark that every
/// capacity check reads alongside it.
struct PlaceState {
    q: Ring,
    reserved: u32,
    high_water: u32,
}

/// A power-of-two ring of token handles: one per place queue. Bounded
/// places pre-size to their capacity, so their `push_back` never
/// grows; unbounded places double on demand. The 16-byte struct (two
/// rings per cache line) and branch-light ops replace `VecDeque`,
/// whose wrap/grow generality showed up in hot-loop profiles.
struct Ring {
    buf: Box<[u32]>,
    /// Always `< buf.len()` (masked on every advance).
    head: u32,
    len: u32,
}

impl Ring {
    fn with_capacity(cap: usize) -> Ring {
        let cap = cap.next_power_of_two().max(8);
        Ring {
            buf: vec![0; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    #[inline(always)]
    fn len(&self) -> usize {
        self.len as usize
    }

    #[inline(always)]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline(always)]
    fn push_back(&mut self, v: u32) {
        if self.len as usize == self.buf.len() {
            self.grow();
        }
        let m = self.buf.len() as u32 - 1;
        let i = self.head.wrapping_add(self.len) & m;
        // SAFETY: `i` is masked by `buf.len() - 1` and `buf.len()` is
        // a nonzero power of two, so `i < buf.len()`.
        unsafe { *self.buf.get_unchecked_mut(i as usize) = v };
        self.len += 1;
    }

    #[inline(always)]
    fn pop_front(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let m = self.buf.len() as u32 - 1;
        // SAFETY: `head` is kept below `buf.len()` by masking on every
        // advance, and `buf` never shrinks.
        let v = unsafe { *self.buf.get_unchecked(self.head as usize) };
        self.head = (self.head + 1) & m;
        self.len -= 1;
        Some(v)
    }

    /// `k`-th handle from the front (guards and emits peek the heads
    /// that a firing would consume).
    #[inline(always)]
    fn get(&self, k: usize) -> u32 {
        debug_assert!(k < self.len as usize);
        let m = self.buf.len() - 1;
        // SAFETY: masked by `buf.len() - 1`; `buf.len()` is a nonzero
        // power of two.
        unsafe { *self.buf.get_unchecked((self.head as usize + k) & m) }
    }

    #[cold]
    fn grow(&mut self) {
        let mut next = vec![0u32; self.buf.len() * 2].into_boxed_slice();
        for k in 0..self.len as usize {
            next[k] = self.get(k);
        }
        self.buf = next;
        self.head = 0;
    }
}

/// A scheduled occurrence, 12 bytes + discriminant.
#[derive(Clone, Copy)]
enum WEntry {
    /// External arrival of an injected token.
    Inject { place: u32, tok: u32 },
    /// A firing with exactly one output token completes.
    Deliver1 { trans: u32, place: u32, tok: u32 },
    /// A firing with multiple output tokens completes; the tokens live
    /// in a spill list.
    DeliverN { trans: u32, spill: u32 },
}

/// Far-heap entry, ordered by `(time, seq)` ascending (reversed for
/// the max-heap), exactly like the engine's `Scheduled`.
struct Far {
    time: u64,
    seq: u64,
    e: WEntry,
}

impl PartialEq for Far {
    fn eq(&self, other: &Far) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Far {}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Far) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Far {
    fn cmp(&self, other: &Far) -> core::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// One wheel slot: FIFO entries with a drain cursor (a slot can grow
/// while it is being drained, e.g. zero-delay firings at the current
/// cycle, and those entries must run in push order within the cycle).
#[derive(Default)]
struct Slot {
    entries: Vec<WEntry>,
    cursor: usize,
}

/// The compiled runtime: inject tokens, then [`Stepper::run`].
///
/// Mirrors the [`Engine`] API; see [`CompiledNet`] for how to obtain
/// one and for the equivalence contract.
pub struct Stepper<'a> {
    net: &'a Net,
    plan: &'a CompiledNet,
    opts: Options,
    places: Vec<PlaceState>,
    arena: Arena,
    trans: Vec<TransState>,
    dirty: Vec<u64>,
    enablement_checks: u64,
    completions: Vec<Token>,
    /// `(place, token)` in injection order (also the seq order the
    /// engine would assign).
    injects: Vec<(u32, u32)>,
    // Event queue: calendar wheel + far heap. The fixed-size slot
    // array makes `time & WMASK` indexing provably in-bounds.
    slots: Box<[Slot; WHEEL]>,
    occ: [u64; WHEEL / 64],
    base: u64,
    ring_len: usize,
    far: BinaryHeap<Far>,
    seq: u64,
    spill: Vec<Vec<(u32, u32)>>,
    spill_free: Vec<u32>,
    // Scratch buffers.
    ts: Vec<Value>,
    toks: Vec<Token>,
    sel: Vec<u32>,
}

impl<'a> Stepper<'a> {
    fn new(net: &'a Net, plan: &'a CompiledNet, opts: Options) -> Stepper<'a> {
        Stepper {
            net,
            plan,
            opts,
            places: plan
                .cap
                .iter()
                .map(|&c| PlaceState {
                    q: Ring::with_capacity(if c == u32::MAX { 16 } else { c as usize }),
                    reserved: 0,
                    high_water: 0,
                })
                .collect(),
            arena: Arena::default(),
            trans: vec![
                TransState {
                    busy_servers: 0,
                    firings: 0,
                    busy: 0,
                };
                plan.n_transitions
            ],
            dirty: vec![0; plan.dirty_words],
            enablement_checks: 0,
            completions: Vec::new(),
            injects: Vec::new(),
            slots: {
                let v: Vec<Slot> = (0..WHEEL).map(|_| Slot::default()).collect();
                match v.into_boxed_slice().try_into() {
                    Ok(b) => b,
                    Err(_) => unreachable!("exactly WHEEL slots were built"),
                }
            },
            occ: [0; WHEEL / 64],
            base: 0,
            ring_len: 0,
            far: BinaryHeap::new(),
            seq: 0,
            spill: Vec::new(),
            spill_free: Vec::new(),
            ts: Vec::new(),
            toks: Vec::new(),
            sel: Vec::new(),
        }
    }

    /// Schedules an external token arrival at `token.arrived`.
    pub fn inject(&mut self, place: PlaceId, token: Token) {
        let arrived = token.arrived;
        let tok = self.arena.alloc(token.data, token.born, arrived);
        self.injects.push((place.0 as u32, tok));
    }

    /// A 64-bit fingerprint of the injected workload, identical to
    /// [`Engine::marking_fingerprint`] for the same net and injections
    /// (so compiled and interpreted evaluations share service cache
    /// slots). Call after `inject`ing and before [`Stepper::run`].
    pub fn marking_fingerprint(&self) -> u64 {
        let mut h = perf_core::query::Fnv1a::new();
        h.write_u64(self.plan.fp);
        for &(place, tok) in &self.injects {
            h.write_u64(place as u64);
            h.write(self.arena.data[tok as usize].to_string().as_bytes());
            h.write_u64(self.arena.born[tok as usize]);
            h.write_u64(self.arena.arrived[tok as usize]);
        }
        h.finish()
    }

    // ---- event queue ----------------------------------------------

    #[inline]
    fn push_event(&mut self, time: u64, e: WEntry) {
        if time < self.base + WHEEL as u64 {
            let s = (time & WMASK) as usize;
            // The occupancy OR is idempotent, so no emptiness test:
            // after a push the slot has pending entries either way.
            self.occ[s / 64] |= 1 << (s % 64);
            self.slots[s].entries.push(e);
            self.ring_len += 1;
        } else {
            // `seq` only orders same-time far entries among each
            // other (wheel slots are FIFO), so near pushes skip it;
            // far-relative push order is all the heap compares.
            let seq = self.seq;
            self.seq += 1;
            self.far.push(Far { time, seq, e });
        }
    }

    /// Moves far-heap events whose time entered the wheel window into
    /// their slots. Heap pops come out `(time, seq)` ascending, and all
    /// far pushes for a time precede all direct slot pushes for it (the
    /// window only moves forward), so slot FIFO order stays seq order.
    fn migrate(&mut self) {
        let horizon = self.base + WHEEL as u64;
        while let Some(f) = self.far.peek() {
            if f.time >= horizon {
                break;
            }
            let f = self.far.pop().expect("peeked");
            let s = (f.time & WMASK) as usize;
            self.occ[s / 64] |= 1 << (s % 64);
            self.slots[s].entries.push(f.e);
            self.ring_len += 1;
        }
    }

    /// Pops the next event in `(time, seq)` order, advancing the wheel
    /// base (the time-skip: idle cycles are skipped by the occupancy
    /// bitmap scan, not simulated).
    ///
    /// Fast path: the slot at `base` can only hold events due exactly
    /// at `base` (a slot holds one time per wheel revolution, and the
    /// ring never holds times below `base`), so while it has entries
    /// the occupancy scan and base advance are skipped entirely.
    #[inline(always)]
    fn pop_event(&mut self) -> Option<(u64, WEntry)> {
        if self.ring_len != 0 {
            let s = (self.base & WMASK) as usize;
            if self.occ[s / 64] & (1 << (s % 64)) != 0 {
                return Some((self.base, self.slot_pop(s)));
            }
        }
        self.pop_event_scan()
    }

    /// Takes the next entry from occupied slot `s`, clearing its
    /// occupancy bit when that empties it.
    #[inline(always)]
    fn slot_pop(&mut self, s: usize) -> WEntry {
        let slot = &mut self.slots[s];
        // SAFETY: both callers checked the slot's occupancy bit, which
        // is set exactly while `cursor < entries.len()` (it clears the
        // moment the cursor catches up, below).
        debug_assert!(slot.cursor < slot.entries.len());
        let e = unsafe { *slot.entries.get_unchecked(slot.cursor) };
        slot.cursor += 1;
        self.ring_len -= 1;
        if slot.cursor == slot.entries.len() {
            slot.entries.clear();
            slot.cursor = 0;
            self.occ[s / 64] &= !(1 << (s % 64));
        }
        e
    }

    /// The slow half of [`Stepper::pop_event`]: advance to the next
    /// occupied slot and take its first entry.
    fn pop_event_scan(&mut self) -> Option<(u64, WEntry)> {
        let time = self.advance_to_next_slot()?;
        let s = (time & WMASK) as usize;
        Some((time, self.slot_pop(s)))
    }

    /// Refills from the far heap if the ring is empty, then scans the
    /// occupancy bitmap for the next occupied slot and advances the
    /// base to its time (returned). Does not pop.
    fn advance_to_next_slot(&mut self) -> Option<u64> {
        if self.ring_len == 0 {
            let head = self.far.peek()?.time;
            self.base = head;
            self.migrate();
        }
        // Find the first occupied slot at or after base, wrapping. The
        // ring holds only times in [base, base + WHEEL), so slot
        // distance from base equals time distance.
        let start = (self.base & WMASK) as usize;
        let words = self.occ.len();
        let mut dist = None;
        for k in 0..=words {
            let w = (start / 64 + k) % words;
            let mut word = self.occ[w];
            if k == 0 {
                word &= !0u64 << (start % 64);
            } else if k == words {
                // Back at the starting word: only bits below `start`
                // remain unexamined.
                word &= (1u64 << (start % 64)).wrapping_sub(1);
            }
            if word != 0 {
                let bit = w * 64 + word.trailing_zeros() as usize;
                dist = Some((bit + WHEEL - start) % WHEEL);
                break;
            }
        }
        let dist = dist.expect("ring_len > 0 implies an occupied slot");
        let time = self.base + dist as u64;
        if dist != 0 {
            // The horizon only moves when the base does, so far-heap
            // events can only become migratable on an advance.
            self.base = time;
            self.migrate();
        }
        Some(time)
    }

    // ---- dirty set (same algorithm as the engine's DirtySet) ------

    #[inline]
    fn dirty_next_at_or_after(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        if w >= self.dirty.len() {
            return None;
        }
        let mut word = self.dirty[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == self.dirty.len() {
                return None;
            }
            word = self.dirty[w];
        }
    }

    fn dirty_set_all(&mut self) {
        let len = self.plan.n_transitions;
        for (w, word) in self.dirty.iter_mut().enumerate() {
            let bits = len.saturating_sub(w * 64).min(64);
            *word = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
    }

    #[inline]
    fn apply_mask(&mut self, mask: &WakeMask) {
        match mask {
            WakeMask::One(w, bits) => self.dirty[*w as usize] |= bits,
            WakeMask::Many(words) => {
                for &(w, bits) in words {
                    self.dirty[w as usize] |= bits;
                }
            }
        }
    }

    // ---- marking --------------------------------------------------

    #[inline(always)]
    fn deposit(&mut self, place: usize, tok: u32) {
        // SAFETY: every caller has already established that `place` is
        // in bounds — either a plan-derived index, or one that passed
        // a checked `sink` lookup (same length, one entry per place).
        debug_assert!(place < self.places.len());
        let ps = unsafe { self.places.get_unchecked_mut(place) };
        ps.q.push_back(tok);
        ps.high_water = ps.high_water.max(ps.q.len);
    }

    fn deliver_token(&mut self, place: u32, tok: u32) {
        // `plan` is a shared reference with its own lifetime, so
        // copying it out lets the masks borrow the plan, not `self`.
        let plan = self.plan;
        let p = place as usize;
        self.places[p].reserved -= 1;
        if plan.sink[p] {
            let t = self.arena.take(tok);
            self.completions.push(t);
            // A bounded sink converts the released reservation into
            // free capacity for its producers.
            if plan.cap[p] != u32::MAX {
                self.apply_mask(&plan.wake_free[p]);
            }
        } else {
            self.deposit(p, tok);
            self.apply_mask(&plan.wake_deposit[p]);
        }
    }

    // ---- firing ---------------------------------------------------

    /// Builds the payload list (`ts`) from token handles.
    fn build_ts(&mut self, from_sel: bool, ti: usize) {
        self.ts.clear();
        if from_sel {
            for &i in &self.sel {
                self.ts.push(self.arena.data[i as usize].clone());
            }
        } else {
            let (is, ie) = self.plan.in_range[ti];
            for &(p, w) in &self.plan.in_arcs[is as usize..ie as usize] {
                for k in 0..w as usize {
                    let idx = self.places[p as usize].q.get(k);
                    self.ts.push(self.arena.data[idx as usize].clone());
                }
            }
        }
    }

    /// Builds owned `Token` clones for the dynamic-behavior fallback.
    fn build_toks(&mut self, from_sel: bool, ti: usize) {
        self.toks.clear();
        if from_sel {
            for &i in &self.sel {
                self.toks.push(Token {
                    data: self.arena.data[i as usize].clone(),
                    born: self.arena.born[i as usize],
                    arrived: self.arena.arrived[i as usize],
                });
            }
        } else {
            let (is, ie) = self.plan.in_range[ti];
            for &(p, w) in &self.plan.in_arcs[is as usize..ie as usize] {
                for k in 0..w as usize {
                    let idx = self.places[p as usize].q.get(k) as usize;
                    self.toks.push(Token {
                        data: self.arena.data[idx].clone(),
                        born: self.arena.born[idx],
                        arrived: self.arena.arrived[idx],
                    });
                }
            }
        }
    }

    /// The fused pipeline-stage firing attempt (see [`ChainPlan`]):
    /// same check outcomes, counters and wakes as the general path in
    /// [`Stepper::try_fire`], inlined into the dirty-set scan so hot
    /// state stays in registers. Infallible: nothing here evaluates an
    /// expression.
    #[inline(always)]
    fn chain_fire(&mut self, ti: usize, c: ChainPlan, now: u64) -> bool {
        let mut checks = 0;
        let fired = self.chain_fire_core(ti, c.core, now, &mut checks);
        self.enablement_checks += checks;
        if fired {
            self.dirty[c.wake_w as usize] |= c.wake_bits;
        }
        fired
    }

    /// [`Stepper::chain_fire`] minus the wake-fire dirty-set write and
    /// the check-counter memory update: the register-resident loop
    /// ([`Stepper::run_chain`]) ORs `wake_bits` into its local word
    /// and accumulates `checks` in a local, folding both into `self`
    /// once per run. Nothing between a firing and the next dirty-word
    /// read observes either, so deferring is not observable.
    ///
    /// The three enablement conditions are evaluated non-lazily into
    /// one predicate: a blocked transition takes a single
    /// data-dependent branch instead of three (the outcome pattern is
    /// irregular, so each avoided branch is an avoided mispredict
    /// site), and the loads issue in parallel.
    #[inline(always)]
    fn chain_fire_core(&mut self, ti: usize, c: ChainCore, now: u64, checks: &mut u64) -> bool {
        *checks += 1;
        // SAFETY (all unchecked indexing below): `ti`, `c.in_place`
        // and `c.out_place` come out of the plan this stepper was
        // built over — `compile` only emits transition indices below
        // `n_transitions` and place indices below `cap.len()`, and
        // `Stepper::new` sizes `trans` and `places` from exactly
        // those. Token handles are arena indices by construction.
        debug_assert!(ti < self.trans.len());
        debug_assert!((c.in_place as usize) < self.places.len());
        debug_assert!((c.out_place as usize) < self.places.len());
        let free = unsafe { self.trans.get_unchecked(ti) }.busy_servers < c.servers;
        let has_input = !unsafe { self.places.get_unchecked(c.in_place as usize) }
            .q
            .is_empty();
        let out = unsafe { self.places.get_unchecked(c.out_place as usize) };
        // Bounded output: room for one more reservation. Unbounded
        // (`cap_lim == u32::MAX`) passes vacuously — the sum cannot
        // exceed it (queue lengths and reservations are far below
        // `u32::MAX`; the arena itself caps tokens at `u32` handles).
        let has_room = (out.q.len() as u32).wrapping_add(out.reserved) <= c.cap_lim;
        if !(free & has_input & has_room) {
            return false;
        }
        let tok = unsafe { self.places.get_unchecked_mut(c.in_place as usize) }
            .q
            .pop_front()
            .expect("availability checked");
        let done = now + c.delay as u64;
        debug_assert!((tok as usize) < self.arena.arrived.len());
        unsafe { *self.arena.arrived.get_unchecked_mut(tok as usize) = done };
        unsafe { self.places.get_unchecked_mut(c.out_place as usize) }.reserved += 1;
        self.push_event(
            done,
            WEntry::Deliver1 {
                trans: ti as u32,
                place: c.out_place,
                tok,
            },
        );
        {
            let st = unsafe { self.trans.get_unchecked_mut(ti) };
            st.busy_servers += 1;
            st.firings += 1;
            st.busy += c.delay as u64;
        }
        true
    }

    /// The dirty-set scan of [`Stepper::fire_enabled`], specialized to
    /// a [`Rank1`] plan: the dirty word lives in `dw` (a register),
    /// never in memory. Same pass-cursor algorithm, same check
    /// sequence; returns the settled word (always 0 bits for
    /// still-blocked transitions — they stay clear until a wake).
    #[inline(always)]
    fn chain_pass(&mut self, r1: &Rank1, mut dw: u64, now: u64, checks: &mut u64) -> u64 {
        loop {
            let mut fired_any = false;
            let mut cursor = 0u32;
            loop {
                let word = if cursor >= 64 {
                    0
                } else {
                    dw & (!0u64 << cursor)
                };
                if word == 0 {
                    break;
                }
                let r = word.trailing_zeros();
                cursor = r + 1;
                let e = r1.by_rank[(r & 63) as usize];
                let mut burst = false;
                while self.chain_fire_core(e.ti as usize, e.core, now, checks) {
                    burst = true;
                }
                if burst {
                    fired_any = true;
                    dw |= e.wake_bits;
                }
                dw &= !(1u64 << r);
            }
            if !fired_any {
                return dw;
            }
        }
    }

    /// Attempts a single firing of transition `ti` at `now`; mirrors
    /// the engine's `try_fire_fast` exactly (check order, consumption,
    /// counters, wakes).
    fn try_fire(&mut self, ti: usize, now: u64) -> Result<bool, PetriError> {
        let plan = self.plan;
        let c = plan.chain[ti];
        if c.core.servers != 0 {
            return Ok(self.chain_fire(ti, c, now));
        }
        self.enablement_checks += 1;
        let servers = plan.servers[ti];
        if servers != 0 && self.trans[ti].busy_servers >= servers {
            return Ok(false);
        }
        let (is, ie) = plan.in_range[ti];
        for &(p, w) in &plan.in_arcs[is as usize..ie as usize] {
            if self.places[p as usize].q.len() < w as usize {
                return Ok(false);
            }
        }
        let (os, oe) = plan.out_range[ti];
        for arc in &plan.out_arcs[os as usize..oe as usize] {
            let cap = plan.cap[arc.place as usize];
            if cap != u32::MAX {
                let ps = &self.places[arc.place as usize];
                let occ = ps.q.len() as u32 + ps.reserved + arc.prior + arc.weight;
                if occ > cap {
                    return Ok(false);
                }
            }
        }
        // Guard, evaluated on the would-be-consumed queue heads.
        match &plan.guard[ti] {
            GuardPlan::Free => {}
            GuardPlan::Expr(g) => {
                self.build_ts(false, ti);
                let t0 = self.ts.first().cloned().unwrap_or(Value::Num(0.0));
                let ok = g
                    .eval(&t0, &self.ts)?
                    .as_bool()
                    .ok_or_else(|| PetriError::Expr("guard must return a bool".into()))?;
                if !ok {
                    return Ok(false);
                }
            }
            GuardPlan::Dyn => {
                self.build_toks(false, ti);
                if !self.net.transitions()[ti].behavior.guard(&self.toks)? {
                    return Ok(false);
                }
            }
        }
        // Consume.
        self.sel.clear();
        for &(p, w) in &plan.in_arcs[is as usize..ie as usize] {
            let q = &mut self.places[p as usize].q;
            for _ in 0..w {
                self.sel.push(q.pop_front().expect("availability checked"));
            }
        }
        let born = self
            .sel
            .iter()
            .map(|&i| self.arena.born[i as usize])
            .min()
            .unwrap_or(now);

        match &plan.fire[ti] {
            FirePlan::Fast {
                delay,
                emits,
                needs_ts,
                reuse,
            } => {
                if *needs_ts {
                    self.build_ts(true, ti);
                } else {
                    // A guard may have populated `ts` from the queue
                    // heads; clear it so `emit_fast` rebuilds `t` from
                    // the consumed tokens instead of stale data.
                    self.ts.clear();
                }
                let d = match delay {
                    DelayPlan::Const(d) => *d,
                    DelayPlan::Expr(c) => {
                        let t0 = self.ts.first().cloned().unwrap_or(Value::Num(0.0));
                        let d = c.eval_num(&t0, &self.ts)?;
                        if !d.is_finite() || d < 0.0 {
                            return Err(PetriError::Expr(format!(
                                "delay must be finite and >= 0, got {d}"
                            )));
                        }
                        d.round() as u64
                    }
                };
                let done = now + d;
                if *reuse {
                    // Re-stamp the consumed handle; zero payload moves.
                    let tok = self.sel[0];
                    self.arena.arrived[tok as usize] = done;
                    let arc = &plan.out_arcs[os as usize];
                    self.places[arc.place as usize].reserved += 1;
                    self.push_event(
                        done,
                        WEntry::Deliver1 {
                            trans: ti as u32,
                            place: arc.place,
                            tok,
                        },
                    );
                } else {
                    self.emit_fast(ti, os, emits, born, done)?;
                }
                let st = &mut self.trans[ti];
                st.busy_servers += 1;
                st.firings += 1;
                st.busy += d;
            }
            FirePlan::Dyn => {
                self.build_toks(true, ti);
                let n_outputs = (oe - os) as usize;
                let behavior = &self.net.transitions()[ti].behavior;
                let firing = behavior.fire(&self.toks, n_outputs)?;
                let done = now + firing.delay;
                self.emit_payloads(ti, os, firing.outputs, born, done);
                for k in 0..self.sel.len() {
                    self.arena.release(self.sel[k]);
                }
                let st = &mut self.trans[ti];
                st.busy_servers += 1;
                st.firings += 1;
                st.busy += firing.delay;
            }
        }
        // Consumption changed input queue heads and freed capacity in
        // bounded input places.
        self.apply_mask(&plan.wake_fire[ti]);
        Ok(true)
    }

    /// Specialized emission: evaluates per-arc emit plans and schedules
    /// the delivery. Consumed handles are released (or recycled as
    /// output tokens where possible).
    fn emit_fast(
        &mut self,
        ti: usize,
        os: u32,
        emits: &[EmitPlan],
        born: u64,
        done: u64,
    ) -> Result<(), PetriError> {
        let t0 = if self.ts.is_empty() {
            self.sel
                .first()
                .map(|&i| self.arena.data[i as usize].clone())
                .unwrap_or(Value::Num(0.0))
        } else {
            self.ts[0].clone()
        };
        let mut payloads: Vec<Value> = Vec::with_capacity(emits.len());
        for e in emits {
            payloads.push(match e {
                EmitPlan::Passthrough => t0.clone(),
                EmitPlan::Expr(c) => c.eval(&t0, &self.ts)?,
            });
        }
        self.emit_payloads(ti, os, payloads, born, done);
        for k in 0..self.sel.len() {
            self.arena.release(self.sel[k]);
        }
        Ok(())
    }

    /// Allocates output tokens (one payload per arc, replicated per arc
    /// weight) and schedules the delivery event.
    fn emit_payloads(&mut self, ti: usize, os: u32, payloads: Vec<Value>, born: u64, done: u64) {
        let plan = self.plan;
        let total: u32 = payloads
            .iter()
            .zip(&plan.out_arcs[os as usize..])
            .map(|(_, a)| a.weight)
            .sum();
        if total == 1 {
            // Single token: exactly one arc, weight 1 (zero-weight
            // arcs are rejected by the builder).
            let arc = &plan.out_arcs[os as usize];
            let payload = payloads.into_iter().next().expect("one output");
            let tok = self.arena.alloc(payload, born, done);
            self.places[arc.place as usize].reserved += 1;
            self.push_event(
                done,
                WEntry::Deliver1 {
                    trans: ti as u32,
                    place: arc.place,
                    tok,
                },
            );
            return;
        }
        let idx = match self.spill_free.pop() {
            Some(i) => i as usize,
            None => {
                self.spill.push(Vec::new());
                self.spill.len() - 1
            }
        };
        let mut outs = core::mem::take(&mut self.spill[idx]);
        for (j, payload) in payloads.into_iter().enumerate() {
            let arc = &plan.out_arcs[os as usize + j];
            self.places[arc.place as usize].reserved += arc.weight;
            // Like the engine: `weight - 1` clones, then the final
            // token moves the payload.
            for _ in 1..arc.weight {
                let tok = self.arena.alloc(payload.clone(), born, done);
                outs.push((arc.place, tok));
            }
            let tok = self.arena.alloc(payload, born, done);
            outs.push((arc.place, tok));
        }
        self.spill[idx] = outs;
        self.push_event(
            done,
            WEntry::DeliverN {
                trans: ti as u32,
                spill: idx as u32,
            },
        );
    }

    /// Fires until fixpoint with the engine's pass-structured dirty
    /// worklist (identical cursor semantics → identical firing
    /// sequence and `enablement_checks`).
    fn fire_enabled(&mut self, now: u64) -> Result<(), PetriError> {
        // Single-word dirty set (nets of at most 64 transitions, i.e.
        // every shipped accelerator net): the same pass-cursor
        // algorithm as the general loop below, with the word re-read
        // live after each candidate exactly as `dirty_next_at_or_after`
        // would — firings OR new bits in mid-pass.
        if self.dirty.len() == 1 {
            loop {
                let mut fired_any = false;
                let mut cursor = 0u32;
                loop {
                    let word = if cursor >= 64 {
                        0
                    } else {
                        self.dirty[0] & (!0u64 << cursor)
                    };
                    if word == 0 {
                        break;
                    }
                    let r = word.trailing_zeros();
                    cursor = r + 1;
                    let ti = self.plan.order[r as usize] as usize;
                    let c = self.plan.chain[ti];
                    if c.core.servers != 0 {
                        while self.chain_fire(ti, c, now) {
                            fired_any = true;
                        }
                    } else {
                        while self.try_fire(ti, now)? {
                            fired_any = true;
                        }
                    }
                    self.dirty[0] &= !(1u64 << r);
                }
                if !fired_any {
                    return Ok(());
                }
            }
        }
        loop {
            let mut fired_any = false;
            let mut cursor = 0usize;
            while let Some(r) = self.dirty_next_at_or_after(cursor) {
                cursor = r + 1;
                let ti = self.plan.order[r] as usize;
                while self.try_fire(ti, now)? {
                    fired_any = true;
                }
                self.dirty[r / 64] &= !(1 << (r % 64));
            }
            if !fired_any {
                return Ok(());
            }
        }
    }

    // ---- run ------------------------------------------------------

    /// Runs until quiescence and returns the result (observably
    /// identical to [`Engine::run`] on the same net and injections).
    ///
    /// When [`Options::trace`] is set, the run delegates to the
    /// interpreted engine, which carries the provenance machinery the
    /// specialized hot path omits.
    pub fn run(mut self) -> Result<SimResult, PetriError> {
        if self.opts.trace.is_some() {
            let mut e = Engine::new(self.net, self.opts);
            let injects = core::mem::take(&mut self.injects);
            for (place, tok) in injects {
                let t = self.arena.take(tok);
                e.inject(PlaceId(place as usize), t);
            }
            return e.run();
        }
        let plan = self.plan;
        if let Some(r1) = &plan.rank1 {
            return self.run_chain(r1);
        }
        // Stage injections in order: identical (time, seq) schedule to
        // the engine's inject-time heap pushes.
        let injects = core::mem::take(&mut self.injects);
        self.completions.reserve(injects.len());
        for &(place, tok) in &injects {
            let at = self.arena.arrived[tok as usize];
            self.push_event(at, WEntry::Inject { place, tok });
        }
        let mut now = 0u64;
        let mut events = 0u64;
        self.dirty_set_all();
        self.fire_enabled(now)?;
        while let Some((time, e)) = self.pop_event() {
            events += 1;
            if events > self.opts.max_events {
                return Err(PetriError::EventBudgetExceeded(self.opts.max_events));
            }
            now = time;
            match e {
                WEntry::Inject { place, tok } => {
                    let plan = self.plan;
                    let p = place as usize;
                    if plan.sink[p] {
                        let t = self.arena.take(tok);
                        self.completions.push(t);
                    } else {
                        self.deposit(p, tok);
                        self.apply_mask(&plan.wake_deposit[p]);
                    }
                }
                WEntry::Deliver1 { trans, place, tok } => {
                    self.trans[trans as usize].busy_servers -= 1;
                    let (w, b) = self.plan.wake_self[trans as usize];
                    self.dirty[w as usize] |= b;
                    self.deliver_token(place, tok);
                }
                WEntry::DeliverN { trans, spill } => {
                    self.trans[trans as usize].busy_servers -= 1;
                    let (w, b) = self.plan.wake_self[trans as usize];
                    self.dirty[w as usize] |= b;
                    let outs = core::mem::take(&mut self.spill[spill as usize]);
                    for &(place, tok) in &outs {
                        self.deliver_token(place, tok);
                    }
                    self.spill[spill as usize] = outs;
                    self.spill[spill as usize].clear();
                    self.spill_free.push(spill);
                }
            }
            self.fire_enabled(now)?;
        }
        self.finish(now, events)
    }

    /// [`Stepper::run`] specialized to a fully-fused [`Rank1`] plan:
    /// the dirty set is a single `u64` held in a local for the whole
    /// run, wake masks are plain bit-ORs on it, and every firing goes
    /// through [`Stepper::chain_fire_core`]. Observable behavior —
    /// check sequence, counters, completions, event order — is
    /// identical to the general loop; only where the dirty set lives
    /// changes.
    fn run_chain(mut self, r1: &Rank1) -> Result<SimResult, PetriError> {
        let injects = core::mem::take(&mut self.injects);
        self.completions.reserve(injects.len());
        for &(place, tok) in &injects {
            let at = self.arena.arrived[tok as usize];
            self.push_event(at, WEntry::Inject { place, tok });
        }
        let mut now = 0u64;
        let mut events = 0u64;
        let max_events = self.opts.max_events;
        let n = self.plan.n_transitions;
        let mut dw: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
        let mut checks = 0u64;
        dw = self.chain_pass(r1, dw, now, &mut checks);
        // Drain the wheel a whole slot at a time: every entry in the
        // base slot is due exactly at `base`, so the slot bookkeeping
        // (occupancy, cursor, ring length) is paid once per timestamp
        // instead of once per event, and the drain walks a cached
        // pointer.
        while let Some(time) = self.advance_to_next_slot() {
            now = time;
            let s = (time & WMASK) as usize;
            let slot = &self.slots[s];
            let ptr = slot.entries.as_ptr();
            let first = slot.cursor;
            let len = slot.entries.len();
            debug_assert!(first < len, "occupied slot has pending entries");
            let mut idx = first;
            while idx < len {
                // SAFETY: `idx < len` of this slot's entry buffer, and
                // the buffer cannot move or grow during the drain —
                // every chain delay is ≥ 1 (a Rank1 eligibility rule),
                // so no firing schedules back into the slot being
                // drained, and `migrate` only runs between timestamps.
                let e = unsafe { *ptr.add(idx) };
                idx += 1;
                events += 1;
                if events > max_events {
                    return Err(PetriError::EventBudgetExceeded(max_events));
                }
                match e {
                    WEntry::Inject { place, tok } => {
                        let p = place as usize;
                        // Checked: an inject can carry any caller place.
                        if self.plan.sink[p] {
                            let t = self.arena.take(tok);
                            self.completions.push(t);
                        } else {
                            self.deposit(p, tok);
                            // SAFETY: `p` passed the `sink` bounds
                            // check above and `deposit_bits` has the
                            // same length (one entry per place).
                            dw |= unsafe { *r1.deposit_bits.get_unchecked(p) };
                        }
                    }
                    WEntry::Deliver1 { trans, place, tok } => {
                        // SAFETY (unchecked indexing below):
                        // `Deliver1` events are scheduled only by
                        // `chain_fire_core`, with plan-derived indices
                        // (`trans` below `n_transitions`, `place`
                        // below `cap.len()`) — and those size every
                        // array indexed here. The single
                        // `deliver_wake` OR equals the general loop's
                        // self + deposit/free ORs (commutative, and
                        // nothing reads `dw` in between).
                        let ti = trans as usize;
                        debug_assert!(ti < r1.deliver_wake.len());
                        debug_assert!((place as usize) < self.places.len());
                        unsafe { self.trans.get_unchecked_mut(ti) }.busy_servers -= 1;
                        dw |= unsafe { *r1.deliver_wake.get_unchecked(ti) };
                        let p = place as usize;
                        unsafe { self.places.get_unchecked_mut(p) }.reserved -= 1;
                        if unsafe { *r1.sink_t.get_unchecked(ti) } {
                            let t = self.arena.take(tok);
                            self.completions.push(t);
                        } else {
                            self.deposit(p, tok);
                        }
                    }
                    // Only chain-shaped transitions exist in a Rank1
                    // net, and those schedule `Deliver1` exclusively.
                    WEntry::DeliverN { .. } => unreachable!("chain-only net scheduled a DeliverN"),
                }
                dw = self.chain_pass(r1, dw, now, &mut checks);
            }
            self.ring_len -= len - first;
            let slot = &mut self.slots[s];
            debug_assert_eq!(slot.entries.len(), len, "slot grew during its own drain");
            slot.entries.clear();
            slot.cursor = 0;
            self.occ[s / 64] &= !(1 << (s % 64));
        }
        self.enablement_checks += checks;
        self.finish(now, events)
    }

    /// Quiescence epilogue shared by both run loops.
    fn finish(self, now: u64, events: u64) -> Result<SimResult, PetriError> {
        debug_assert!(
            self.places.iter().all(|ps| ps.reserved == 0),
            "reservations leaked at quiescence"
        );
        let stranded: Vec<(String, usize)> = self
            .net
            .places()
            .iter()
            .zip(&self.places)
            .filter(|(p, ps)| !p.is_sink && !ps.q.is_empty())
            .map(|(p, ps)| (p.name.clone(), ps.q.len()))
            .collect();
        if self.opts.fail_on_deadlock && !stranded.is_empty() {
            return Err(PetriError::Deadlock { at: now, stranded });
        }
        Ok(SimResult {
            makespan: now,
            completions: self.completions,
            events,
            firings: self.trans.iter().map(|t| t.firings).collect(),
            busy: self.trans.iter().map(|t| t.busy).collect(),
            high_water: self.places.iter().map(|p| p.high_water as usize).collect(),
            stranded,
            enablement_checks: self.enablement_checks,
            trace: None,
        })
    }
}

/// A net paired with (optionally) its compiled plan: the engine-choice
/// façade the accelerator adapters hold.
///
/// Interfaces that evaluate the same immutable net many times pay the
/// [`CompiledNet::compile`] cost once and open a fresh evaluation
/// session per query. The session API is engine-agnostic, so an
/// adapter's hot path is identical whichever substrate answers it.
///
/// # Examples
///
/// ```
/// use perf_petri::stepper::NetExec;
/// use perf_petri::{NetBuilder, Options, Token};
/// use perf_iface_lang::Value;
///
/// let mut b = NetBuilder::new("n");
/// let a = b.place("a", None);
/// let z = b.sink("z");
/// b.transition("t", &[a], &[z], |_| 3, |ts| vec![ts[0].data.clone()]);
/// let exec = NetExec::compiled(b.build().unwrap());
/// let mut s = exec.session(Options::default());
/// s.inject(a, Token::at(Value::num(1.0), 0));
/// assert_eq!(s.run().unwrap().makespan, 3);
/// ```
pub struct NetExec {
    net: Net,
    plan: Option<CompiledNet>,
}

impl NetExec {
    /// Wraps a net for interpreted evaluation ([`Engine`]).
    pub fn interpreted(net: Net) -> NetExec {
        NetExec { net, plan: None }
    }

    /// Compiles the net once; sessions run the [`Stepper`].
    pub fn compiled(net: Net) -> NetExec {
        let plan = CompiledNet::compile(&net);
        NetExec {
            net,
            plan: Some(plan),
        }
    }

    /// Whether sessions run the compiled stepper.
    pub fn is_compiled(&self) -> bool {
        self.plan.is_some()
    }

    /// The wrapped net.
    pub fn net(&self) -> &Net {
        &self.net
    }

    /// Opens one evaluation session (inject, then run).
    pub fn session(&self, opts: Options) -> ExecSession<'_> {
        match &self.plan {
            Some(plan) => ExecSession::Compiled(plan.stepper(&self.net, opts)),
            None => ExecSession::Interpreted(Engine::new(&self.net, opts)),
        }
    }
}

/// One evaluation session over a [`NetExec`]: either an interpreted
/// [`Engine`] or a compiled [`Stepper`], behind one API.
pub enum ExecSession<'a> {
    /// Generic event-driven interpreter.
    Interpreted(Engine<'a>),
    /// Compiled static-topology stepper.
    Compiled(Stepper<'a>),
}

impl ExecSession<'_> {
    /// Schedules an external token arrival at `token.arrived`.
    pub fn inject(&mut self, place: PlaceId, token: Token) {
        match self {
            ExecSession::Interpreted(e) => e.inject(place, token),
            ExecSession::Compiled(s) => s.inject(place, token),
        }
    }

    /// Fingerprint of the injected workload; identical across both
    /// substrates so cache keys are engine-independent.
    pub fn marking_fingerprint(&self) -> u64 {
        match self {
            ExecSession::Interpreted(e) => e.marking_fingerprint(),
            ExecSession::Compiled(s) => s.marking_fingerprint(),
        }
    }

    /// Runs to quiescence.
    pub fn run(self) -> Result<SimResult, PetriError> {
        match self {
            ExecSession::Interpreted(e) => e.run(),
            ExecSession::Compiled(s) => s.run(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::ExprBehavior;
    use crate::net::{NetBuilder, Transition};

    fn passthrough(n: usize) -> impl Fn(&[Token]) -> Vec<Value> {
        move |ts: &[Token]| vec![ts[0].data.clone(); n]
    }

    fn run_both(net: &Net, injects: &[(PlaceId, Token)]) -> (SimResult, SimResult) {
        let mut e = Engine::new(net, Options::default());
        for (p, t) in injects {
            e.inject(*p, t.clone());
        }
        let plan = CompiledNet::compile(net);
        let mut s = plan.stepper(net, Options::default());
        for (p, t) in injects {
            s.inject(*p, t.clone());
        }
        (e.run().unwrap(), s.run().unwrap())
    }

    fn assert_equiv(a: &SimResult, b: &SimResult) {
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.completions, b.completions);
        assert_eq!(a.events, b.events);
        assert_eq!(a.firings, b.firings);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.high_water, b.high_water);
        assert_eq!(a.stranded, b.stranded);
        assert_eq!(a.enablement_checks, b.enablement_checks);
    }

    #[test]
    fn native_pipeline_matches_engine() {
        let mut b = NetBuilder::new("pipe");
        let src = b.place("src", None);
        let mid = b.place("mid", Some(2));
        let z = b.sink("z");
        b.transition("fast", &[src], &[mid], |_| 1, passthrough(1));
        b.transition("slow", &[mid], &[z], |_| 4, passthrough(1));
        let net = b.build().unwrap();
        let injects: Vec<_> = (0..100)
            .map(|i| (src, Token::at(Value::num(i as f64), 0)))
            .collect();
        let (a, s) = run_both(&net, &injects);
        assert_equiv(&a, &s);
    }

    #[test]
    fn expr_pipeline_takes_fast_path() {
        let mut b = NetBuilder::new("pipe");
        let src = b.place("src", None);
        let mid = b.place("mid", Some(4));
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "s1".into(),
            inputs: vec![(src, 1)],
            outputs: vec![(mid, 1)],
            behavior: Behavior::Expr(ExprBehavior::compile("", "2", None, &[None]).unwrap()),
            servers: 1,
            priority: 0,
        });
        b.add_transition(Transition {
            name: "s2".into(),
            inputs: vec![(mid, 1)],
            outputs: vec![(z, 1)],
            behavior: Behavior::Expr(ExprBehavior::compile("", "1 + t.w", None, &[None]).unwrap()),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let injects: Vec<_> = (0..64)
            .map(|i| {
                (
                    src,
                    Token::at(Value::record([("w", Value::num((i % 3) as f64))]), i),
                )
            })
            .collect();
        let (a, s) = run_both(&net, &injects);
        assert_equiv(&a, &s);
        assert!(s.makespan > 0);
    }

    #[test]
    fn guards_and_priorities_match() {
        let mut b = NetBuilder::new("routed");
        let a = b.place("a", None);
        let small = b.sink("small");
        let big = b.sink("big");
        b.add_transition(Transition {
            name: "small_path".into(),
            inputs: vec![(a, 1)],
            outputs: vec![(small, 1)],
            behavior: Behavior::Expr(
                ExprBehavior::compile("", "1", Some("t.v < 10"), &[None]).unwrap(),
            ),
            servers: 1,
            priority: 1,
        });
        b.add_transition(Transition {
            name: "big_path".into(),
            inputs: vec![(a, 1)],
            outputs: vec![(big, 1)],
            behavior: Behavior::Expr(ExprBehavior::compile("", "1", None, &[None]).unwrap()),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let injects: Vec<_> = (0..40)
            .map(|i| {
                (
                    a,
                    Token::at(Value::record([("v", Value::num((i % 20) as f64))]), i / 2),
                )
            })
            .collect();
        let (eng, st) = run_both(&net, &injects);
        assert_equiv(&eng, &st);
    }

    #[test]
    fn fork_join_weights_and_emits_match() {
        let mut b = NetBuilder::new("fj");
        let a = b.place("a", None);
        let l = b.place("l", None);
        let r = b.place("r", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "fork".into(),
            inputs: vec![(a, 1)],
            outputs: vec![(l, 1), (r, 2)],
            behavior: Behavior::Expr(
                ExprBehavior::compile("", "1", None, &[Some("{ h: t.v / 2 }".into()), None])
                    .unwrap(),
            ),
            servers: 0,
            priority: 0,
        });
        b.add_transition(Transition {
            name: "join".into(),
            inputs: vec![(l, 1), (r, 2)],
            outputs: vec![(z, 1)],
            behavior: Behavior::Expr(
                ExprBehavior::compile("", "ts[0].h + ts[1].v", None, &[Some("ts[0]".into())])
                    .unwrap(),
            ),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let injects: Vec<_> = (0..30)
            .map(|i| {
                (
                    a,
                    Token::at(Value::record([("v", Value::num((4 + i % 6) as f64))]), i),
                )
            })
            .collect();
        let (eng, st) = run_both(&net, &injects);
        assert_equiv(&eng, &st);
    }

    #[test]
    fn stranded_and_deadlock_match() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "two".into(),
            inputs: vec![(a, 2)],
            outputs: vec![(z, 1)],
            behavior: crate::behavior::fixed_delay(1, 1),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let injects: Vec<_> = (0..3).map(|_| (a, Token::at(Value::num(0.0), 0))).collect();
        let (eng, st) = run_both(&net, &injects);
        assert_equiv(&eng, &st);
        assert!(st.deadlocked());

        let plan = CompiledNet::compile(&net);
        let mut s = plan.stepper(
            &net,
            Options {
                fail_on_deadlock: true,
                ..Options::default()
            },
        );
        s.inject(a, Token::at(Value::num(0.0), 0));
        assert!(matches!(s.run(), Err(PetriError::Deadlock { .. })));
    }

    #[test]
    fn event_budget_enforced() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        b.transition("spin", &[a], &[a], |_| 1, passthrough(1));
        let net = b.build().unwrap();
        let plan = CompiledNet::compile(&net);
        let mut s = plan.stepper(
            &net,
            Options {
                max_events: 100,
                ..Options::default()
            },
        );
        s.inject(a, Token::at(Value::num(0.0), 0));
        assert!(matches!(s.run(), Err(PetriError::EventBudgetExceeded(100))));
    }

    #[test]
    fn far_horizon_injections_ordered() {
        // Arrivals far beyond the wheel window exercise the far heap
        // and the migrate path.
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 3, passthrough(1));
        let net = b.build().unwrap();
        let injects: Vec<_> = (0..20)
            .map(|i| (a, Token::at(Value::num(i as f64), i * 5_000)))
            .collect();
        let (eng, st) = run_both(&net, &injects);
        assert_equiv(&eng, &st);
        assert_eq!(st.completions.len(), 20);
    }

    #[test]
    fn zero_delay_chains_stay_in_cycle_order() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let m = b.place("m", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "instant".into(),
            inputs: vec![(a, 1)],
            outputs: vec![(m, 1)],
            behavior: Behavior::Expr(ExprBehavior::compile("", "0", None, &[None]).unwrap()),
            servers: 0,
            priority: 0,
        });
        b.add_transition(Transition {
            name: "out".into(),
            inputs: vec![(m, 1)],
            outputs: vec![(z, 1)],
            behavior: Behavior::Expr(ExprBehavior::compile("", "1", None, &[None]).unwrap()),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let injects: Vec<_> = (0..10)
            .map(|i| (a, Token::at(Value::num(i as f64), 2)))
            .collect();
        let (eng, st) = run_both(&net, &injects);
        assert_equiv(&eng, &st);
    }

    #[test]
    fn marking_fingerprint_matches_engine() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 7, passthrough(1));
        let net = b.build().unwrap();
        let plan = CompiledNet::compile(&net);

        let mut e = Engine::new(&net, Options::default());
        let mut s = plan.stepper(&net, Options::default());
        for i in 0..5 {
            let t = Token::at(Value::num(i as f64), i);
            e.inject(a, t.clone());
            s.inject(a, t);
        }
        assert_eq!(e.marking_fingerprint(), s.marking_fingerprint());
    }

    #[test]
    fn trace_request_falls_back_to_engine() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 2, passthrough(1));
        let net = b.build().unwrap();
        let plan = CompiledNet::compile(&net);
        let mut s = plan.stepper(
            &net,
            Options {
                trace: Some(64),
                ..Options::default()
            },
        );
        s.inject(a, Token::at(Value::num(1.0), 0));
        let r = s.run().unwrap();
        assert!(r.trace.is_some());
        assert_eq!(r.completions.len(), 1);
    }
}
