//! Transition behaviors: delays, guards and output transforms.
//!
//! A behavior answers, for a set of consumed tokens: *may the transition
//! fire?* (guard), *how long does processing take?* (delay) and *what
//! tokens appear downstream?* (emit). Behaviors come in two flavors:
//! native Rust closures (fast, used when a net is built
//! programmatically) and PIL expressions (used by `.pnet` text nets, so
//! a net remains a shippable artifact).

use crate::compile::{compile_fn, CExpr};
use crate::token::Token;
use crate::PetriError;
use perf_iface_lang::interp::eval_consts;
use perf_iface_lang::lint::Interval;
use perf_iface_lang::{Interp, Limits, Program, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// The outcome of firing a transition.
#[derive(Clone, Debug, PartialEq)]
pub struct Firing {
    /// Processing delay in cycles.
    pub delay: u64,
    /// One payload per output arc (the engine replicates per arc
    /// weight).
    pub outputs: Vec<Value>,
}

/// A native guard closure over the would-be-consumed tokens.
pub type GuardFn = Box<dyn Fn(&[Token]) -> bool>;
/// A native delay closure over the consumed tokens.
pub type DelayFn = Box<dyn Fn(&[Token]) -> u64>;
/// A native transform closure: one payload per output arc.
pub type TransformFn = Box<dyn Fn(&[Token]) -> Vec<Value>>;

/// A transition's behavior.
pub enum Behavior {
    /// Native closures.
    Native {
        /// Optional guard; `None` means always enabled.
        guard: Option<GuardFn>,
        /// Delay as a function of the consumed tokens.
        delay: DelayFn,
        /// Output payloads, one per output arc.
        transform: TransformFn,
    },
    /// PIL expressions compiled from `.pnet` text.
    Expr(ExprBehavior),
}

impl Behavior {
    /// Whether firing is conditioned on a guard. Guard-free transitions
    /// let the engine consume input tokens by move instead of cloning
    /// them for a speculative guard evaluation.
    pub fn has_guard(&self) -> bool {
        match self {
            Behavior::Native { guard, .. } => guard.is_some(),
            Behavior::Expr(e) => e.has_guard,
        }
    }

    /// Evaluates the guard for candidate input tokens.
    pub fn guard(&self, inputs: &[Token]) -> Result<bool, PetriError> {
        match self {
            Behavior::Native { guard, .. } => Ok(guard.as_ref().is_none_or(|g| g(inputs))),
            Behavior::Expr(e) => e.guard(inputs),
        }
    }

    /// The delay, if it is provably constant: an expression behavior
    /// whose delay mentions neither `t` nor `ts`. Native closures are
    /// opaque, so they always return `None`. Used by the lint pass to
    /// find zero-delay cycles.
    pub fn const_delay(&self) -> Option<f64> {
        match self {
            Behavior::Native { .. } => None,
            Behavior::Expr(e) => e.const_fn_value("__delay").and_then(|v| v.as_num()),
        }
    }

    /// The guard's value, if it is provably constant (see
    /// [`Behavior::const_delay`]). `None` means "depends on tokens or
    /// unknowable"; guard-free transitions report `Some(true)`.
    pub fn const_guard(&self) -> Option<bool> {
        match self {
            Behavior::Native { guard, .. } => {
                if guard.is_none() {
                    Some(true)
                } else {
                    None
                }
            }
            Behavior::Expr(e) => {
                if !e.has_guard {
                    Some(true)
                } else {
                    e.const_fn_value("__guard").and_then(|v| v.as_bool())
                }
            }
        }
    }

    /// A guaranteed `[lo, hi]` enclosure of the delay for input tokens
    /// drawn from the box `tok`, via interval abstract interpretation
    /// of the `__delay` wrapper ([`perf_iface_lang::lint::bound_call`]
    /// with `t` bound to `tok` and `ts` to an unbounded list of such
    /// tokens). Native closures are opaque and enclose to `[0, +inf]`;
    /// so does any expression the abstract interpreter cannot pin down.
    /// The engine rejects negative runtime delays, so the lower bound
    /// is clamped to `>= 0`.
    pub fn delay_interval(&self, tok: &perf_iface_lang::lint::BoxVal) -> Interval {
        use perf_iface_lang::lint::{bound_call, BoxVal};
        match self {
            Behavior::Native { .. } => Interval::NONNEG,
            Behavior::Expr(e) => {
                let ts = BoxVal::list(tok.clone(), 0.0, f64::INFINITY);
                match bound_call(e.prog.ast(), "__delay", &[tok.clone(), ts]) {
                    Ok(iv) => Interval::new(iv.lo.max(0.0), iv.hi.max(0.0)),
                    Err(_) => Interval::NONNEG,
                }
            }
        }
    }

    /// Computes the firing (delay and outputs) for consumed tokens.
    pub fn fire(&self, inputs: &[Token], n_outputs: usize) -> Result<Firing, PetriError> {
        match self {
            Behavior::Native {
                delay, transform, ..
            } => {
                let outs = transform(inputs);
                if outs.len() != n_outputs {
                    return Err(PetriError::Expr(format!(
                        "transform produced {} payloads for {} output arcs",
                        outs.len(),
                        n_outputs
                    )));
                }
                Ok(Firing {
                    delay: delay(inputs),
                    outputs: outs,
                })
            }
            Behavior::Expr(e) => e.fire(inputs, n_outputs),
        }
    }
}

/// PIL-expression behavior.
///
/// Expressions see two bindings: `t`, the payload of the first consumed
/// token, and `ts`, the list of all consumed payloads (so a join
/// transition can write `ts[1].bytes`). Net-level constants are visible
/// too.
pub struct ExprBehavior {
    prog: Program,
    emits: Vec<bool>,
    has_guard: bool,
    /// Lazily evaluated constants, shared across calls.
    consts: RefCell<Option<Rc<HashMap<String, Value>>>>,
    /// Compiled fast paths (delay, guard, per-arc emits); `None` falls
    /// back to the interpreter.
    c_delay: Option<CExpr>,
    c_guard: Option<CExpr>,
    c_emits: Vec<Option<CExpr>>,
}

impl ExprBehavior {
    /// Compiles a behavior from expression sources.
    ///
    /// * `consts_src` — zero or more `const NAME = ...;` declarations.
    /// * `delay_src` — expression for the delay (cycles).
    /// * `guard_src` — optional boolean expression.
    /// * `emit_srcs` — one optional expression per output arc; `None`
    ///   passes the first input payload through unchanged.
    pub fn compile(
        consts_src: &str,
        delay_src: &str,
        guard_src: Option<&str>,
        emit_srcs: &[Option<String>],
    ) -> Result<ExprBehavior, PetriError> {
        let mut src = String::new();
        src.push_str(consts_src);
        src.push('\n');
        src.push_str(&format!("fn __delay(t, ts) {{ return ({delay_src}); }}\n"));
        if let Some(g) = guard_src {
            src.push_str(&format!("fn __guard(t, ts) {{ return ({g}); }}\n"));
        }
        for (i, e) in emit_srcs.iter().enumerate() {
            if let Some(e) = e {
                src.push_str(&format!("fn __emit{i}(t, ts) {{ return ({e}); }}\n"));
            }
        }
        let prog = Program::parse(&src).map_err(|e| PetriError::Expr(e.to_string()))?;
        // Evaluate constants eagerly and compile the single-expression
        // fast paths.
        let consts = Rc::new(
            eval_consts(prog.ast(), Limits::default())
                .map_err(|e| PetriError::Expr(e.to_string()))?,
        );
        let find = |name: String| prog.ast().functions.iter().find(move |f| f.name == name);
        let c_delay = find("__delay".into()).and_then(|f| compile_fn(f, &consts));
        let c_guard = find("__guard".into()).and_then(|f| compile_fn(f, &consts));
        let c_emits = (0..emit_srcs.len())
            .map(|i| find(format!("__emit{i}")).and_then(|f| compile_fn(f, &consts)))
            .collect();
        Ok(ExprBehavior {
            prog,
            emits: emit_srcs.iter().map(Option::is_some).collect(),
            has_guard: guard_src.is_some(),
            consts: RefCell::new(Some(consts)),
            c_delay,
            c_guard,
            c_emits,
        })
    }

    /// Evaluates compiled function `name` if its body provably does not
    /// depend on the consumed tokens (mentions neither `t` nor `ts`),
    /// returning the constant result. Evaluation failures (e.g. a
    /// division by zero inside constants) yield `None`.
    pub(crate) fn const_fn_value(&self, name: &str) -> Option<Value> {
        let f = self.prog.ast().functions.iter().find(|f| f.name == name)?;
        if f.body.iter().any(stmt_mentions_inputs) {
            return None;
        }
        let dummy = [Value::num(0.0), Value::list(Vec::new())];
        self.invoke(name, &dummy).ok()
    }

    /// Returns the cached constant environment, evaluating it once.
    fn cached_consts(&self) -> Result<Rc<HashMap<String, Value>>, PetriError> {
        let mut slot = self.consts.borrow_mut();
        if let Some(c) = slot.as_ref() {
            return Ok(Rc::clone(c));
        }
        let consts = Rc::new(
            eval_consts(self.prog.ast(), Limits::default())
                .map_err(|e| PetriError::Expr(e.to_string()))?,
        );
        *slot = Some(Rc::clone(&consts));
        Ok(consts)
    }

    /// Invokes a compiled function with cached constants.
    fn invoke(&self, name: &str, args: &[Value]) -> Result<Value, PetriError> {
        let consts = self.cached_consts()?;
        Interp::with_consts(self.prog.ast(), Limits::default(), consts)
            .call(name, args)
            .map_err(|e| PetriError::Expr(e.to_string()))
    }

    fn args(inputs: &[Token]) -> [Value; 2] {
        let first = inputs
            .first()
            .map(|t| t.data.clone())
            .unwrap_or(Value::num(0.0));
        let all = Value::list(inputs.iter().map(|t| t.data.clone()).collect());
        [first, all]
    }

    /// Payloads of the input tokens, without building PIL values.
    fn payloads(inputs: &[Token]) -> Vec<Value> {
        inputs.iter().map(|t| t.data.clone()).collect()
    }

    fn call_num(&self, name: &str, inputs: &[Token]) -> Result<f64, PetriError> {
        let args = Self::args(inputs);
        let v = self.invoke(name, &args)?;
        v.as_num()
            .ok_or_else(|| PetriError::Expr(format!("`{name}` must return a number")))
    }

    fn guard(&self, inputs: &[Token]) -> Result<bool, PetriError> {
        if !self.has_guard {
            return Ok(true);
        }
        if let Some(c) = &self.c_guard {
            let ts = Self::payloads(inputs);
            let t = ts.first().cloned().unwrap_or(Value::num(0.0));
            return c
                .eval(&t, &ts)?
                .as_bool()
                .ok_or_else(|| PetriError::Expr("guard must return a bool".into()));
        }
        let args = Self::args(inputs);
        let v = self.invoke("__guard", &args)?;
        v.as_bool()
            .ok_or_else(|| PetriError::Expr("guard must return a bool".into()))
    }

    fn fire(&self, inputs: &[Token], n_outputs: usize) -> Result<Firing, PetriError> {
        if self.emits.len() != n_outputs {
            return Err(PetriError::Expr(format!(
                "behavior has {} emit slots for {} output arcs",
                self.emits.len(),
                n_outputs
            )));
        }
        let ts = Self::payloads(inputs);
        let t = ts.first().cloned().unwrap_or(Value::num(0.0));
        let d = match &self.c_delay {
            Some(c) => c.eval_num(&t, &ts)?,
            None => self.call_num("__delay", inputs)?,
        };
        if !d.is_finite() || d < 0.0 {
            return Err(PetriError::Expr(format!(
                "delay must be finite and >= 0, got {d}"
            )));
        }
        let mut outputs = Vec::with_capacity(n_outputs);
        for (i, has) in self.emits.iter().enumerate() {
            if *has {
                let v = match &self.c_emits[i] {
                    Some(c) => c.eval(&t, &ts)?,
                    None => {
                        let args = Self::args(inputs);
                        self.invoke(&format!("__emit{i}"), &args)?
                    }
                };
                outputs.push(v);
            } else {
                outputs.push(t.clone());
            }
        }
        Ok(Firing {
            delay: d.round() as u64,
            outputs,
        })
    }

    /// The compiled delay fast path, if the delay expression lowered to
    /// a [`CExpr`]. Used by the static-topology stepper to specialize
    /// firing without boxing through [`Behavior::fire`].
    pub(crate) fn compiled_delay(&self) -> Option<&CExpr> {
        self.c_delay.as_ref()
    }

    /// The compiled guard fast path (only meaningful when
    /// [`Behavior::has_guard`] is true).
    pub(crate) fn compiled_guard(&self) -> Option<&CExpr> {
        self.c_guard.as_ref()
    }

    /// Per-output-arc compiled emit fast paths, parallel to
    /// [`ExprBehavior::emit_flags`].
    pub(crate) fn compiled_emits(&self) -> &[Option<CExpr>] {
        &self.c_emits
    }

    /// Per-output-arc flags: `true` when the arc has an emit expression,
    /// `false` when the first input payload passes through unchanged.
    pub(crate) fn emit_flags(&self) -> &[bool] {
        &self.emits
    }
}

/// Whether a statement (transitively) reads the token bindings `t` or
/// `ts`. The generated `__delay`/`__guard` wrappers have exactly these
/// two parameters, so "mentions neither" means "constant w.r.t. the
/// consumed tokens".
fn stmt_mentions_inputs(s: &perf_iface_lang::ast::Stmt) -> bool {
    use perf_iface_lang::ast::Stmt;
    match s {
        Stmt::Let(_, e, _) | Stmt::Assign(_, e, _) | Stmt::Return(e, _) | Stmt::Expr(e, _) => {
            expr_mentions_inputs(e)
        }
        Stmt::If(c, a, b, _) => {
            expr_mentions_inputs(c)
                || a.iter().any(stmt_mentions_inputs)
                || b.iter().any(stmt_mentions_inputs)
        }
        Stmt::For(_, it, body, _) => {
            expr_mentions_inputs(it) || body.iter().any(stmt_mentions_inputs)
        }
        Stmt::While(c, body, _) => expr_mentions_inputs(c) || body.iter().any(stmt_mentions_inputs),
    }
}

fn expr_mentions_inputs(e: &perf_iface_lang::ast::Expr) -> bool {
    use perf_iface_lang::ast::Expr;
    match e {
        Expr::Num(..) | Expr::Str(..) | Expr::Bool(..) => false,
        Expr::Var(name, _) => name == "t" || name == "ts",
        Expr::List(items, _) => items.iter().any(expr_mentions_inputs),
        Expr::Record(fields, _) => fields.iter().any(|(_, v)| expr_mentions_inputs(v)),
        Expr::Field(base, _, _) => expr_mentions_inputs(base),
        Expr::Index(base, idx, _) => expr_mentions_inputs(base) || expr_mentions_inputs(idx),
        Expr::Call(_, args, _) => args.iter().any(expr_mentions_inputs),
        Expr::Unary(_, inner, _) => expr_mentions_inputs(inner),
        Expr::Binary(_, l, r, _) => expr_mentions_inputs(l) || expr_mentions_inputs(r),
    }
}

/// A convenience constructor: fixed delay, pass-through payloads.
pub fn fixed_delay(delay: u64, n_outputs: usize) -> Behavior {
    Behavior::Native {
        guard: None,
        delay: Box::new(move |_| delay),
        transform: Box::new(move |toks: &[Token]| {
            let v = toks
                .first()
                .map(|t| t.data.clone())
                .unwrap_or(Value::num(0.0));
            vec![v; n_outputs]
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(n: f64) -> Token {
        Token::at(Value::num(n), 0)
    }

    #[test]
    fn native_behavior_fires() {
        let b = Behavior::Native {
            guard: Some(Box::new(|ts: &[Token]| ts[0].data.as_num().unwrap() > 0.0)),
            delay: Box::new(|ts: &[Token]| ts[0].data.as_num().unwrap() as u64 * 2),
            transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
        };
        assert!(b.guard(&[tok(1.0)]).unwrap());
        assert!(!b.guard(&[tok(-1.0)]).unwrap());
        let f = b.fire(&[tok(3.0)], 1).unwrap();
        assert_eq!(f.delay, 6);
        assert_eq!(f.outputs, vec![Value::num(3.0)]);
    }

    #[test]
    fn native_transform_arity_checked() {
        let b = fixed_delay(1, 2);
        assert!(b.fire(&[tok(0.0)], 3).is_err());
        assert_eq!(b.fire(&[tok(0.0)], 2).unwrap().outputs.len(), 2);
    }

    #[test]
    fn expr_behavior_with_token_fields() {
        let e = ExprBehavior::compile("", "6 + ceil(t.bits / 32)", None, &[None]).unwrap();
        let b = Behavior::Expr(e);
        let t = Token::at(Value::record([("bits", Value::num(100.0))]), 0);
        let f = b.fire(std::slice::from_ref(&t), 1).unwrap();
        assert_eq!(f.delay, 6 + 4);
        assert_eq!(f.outputs[0], t.data);
    }

    #[test]
    fn expr_guard_and_consts() {
        let e = ExprBehavior::compile("const LIMIT = 10;", "1", Some("t.size < LIMIT"), &[None])
            .unwrap();
        let b = Behavior::Expr(e);
        let small = Token::at(Value::record([("size", Value::num(5.0))]), 0);
        let big = Token::at(Value::record([("size", Value::num(50.0))]), 0);
        assert!(b.guard(&[small]).unwrap());
        assert!(!b.guard(&[big]).unwrap());
    }

    #[test]
    fn expr_emit_rewrites_payload() {
        let e = ExprBehavior::compile("", "1", None, &[Some("{ half: t.size / 2 }".to_string())])
            .unwrap();
        let b = Behavior::Expr(e);
        let t = Token::at(Value::record([("size", Value::num(8.0))]), 0);
        let f = b.fire(&[t], 1).unwrap();
        assert_eq!(f.outputs[0].field("half").unwrap().as_num(), Some(4.0));
    }

    #[test]
    fn expr_multi_input_binding() {
        let e = ExprBehavior::compile("", "ts[0].a + ts[1].a", None, &[None]).unwrap();
        let b = Behavior::Expr(e);
        let t0 = Token::at(Value::record([("a", Value::num(3.0))]), 0);
        let t1 = Token::at(Value::record([("a", Value::num(4.0))]), 0);
        let f = b.fire(&[t0, t1], 1).unwrap();
        assert_eq!(f.delay, 7);
    }

    #[test]
    fn expr_negative_or_nan_delay_rejected() {
        let e = ExprBehavior::compile("", "0 - 5", None, &[None]).unwrap();
        assert!(Behavior::Expr(e).fire(&[tok(0.0)], 1).is_err());
        let e = ExprBehavior::compile("", "1 / 0", None, &[None]).unwrap();
        assert!(Behavior::Expr(e).fire(&[tok(0.0)], 1).is_err());
    }

    #[test]
    fn const_delay_detected_only_when_token_free() {
        let e = ExprBehavior::compile("const K = 3;", "K * 2 - 6", None, &[None]).unwrap();
        assert_eq!(Behavior::Expr(e).const_delay(), Some(0.0));
        let e = ExprBehavior::compile("", "ceil(t.bits / 2)", None, &[None]).unwrap();
        assert_eq!(Behavior::Expr(e).const_delay(), None);
        assert_eq!(fixed_delay(7, 1).const_delay(), None); // native: opaque
    }

    #[test]
    fn const_guard_detected() {
        let e = ExprBehavior::compile("", "1", Some("1 == 2"), &[None]).unwrap();
        assert_eq!(Behavior::Expr(e).const_guard(), Some(false));
        let e = ExprBehavior::compile("", "1", Some("t.v < 3"), &[None]).unwrap();
        assert_eq!(Behavior::Expr(e).const_guard(), None);
        let e = ExprBehavior::compile("", "1", None, &[None]).unwrap();
        assert_eq!(Behavior::Expr(e).const_guard(), Some(true));
    }

    #[test]
    fn expr_compile_errors_surface() {
        assert!(ExprBehavior::compile("", "1 +", None, &[None]).is_err());
        assert!(ExprBehavior::compile("", "nope(1)", None, &[None]).is_err());
    }
}
