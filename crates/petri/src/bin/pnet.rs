//! `pnet` — command-line tooling for Petri-net performance IRs.
//!
//! ```text
//! pnet check FILE                                 # parse + structural report
//! pnet lint FILE [--entry PLACE]... [--json]      # static perf-lint analyses
//! pnet bound FILE [--entry PLACE]... [--json] [field=LO..HI...]
//!                                                 # structural latency floor +
//!                                                 # throughput ceiling, no
//!                                                 # simulation
//! pnet dot FILE                                   # Graphviz to stdout
//! pnet run FILE PLACE N [field=VAL...]            # inject N tokens, simulate
//! pnet trace FILE PLACE N [--folded] [--perfetto OUT] [field=VAL...]
//!                                                 # traced run: JSON report
//!                                                 # (or folded stacks) with
//!                                                 # critical-path attribution;
//!                                                 # --perfetto writes a Chrome
//!                                                 # JSON trace for
//!                                                 # ui.perfetto.dev
//! ```
//!
//! Malformed inputs are reported as rendered diagnostics with exit
//! code 1; the tool never panics on user-supplied files.

use perf_core::diag::{Diagnostic, Diagnostics};
use perf_iface_lang::lint::BoxVal;
use perf_iface_lang::Value;
use perf_petri::engine::{Engine, Options};
use perf_petri::token::Token;
use perf_petri::trace::{critical_path, trace_report_json, DEFAULT_TRACE_CAPACITY};
use perf_petri::{analysis, dot, lint, text, PetriError};

/// Full help text: every subcommand with every flag. The `--help`
/// output and the short usage line are kept in sync by the
/// `help_mentions_every_subcommand` integration test.
const HELP: &str = "\
pnet — command-line tooling for Petri-net performance IRs

usage:
  pnet check FILE                       parse + structural report
                                        (exit 1 on dead-end places)
  pnet lint FILE [--entry PLACE]... [--json]
                                        static perf-lint analyses;
                                        --entry marks token-injection
                                        places for reachability (inferred
                                        from the net structure when
                                        omitted), --json renders
                                        diagnostics as JSON; exit 1 on
                                        errors
  pnet bound FILE [--entry PLACE]... [--json] [field=LO..HI...]
                                        structural bounds without
                                        simulation: critical-path latency
                                        floor and bottleneck throughput
                                        ceiling, valid for every token
                                        whose payload fields lie in the
                                        given LO..HI boxes (field=V pins
                                        a point; unlisted fields are
                                        unconstrained)
  pnet dot FILE                         Graphviz rendering to stdout
  pnet run FILE PLACE N [field=VAL...]  inject N tokens at PLACE and
                                        simulate to completion
  pnet trace FILE PLACE N [--folded] [--perfetto OUT] [field=VAL...]
                                        traced run with critical-path
                                        attribution: JSON report, or
                                        folded stacks with --folded;
                                        --perfetto OUT also writes a
                                        Chrome JSON trace (trace-event
                                        format, 1 cycle = 1 us; open at
                                        ui.perfetto.dev) with a
                                        critical-path track whose slice
                                        durations sum exactly to the
                                        makespan, plus one track per
                                        transition.
                                        JSON report fields: net,
                                        makespan, events,
                                        enablement_checks,
                                        firings_recorded,
                                        firings_evicted,
                                        critical_path_total,
                                        transitions[], critical_path[]
  pnet --help                           this text
";

fn usage() -> ! {
    eprintln!(
        "usage: pnet check FILE | pnet lint FILE [--entry PLACE]... [--json] \
         | pnet bound FILE [--entry PLACE]... [--json] [field=LO..HI...] | pnet dot FILE \
         | pnet run FILE PLACE N [field=VAL...] \
         | pnet trace FILE PLACE N [--folded] [--perfetto OUT] [field=VAL...] | pnet --help"
    );
    std::process::exit(2);
}

/// Renders a single load-time diagnostic and exits with code 1.
fn fail(d: Diagnostic, json: bool) -> ! {
    let mut ds = Diagnostics::new();
    ds.push(d);
    if json {
        println!("{}", ds.render_json());
    } else {
        eprint!("{}", ds.render());
    }
    std::process::exit(1);
}

/// Turns a load failure into the corresponding loader diagnostic.
fn load_diag(path: &str, e: &PetriError) -> Diagnostic {
    match e {
        PetriError::Parse { line, msg } => Diagnostic::error("PN002", msg.clone())
            .with_origin(path)
            .with_pos(*line as u32, 0),
        PetriError::Structure(msg) => Diagnostic::error("PN003", msg.clone()).with_origin(path),
        other => Diagnostic::error("PN002", other.to_string()).with_origin(path),
    }
}

/// Parses the shared `FILE PLACE N [field=VAL...]` operands of `run`
/// and `trace` and returns the loaded net, injection place, token
/// count and payload fields.
fn parse_run_args(
    args: &[String],
) -> (
    perf_petri::net::Net,
    perf_petri::net::PlaceId,
    usize,
    Vec<(String, Value)>,
) {
    let net = load(&args[0]);
    let place = net.place_id(&args[1]).unwrap_or_else(|| {
        eprintln!("pnet: no place `{}`", args[1]);
        std::process::exit(1);
    });
    let n: usize = args[2].parse().unwrap_or_else(|_| {
        eprintln!("pnet: bad count `{}`", args[2]);
        std::process::exit(2);
    });
    let mut fields = Vec::new();
    for pair in &args[3..] {
        let Some((k, v)) = pair.split_once('=') else {
            eprintln!("pnet: expected field=VALUE, got `{pair}`");
            std::process::exit(2);
        };
        let Ok(num) = v.parse::<f64>() else {
            eprintln!("pnet: non-numeric value in `{pair}`");
            std::process::exit(2);
        };
        fields.push((k.to_string(), Value::num(num)));
    }
    (net, place, n, fields)
}

fn load(path: &str) -> perf_petri::net::Net {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        fail(
            Diagnostic::error("PN001", format!("cannot read file: {e}")).with_origin(path),
            false,
        )
    });
    text::parse(&src).unwrap_or_else(|e| fail(load_diag(path, &e), false))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") => {
            print!("{HELP}");
        }
        Some("check") if args.len() == 2 => {
            let net = load(&args[1]);
            let s = analysis::structure(&net);
            println!(
                "{}: net `{}` with {} places, {} transitions",
                args[1],
                net.name,
                net.places().len(),
                net.transitions().len()
            );
            println!("  sources: {}", s.sources.join(", "));
            println!("  sinks:   {}", s.sinks.join(", "));
            println!("  conservative: {}", s.conservative);
            if s.dead_ends.is_empty() {
                println!("  dead ends: none");
            } else {
                println!(
                    "  dead ends: {} <- TOKENS CAN STRAND HERE",
                    s.dead_ends.join(", ")
                );
                std::process::exit(1);
            }
        }
        Some("lint") if args.len() >= 2 => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let json = rest.iter().any(|a| a == "--json");
            rest.retain(|a| a != "--json");
            let mut entries: Vec<String> = Vec::new();
            let mut operands: Vec<String> = Vec::new();
            let mut it = rest.into_iter();
            while let Some(a) = it.next() {
                if a == "--entry" {
                    match it.next() {
                        Some(p) => entries.push(p),
                        None => usage(),
                    }
                } else {
                    operands.push(a);
                }
            }
            let [path] = operands.as_slice() else { usage() };
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                fail(
                    Diagnostic::error("PN001", format!("cannot read file: {e}")).with_origin(path),
                    json,
                )
            });
            let net = text::parse(&src).unwrap_or_else(|e| fail(load_diag(path, &e), json));
            let mut entry_ids = Vec::new();
            for e in &entries {
                match net.place_id(e) {
                    Some(id) => entry_ids.push(id),
                    None => fail(
                        Diagnostic::error("PN003", format!("no place `{e}` for --entry"))
                            .with_origin(path),
                        json,
                    ),
                }
            }
            if entry_ids.is_empty() {
                // Surface what the reachability lints will assume: the
                // structurally-inferred injection places.
                let inferred: Vec<&str> = lint::infer_entries(&net)
                    .into_iter()
                    .map(|id| net.places()[id.index()].name.as_str())
                    .collect();
                if !inferred.is_empty() {
                    eprintln!(
                        "pnet: no --entry given; inferred entry places: {}",
                        inferred.join(", ")
                    );
                }
            }
            let mut ds = lint::lint(
                &net,
                if entry_ids.is_empty() {
                    None
                } else {
                    Some(&entry_ids)
                },
            );
            ds.set_origin(path);
            if json {
                println!("{}", ds.render_json());
            } else {
                print!("{}", ds.render());
            }
            if ds.has_errors() {
                std::process::exit(1);
            }
        }
        Some("bound") if args.len() >= 2 => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let json = rest.iter().any(|a| a == "--json");
            rest.retain(|a| a != "--json");
            let mut entries: Vec<String> = Vec::new();
            let mut operands: Vec<String> = Vec::new();
            let mut it = rest.into_iter();
            while let Some(a) = it.next() {
                if a == "--entry" {
                    match it.next() {
                        Some(p) => entries.push(p),
                        None => usage(),
                    }
                } else {
                    operands.push(a);
                }
            }
            let Some((path, field_specs)) = operands.split_first() else {
                usage()
            };
            let net = load(path);
            let mut fields: Vec<(String, BoxVal)> = Vec::new();
            for pair in field_specs {
                let Some((k, v)) = pair.split_once('=') else {
                    eprintln!("pnet: expected field=LO..HI or field=VALUE, got `{pair}`");
                    std::process::exit(2);
                };
                let iv = if let Some((lo, hi)) = v.split_once("..") {
                    match (lo.parse::<f64>(), hi.parse::<f64>()) {
                        (Ok(lo), Ok(hi)) if lo <= hi => BoxVal::num(lo, hi),
                        _ => {
                            eprintln!("pnet: bad interval in `{pair}` (want LO..HI, LO <= HI)");
                            std::process::exit(2);
                        }
                    }
                } else {
                    match v.parse::<f64>() {
                        Ok(n) => BoxVal::point(n),
                        Err(_) => {
                            eprintln!("pnet: non-numeric value in `{pair}`");
                            std::process::exit(2);
                        }
                    }
                };
                fields.push((k.to_string(), iv));
            }
            let mut entry_ids = Vec::new();
            for e in &entries {
                match net.place_id(e) {
                    Some(id) => entry_ids.push(id),
                    None => fail(
                        Diagnostic::error("PN003", format!("no place `{e}` for --entry"))
                            .with_origin(path),
                        json,
                    ),
                }
            }
            let inferred = entry_ids.is_empty();
            if inferred {
                entry_ids = lint::infer_entries(&net);
            }
            let res = if fields.is_empty() {
                perf_petri::bounds_any(&net, Some(&entry_ids))
            } else {
                let tok = fields
                    .into_iter()
                    .fold(BoxVal::record([]), |bx, (k, iv)| bx.with_field(&k, iv));
                perf_petri::bounds(&net, Some(&entry_ids), &tok)
            };
            let nb =
                res.unwrap_or_else(|e| fail(Diagnostic::error("PN003", e).with_origin(path), json));
            if json {
                // Non-finite bounds (an unconstrained token box) become
                // JSON null rather than the invalid literal `inf`.
                let num = |v: f64| {
                    if v.is_finite() {
                        v.to_string()
                    } else {
                        "null".to_string()
                    }
                };
                let delays: Vec<String> = nb
                    .delays
                    .iter()
                    .map(|(n, iv)| {
                        format!(
                            "{{\"transition\":{n:?},\"lo\":{},\"hi\":{}}}",
                            num(iv.lo),
                            num(iv.hi)
                        )
                    })
                    .collect();
                let entries_json: Vec<String> =
                    nb.entries.iter().map(|e| format!("{e:?}")).collect();
                println!(
                    "{{\"net\":{:?},\"entries\":[{}],\"entries_inferred\":{},\
                     \"latency_floor\":{},\"throughput_ceiling\":{},\"delays\":[{}]}}",
                    net.name,
                    entries_json.join(","),
                    inferred,
                    num(nb.latency_lo),
                    num(nb.throughput_hi),
                    delays.join(",")
                );
            } else {
                println!("{path}: net `{}`", net.name);
                println!(
                    "  entries:            {}{}",
                    nb.entries.join(", "),
                    if inferred { " (inferred)" } else { "" }
                );
                println!("  latency floor:      {} cycles", nb.latency_lo);
                println!("  throughput ceiling: {} items/cycle", nb.throughput_hi);
                println!("  transition delays:");
                let width = nb.delays.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
                for (name, iv) in &nb.delays {
                    println!("    {name:width$}  [{}, {}]", iv.lo, iv.hi);
                }
            }
        }
        Some("dot") if args.len() == 2 => {
            print!("{}", dot::to_dot(&load(&args[1])));
        }
        Some("run") if args.len() >= 4 => {
            let (net, place, n, fields) = parse_run_args(&args[1..]);
            let mut eng = Engine::new(&net, Options::default());
            for _ in 0..n {
                eng.inject(place, Token::at(Value::record_owned(fields.clone()), 0));
            }
            let res = eng.run().unwrap_or_else(|e| {
                eprintln!("pnet: simulation failed: {e}");
                std::process::exit(1);
            });
            println!("makespan:    {} cycles", res.makespan);
            println!("completions: {}", res.completions.len());
            println!("throughput:  {:.6} tokens/cycle", res.throughput());
            let lats = res.latencies();
            if !lats.is_empty() {
                let avg: f64 = lats.iter().sum::<u64>() as f64 / lats.len() as f64;
                println!(
                    "latency:     avg {:.1}, min {}, max {}",
                    avg,
                    lats.iter().min().expect("nonempty"),
                    lats.iter().max().expect("nonempty")
                );
            }
            let util = analysis::utilization(&net, &res);
            if let Some(b) = util.bottleneck {
                println!("bottleneck:  {b}");
            }
            if !res.stranded.is_empty() {
                println!("stranded:    {:?}", res.stranded);
            }
        }
        Some("trace") if args.len() >= 4 => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let folded = rest.iter().any(|a| a == "--folded");
            rest.retain(|a| a != "--folded");
            let mut perfetto: Option<String> = None;
            if let Some(i) = rest.iter().position(|a| a == "--perfetto") {
                rest.remove(i);
                if i >= rest.len() {
                    usage();
                }
                perfetto = Some(rest.remove(i));
            }
            if rest.len() < 3 {
                usage();
            }
            let (net, place, n, fields) = parse_run_args(&rest);
            let mut eng = Engine::new(
                &net,
                Options {
                    trace: Some(DEFAULT_TRACE_CAPACITY),
                    ..Options::default()
                },
            );
            for _ in 0..n {
                eng.inject(place, Token::at(Value::record_owned(fields.clone()), 0));
            }
            let res = eng.run().unwrap_or_else(|e| {
                eprintln!("pnet: simulation failed: {e}");
                std::process::exit(1);
            });
            let path = critical_path(&res);
            if let Some(out) = &perfetto {
                let doc = perf_petri::trace::chrome_trace_json(&net, &res, path.as_ref());
                if let Err(e) = std::fs::write(out, doc) {
                    fail(
                        Diagnostic::error("PN001", format!("cannot write Chrome trace: {e}"))
                            .with_origin(out.as_str()),
                        false,
                    );
                }
                eprintln!("pnet: wrote {out} (open at ui.perfetto.dev)");
            }
            if folded {
                if let Some(p) = &path {
                    print!("{}", p.to_folded(&net));
                }
            } else {
                print!("{}", trace_report_json(&net, &res, path.as_ref()));
            }
        }
        _ => usage(),
    }
}
