//! Tokens: the data units flowing through a performance net.

use perf_iface_lang::Value;

/// A token carries a data payload (used by delay and transform
/// expressions) and remembers when it entered the net, so end-to-end
/// latency can be measured at sink places.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Payload visible to transition behaviors.
    pub data: Value,
    /// Cycle at which the token was first injected into the net.
    pub born: u64,
    /// Cycle at which the token arrived in its current place.
    pub arrived: u64,
}

impl Token {
    /// Creates a token injected at cycle `at`.
    pub fn at(data: Value, at: u64) -> Token {
        Token {
            data,
            born: at,
            arrived: at,
        }
    }

    /// Creates a descendant token that inherits this token's birth time
    /// (latency is measured from the ancestor's injection).
    pub fn descend(&self, data: Value, arrived: u64) -> Token {
        Token {
            data,
            born: self.born,
            arrived,
        }
    }

    /// A unit token (no payload) injected at cycle `at`.
    pub fn unit(at: u64) -> Token {
        Token::at(Value::num(0.0), at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn birth_time_preserved_through_descent() {
        let t = Token::at(Value::num(1.0), 10);
        let d = t.descend(Value::num(2.0), 25);
        assert_eq!(d.born, 10);
        assert_eq!(d.arrived, 25);
        assert_eq!(d.data.as_num(), Some(2.0));
    }

    #[test]
    fn unit_token() {
        let t = Token::unit(5);
        assert_eq!(t.born, 5);
        assert_eq!(t.data.as_num(), Some(0.0));
    }
}
