//! The `.pnet` textual interchange format.
//!
//! A performance IR is only an *interface* if a vendor can ship it as an
//! artifact. `.pnet` is a line-oriented description of a timed Petri
//! net whose delay/guard/emit expressions are written in the PIL
//! expression language:
//!
//! ```text
//! # Performance IR for a two-stage decoder.
//! net decoder
//! const MEM = 120;
//!
//! place in_q
//! place work_q cap 8
//! sink done
//!
//! trans huffman
//!   in in_q
//!   out work_q
//!   delay 6 + ceil(t.bits / 32)
//!
//! trans idct
//!   in work_q
//!   out done
//!   delay 64 + MEM
//! ```
//!
//! Grammar (one directive per line, `#` starts a comment):
//!
//! * `net NAME` — net name (must appear first).
//! * `const NAME = EXPR;` — constant visible to all expressions.
//! * `place NAME [cap N]` — a place, optionally bounded.
//! * `sink NAME` — an unbounded completion-recording place.
//! * `trans NAME` — begins a transition block; the following indented
//!   directives apply to it:
//!   * `in PLACE [x N]` — input arc with weight `N` (default 1).
//!   * `out PLACE [x N]` — output arc.
//!   * `delay EXPR` — processing delay in cycles (required).
//!   * `guard EXPR` — enabling condition.
//!   * `emit PLACE EXPR` — payload for the arc to `PLACE` (default:
//!     pass the first input token's payload through).
//!   * `servers N` — concurrent firings (`0` = unlimited, default 1).
//!   * `priority N` — conflict-resolution priority (default 0).

use crate::behavior::{Behavior, ExprBehavior};
use crate::net::{Net, NetBuilder, PlaceId, Transition};
use crate::PetriError;
use std::collections::HashMap;

struct PendingTrans {
    name: String,
    line: usize,
    inputs: Vec<(String, usize)>,
    outputs: Vec<(String, usize)>,
    delay: Option<String>,
    guard: Option<String>,
    emits: HashMap<String, String>,
    servers: usize,
    priority: i32,
}

/// Parses `.pnet` source into a [`Net`].
pub fn parse(src: &str) -> Result<Net, PetriError> {
    let mut name: Option<String> = None;
    let mut consts = String::new();
    let mut places: Vec<(String, Option<usize>, bool)> = Vec::new();
    let mut transes: Vec<PendingTrans> = Vec::new();

    let err = |line: usize, msg: String| PetriError::Parse { line, msg };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (head, rest) = match line.split_once(char::is_whitespace) {
            Some((h, r)) => (h, r.trim()),
            None => (line, ""),
        };
        match head {
            "net" => {
                if name.is_some() {
                    return Err(err(lineno, "duplicate `net` directive".into()));
                }
                if rest.is_empty() {
                    return Err(err(lineno, "`net` needs a name".into()));
                }
                name = Some(rest.to_string());
            }
            "const" => {
                if !rest.contains('=') || !rest.ends_with(';') {
                    return Err(err(lineno, "const syntax: `const NAME = EXPR;`".into()));
                }
                consts.push_str("const ");
                consts.push_str(rest);
                consts.push('\n');
            }
            "place" | "sink" => {
                let mut parts = rest.split_whitespace();
                let pname = parts
                    .next()
                    .ok_or_else(|| err(lineno, format!("`{head}` needs a name")))?;
                let mut cap = None;
                match (parts.next(), parts.next()) {
                    (None, _) => {}
                    (Some("cap"), Some(n)) => {
                        if head == "sink" {
                            return Err(err(lineno, "sinks are always unbounded".into()));
                        }
                        cap = Some(
                            n.parse::<usize>()
                                .map_err(|_| err(lineno, format!("bad capacity `{n}`")))?,
                        );
                    }
                    _ => return Err(err(lineno, format!("bad `{head}` directive"))),
                }
                places.push((pname.to_string(), cap, head == "sink"));
            }
            "trans" => {
                if rest.is_empty() {
                    return Err(err(lineno, "`trans` needs a name".into()));
                }
                transes.push(PendingTrans {
                    name: rest.to_string(),
                    line: lineno,
                    inputs: Vec::new(),
                    outputs: Vec::new(),
                    delay: None,
                    guard: None,
                    emits: HashMap::new(),
                    servers: 1,
                    priority: 0,
                });
            }
            "in" | "out" => {
                let t = transes
                    .last_mut()
                    .ok_or_else(|| err(lineno, format!("`{head}` outside a transition")))?;
                let mut parts = rest.split_whitespace();
                let pname = parts
                    .next()
                    .ok_or_else(|| err(lineno, format!("`{head}` needs a place name")))?;
                let weight = match (parts.next(), parts.next()) {
                    (None, _) => 1,
                    (Some("x"), Some(n)) => n
                        .parse::<usize>()
                        .map_err(|_| err(lineno, format!("bad weight `{n}`")))?,
                    _ => return Err(err(lineno, format!("bad `{head}` arc syntax"))),
                };
                if head == "in" {
                    t.inputs.push((pname.to_string(), weight));
                } else {
                    t.outputs.push((pname.to_string(), weight));
                }
            }
            "delay" => {
                let t = transes
                    .last_mut()
                    .ok_or_else(|| err(lineno, "`delay` outside a transition".into()))?;
                if t.delay.is_some() {
                    return Err(err(lineno, "duplicate `delay`".into()));
                }
                t.delay = Some(rest.to_string());
            }
            "guard" => {
                let t = transes
                    .last_mut()
                    .ok_or_else(|| err(lineno, "`guard` outside a transition".into()))?;
                t.guard = Some(rest.to_string());
            }
            "emit" => {
                let t = transes
                    .last_mut()
                    .ok_or_else(|| err(lineno, "`emit` outside a transition".into()))?;
                let (pname, expr) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err(lineno, "`emit PLACE EXPR`".into()))?;
                t.emits.insert(pname.to_string(), expr.trim().to_string());
            }
            "servers" => {
                let t = transes
                    .last_mut()
                    .ok_or_else(|| err(lineno, "`servers` outside a transition".into()))?;
                t.servers = if rest == "inf" {
                    0
                } else {
                    rest.parse::<usize>()
                        .map_err(|_| err(lineno, format!("bad server count `{rest}`")))?
                };
            }
            "priority" => {
                let t = transes
                    .last_mut()
                    .ok_or_else(|| err(lineno, "`priority` outside a transition".into()))?;
                t.priority = rest
                    .parse::<i32>()
                    .map_err(|_| err(lineno, format!("bad priority `{rest}`")))?;
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }

    let name = name.ok_or(PetriError::Parse {
        line: 1,
        msg: "missing `net NAME` directive".into(),
    })?;

    let mut b = NetBuilder::new(name);
    let mut ids: HashMap<String, PlaceId> = HashMap::new();
    for (pname, cap, is_sink) in places {
        let id = if is_sink {
            b.sink(pname.clone())
        } else {
            b.place(pname.clone(), cap)
        };
        ids.insert(pname, id);
    }

    for t in transes {
        let lookup = |n: &str| {
            ids.get(n).copied().ok_or(PetriError::Parse {
                line: t.line,
                msg: format!("transition `{}` references unknown place `{n}`", t.name),
            })
        };
        let inputs: Vec<(PlaceId, usize)> = t
            .inputs
            .iter()
            .map(|(n, w)| Ok((lookup(n)?, *w)))
            .collect::<Result<_, PetriError>>()?;
        let outputs: Vec<(PlaceId, usize)> = t
            .outputs
            .iter()
            .map(|(n, w)| Ok((lookup(n)?, *w)))
            .collect::<Result<_, PetriError>>()?;
        // Any emit that names a place that is not an output arc is a
        // mistake the author should hear about.
        for ename in t.emits.keys() {
            if !t.outputs.iter().any(|(n, _)| n == ename) {
                return Err(PetriError::Parse {
                    line: t.line,
                    msg: format!(
                        "transition `{}` emits to `{ename}` which is not an output arc",
                        t.name
                    ),
                });
            }
        }
        let delay = t.delay.ok_or(PetriError::Parse {
            line: t.line,
            msg: format!("transition `{}` has no `delay`", t.name),
        })?;
        let emit_srcs: Vec<Option<String>> = t
            .outputs
            .iter()
            .map(|(n, _)| t.emits.get(n).cloned())
            .collect();
        let behavior = ExprBehavior::compile(&consts, &delay, t.guard.as_deref(), &emit_srcs)
            .map_err(|e| PetriError::Parse {
                line: t.line,
                msg: format!("in transition `{}`: {e}", t.name),
            })?;
        b.add_transition(Transition {
            name: t.name,
            inputs,
            outputs,
            behavior: Behavior::Expr(behavior),
            servers: t.servers,
            priority: t.priority,
        });
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Options};
    use crate::token::Token;
    use perf_iface_lang::Value;

    const PIPE: &str = "
# Two-stage pipeline.
net pipe
const EXTRA = 2;

place in_q
place mid cap 4
sink done

trans s1
  in in_q
  out mid
  delay 1 + EXTRA

trans s2
  in mid
  out done
  delay t.work
";

    #[test]
    fn parse_and_run_pipeline() {
        let net = parse(PIPE).unwrap();
        assert_eq!(net.name, "pipe");
        assert_eq!(net.places().len(), 3);
        assert_eq!(net.transitions().len(), 2);
        let src = net.place_id("in_q").unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..5 {
            e.inject(
                src,
                Token::at(Value::record([("work", Value::num(4.0))]), 0),
            );
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 5);
        // Bottleneck: 4-cycle stage 2.
        assert!(r.makespan >= 20);
    }

    #[test]
    fn emit_and_guard_directives() {
        let src = "
net g
place a
sink yes
sink no
trans pick
  in a
  out yes
  guard t.v < 10
  emit yes { v: t.v, small: true }
  delay 1
  priority 1
trans fallback
  in a
  out no
  delay 1
";
        let net = parse(src).unwrap();
        let a = net.place_id("a").unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(a, Token::at(Value::record([("v", Value::num(3.0))]), 0));
        e.inject(a, Token::at(Value::record([("v", Value::num(30.0))]), 1));
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 2);
        let small = r
            .completions
            .iter()
            .find(|t| t.data.field("small").is_some())
            .expect("one token through the guarded path");
        assert_eq!(small.data.field("v").unwrap().as_num(), Some(3.0));
    }

    #[test]
    fn weighted_arcs_and_servers() {
        let src = "
net w
place a
sink z
trans batch
  in a x 3
  out z
  delay 2
  servers inf
";
        let net = parse(src).unwrap();
        let a = net.place_id("a").unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..9 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 3);
        assert_eq!(r.makespan, 2); // Infinite servers: all batches parallel.
    }

    #[test]
    fn missing_net_directive() {
        assert!(matches!(
            parse("place a"),
            Err(PetriError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn missing_delay_reported_with_line() {
        let src = "net n\nplace a\nsink z\ntrans t\n  in a\n  out z\n";
        let e = parse(src).unwrap_err();
        let PetriError::Parse { line, msg } = e else {
            panic!("expected parse error, got {e:?}")
        };
        assert_eq!(line, 4);
        assert!(msg.contains("no `delay`"));
    }

    #[test]
    fn unknown_place_in_arc() {
        let src = "net n\nplace a\ntrans t\n  in a\n  out nowhere\n  delay 1\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn emit_to_non_output_rejected() {
        let src =
            "net n\nplace a\nsink z\nsink w\ntrans t\n  in a\n  out z\n  emit w 1\n  delay 1\n";
        let e = parse(src).unwrap_err();
        assert!(matches!(e, PetriError::Parse { .. }));
    }

    #[test]
    fn bad_expression_reported() {
        let src = "net n\nplace a\nsink z\ntrans t\n  in a\n  out z\n  delay 1 +\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn sink_with_capacity_rejected() {
        assert!(parse("net n\nsink z cap 4\n").is_err());
    }

    #[test]
    fn unknown_directive_rejected() {
        assert!(parse("net n\nfrobnicate x\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "net n # trailing comment\n\n# full-line comment\nplace a\n";
        let net = parse(src).unwrap();
        assert_eq!(net.places().len(), 1);
    }

    #[test]
    fn duplicate_net_rejected() {
        assert!(parse("net a\nnet b\n").is_err());
    }
}
