//! Event-driven simulation engine for timed Petri nets.
//!
//! Unlike the tick-accurate simulators in `perf-sim`, the engine only
//! does work when something *happens*: a token arrives or a transition
//! completes. Between events no cycles are simulated — this is why a
//! Petri-net interface can be evaluated orders of magnitude faster than
//! a cycle-accurate model of the same accelerator (the paper's 1312×
//! TVM-profiling speedup, our experiment E5).
//!
//! Firing is *incremental*: after each event, only the transitions the
//! event could have enabled are re-tried (a dirty-set worklist over the
//! net's precomputed place→transition adjacency), instead of scanning
//! the whole net to a fixpoint. The original full scan is kept as
//! [`Engine::run_reference`] — it serves as the executable
//! specification of the firing semantics for the differential tests
//! and as the baseline for the throughput benchmarks. Both paths
//! assume guards are pure (the reference may evaluate a guard more
//! often than the worklist does).

use crate::net::{Net, PlaceId};
use crate::token::Token;
use crate::trace::{EngineTrace, TokenSrc};
use crate::PetriError;
use std::collections::{BinaryHeap, VecDeque};

/// Engine options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Abort after this many processed events (runaway-net protection).
    pub max_events: u64,
    /// Treat stranded tokens at quiescence as an error.
    pub fail_on_deadlock: bool,
    /// Record a firing trace with token provenance, retaining at most
    /// this many records ([`crate::trace::DEFAULT_TRACE_CAPACITY`] is a
    /// reasonable choice). `None` (the default) disables tracing and
    /// keeps the hot path free of per-firing bookkeeping beyond one
    /// branch.
    pub trace: Option<usize>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_events: 200_000_000,
            fail_on_deadlock: false,
            trace: None,
        }
    }
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Time of the last event (cycles).
    pub makespan: u64,
    /// Tokens that reached sink places, in arrival order.
    pub completions: Vec<Token>,
    /// Events processed.
    pub events: u64,
    /// Firings per transition (indexed by `TransId`).
    pub firings: Vec<u64>,
    /// Sum of firing delays per transition ("busy cycles").
    pub busy: Vec<u64>,
    /// Peak occupancy per place.
    pub high_water: Vec<usize>,
    /// Tokens stranded in non-sink places at quiescence.
    pub stranded: Vec<(String, usize)>,
    /// Enablement attempts: how often a transition was re-checked for
    /// firing. The incremental worklist's whole point is to keep this
    /// number low; the reference scan's is much higher for the same
    /// net, so differential tests must not compare it.
    pub enablement_checks: u64,
    /// Firing trace with token provenance; `Some` iff
    /// [`Options::trace`] was set. Feed to
    /// [`crate::trace::critical_path`].
    pub trace: Option<EngineTrace>,
}

impl SimResult {
    /// Per-completion latencies (arrival − birth).
    pub fn latencies(&self) -> Vec<u64> {
        self.completions
            .iter()
            .map(|t| t.arrived.saturating_sub(t.born))
            .collect()
    }

    /// Completions per cycle over the whole run.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.completions.len() as f64 / self.makespan as f64
        }
    }

    /// Whether the run ended with stranded tokens.
    pub fn deadlocked(&self) -> bool {
        !self.stranded.is_empty()
    }
}

/// A scheduled event, ordered by (time, sequence) ascending.
struct Scheduled {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> core::cmp::Ordering {
        // Reversed for the max-heap: earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Debug)]
enum Ev {
    /// External token arrival.
    Inject { place: PlaceId, token: Token },
    /// A firing completes: deliver outputs, free the server.
    Deliver {
        trans: usize,
        outputs: Vec<(PlaceId, Token)>,
        /// Firing sequence number in the trace; 0 when untraced (never
        /// read in that case).
        fseq: u64,
    },
}

/// Bitmask over transition *ranks* (positions in the net's firing
/// order, priority descending then declaration order). Scanning set
/// bits in ascending rank keeps the worklist's firing sequence
/// identical to the reference full-net scan.
struct DirtySet {
    words: Vec<u64>,
    len: usize,
}

impl DirtySet {
    fn new(len: usize) -> DirtySet {
        DirtySet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    fn set_all(&mut self) {
        let len = self.len;
        for (w, word) in self.words.iter_mut().enumerate() {
            let bits = len.saturating_sub(w * 64).min(64);
            *word = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
    }

    /// Lowest set index ≥ `from`, if any.
    fn next_set_at_or_after(&self, from: usize) -> Option<usize> {
        let mut w = from / 64;
        if w >= self.words.len() {
            return None;
        }
        let mut word = self.words[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w == self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }
}

/// An engine bound to a net. Inject tokens, then [`Engine::run`].
pub struct Engine<'n> {
    net: &'n Net,
    opts: Options,
    marking: Vec<VecDeque<Token>>,
    /// Output capacity reserved by in-flight firings, per place.
    reserved: Vec<usize>,
    busy_servers: Vec<usize>,
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    completions: Vec<Token>,
    firings: Vec<u64>,
    busy: Vec<u64>,
    high_water: Vec<usize>,
    /// Worklist of transitions to re-try, indexed by rank.
    dirty: DirtySet,
    /// Reusable buffer for the tokens consumed by one firing.
    selected: Vec<Token>,
    /// Recycled output vectors from processed Deliver events.
    outs_pool: Vec<Vec<(PlaceId, Token)>>,
    /// Enablement attempts (see [`SimResult::enablement_checks`]).
    enablement_checks: u64,
    /// Firing trace; `Some` iff [`Options::trace`] was set.
    trace: Option<EngineTrace>,
    /// Token provenance queues mirroring `marking` exactly: one
    /// [`TokenSrc`] per queued token, pushed and popped in lockstep.
    /// Only populated while tracing.
    prov: Vec<VecDeque<TokenSrc>>,
}

impl<'n> Engine<'n> {
    /// Creates an engine over `net`.
    pub fn new(net: &'n Net, opts: Options) -> Engine<'n> {
        Engine {
            opts,
            marking: net.places().iter().map(|_| VecDeque::new()).collect(),
            reserved: vec![0; net.places().len()],
            busy_servers: vec![0; net.transitions().len()],
            heap: BinaryHeap::new(),
            seq: 0,
            completions: Vec::new(),
            firings: vec![0; net.transitions().len()],
            busy: vec![0; net.transitions().len()],
            high_water: vec![0; net.places().len()],
            dirty: DirtySet::new(net.transitions().len()),
            selected: Vec::new(),
            outs_pool: Vec::new(),
            enablement_checks: 0,
            trace: opts.trace.map(EngineTrace::new),
            prov: net.places().iter().map(|_| VecDeque::new()).collect(),
            net,
        }
    }

    /// Schedules an external token arrival at `token.arrived`.
    pub fn inject(&mut self, place: PlaceId, token: Token) {
        self.push_event(token.arrived, Ev::Inject { place, token });
    }

    /// A 64-bit fingerprint of the engine's current marking: every
    /// queued token and every injected-but-undelivered token, with its
    /// place, payload, birth and arrival cycles, combined with the
    /// net's structural fingerprint ([`Net::fingerprint`]).
    ///
    /// Deterministic runs from identical markings produce identical
    /// results, so this value keys the `perf-service` result cache for
    /// Petri-tier evaluations: two workloads whose token injections
    /// coincide (say, two images with the same per-block bit/nonzero
    /// profile) share one cache slot. Call it after `inject`ing the
    /// workload and before [`Engine::run`].
    pub fn marking_fingerprint(&self) -> u64 {
        let mut h = perf_core::query::Fnv1a::new();
        h.write_u64(self.net.fingerprint());
        let hash_token = |h: &mut perf_core::query::Fnv1a, place: usize, t: &Token| {
            h.write_u64(place as u64);
            h.write(t.data.to_string().as_bytes());
            h.write_u64(t.born);
            h.write_u64(t.arrived);
        };
        for (pi, q) in self.marking.iter().enumerate() {
            for t in q {
                hash_token(&mut h, pi, t);
            }
        }
        // Pending injections live in the event heap; walk them in
        // deterministic insertion (seq) order, not heap order.
        let mut pending: Vec<&Scheduled> = self
            .heap
            .iter()
            .filter(|s| matches!(s.ev, Ev::Inject { .. }))
            .collect();
        pending.sort_by_key(|s| s.seq);
        for s in pending {
            if let Ev::Inject { place, ref token } = s.ev {
                hash_token(&mut h, place.0, token);
            }
        }
        h.finish()
    }

    fn push_event(&mut self, time: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, ev });
    }

    fn deposit(&mut self, place: PlaceId, token: Token) {
        let q = &mut self.marking[place.0];
        q.push_back(token);
        self.high_water[place.0] = self.high_water[place.0].max(q.len());
    }

    /// Marks every transition consuming from `p` for re-trying (they
    /// may see a new queue head or newly available tokens).
    fn wake_consumers(&mut self, p: PlaceId) {
        let net = self.net;
        for &tj in &net.consumers[p.0] {
            self.dirty.set(net.rank[tj]);
        }
    }

    /// Marks every transition producing into `p` for re-trying (the
    /// place freed capacity).
    fn wake_producers(&mut self, p: PlaceId) {
        let net = self.net;
        for &tj in &net.producers[p.0] {
            self.dirty.set(net.rank[tj]);
        }
    }

    /// Fires until fixpoint using the selected strategy.
    fn fire_enabled(&mut self, now: u64, incremental: bool) -> Result<(), PetriError> {
        if incremental {
            self.fire_enabled_incremental(now)
        } else {
            self.fire_enabled_scan(now)
        }
    }

    /// Fires until fixpoint, re-trying only dirty transitions.
    ///
    /// Pass-structured to match the reference scan exactly: each pass
    /// walks the dirty set in rank order; a transition dirtied at a
    /// rank the cursor already passed waits for the next pass (where
    /// the reference would also revisit it). A transition that is not
    /// dirty cannot fire — nothing that enables it changed since it
    /// last failed — so skipping it leaves the firing sequence, and
    /// hence every event timestamp and sequence number, identical.
    fn fire_enabled_incremental(&mut self, now: u64) -> Result<(), PetriError> {
        loop {
            let mut fired_any = false;
            let mut cursor = 0usize;
            while let Some(r) = self.dirty.next_set_at_or_after(cursor) {
                cursor = r + 1;
                let ti = self.net.order[r];
                while self.try_fire_fast(ti, now)? {
                    fired_any = true;
                }
                // Drained: only its own firings touched its inputs, so
                // the final failed attempt is still current.
                self.dirty.clear(r);
            }
            if !fired_any {
                return Ok(());
            }
        }
    }

    /// Attempts a single firing of `ti` at time `now`, consuming input
    /// tokens by move when no guard needs to inspect them first. On
    /// success, wakes the transitions the state change may enable.
    fn try_fire_fast(&mut self, ti: usize, now: u64) -> Result<bool, PetriError> {
        let net = self.net;
        let t = &net.transitions()[ti];
        self.enablement_checks += 1;
        if t.servers != 0 && self.busy_servers[ti] >= t.servers {
            return Ok(false);
        }
        // Check token availability.
        for &(p, w) in &t.inputs {
            if self.marking[p.0].len() < w {
                return Ok(false);
            }
        }
        // Check output capacity (current occupancy + reservations,
        // plus what earlier arcs of this firing reserve in the same
        // place).
        for (j, &(p, w)) in t.outputs.iter().enumerate() {
            if let Some(cap) = net.places()[p.0].capacity {
                let prior: usize = t.outputs[..j]
                    .iter()
                    .filter(|&&(q, _)| q == p)
                    .map(|&(_, w2)| w2)
                    .sum();
                if self.marking[p.0].len() + self.reserved[p.0] + prior + w > cap {
                    return Ok(false);
                }
            }
        }
        self.selected.clear();
        if !t.behavior.has_guard() {
            // Guard-free: consume by move, zero clones.
            for &(p, w) in &t.inputs {
                let q = &mut self.marking[p.0];
                for _ in 0..w {
                    self.selected
                        .push(q.pop_front().expect("availability checked"));
                }
            }
        } else if let [(p, w)] = t.inputs[..] {
            // Guarded, single input arc: evaluate the guard on the
            // borrowed queue head(s), then consume by move.
            let head = &self.marking[p.0].make_contiguous()[..w];
            if !t.behavior.guard(head)? {
                return Ok(false);
            }
            let q = &mut self.marking[p.0];
            for _ in 0..w {
                self.selected
                    .push(q.pop_front().expect("availability checked"));
            }
        } else {
            // Guarded join: the candidate set spans queues, so clone
            // it for the guard (rare shape; same as the reference).
            for &(p, w) in &t.inputs {
                for k in 0..w {
                    self.selected.push(self.marking[p.0][k].clone());
                }
            }
            if !t.behavior.guard(&self.selected)? {
                return Ok(false);
            }
            for &(p, w) in &t.inputs {
                let q = &mut self.marking[p.0];
                for _ in 0..w {
                    q.pop_front();
                }
            }
        }
        // Provenance pops mirror the consumption above exactly (same
        // arcs, same counts, same FIFO heads).
        let parents = if self.trace.is_some() {
            let mut ps = Vec::with_capacity(self.selected.len());
            for &(p, w) in &t.inputs {
                let q = &mut self.prov[p.0];
                for _ in 0..w {
                    ps.push(q.pop_front().expect("provenance mirrors marking"));
                }
            }
            ps
        } else {
            Vec::new()
        };
        let firing = t.behavior.fire(&self.selected, t.outputs.len())?;
        // Latency lineage: outputs inherit the earliest birth among the
        // consumed tokens.
        let born = self.selected.iter().map(|t| t.born).min().unwrap_or(now);
        let done = now + firing.delay;
        let mut outs = self.outs_pool.pop().unwrap_or_default();
        for (&(p, w), payload) in t.outputs.iter().zip(firing.outputs) {
            if let Some(cap) = net.places()[p.0].capacity {
                debug_assert!(self.marking[p.0].len() + self.reserved[p.0] + w <= cap);
            }
            self.reserved[p.0] += w;
            for _ in 1..w {
                outs.push((
                    p,
                    Token {
                        data: payload.clone(),
                        born,
                        arrived: done,
                    },
                ));
            }
            // The final copy per arc moves the payload.
            outs.push((
                p,
                Token {
                    data: payload,
                    born,
                    arrived: done,
                },
            ));
        }
        self.busy_servers[ti] += 1;
        self.firings[ti] += 1;
        self.busy[ti] += firing.delay;
        let fseq = self.record_firing(now, ti, firing.delay, parents);
        self.push_event(
            done,
            Ev::Deliver {
                trans: ti,
                outputs: outs,
                fseq,
            },
        );
        // Consumption changed the input queues' heads (guard
        // re-selection for competing consumers) and freed capacity in
        // bounded input places (their producers may proceed).
        for &(p, _) in &t.inputs {
            self.wake_consumers(p);
            if net.places()[p.0].capacity.is_some() {
                self.wake_producers(p);
            }
        }
        Ok(true)
    }

    /// Attempts to fire every enabled transition at time `now` until a
    /// fixpoint, scanning the whole net each pass (reference path).
    fn fire_enabled_scan(&mut self, now: u64) -> Result<(), PetriError> {
        loop {
            let mut fired_any = false;
            // Deterministic order: priority descending, then
            // declaration order (precomputed at net assembly).
            for i in 0..self.net.order.len() {
                let ti = self.net.order[i];
                while self.try_fire_scan(ti, now)? {
                    fired_any = true;
                }
            }
            if !fired_any {
                return Ok(());
            }
        }
    }

    /// Attempts a single firing of transition `ti` at time `now`
    /// (reference path: speculative clones, fresh allocations).
    fn try_fire_scan(&mut self, ti: usize, now: u64) -> Result<bool, PetriError> {
        let t = &self.net.transitions()[ti];
        self.enablement_checks += 1;
        if t.servers != 0 && self.busy_servers[ti] >= t.servers {
            return Ok(false);
        }
        // Check token availability.
        for &(p, w) in &t.inputs {
            if self.marking[p.0].len() < w {
                return Ok(false);
            }
        }
        // Check output capacity (current occupancy + reservations,
        // plus what earlier arcs of this firing reserve in the same
        // place).
        for (j, &(p, w)) in t.outputs.iter().enumerate() {
            if let Some(cap) = self.net.places()[p.0].capacity {
                let prior: usize = t.outputs[..j]
                    .iter()
                    .filter(|&&(q, _)| q == p)
                    .map(|&(_, w2)| w2)
                    .sum();
                if self.marking[p.0].len() + self.reserved[p.0] + prior + w > cap {
                    return Ok(false);
                }
            }
        }
        // Select tokens FIFO (without consuming yet, for the guard).
        let mut selected = Vec::new();
        for &(p, w) in &t.inputs {
            for k in 0..w {
                selected.push(self.marking[p.0][k].clone());
            }
        }
        if !t.behavior.guard(&selected)? {
            return Ok(false);
        }
        // Consume.
        for &(p, w) in &t.inputs {
            for _ in 0..w {
                self.marking[p.0].pop_front();
            }
        }
        // Provenance pops mirror the consumption above exactly.
        let parents = if self.trace.is_some() {
            let mut ps = Vec::with_capacity(selected.len());
            for &(p, w) in &t.inputs {
                let q = &mut self.prov[p.0];
                for _ in 0..w {
                    ps.push(q.pop_front().expect("provenance mirrors marking"));
                }
            }
            ps
        } else {
            Vec::new()
        };
        let firing = t.behavior.fire(&selected, t.outputs.len())?;
        // Latency lineage: outputs inherit the earliest birth among the
        // consumed tokens.
        let born = selected.iter().map(|t| t.born).min().unwrap_or(now);
        let done = now + firing.delay;
        let mut outs = Vec::new();
        for (arc_idx, &(p, w)) in t.outputs.iter().enumerate() {
            if let Some(cap) = self.net.places()[p.0].capacity {
                debug_assert!(self.marking[p.0].len() + self.reserved[p.0] + w <= cap);
            }
            self.reserved[p.0] += w;
            for _ in 0..w {
                outs.push((
                    p,
                    Token {
                        data: firing.outputs[arc_idx].clone(),
                        born,
                        arrived: done,
                    },
                ));
            }
        }
        self.busy_servers[ti] += 1;
        self.firings[ti] += 1;
        self.busy[ti] += firing.delay;
        let fseq = self.record_firing(now, ti, firing.delay, parents);
        self.push_event(
            done,
            Ev::Deliver {
                trans: ti,
                outputs: outs,
                fseq,
            },
        );
        Ok(true)
    }

    /// Appends a firing record when tracing; returns the assigned
    /// firing sequence number (0, never read, when untraced).
    fn record_firing(&mut self, now: u64, ti: usize, delay: u64, parents: Vec<TokenSrc>) -> u64 {
        match self.trace.as_mut() {
            Some(tr) => {
                let t = &self.net.transitions()[ti];
                let tokens_in: u32 = t.inputs.iter().map(|&(_, w)| w as u32).sum();
                let tokens_out: u32 = t.outputs.iter().map(|&(_, w)| w as u32).sum();
                tr.push(now, ti, delay, tokens_in, tokens_out, parents)
            }
            None => 0,
        }
    }

    /// Runs until quiescence and returns the result.
    ///
    /// Uses the incremental worklist: after each event only the
    /// transitions the event could have enabled are re-tried, and
    /// guard-free firings consume tokens by move.
    pub fn run(self) -> Result<SimResult, PetriError> {
        self.run_impl(true)
    }

    /// Runs with the original full-net fixpoint scan: every transition
    /// is re-tried after every event, with per-firing clones and fresh
    /// allocations.
    ///
    /// Kept always-compiled as the executable specification of the
    /// firing semantics — the differential suite asserts [`Engine::run`]
    /// produces identical results, and the benchmarks measure the
    /// worklist speedup against it.
    pub fn run_reference(self) -> Result<SimResult, PetriError> {
        self.run_impl(false)
    }

    fn run_impl(mut self, incremental: bool) -> Result<SimResult, PetriError> {
        let mut now = 0u64;
        let mut events = 0u64;
        if incremental {
            // Nothing has been tried yet: every transition is a
            // candidate for the initial fixpoint.
            self.dirty.set_all();
        }
        self.fire_enabled(now, incremental)?;
        while let Some(Scheduled { time, ev, .. }) = self.heap.pop() {
            events += 1;
            if events > self.opts.max_events {
                return Err(PetriError::EventBudgetExceeded(self.opts.max_events));
            }
            now = time;
            match ev {
                Ev::Inject { place, token } => {
                    let src = TokenSrc {
                        producer: None,
                        arrived: token.arrived,
                    };
                    if self.net.places()[place.0].is_sink {
                        self.completions.push(token);
                        if let Some(tr) = self.trace.as_mut() {
                            tr.completion_src.push(src);
                        }
                    } else {
                        self.deposit(place, token);
                        if self.trace.is_some() {
                            self.prov[place.0].push_back(src);
                        }
                        if incremental {
                            self.wake_consumers(place);
                        }
                    }
                }
                Ev::Deliver {
                    trans,
                    mut outputs,
                    fseq,
                } => {
                    // The server is free again, so the transition may
                    // immediately accept the next batch.
                    self.busy_servers[trans] -= 1;
                    if incremental {
                        self.dirty.set(self.net.rank[trans]);
                    }
                    for (p, tok) in outputs.drain(..) {
                        // One reservation unit per emitted token.
                        self.reserved[p.0] -= 1;
                        let src = TokenSrc {
                            producer: Some(fseq),
                            arrived: tok.arrived,
                        };
                        if self.net.places()[p.0].is_sink {
                            self.completions.push(tok);
                            if let Some(tr) = self.trace.as_mut() {
                                tr.completion_src.push(src);
                            }
                            // A bounded sink converts the released
                            // reservation into free capacity.
                            if incremental && self.net.places()[p.0].capacity.is_some() {
                                self.wake_producers(p);
                            }
                        } else {
                            // Deposit converts reservation into
                            // occupancy (no net capacity change), but
                            // consumers gain a token.
                            self.deposit(p, tok);
                            if self.trace.is_some() {
                                self.prov[p.0].push_back(src);
                            }
                            if incremental {
                                self.wake_consumers(p);
                            }
                        }
                    }
                    self.outs_pool.push(outputs);
                }
            }
            self.fire_enabled(now, incremental)?;
        }
        // Every reservation must have been released by the Deliver
        // that created it.
        debug_assert!(
            self.reserved.iter().all(|&r| r == 0),
            "reservations leaked at quiescence: {:?}",
            self.reserved
        );
        let stranded: Vec<(String, usize)> = self
            .net
            .places()
            .iter()
            .zip(&self.marking)
            .filter(|(p, q)| !p.is_sink && !q.is_empty())
            .map(|(p, q)| (p.name.clone(), q.len()))
            .collect();
        if self.opts.fail_on_deadlock && !stranded.is_empty() {
            return Err(PetriError::Deadlock { at: now, stranded });
        }
        Ok(SimResult {
            makespan: now,
            completions: self.completions,
            events,
            firings: self.firings,
            busy: self.busy,
            high_water: self.high_water,
            stranded,
            enablement_checks: self.enablement_checks,
            trace: self.trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{fixed_delay, Behavior};
    use crate::net::{NetBuilder, Transition};
    use perf_iface_lang::Value;

    fn passthrough(n: usize) -> impl Fn(&[Token]) -> Vec<Value> {
        move |ts: &[Token]| vec![ts[0].data.clone(); n]
    }

    #[test]
    fn marking_fingerprint_tracks_injections_not_order_noise() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 7, passthrough(1));
        let net = b.build().unwrap();

        let empty = Engine::new(&net, Options::default()).marking_fingerprint();
        let mut e1 = Engine::new(&net, Options::default());
        e1.inject(a, Token::at(Value::num(1.0), 0));
        let one = e1.marking_fingerprint();
        assert_ne!(empty, one, "injection must change the fingerprint");

        // Identical injections give identical fingerprints.
        let mut e2 = Engine::new(&net, Options::default());
        e2.inject(a, Token::at(Value::num(1.0), 0));
        assert_eq!(one, e2.marking_fingerprint());

        // A different payload gives a different fingerprint.
        let mut e3 = Engine::new(&net, Options::default());
        e3.inject(a, Token::at(Value::num(2.0), 0));
        assert_ne!(one, e3.marking_fingerprint());

        // A structurally different net (distinct transition name)
        // shifts every fingerprint. Native closure *bodies* are
        // opaque and intentionally do not contribute.
        let mut b2 = NetBuilder::new("n");
        let a2 = b2.place("a", None);
        let z2 = b2.sink("z");
        b2.transition("u", &[a2], &[z2], |_| 7, passthrough(1));
        let net2 = b2.build().unwrap();
        assert_ne!(net.fingerprint(), net2.fingerprint());
        let mut e4 = Engine::new(&net2, Options::default());
        e4.inject(a2, Token::at(Value::num(1.0), 0));
        assert_ne!(one, e4.marking_fingerprint());
    }

    #[test]
    fn single_transition_latency() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 7, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(a, Token::at(Value::num(1.0), 0));
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 1);
        assert_eq!(r.latencies(), vec![7]);
        assert_eq!(r.makespan, 7);
        assert!(!r.deadlocked());
    }

    #[test]
    fn single_server_serializes() {
        // 10 tokens through a 5-cycle single-server transition: the
        // last completes at 50.
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 5, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..10 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 10);
        assert_eq!(r.makespan, 50);
        assert!((r.throughput() - 0.2).abs() < 1e-12);
        assert_eq!(r.firings[0], 10);
        assert_eq!(r.busy[0], 50);
    }

    #[test]
    fn infinite_server_runs_in_parallel() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![(a, 1)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(5, 1),
            servers: 0,
            priority: 0,
        });
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..10 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.makespan, 5); // All ten fire concurrently.
    }

    #[test]
    fn pipeline_throughput_set_by_bottleneck() {
        let mut b = NetBuilder::new("pipe");
        let src = b.place("src", None);
        let mid = b.place("mid", Some(2));
        let z = b.sink("z");
        b.transition("fast", &[src], &[mid], |_| 1, passthrough(1));
        b.transition("slow", &[mid], &[z], |_| 4, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        let n = 100;
        for _ in 0..n {
            e.inject(src, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), n);
        // Steady state: one completion per 4 cycles.
        let per_item = r.makespan as f64 / n as f64;
        assert!((4.0..4.2).contains(&per_item), "per_item = {per_item}");
        // The bounded mid place forces backpressure on `fast`: its
        // firings track the slow stage rather than racing ahead.
        assert_eq!(r.high_water[mid.index()], 2);
    }

    #[test]
    fn capacity_reservation_prevents_overflow() {
        // Transition with delay writes into a cap-1 place; a second
        // firing must wait until the in-flight token is consumed.
        let mut b = NetBuilder::new("n");
        let src = b.place("src", None);
        let tiny = b.place("tiny", Some(1));
        let z = b.sink("z");
        b.transition("prod", &[src], &[tiny], |_| 1, passthrough(1));
        b.transition("cons", &[tiny], &[z], |_| 10, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..3 {
            e.inject(src, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 3);
        assert_eq!(r.high_water[tiny.index()], 1);
        // Serialized by the consumer: ~30 cycles.
        assert!(r.makespan >= 30);
    }

    #[test]
    fn join_waits_for_both_inputs() {
        let mut b = NetBuilder::new("n");
        let l = b.place("l", None);
        let rp = b.place("r", None);
        let z = b.sink("z");
        b.transition("join", &[l, rp], &[z], |_| 2, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(l, Token::at(Value::num(1.0), 0));
        e.inject(rp, Token::at(Value::num(2.0), 40)); // Late arrival.
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 1);
        assert_eq!(r.makespan, 42);
        // Latency measured from the earliest ancestor.
        assert_eq!(r.latencies(), vec![42]);
    }

    #[test]
    fn fork_duplicates_tokens() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z1 = b.sink("z1");
        let z2 = b.sink("z2");
        b.transition("fork", &[a], &[z1, z2], |_| 1, passthrough(2));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(a, Token::at(Value::num(0.0), 0));
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 2);
    }

    #[test]
    fn weighted_arcs_batch_tokens() {
        // Consume 4 tokens per firing (e.g. a 4-wide SIMD unit).
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "batch".into(),
            inputs: vec![(a, 4)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(3, 1),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..8 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 2);
        assert_eq!(r.makespan, 6);
    }

    #[test]
    fn leftover_tokens_reported_as_stranded() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "batch".into(),
            inputs: vec![(a, 2)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(1, 1),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..3 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 1);
        assert_eq!(r.stranded, vec![("a".to_string(), 1)]);
        assert!(r.deadlocked());
    }

    #[test]
    fn fail_on_deadlock_option() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "two".into(),
            inputs: vec![(a, 2)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(1, 1),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let mut e = Engine::new(
            &net,
            Options {
                fail_on_deadlock: true,
                ..Options::default()
            },
        );
        e.inject(a, Token::at(Value::num(0.0), 0));
        assert!(matches!(e.run(), Err(PetriError::Deadlock { .. })));
    }

    #[test]
    fn guard_selects_path_by_priority() {
        // Two transitions compete for the same place; the guarded
        // high-priority one takes small tokens, the fallback the rest.
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let small = b.sink("small");
        let big = b.sink("big");
        b.add_transition(Transition {
            name: "small_path".into(),
            inputs: vec![(a, 1)],
            outputs: vec![(small, 1)],
            behavior: Behavior::Native {
                guard: Some(Box::new(|ts: &[Token]| ts[0].data.as_num().unwrap() < 10.0)),
                delay: Box::new(|_| 1),
                transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
            },
            servers: 1,
            priority: 1,
        });
        b.transition("big_path", &[a], &[big], |_| 1, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(a, Token::at(Value::num(5.0), 0));
        e.inject(a, Token::at(Value::num(50.0), 1));
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 2);
        let small_fired = r.firings[net.trans_id("small_path").unwrap().index()];
        let big_fired = r.firings[net.trans_id("big_path").unwrap().index()];
        assert_eq!(small_fired, 1);
        assert_eq!(big_fired, 1);
    }

    #[test]
    fn event_budget_enforced() {
        // Self-loop keeps regenerating a token forever.
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        b.transition("spin", &[a], &[a], |_| 1, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(
            &net,
            Options {
                max_events: 100,
                ..Options::default()
            },
        );
        e.inject(a, Token::at(Value::num(0.0), 0));
        assert!(matches!(e.run(), Err(PetriError::EventBudgetExceeded(100))));
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let mut b = NetBuilder::new("n");
            let src = b.place("src", None);
            let mid = b.place("mid", Some(3));
            let z = b.sink("z");
            b.transition(
                "s1",
                &[src],
                &[mid],
                |ts| ts[0].data.as_num().unwrap() as u64 % 7 + 1,
                |ts| vec![ts[0].data.clone()],
            );
            b.transition("s2", &[mid], &[z], |_| 3, |ts| vec![ts[0].data.clone()]);
            b.build().unwrap()
        };
        let run = |net: &Net| {
            let mut e = Engine::new(net, Options::default());
            for i in 0..50 {
                e.inject(
                    net.place_id("src").unwrap(),
                    Token::at(Value::num(i as f64), i),
                );
            }
            e.run().unwrap()
        };
        let n1 = build();
        let n2 = build();
        let r1 = run(&n1);
        let r2 = run(&n2);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.latencies(), r2.latencies());
        assert_eq!(r1.events, r2.events);
    }
}
