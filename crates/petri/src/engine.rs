//! Event-driven simulation engine for timed Petri nets.
//!
//! Unlike the tick-accurate simulators in `perf-sim`, the engine only
//! does work when something *happens*: a token arrives or a transition
//! completes. Between events no cycles are simulated — this is why a
//! Petri-net interface can be evaluated orders of magnitude faster than
//! a cycle-accurate model of the same accelerator (the paper's 1312×
//! TVM-profiling speedup, our experiment E5).

use crate::net::{Net, PlaceId};
use crate::token::Token;
use crate::PetriError;
use std::collections::{BinaryHeap, VecDeque};

/// Engine options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Abort after this many processed events (runaway-net protection).
    pub max_events: u64,
    /// Treat stranded tokens at quiescence as an error.
    pub fail_on_deadlock: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_events: 200_000_000,
            fail_on_deadlock: false,
        }
    }
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Time of the last event (cycles).
    pub makespan: u64,
    /// Tokens that reached sink places, in arrival order.
    pub completions: Vec<Token>,
    /// Events processed.
    pub events: u64,
    /// Firings per transition (indexed by `TransId`).
    pub firings: Vec<u64>,
    /// Sum of firing delays per transition ("busy cycles").
    pub busy: Vec<u64>,
    /// Peak occupancy per place.
    pub high_water: Vec<usize>,
    /// Tokens stranded in non-sink places at quiescence.
    pub stranded: Vec<(String, usize)>,
}

impl SimResult {
    /// Per-completion latencies (arrival − birth).
    pub fn latencies(&self) -> Vec<u64> {
        self.completions
            .iter()
            .map(|t| t.arrived.saturating_sub(t.born))
            .collect()
    }

    /// Completions per cycle over the whole run.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            0.0
        } else {
            self.completions.len() as f64 / self.makespan as f64
        }
    }

    /// Whether the run ended with stranded tokens.
    pub fn deadlocked(&self) -> bool {
        !self.stranded.is_empty()
    }
}

/// A scheduled event, ordered by (time, sequence) ascending.
struct Scheduled {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Scheduled) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Scheduled) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Scheduled) -> core::cmp::Ordering {
        // Reversed for the max-heap: earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Debug)]
enum Ev {
    /// External token arrival.
    Inject { place: PlaceId, token: Token },
    /// A firing completes: deliver outputs, free the server.
    Deliver {
        trans: usize,
        outputs: Vec<(PlaceId, Token)>,
    },
}

/// An engine bound to a net. Inject tokens, then [`Engine::run`].
pub struct Engine<'n> {
    net: &'n Net,
    opts: Options,
    marking: Vec<VecDeque<Token>>,
    /// Output capacity reserved by in-flight firings, per place.
    reserved: Vec<usize>,
    busy_servers: Vec<usize>,
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    order: Vec<usize>,
    completions: Vec<Token>,
    firings: Vec<u64>,
    busy: Vec<u64>,
    high_water: Vec<usize>,
}

impl<'n> Engine<'n> {
    /// Creates an engine over `net`.
    pub fn new(net: &'n Net, opts: Options) -> Engine<'n> {
        Engine {
            opts,
            marking: net.places().iter().map(|_| VecDeque::new()).collect(),
            reserved: vec![0; net.places().len()],
            busy_servers: vec![0; net.transitions().len()],
            heap: BinaryHeap::new(),
            seq: 0,
            order: {
                let mut order: Vec<usize> = (0..net.transitions().len()).collect();
                order.sort_by_key(|&i| (-net.transitions()[i].priority, i));
                order
            },
            completions: Vec::new(),
            firings: vec![0; net.transitions().len()],
            busy: vec![0; net.transitions().len()],
            high_water: vec![0; net.places().len()],
            net,
        }
    }

    /// Schedules an external token arrival at `token.arrived`.
    pub fn inject(&mut self, place: PlaceId, token: Token) {
        self.push_event(token.arrived, Ev::Inject { place, token });
    }

    fn push_event(&mut self, time: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, ev });
    }

    fn deposit(&mut self, place: PlaceId, token: Token) {
        let q = &mut self.marking[place.0];
        q.push_back(token);
        self.high_water[place.0] = self.high_water[place.0].max(q.len());
    }

    /// Attempts to fire every enabled transition at time `now` until a
    /// fixpoint. Returns an error if a behavior fails.
    fn fire_enabled(&mut self, now: u64) -> Result<(), PetriError> {
        loop {
            let mut fired_any = false;
            // Deterministic order: priority descending, then
            // declaration order (precomputed at engine construction).
            for i in 0..self.order.len() {
                let ti = self.order[i];
                while self.try_fire(ti, now)? {
                    fired_any = true;
                }
            }
            if !fired_any {
                return Ok(());
            }
        }
    }

    /// Attempts a single firing of transition `ti` at time `now`.
    fn try_fire(&mut self, ti: usize, now: u64) -> Result<bool, PetriError> {
        let t = &self.net.transitions()[ti];
        if t.servers != 0 && self.busy_servers[ti] >= t.servers {
            return Ok(false);
        }
        // Check token availability.
        for &(p, w) in &t.inputs {
            if self.marking[p.0].len() < w {
                return Ok(false);
            }
        }
        // Check output capacity (current occupancy + reservations).
        for &(p, w) in &t.outputs {
            if let Some(cap) = self.net.places()[p.0].capacity {
                if self.marking[p.0].len() + self.reserved[p.0] + w > cap {
                    return Ok(false);
                }
            }
        }
        // Select tokens FIFO (without consuming yet, for the guard).
        let mut selected = Vec::new();
        for &(p, w) in &t.inputs {
            for k in 0..w {
                selected.push(self.marking[p.0][k].clone());
            }
        }
        if !t.behavior.guard(&selected)? {
            return Ok(false);
        }
        // Consume.
        for &(p, w) in &t.inputs {
            for _ in 0..w {
                self.marking[p.0].pop_front();
            }
        }
        let firing = t.behavior.fire(&selected, t.outputs.len())?;
        // Latency lineage: outputs inherit the earliest birth among the
        // consumed tokens.
        let born = selected.iter().map(|t| t.born).min().unwrap_or(now);
        let done = now + firing.delay;
        let mut outs = Vec::new();
        for (arc_idx, &(p, w)) in t.outputs.iter().enumerate() {
            if let Some(cap) = self.net.places()[p.0].capacity {
                debug_assert!(self.marking[p.0].len() + self.reserved[p.0] + w <= cap);
            }
            self.reserved[p.0] += w;
            for _ in 0..w {
                outs.push((
                    p,
                    Token {
                        data: firing.outputs[arc_idx].clone(),
                        born,
                        arrived: done,
                    },
                ));
            }
        }
        self.busy_servers[ti] += 1;
        self.firings[ti] += 1;
        self.busy[ti] += firing.delay;
        self.push_event(
            done,
            Ev::Deliver {
                trans: ti,
                outputs: outs,
            },
        );
        Ok(true)
    }

    /// Runs until quiescence and returns the result.
    pub fn run(mut self) -> Result<SimResult, PetriError> {
        let mut now = 0u64;
        let mut events = 0u64;
        self.fire_enabled(now)?;
        while let Some(Scheduled { time, ev, .. }) = self.heap.pop() {
            events += 1;
            if events > self.opts.max_events {
                return Err(PetriError::EventBudgetExceeded(self.opts.max_events));
            }
            now = time;
            match ev {
                Ev::Inject { place, token } => {
                    if self.net.places()[place.0].is_sink {
                        self.completions.push(token);
                    } else {
                        self.deposit(place, token);
                    }
                }
                Ev::Deliver { trans, outputs } => {
                    self.busy_servers[trans] -= 1;
                    for (p, tok) in outputs {
                        self.reserved[p.0] -= {
                            // One reservation unit per emitted token.
                            1
                        };
                        if self.net.places()[p.0].is_sink {
                            self.completions.push(tok);
                        } else {
                            self.deposit(p, tok);
                        }
                    }
                }
            }
            self.fire_enabled(now)?;
        }
        let stranded: Vec<(String, usize)> = self
            .net
            .places()
            .iter()
            .zip(&self.marking)
            .filter(|(p, q)| !p.is_sink && !q.is_empty())
            .map(|(p, q)| (p.name.clone(), q.len()))
            .collect();
        if self.opts.fail_on_deadlock && !stranded.is_empty() {
            return Err(PetriError::Deadlock { at: now, stranded });
        }
        Ok(SimResult {
            makespan: now,
            completions: self.completions,
            events,
            firings: self.firings,
            busy: self.busy,
            high_water: self.high_water,
            stranded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{fixed_delay, Behavior};
    use crate::net::{NetBuilder, Transition};
    use perf_iface_lang::Value;

    fn passthrough(n: usize) -> impl Fn(&[Token]) -> Vec<Value> {
        move |ts: &[Token]| vec![ts[0].data.clone(); n]
    }

    #[test]
    fn single_transition_latency() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 7, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(a, Token::at(Value::num(1.0), 0));
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 1);
        assert_eq!(r.latencies(), vec![7]);
        assert_eq!(r.makespan, 7);
        assert!(!r.deadlocked());
    }

    #[test]
    fn single_server_serializes() {
        // 10 tokens through a 5-cycle single-server transition: the
        // last completes at 50.
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 5, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..10 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 10);
        assert_eq!(r.makespan, 50);
        assert!((r.throughput() - 0.2).abs() < 1e-12);
        assert_eq!(r.firings[0], 10);
        assert_eq!(r.busy[0], 50);
    }

    #[test]
    fn infinite_server_runs_in_parallel() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![(a, 1)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(5, 1),
            servers: 0,
            priority: 0,
        });
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..10 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.makespan, 5); // All ten fire concurrently.
    }

    #[test]
    fn pipeline_throughput_set_by_bottleneck() {
        let mut b = NetBuilder::new("pipe");
        let src = b.place("src", None);
        let mid = b.place("mid", Some(2));
        let z = b.sink("z");
        b.transition("fast", &[src], &[mid], |_| 1, passthrough(1));
        b.transition("slow", &[mid], &[z], |_| 4, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        let n = 100;
        for _ in 0..n {
            e.inject(src, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), n);
        // Steady state: one completion per 4 cycles.
        let per_item = r.makespan as f64 / n as f64;
        assert!(per_item >= 4.0 && per_item < 4.2, "per_item = {per_item}");
        // The bounded mid place forces backpressure on `fast`: its
        // firings track the slow stage rather than racing ahead.
        assert_eq!(r.high_water[mid.index()], 2);
    }

    #[test]
    fn capacity_reservation_prevents_overflow() {
        // Transition with delay writes into a cap-1 place; a second
        // firing must wait until the in-flight token is consumed.
        let mut b = NetBuilder::new("n");
        let src = b.place("src", None);
        let tiny = b.place("tiny", Some(1));
        let z = b.sink("z");
        b.transition("prod", &[src], &[tiny], |_| 1, passthrough(1));
        b.transition("cons", &[tiny], &[z], |_| 10, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..3 {
            e.inject(src, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 3);
        assert_eq!(r.high_water[tiny.index()], 1);
        // Serialized by the consumer: ~30 cycles.
        assert!(r.makespan >= 30);
    }

    #[test]
    fn join_waits_for_both_inputs() {
        let mut b = NetBuilder::new("n");
        let l = b.place("l", None);
        let rp = b.place("r", None);
        let z = b.sink("z");
        b.transition("join", &[l, rp], &[z], |_| 2, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(l, Token::at(Value::num(1.0), 0));
        e.inject(rp, Token::at(Value::num(2.0), 40)); // Late arrival.
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 1);
        assert_eq!(r.makespan, 42);
        // Latency measured from the earliest ancestor.
        assert_eq!(r.latencies(), vec![42]);
    }

    #[test]
    fn fork_duplicates_tokens() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z1 = b.sink("z1");
        let z2 = b.sink("z2");
        b.transition("fork", &[a], &[z1, z2], |_| 1, passthrough(2));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(a, Token::at(Value::num(0.0), 0));
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 2);
    }

    #[test]
    fn weighted_arcs_batch_tokens() {
        // Consume 4 tokens per firing (e.g. a 4-wide SIMD unit).
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "batch".into(),
            inputs: vec![(a, 4)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(3, 1),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..8 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 2);
        assert_eq!(r.makespan, 6);
    }

    #[test]
    fn leftover_tokens_reported_as_stranded() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "batch".into(),
            inputs: vec![(a, 2)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(1, 1),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..3 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 1);
        assert_eq!(r.stranded, vec![("a".to_string(), 1)]);
        assert!(r.deadlocked());
    }

    #[test]
    fn fail_on_deadlock_option() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "two".into(),
            inputs: vec![(a, 2)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(1, 1),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let mut e = Engine::new(
            &net,
            Options {
                fail_on_deadlock: true,
                ..Options::default()
            },
        );
        e.inject(a, Token::at(Value::num(0.0), 0));
        assert!(matches!(e.run(), Err(PetriError::Deadlock { .. })));
    }

    #[test]
    fn guard_selects_path_by_priority() {
        // Two transitions compete for the same place; the guarded
        // high-priority one takes small tokens, the fallback the rest.
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let small = b.sink("small");
        let big = b.sink("big");
        b.add_transition(Transition {
            name: "small_path".into(),
            inputs: vec![(a, 1)],
            outputs: vec![(small, 1)],
            behavior: Behavior::Native {
                guard: Some(Box::new(|ts: &[Token]| ts[0].data.as_num().unwrap() < 10.0)),
                delay: Box::new(|_| 1),
                transform: Box::new(|ts: &[Token]| vec![ts[0].data.clone()]),
            },
            servers: 1,
            priority: 1,
        });
        b.transition("big_path", &[a], &[big], |_| 1, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(a, Token::at(Value::num(5.0), 0));
        e.inject(a, Token::at(Value::num(50.0), 1));
        let r = e.run().unwrap();
        assert_eq!(r.completions.len(), 2);
        let small_fired = r.firings[net.trans_id("small_path").unwrap().index()];
        let big_fired = r.firings[net.trans_id("big_path").unwrap().index()];
        assert_eq!(small_fired, 1);
        assert_eq!(big_fired, 1);
    }

    #[test]
    fn event_budget_enforced() {
        // Self-loop keeps regenerating a token forever.
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        b.transition("spin", &[a], &[a], |_| 1, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(
            &net,
            Options {
                max_events: 100,
                fail_on_deadlock: false,
            },
        );
        e.inject(a, Token::at(Value::num(0.0), 0));
        assert!(matches!(e.run(), Err(PetriError::EventBudgetExceeded(100))));
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let mut b = NetBuilder::new("n");
            let src = b.place("src", None);
            let mid = b.place("mid", Some(3));
            let z = b.sink("z");
            b.transition(
                "s1",
                &[src],
                &[mid],
                |ts| ts[0].data.as_num().unwrap() as u64 % 7 + 1,
                |ts| vec![ts[0].data.clone()],
            );
            b.transition("s2", &[mid], &[z], |_| 3, |ts| vec![ts[0].data.clone()]);
            b.build().unwrap()
        };
        let run = |net: &Net| {
            let mut e = Engine::new(net, Options::default());
            for i in 0..50 {
                e.inject(
                    net.place_id("src").unwrap(),
                    Token::at(Value::num(i as f64), i),
                );
            }
            e.run().unwrap()
        };
        let n1 = build();
        let n2 = build();
        let r1 = run(&n1);
        let r2 = run(&n2);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.latencies(), r2.latencies());
        assert_eq!(r1.events, r2.events);
    }
}
