//! Net structure and builder.

use crate::behavior::Behavior;
use crate::token::Token;
use crate::PetriError;
use perf_iface_lang::Value;

/// Identifier of a place within its net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a transition within its net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransId(pub(crate) usize);

impl TransId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A place: a token queue modeling a hardware buffer.
#[derive(Clone, Debug)]
pub struct Place {
    /// Name, unique within the net.
    pub name: String,
    /// Maximum tokens the place can hold; `None` = unbounded (used for
    /// workload sources and sinks).
    pub capacity: Option<usize>,
    /// Sink places collect completed tokens; they must not feed any
    /// transition.
    pub is_sink: bool,
}

/// A transition: a processing element with a timed, data-dependent
/// behavior.
pub struct Transition {
    /// Name, unique within the net.
    pub name: String,
    /// Input arcs `(place, weight)`; `weight` tokens are consumed.
    pub inputs: Vec<(PlaceId, usize)>,
    /// Output arcs `(place, weight)`; `weight` copies are produced.
    pub outputs: Vec<(PlaceId, usize)>,
    /// Delay/guard/transform behavior.
    pub behavior: Behavior,
    /// Number of concurrent firings allowed; 0 means unlimited
    /// (infinite-server semantics). A pipelined unit that accepts one
    /// item per completion is `servers: 1` (the default).
    pub servers: usize,
    /// Conflict-resolution priority; higher fires first.
    pub priority: i32,
}

/// A complete timed Petri net.
///
/// Besides the structure itself, a net carries adjacency indices
/// computed once at assembly and shared by every [`crate::Engine`]
/// bound to it: which transitions consume from / produce into each
/// place, and the deterministic conflict-resolution order (priority
/// descending, then declaration order). The incremental engine uses
/// these to re-try only the transitions an event could have enabled.
pub struct Net {
    /// Net name.
    pub name: String,
    pub(crate) places: Vec<Place>,
    pub(crate) transitions: Vec<Transition>,
    /// Per place: transitions with an input arc from it (ascending).
    pub(crate) consumers: Vec<Vec<usize>>,
    /// Per place: transitions with an output arc into it (ascending).
    pub(crate) producers: Vec<Vec<usize>>,
    /// Transition indices sorted by `(-priority, index)`.
    pub(crate) order: Vec<usize>,
    /// Inverse of `order`: transition index → position in `order`.
    pub(crate) rank: Vec<usize>,
}

impl core::fmt::Debug for Net {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Net")
            .field("name", &self.name)
            .field("places", &self.places.len())
            .field("transitions", &self.transitions.len())
            .finish()
    }
}

impl Net {
    /// The places of the net.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// The transitions of the net.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Looks up a place id by name.
    pub fn place_id(&self, name: &str) -> Option<PlaceId> {
        self.places.iter().position(|p| p.name == name).map(PlaceId)
    }

    /// Looks up a transition id by name.
    pub fn trans_id(&self, name: &str) -> Option<TransId> {
        self.transitions
            .iter()
            .position(|t| t.name == name)
            .map(TransId)
    }

    /// A 64-bit structural fingerprint: FNV-1a over the net name,
    /// every place (name, capacity, sink flag) and every transition
    /// (name, arcs with weights, server count, priority, constant
    /// delay/guard folds when the behavior exposes them).
    ///
    /// Two nets with the same structure fingerprint evaluate workloads
    /// identically for all shipped `.pnet` artifacts, whose behaviors
    /// are pure functions of the structure — so the value serves as
    /// the net half of the `perf-service` result-cache key (the other
    /// half is [`crate::Engine::marking_fingerprint`]). Native-closure
    /// behaviors contribute only their constant folds; nets built from
    /// distinct closures with identical structure can collide, which
    /// is why cache keys must always include the workload fingerprint
    /// too.
    pub fn fingerprint(&self) -> u64 {
        let mut h = perf_core::query::Fnv1a::new();
        h.write(self.name.as_bytes());
        h.write(&[0xff]);
        for p in &self.places {
            h.write(p.name.as_bytes());
            h.write_u64(p.capacity.map(|c| c as u64 + 1).unwrap_or(0));
            h.write(&[u8::from(p.is_sink)]);
        }
        h.write(&[0xfe]);
        for t in &self.transitions {
            h.write(t.name.as_bytes());
            for &(p, w) in &t.inputs {
                h.write_u64(p.0 as u64);
                h.write_u64(w as u64);
            }
            h.write(&[0xfd]);
            for &(p, w) in &t.outputs {
                h.write_u64(p.0 as u64);
                h.write_u64(w as u64);
            }
            h.write_u64(t.servers as u64);
            h.write_u64(t.priority as u64);
            h.write(&[u8::from(t.behavior.has_guard())]);
            if let Some(d) = t.behavior.const_delay() {
                h.write_f64(d);
            }
            if let Some(g) = t.behavior.const_guard() {
                h.write(&[2 + u8::from(g)]);
            }
        }
        h.finish()
    }

    /// Assembles a net from parts, computing the adjacency indices.
    /// Every construction path (builder, composition) must go through
    /// here so the indices stay consistent with the structure.
    pub(crate) fn assemble(name: String, places: Vec<Place>, transitions: Vec<Transition>) -> Net {
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); places.len()];
        let mut producers: Vec<Vec<usize>> = vec![Vec::new(); places.len()];
        for (ti, t) in transitions.iter().enumerate() {
            for &(p, _) in &t.inputs {
                if consumers[p.0].last() != Some(&ti) {
                    consumers[p.0].push(ti);
                }
            }
            for &(p, _) in &t.outputs {
                if producers[p.0].last() != Some(&ti) {
                    producers[p.0].push(ti);
                }
            }
        }
        let mut order: Vec<usize> = (0..transitions.len()).collect();
        order.sort_by_key(|&i| (-transitions[i].priority, i));
        let mut rank = vec![0usize; transitions.len()];
        for (r, &ti) in order.iter().enumerate() {
            rank[ti] = r;
        }
        Net {
            name,
            places,
            transitions,
            consumers,
            producers,
            order,
            rank,
        }
    }
}

/// Builder for [`Net`].
pub struct NetBuilder {
    name: String,
    places: Vec<Place>,
    transitions: Vec<Transition>,
}

impl NetBuilder {
    /// Starts a net named `name`.
    pub fn new(name: impl Into<String>) -> NetBuilder {
        NetBuilder {
            name: name.into(),
            places: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Adds a place with optional capacity.
    pub fn place(&mut self, name: impl Into<String>, capacity: Option<usize>) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            capacity,
            is_sink: false,
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds an unbounded sink place that records completions.
    pub fn sink(&mut self, name: impl Into<String>) -> PlaceId {
        self.places.push(Place {
            name: name.into(),
            capacity: None,
            is_sink: true,
        });
        PlaceId(self.places.len() - 1)
    }

    /// Adds a single-server transition with weight-1 arcs, a delay
    /// closure and a transform closure (one payload per output arc).
    pub fn transition(
        &mut self,
        name: impl Into<String>,
        inputs: &[PlaceId],
        outputs: &[PlaceId],
        delay: impl Fn(&[Token]) -> u64 + 'static,
        transform: impl Fn(&[Token]) -> Vec<Value> + 'static,
    ) -> TransId {
        self.add_transition(Transition {
            name: name.into(),
            inputs: inputs.iter().map(|&p| (p, 1)).collect(),
            outputs: outputs.iter().map(|&p| (p, 1)).collect(),
            behavior: Behavior::Native {
                guard: None,
                delay: Box::new(delay),
                transform: Box::new(transform),
            },
            servers: 1,
            priority: 0,
        })
    }

    /// Adds a fully-specified transition.
    pub fn add_transition(&mut self, t: Transition) -> TransId {
        self.transitions.push(t);
        TransId(self.transitions.len() - 1)
    }

    /// Validates and finishes the net.
    pub fn build(self) -> Result<Net, PetriError> {
        let net = Net::assemble(self.name, self.places, self.transitions);
        validate(&net)?;
        Ok(net)
    }
}

fn validate(net: &Net) -> Result<(), PetriError> {
    if net.places.is_empty() {
        return Err(PetriError::Structure("net has no places".into()));
    }
    let mut names = std::collections::HashSet::new();
    for p in &net.places {
        if !names.insert(&p.name) {
            return Err(PetriError::Structure(format!(
                "duplicate place name `{}`",
                p.name
            )));
        }
        if p.capacity == Some(0) {
            return Err(PetriError::Structure(format!(
                "place `{}` has zero capacity",
                p.name
            )));
        }
    }
    let mut tnames = std::collections::HashSet::new();
    for t in &net.transitions {
        if !tnames.insert(&t.name) {
            return Err(PetriError::Structure(format!(
                "duplicate transition name `{}`",
                t.name
            )));
        }
        if t.inputs.is_empty() {
            return Err(PetriError::Structure(format!(
                "transition `{}` has no input arcs",
                t.name
            )));
        }
        for &(p, w) in t.inputs.iter().chain(&t.outputs) {
            if p.0 >= net.places.len() {
                return Err(PetriError::Structure(format!(
                    "transition `{}` references unknown place #{}",
                    t.name, p.0
                )));
            }
            if w == 0 {
                return Err(PetriError::Structure(format!(
                    "transition `{}` has a zero-weight arc",
                    t.name
                )));
            }
        }
        let mut in_places = std::collections::HashSet::new();
        for &(p, _) in &t.inputs {
            if net.places[p.0].is_sink {
                return Err(PetriError::Structure(format!(
                    "transition `{}` consumes from sink place `{}`",
                    t.name, net.places[p.0].name
                )));
            }
            // Two arcs from one place would select overlapping FIFO
            // heads; multi-token consumption must use the arc weight.
            if !in_places.insert(p.0) {
                return Err(PetriError::Structure(format!(
                    "transition `{}` has duplicate input arcs from place `{}` (use arc weight instead)",
                    t.name, net.places[p.0].name
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::fixed_delay;

    #[test]
    fn build_minimal_net() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", Some(4));
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 1, |ts| vec![ts[0].data.clone()]);
        let net = b.build().unwrap();
        assert_eq!(net.places().len(), 2);
        assert_eq!(net.place_id("a"), Some(a));
        assert_eq!(net.place_id("z"), Some(z));
        assert!(net.trans_id("t").is_some());
        assert!(net.trans_id("nope").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetBuilder::new("n");
        b.place("a", None);
        b.place("a", None);
        assert!(b.build().is_err());
    }

    #[test]
    fn zero_capacity_rejected() {
        let mut b = NetBuilder::new("n");
        b.place("a", Some(0));
        assert!(b.build().is_err());
    }

    #[test]
    fn transition_needs_inputs() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![],
            outputs: vec![(a, 1)],
            behavior: fixed_delay(1, 1),
            servers: 1,
            priority: 0,
        });
        assert!(b.build().is_err());
    }

    #[test]
    fn sink_cannot_feed_transitions() {
        let mut b = NetBuilder::new("n");
        let s = b.sink("s");
        let a = b.place("a", None);
        b.transition("t", &[s], &[a], |_| 1, |ts| vec![ts[0].data.clone()]);
        assert!(b.build().is_err());
    }

    #[test]
    fn duplicate_input_arcs_rejected() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![(a, 1), (a, 1)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(1, 1),
            servers: 1,
            priority: 0,
        });
        assert!(b.build().is_err());
    }

    #[test]
    fn adjacency_indices_match_structure() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let m = b.place("m", Some(2));
        let z = b.sink("z");
        let t0 = b.transition("t0", &[a], &[m], |_| 1, |ts| vec![ts[0].data.clone()]);
        let t1 = b.transition("t1", &[m], &[z], |_| 1, |ts| vec![ts[0].data.clone()]);
        let mut hi = b.transition("hi", &[a], &[z], |_| 1, |ts| vec![ts[0].data.clone()]);
        // Raise priority via direct access to check ordering.
        let net = {
            let mut net = b;
            net.transitions[hi.index()].priority = 5;
            net.build().unwrap()
        };
        hi = net.trans_id("hi").unwrap();
        assert_eq!(net.consumers[a.index()], vec![t0.index(), hi.index()]);
        assert_eq!(net.consumers[m.index()], vec![t1.index()]);
        assert_eq!(net.producers[m.index()], vec![t0.index()]);
        assert_eq!(net.producers[z.index()], vec![t1.index(), hi.index()]);
        // `hi` (priority 5) ranks first, then t0, t1 by index.
        assert_eq!(net.order, vec![hi.index(), t0.index(), t1.index()]);
        assert_eq!(net.rank[hi.index()], 0);
        assert_eq!(net.rank[t0.index()], 1);
        assert_eq!(net.rank[t1.index()], 2);
    }

    #[test]
    fn zero_weight_arc_rejected() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.add_transition(Transition {
            name: "t".into(),
            inputs: vec![(a, 0)],
            outputs: vec![(z, 1)],
            behavior: fixed_delay(1, 1),
            servers: 1,
            priority: 0,
        });
        assert!(b.build().is_err());
    }
}
