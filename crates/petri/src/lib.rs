//! Timed Petri-net performance IR.
//!
//! The paper's most precise interface representation is a timed Petri
//! net that is "performance-equivalent" to the accelerator's circuit:
//! places model hardware queues, tokens model data units, transitions
//! model processing elements with data-dependent delays, and arcs model
//! dependencies between elements. Because multiple transitions fire
//! concurrently, the net captures pipelining, internal queuing and
//! backpressure — the behaviors a closed-form program interface has to
//! approximate.
//!
//! This crate provides:
//!
//! * the net structure and a builder API ([`net`]),
//! * token and behavior types — delays and output-token transforms can
//!   be native Rust closures or expressions in the PIL interface
//!   language ([`token`], [`behavior`]),
//! * an event-driven simulation engine with single-server transition
//!   semantics, capacity reservation (backpressure) and deterministic
//!   conflict resolution ([`engine`]),
//! * structural and dynamic analyses ([`analysis`]),
//! * an optional firing trace with token provenance and a
//!   critical-path extractor that attributes end-to-end predicted
//!   latency to service and queueing per transition ([`trace`]),
//! * a textual `.pnet` interchange format so nets can ship as vendor
//!   artifacts ([`text`]) and Graphviz export ([`dot`]).
//!
//! # Examples
//!
//! A two-stage pipeline processing five work items:
//!
//! ```
//! use perf_petri::net::NetBuilder;
//! use perf_petri::engine::{Engine, Options};
//! use perf_petri::token::Token;
//! use perf_iface_lang::Value;
//!
//! let mut b = NetBuilder::new("pipe");
//! let src = b.place("src", None);
//! let mid = b.place("mid", Some(2));
//! let done = b.sink("done");
//! b.transition("stage1", &[src], &[mid], |_| 3, |toks| vec![toks[0].data.clone()]);
//! b.transition("stage2", &[mid], &[done], |_| 5, |toks| vec![toks[0].data.clone()]);
//! let net = b.build().unwrap();
//!
//! let mut eng = Engine::new(&net, Options::default());
//! for i in 0..5 {
//!     eng.inject(src, Token::at(Value::num(i as f64), 0));
//! }
//! let res = eng.run().unwrap();
//! assert_eq!(res.completions.len(), 5);
//! // Throughput is set by the 5-cycle bottleneck stage.
//! assert!(res.makespan >= 25);
//! ```
#![deny(missing_docs)]

pub mod analysis;
pub mod behavior;
pub mod bound;
pub mod compile;
pub mod components;
pub mod compose;
pub mod dot;
pub mod engine;
pub mod lint;
pub mod net;
pub mod stepper;
pub mod text;
pub mod token;
pub mod trace;

pub use bound::{bounds, bounds_any, NetBounds};
pub use engine::{Engine, Options, SimResult};
pub use net::{Net, NetBuilder, PlaceId, TransId};
pub use stepper::{CompiledNet, ExecSession, NetExec, Stepper};
pub use token::Token;
pub use trace::{critical_path, CriticalPath, EngineTrace, FiringRecord, Segment, TokenSrc};

use perf_core::CoreError;

/// Errors produced while building, parsing or simulating a net.
#[derive(Clone, Debug, PartialEq)]
pub enum PetriError {
    /// The net structure is invalid (dangling arc, empty net, ...).
    Structure(String),
    /// `.pnet` text failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A delay/guard/emit expression failed at runtime.
    Expr(String),
    /// The simulation hit its event budget.
    EventBudgetExceeded(u64),
    /// The net deadlocked: tokens remain but nothing can fire.
    Deadlock {
        /// Simulation time at which progress stopped.
        at: u64,
        /// Tokens stranded per place name.
        stranded: Vec<(String, usize)>,
    },
}

impl core::fmt::Display for PetriError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PetriError::Structure(m) => write!(f, "net structure error: {m}"),
            PetriError::Parse { line, msg } => write!(f, "pnet parse error at line {line}: {msg}"),
            PetriError::Expr(m) => write!(f, "expression error: {m}"),
            PetriError::EventBudgetExceeded(n) => {
                write!(f, "simulation exceeded event budget of {n}")
            }
            PetriError::Deadlock { at, stranded } => {
                write!(f, "deadlock at cycle {at}: stranded tokens in ")?;
                for (i, (p, n)) in stranded.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}({n})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PetriError {}

impl From<PetriError> for CoreError {
    fn from(e: PetriError) -> CoreError {
        CoreError::Artifact(e.to_string())
    }
}
