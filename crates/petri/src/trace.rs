//! Firing traces and cycle attribution for the Petri-net engine.
//!
//! A performance IR is only half useful if it answers "how many
//! cycles?" without answering "*where did they go?*". With tracing
//! enabled (see [`crate::engine::Options::trace`]) the engine records
//! every firing — time, transition, tokens moved, service delay — plus
//! the *provenance* of each consumed token: which earlier firing (or
//! external injection) produced it. That lineage is what the
//! [`critical_path`] extractor walks to decompose an end-to-end
//! predicted latency, cycle by cycle, into per-transition service and
//! queueing segments.
//!
//! Records live in a bounded ring buffer so tracing a long run cannot
//! exhaust memory; a walk that reaches an evicted record ends in an
//! explicit [`SegmentKind::Truncated`] segment rather than failing.

use crate::engine::SimResult;
use crate::net::Net;
use perf_core::trace::{json_escape, ChromeTrace};
use std::collections::VecDeque;

/// Default ring capacity when tracing is enabled without an explicit
/// size (~48 bytes/record plus parents; a million records ≈ tens of MB).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Where a token came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenSrc {
    /// Sequence number of the firing that produced the token; `None`
    /// for externally injected tokens.
    pub producer: Option<u64>,
    /// Cycle at which the token arrived in its place.
    pub arrived: u64,
}

/// One firing of one transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiringRecord {
    /// Monotonic firing sequence number (engine-wide).
    pub seq: u64,
    /// Simulation time at which the firing started.
    pub time: u64,
    /// Transition index (into [`Net::transitions`]).
    pub trans: usize,
    /// Service delay of this firing.
    pub delay: u64,
    /// Tokens consumed.
    pub tokens_in: u32,
    /// Tokens produced.
    pub tokens_out: u32,
    /// Provenance of each consumed token, in consumption order.
    pub parents: Vec<TokenSrc>,
}

/// A bounded ring buffer of firing records plus run counters.
#[derive(Clone, Debug, Default)]
pub struct EngineTrace {
    records: VecDeque<FiringRecord>,
    capacity: usize,
    dropped: u64,
    next_seq: u64,
    /// Provenance of each completion, parallel to
    /// [`SimResult::completions`].
    pub(crate) completion_src: Vec<TokenSrc>,
}

impl EngineTrace {
    /// Creates a trace retaining at most `capacity` firing records.
    pub fn new(capacity: usize) -> EngineTrace {
        EngineTrace {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            next_seq: 0,
            completion_src: Vec::new(),
        }
    }

    /// Appends a record, evicting the oldest at capacity. Returns the
    /// assigned sequence number.
    pub(crate) fn push(
        &mut self,
        time: u64,
        trans: usize,
        delay: u64,
        tokens_in: u32,
        tokens_out: u32,
        parents: Vec<TokenSrc>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(FiringRecord {
            seq,
            time,
            trans,
            delay,
            tokens_in,
            tokens_out,
            parents,
        });
        seq
    }

    /// Looks up a record by sequence number (`None` if evicted).
    pub fn get(&self, seq: u64) -> Option<&FiringRecord> {
        // Sequence numbers are dense and ascending: the front record's
        // seq is exactly `dropped`.
        let front = self.dropped;
        if seq < front {
            return None;
        }
        self.records.get((seq - front) as usize)
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &FiringRecord> {
        self.records.iter()
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no firing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Provenance of each completion, parallel to
    /// [`SimResult::completions`].
    pub fn completion_sources(&self) -> &[TokenSrc] {
        &self.completion_src
    }
}

/// What a critical-path segment spent its cycles on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// In service inside a transition.
    Service,
    /// Waiting in an input place for a transition to fire (queueing,
    /// backpressure, server contention).
    Queue,
    /// Before the path's source token was injected (external arrival
    /// offset from cycle 0).
    Inject,
    /// Provenance lost: the producing record was evicted from the ring.
    Truncated,
}

impl SegmentKind {
    /// Stable lower-case name (used in JSON and folded stacks).
    pub fn name(self) -> &'static str {
        match self {
            SegmentKind::Service => "service",
            SegmentKind::Queue => "queue",
            SegmentKind::Inject => "inject",
            SegmentKind::Truncated => "truncated",
        }
    }
}

/// One segment of the critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Transition the cycles are attributed to (`None` for
    /// inject/truncated segments).
    pub trans: Option<usize>,
    /// Attribution kind.
    pub kind: SegmentKind,
    /// Cycle at which the segment starts.
    pub start: u64,
    /// Cycles spent.
    pub cycles: u64,
}

/// The critical path of a traced run: a source-to-sink chain of
/// segments whose cycle counts sum exactly to the arrival time of the
/// last completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// Segments in source-to-sink order.
    pub segments: Vec<Segment>,
    /// Arrival cycle of the completion the path explains (equals the
    /// makespan when the run ends on a completion).
    pub end: u64,
}

impl CriticalPath {
    /// Total attributed cycles; always equals [`CriticalPath::end`].
    pub fn total(&self) -> u64 {
        self.segments.iter().map(|s| s.cycles).sum()
    }

    /// Per-transition `(service, queue)` cycle totals along the path,
    /// indexed by transition id (transitions off the path hold zeros).
    pub fn by_transition(&self, net: &Net) -> Vec<(u64, u64)> {
        let mut out = vec![(0u64, 0u64); net.transitions().len()];
        for s in &self.segments {
            if let Some(t) = s.trans {
                match s.kind {
                    SegmentKind::Service => out[t].0 += s.cycles,
                    SegmentKind::Queue => out[t].1 += s.cycles,
                    _ => {}
                }
            }
        }
        out
    }

    /// Folded-stack rendering (`net;transition;kind cycles` per line),
    /// ready for flame-graph tooling.
    pub fn to_folded(&self, net: &Net) -> String {
        let mut out = String::new();
        for s in &self.segments {
            if s.cycles == 0 {
                continue;
            }
            let frame = match s.trans {
                Some(t) => net.transitions()[t].name.clone(),
                None => format!("@{}", s.kind.name()),
            };
            out.push_str(&format!(
                "{};{};{} {}\n",
                net.name,
                frame,
                s.kind.name(),
                s.cycles
            ));
        }
        out
    }
}

/// Extracts the critical path of a traced run: starting from the
/// completion that arrived last, walk each token's provenance to the
/// firing that produced it, attribute that firing's service delay and
/// the token's queueing wait, and recurse into the *latest-arriving*
/// input token (the one that gated the firing).
///
/// Returns `None` when the run was not traced or completed nothing.
pub fn critical_path(res: &SimResult) -> Option<CriticalPath> {
    let trace = res.trace.as_ref()?;
    // The completion that arrived last; `max_by_key` keeps the last
    // maximal element, i.e. ties break toward the later completion.
    let (end_tok, src) = res
        .completions
        .iter()
        .zip(&trace.completion_src)
        .max_by_key(|(t, _)| t.arrived)?;
    let end = end_tok.arrived;
    let mut cur = *src;
    let mut segments = Vec::new();
    loop {
        match cur.producer {
            None => {
                // Externally injected: cycles 0..arrived are the
                // workload's own arrival offset.
                segments.push(Segment {
                    trans: None,
                    kind: SegmentKind::Inject,
                    start: 0,
                    cycles: cur.arrived,
                });
                break;
            }
            Some(seq) => match trace.get(seq) {
                None => {
                    segments.push(Segment {
                        trans: None,
                        kind: SegmentKind::Truncated,
                        start: 0,
                        cycles: cur.arrived,
                    });
                    break;
                }
                Some(rec) => {
                    segments.push(Segment {
                        trans: Some(rec.trans),
                        kind: SegmentKind::Service,
                        start: rec.time,
                        cycles: rec.delay,
                    });
                    // The gating input: the latest-arriving consumed
                    // token (first among ties, deterministically).
                    let parent = *rec
                        .parents
                        .iter()
                        .reduce(|a, b| if b.arrived > a.arrived { b } else { a })
                        .expect("transitions consume at least one token");
                    let wait = rec.time - parent.arrived;
                    if wait > 0 {
                        segments.push(Segment {
                            trans: Some(rec.trans),
                            kind: SegmentKind::Queue,
                            start: parent.arrived,
                            cycles: wait,
                        });
                    }
                    cur = parent;
                }
            },
        }
    }
    segments.reverse();
    Some(CriticalPath { segments, end })
}

/// Renders a traced run — counters, per-transition totals and the
/// critical path — as one JSON object (shared by `pnet trace` and
/// `repro --trace`).
pub fn trace_report_json(net: &Net, res: &SimResult, path: Option<&CriticalPath>) -> String {
    let by = path
        .map(|p| p.by_transition(net))
        .unwrap_or_else(|| vec![(0, 0); net.transitions().len()]);
    let trans: Vec<String> = net
        .transitions()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let (svc, q) = by[i];
            format!(
                "    {{\"name\": \"{}\", \"firings\": {}, \"busy\": {}, \"path_service\": {}, \"path_queue\": {}}}",
                json_escape(&t.name),
                res.firings[i],
                res.busy[i],
                svc,
                q
            )
        })
        .collect();
    let segs: Vec<String> = path
        .map(|p| {
            p.segments
                .iter()
                .map(|s| {
                    let name = match s.trans {
                        Some(t) => json_escape(&net.transitions()[t].name),
                        None => format!("@{}", s.kind.name()),
                    };
                    format!(
                        "    {{\"at\": \"{}\", \"kind\": \"{}\", \"start\": {}, \"cycles\": {}}}",
                        name,
                        s.kind.name(),
                        s.start,
                        s.cycles
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    let (recorded, dropped) = res
        .trace
        .as_ref()
        .map(|t| (t.len() as u64 + t.dropped(), t.dropped()))
        .unwrap_or((0, 0));
    format!(
        concat!(
            "{{\n",
            "  \"net\": \"{}\",\n",
            "  \"makespan\": {},\n",
            "  \"events\": {},\n",
            "  \"enablement_checks\": {},\n",
            "  \"firings_recorded\": {},\n",
            "  \"firings_evicted\": {},\n",
            "  \"critical_path_total\": {},\n",
            "  \"transitions\": [\n{}\n  ],\n",
            "  \"critical_path\": [\n{}\n  ]\n",
            "}}\n"
        ),
        json_escape(&net.name),
        res.makespan,
        res.events,
        res.enablement_checks,
        recorded,
        dropped,
        path.map(|p| p.total()).unwrap_or(0),
        trans.join(",\n"),
        segs.join(",\n")
    )
}

/// Exports a traced run into `ct` as one Chrome-trace process (see
/// [`perf_core::trace::ChromeTrace`]; 1 simulated cycle = 1 µs).
///
/// Track mapping:
///
/// * **tid 0 — `critical-path`**: one slice per [`Segment`], named
///   `<kind>:<transition>` (or `@inject` / `@truncated`). The walk in
///   [`critical_path`] produces contiguous segments, so these slices
///   tile `[0, makespan]` exactly — their durations telescope to the
///   reported end-to-end latency, which this function returns.
/// * **tid i+1 — one track per transition**, in [`Net::transitions`]
///   order: one slice per retained [`FiringRecord`] covering the
///   firing's service interval `[time, time + delay)`, with the
///   firing's `seq` and token counts as args.
///
/// Returns the summed critical-path slice durations (0 when `path` is
/// `None`); callers assert it equals [`SimResult::makespan`].
pub fn chrome_trace_events(
    net: &Net,
    res: &SimResult,
    path: Option<&CriticalPath>,
    pid: u32,
    ct: &mut ChromeTrace,
) -> u64 {
    ct.process_name(pid, &format!("petri:{}", net.name));
    ct.thread_name(pid, 0, "critical-path");
    for (i, t) in net.transitions().iter().enumerate() {
        ct.thread_name(pid, i as u32 + 1, &t.name);
    }
    if let Some(trace) = &res.trace {
        for rec in trace.records() {
            ct.slice(
                pid,
                rec.trans as u32 + 1,
                rec.time,
                rec.delay,
                &net.transitions()[rec.trans].name,
                &[
                    ("seq", rec.seq.to_string()),
                    ("tokens_in", rec.tokens_in.to_string()),
                    ("tokens_out", rec.tokens_out.to_string()),
                ],
            );
        }
    }
    let mut attributed = 0u64;
    if let Some(p) = path {
        for s in &p.segments {
            attributed += s.cycles;
            if s.cycles == 0 {
                continue;
            }
            let name = match s.trans {
                Some(t) => format!("{}:{}", s.kind.name(), net.transitions()[t].name),
                None => format!("@{}", s.kind.name()),
            };
            ct.slice(
                pid,
                0,
                s.start,
                s.cycles,
                &name,
                &[("kind", ChromeTrace::json_str(s.kind.name()))],
            );
        }
    }
    attributed
}

/// Renders a traced run as a standalone Chrome JSON trace document
/// (`pnet trace --perfetto`): one process (pid 0) with the track
/// layout of [`chrome_trace_events`].
pub fn chrome_trace_json(net: &Net, res: &SimResult, path: Option<&CriticalPath>) -> String {
    let mut ct = ChromeTrace::new();
    chrome_trace_events(net, res, path, 0, &mut ct);
    ct.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Options};
    use crate::net::NetBuilder;
    use crate::token::Token;
    use perf_iface_lang::Value;

    fn passthrough(n: usize) -> impl Fn(&[Token]) -> Vec<Value> {
        move |ts: &[Token]| vec![ts[0].data.clone(); n]
    }

    fn traced_opts() -> Options {
        Options {
            trace: Some(DEFAULT_TRACE_CAPACITY),
            ..Options::default()
        }
    }

    #[test]
    fn ring_buffer_evicts_and_get_respects_eviction() {
        let mut t = EngineTrace::new(2);
        for i in 0..4u64 {
            let seq = t.push(i, 0, 1, 1, 1, vec![]);
            assert_eq!(seq, i);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 2);
        assert!(t.get(0).is_none());
        assert!(t.get(1).is_none());
        assert_eq!(t.get(2).unwrap().time, 2);
        assert_eq!(t.get(3).unwrap().time, 3);
        assert!(t.get(4).is_none());
    }

    #[test]
    fn pipeline_critical_path_sums_to_latency() {
        // Three serial stages with distinct delays; one token.
        let mut b = NetBuilder::new("pipe3");
        let a = b.place("a", None);
        let m1 = b.place("m1", None);
        let m2 = b.place("m2", None);
        let z = b.sink("z");
        b.transition("s0", &[a], &[m1], |_| 3, passthrough(1));
        b.transition("s1", &[m1], &[m2], |_| 5, passthrough(1));
        b.transition("s2", &[m2], &[z], |_| 7, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, traced_opts());
        e.inject(a, Token::at(Value::num(0.0), 0));
        let r = e.run().unwrap();
        assert_eq!(r.makespan, 15);
        let cp = critical_path(&r).expect("traced run with completions");
        assert_eq!(cp.total(), r.makespan);
        assert_eq!(cp.end, 15);
        // Pure service, no queueing: 3 + 5 + 7.
        let by = cp.by_transition(&net);
        assert_eq!(by[0], (3, 0));
        assert_eq!(by[1], (5, 0));
        assert_eq!(by[2], (7, 0));
        let folded = cp.to_folded(&net);
        assert!(folded.contains("pipe3;s1;service 5\n"));
    }

    #[test]
    fn queueing_attributed_to_the_blocking_transition() {
        // Single-server 5-cycle transition, 4 tokens at time 0: the
        // last token queues 15 cycles then serves 5.
        let mut b = NetBuilder::new("q");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 5, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, traced_opts());
        for _ in 0..4 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        assert_eq!(r.makespan, 20);
        let cp = critical_path(&r).unwrap();
        assert_eq!(cp.total(), 20);
        let by = cp.by_transition(&net);
        assert_eq!(by[0], (5, 15));
    }

    #[test]
    fn join_path_follows_latest_arriving_input() {
        let mut b = NetBuilder::new("join");
        let l = b.place("l", None);
        let rp = b.place("r", None);
        let z = b.sink("z");
        b.transition("join", &[l, rp], &[z], |_| 2, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, traced_opts());
        e.inject(l, Token::at(Value::num(1.0), 0));
        e.inject(rp, Token::at(Value::num(2.0), 40));
        let r = e.run().unwrap();
        assert_eq!(r.makespan, 42);
        let cp = critical_path(&r).unwrap();
        assert_eq!(cp.total(), 42);
        // Inject wait of 40 (the late arrival), then 2 cycles service.
        assert_eq!(cp.segments[0].kind, SegmentKind::Inject);
        assert_eq!(cp.segments[0].cycles, 40);
        assert_eq!(cp.segments.last().unwrap().kind, SegmentKind::Service);
        assert_eq!(cp.segments.last().unwrap().cycles, 2);
    }

    #[test]
    fn truncated_ring_still_sums_to_latency() {
        // Capacity 1: by the time the last completion's lineage is
        // walked, upstream records are gone — the path must close with
        // a Truncated segment and still sum exactly.
        let mut b = NetBuilder::new("trunc");
        let a = b.place("a", None);
        let m = b.place("m", None);
        let z = b.sink("z");
        b.transition("s0", &[a], &[m], |_| 3, passthrough(1));
        b.transition("s1", &[m], &[z], |_| 4, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(
            &net,
            Options {
                trace: Some(1),
                ..Options::default()
            },
        );
        for _ in 0..3 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        let cp = critical_path(&r).unwrap();
        assert_eq!(cp.total(), cp.end);
        assert!(cp.segments.iter().any(|s| s.kind == SegmentKind::Truncated));
    }

    #[test]
    fn untraced_run_has_no_path() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 1, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(a, Token::at(Value::num(0.0), 0));
        let r = e.run().unwrap();
        assert!(r.trace.is_none());
        assert!(critical_path(&r).is_none());
    }

    #[test]
    fn chrome_export_critical_path_telescopes_to_makespan() {
        // Backpressured pipeline: queue + service + inject segments all
        // appear, and the critical-path track still tiles [0, makespan].
        let mut b = NetBuilder::new("ct");
        let a = b.place("a", None);
        let m = b.place("m", Some(2));
        let z = b.sink("z");
        b.transition("s0", &[a], &[m], |_| 2, passthrough(1));
        b.transition("s1", &[m], &[z], |_| 7, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, traced_opts());
        for _ in 0..5 {
            e.inject(a, Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        let cp = critical_path(&r).unwrap();
        let mut ct = ChromeTrace::new();
        let attributed = chrome_trace_events(&net, &r, Some(&cp), 4, &mut ct);
        assert_eq!(attributed, r.makespan, "slices must telescope exactly");
        let j = ct.to_json();
        assert!(j.contains("\"name\":\"petri:ct\""));
        assert!(j.contains("\"name\":\"critical-path\""));
        assert!(j.contains("\"name\":\"service:s1\""));
        assert!(j.contains("\"name\":\"queue:s1\""));
        // Per-transition firing slices carry their sequence numbers.
        assert!(j.contains("\"seq\":0"));
        // Standalone document form.
        let doc = chrome_trace_json(&net, &r, Some(&cp));
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.ends_with("]}\n"));
    }

    #[test]
    fn chrome_export_without_path_attributes_zero() {
        let mut b = NetBuilder::new("np");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 1, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, Options::default());
        e.inject(a, Token::at(Value::num(0.0), 0));
        let r = e.run().unwrap();
        let mut ct = ChromeTrace::new();
        assert_eq!(chrome_trace_events(&net, &r, None, 0, &mut ct), 0);
        // Metadata still names the process and every transition track.
        assert!(ct.to_json().contains("\"name\":\"petri:np\""));
    }

    #[test]
    fn json_report_contains_counters_and_path() {
        let mut b = NetBuilder::new("jrep");
        let a = b.place("a", None);
        let z = b.sink("z");
        b.transition("t", &[a], &[z], |_| 2, passthrough(1));
        let net = b.build().unwrap();
        let mut e = Engine::new(&net, traced_opts());
        e.inject(a, Token::at(Value::num(0.0), 0));
        let r = e.run().unwrap();
        let cp = critical_path(&r);
        let j = trace_report_json(&net, &r, cp.as_ref());
        assert!(j.contains("\"net\": \"jrep\""));
        assert!(j.contains("\"makespan\": 2"));
        assert!(j.contains("\"enablement_checks\""));
        assert!(j.contains("\"critical_path_total\": 2"));
        assert!(j.contains("\"kind\": \"service\""));
    }
}
