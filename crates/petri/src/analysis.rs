//! Structural and dynamic analyses of performance nets.

use crate::engine::SimResult;
use crate::net::Net;

/// Structural facts about a net, computed without simulating it.
#[derive(Clone, Debug, PartialEq)]
pub struct Structure {
    /// Places with no incoming arcs (workload entry points).
    pub sources: Vec<String>,
    /// Sink places.
    pub sinks: Vec<String>,
    /// Places from which no sink is reachable — tokens entering them
    /// can never complete; almost always a modeling bug.
    pub dead_ends: Vec<String>,
    /// Whether every transition preserves token count (sum of input
    /// weights equals sum of output weights). Conservative nets cannot
    /// create or destroy work items.
    pub conservative: bool,
}

/// Computes structural facts for `net`.
pub fn structure(net: &Net) -> Structure {
    let n = net.places().len();
    let mut has_in = vec![false; n];
    // Adjacency place -> places reachable in one transition hop.
    let mut next: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut conservative = true;
    for t in net.transitions() {
        let win: usize = t.inputs.iter().map(|&(_, w)| w).sum();
        let wout: usize = t.outputs.iter().map(|&(_, w)| w).sum();
        if win != wout {
            conservative = false;
        }
        for &(o, _) in &t.outputs {
            has_in[o.index()] = true;
        }
        for &(i, _) in &t.inputs {
            for &(o, _) in &t.outputs {
                next[i.index()].push(o.index());
            }
        }
    }
    let sources = net
        .places()
        .iter()
        .enumerate()
        .filter(|&(i, p)| !has_in[i] && !p.is_sink)
        .map(|(_, p)| p.name.clone())
        .collect();
    let sinks: Vec<String> = net
        .places()
        .iter()
        .filter(|p| p.is_sink)
        .map(|p| p.name.clone())
        .collect();
    // Reverse reachability from sinks.
    let mut reaches_sink: Vec<bool> = net.places().iter().map(|p| p.is_sink).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if !reaches_sink[i] && next[i].iter().any(|&j| reaches_sink[j]) {
                reaches_sink[i] = true;
                changed = true;
            }
        }
    }
    let dead_ends = net
        .places()
        .iter()
        .enumerate()
        .filter(|&(i, p)| !p.is_sink && !reaches_sink[i])
        .map(|(_, p)| p.name.clone())
        .collect();
    Structure {
        sources,
        sinks,
        dead_ends,
        conservative,
    }
}

/// Dynamic utilization summary extracted from a [`SimResult`].
#[derive(Clone, Debug)]
pub struct Utilization {
    /// `(transition name, firings, busy fraction of makespan)`.
    pub transitions: Vec<(String, u64, f64)>,
    /// `(place name, peak occupancy)`.
    pub places: Vec<(String, usize)>,
    /// The transition with the highest busy fraction (the bottleneck).
    pub bottleneck: Option<String>,
}

/// Summarizes where time was spent in a run.
pub fn utilization(net: &Net, res: &SimResult) -> Utilization {
    let makespan = res.makespan.max(1) as f64;
    let transitions: Vec<(String, u64, f64)> = net
        .transitions()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            (
                t.name.clone(),
                res.firings[i],
                res.busy[i] as f64 / makespan,
            )
        })
        .collect();
    let bottleneck = transitions
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(core::cmp::Ordering::Equal))
        .filter(|t| t.2 > 0.0)
        .map(|t| t.0.clone());
    let places = net
        .places()
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), res.high_water[i]))
        .collect();
    Utilization {
        transitions,
        places,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Options};
    use crate::net::NetBuilder;
    use crate::token::Token;
    use perf_iface_lang::Value;

    fn pipe() -> Net {
        let mut b = NetBuilder::new("pipe");
        let src = b.place("src", None);
        let mid = b.place("mid", Some(2));
        let z = b.sink("z");
        b.transition("fast", &[src], &[mid], |_| 1, |ts| vec![ts[0].data.clone()]);
        b.transition("slow", &[mid], &[z], |_| 9, |ts| vec![ts[0].data.clone()]);
        b.build().unwrap()
    }

    #[test]
    fn structure_of_pipeline() {
        let net = pipe();
        let s = structure(&net);
        assert_eq!(s.sources, vec!["src"]);
        assert_eq!(s.sinks, vec!["z"]);
        assert!(s.dead_ends.is_empty());
        assert!(s.conservative);
    }

    #[test]
    fn dead_end_detected() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let trap = b.place("trap", None);
        let z = b.sink("z");
        b.transition("t1", &[a], &[trap], |_| 1, |ts| vec![ts[0].data.clone()]);
        // `trap` has no outgoing transitions; z is fed by nothing.
        let _ = z;
        let net = b.build().unwrap();
        let s = structure(&net);
        assert!(s.dead_ends.contains(&"trap".to_string()));
        // `a` can only reach `trap`, so it is a dead end too.
        assert!(s.dead_ends.contains(&"a".to_string()));
    }

    #[test]
    fn non_conservative_flagged() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        let z1 = b.sink("z1");
        let z2 = b.sink("z2");
        b.transition(
            "fork",
            &[a],
            &[z1, z2],
            |_| 1,
            |ts| vec![ts[0].data.clone(), ts[0].data.clone()],
        );
        let net = b.build().unwrap();
        assert!(!structure(&net).conservative);
    }

    #[test]
    fn utilization_finds_bottleneck() {
        let net = pipe();
        let mut e = Engine::new(&net, Options::default());
        for _ in 0..20 {
            e.inject(net.place_id("src").unwrap(), Token::at(Value::num(0.0), 0));
        }
        let r = e.run().unwrap();
        let u = utilization(&net, &r);
        assert_eq!(u.bottleneck.as_deref(), Some("slow"));
        let slow = u.transitions.iter().find(|t| t.0 == "slow").unwrap();
        assert_eq!(slow.1, 20);
        assert!(slow.2 > 0.9, "slow stage should be nearly saturated");
    }
}
