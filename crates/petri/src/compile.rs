//! A compiler from single-expression PIL behaviors to a closed form
//! that evaluates without interpreter frames.
//!
//! Almost every delay/guard/emit in a `.pnet` file is one arithmetic
//! expression over the token's fields and the net's constants. The
//! engine evaluates these millions of times in experiment-scale runs,
//! so `ExprBehavior` compiles them: constants are folded at compile
//! time, variables resolve to direct slots, and evaluation is a single
//! enum-tree walk with no allocation on the numeric path. Expressions
//! that use features outside this subset (user-function calls, loops)
//! fall back to the full interpreter transparently.

use crate::PetriError;
use perf_iface_lang::ast::{BinOp, Expr, FnDecl, Stmt, UnOp};
use perf_iface_lang::Value;
use std::collections::HashMap;

/// A compiled expression.
#[derive(Clone, Debug)]
pub enum CExpr {
    /// Literal value (numbers, folded constants, record templates are
    /// not folded — see `Record`).
    Lit(Value),
    /// The first input token's payload (`t`).
    T,
    /// The list of all input payloads (`ts`).
    Ts,
    /// Field access.
    Field(Box<CExpr>, String),
    /// List indexing.
    Index(Box<CExpr>, Box<CExpr>),
    /// Record construction (for emits).
    Record(Vec<(String, CExpr)>),
    /// Binary operation.
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    /// Unary operation.
    Un(UnOp, Box<CExpr>),
    /// Builtin call.
    Builtin(&'static str, Vec<CExpr>),
}

/// Compiles the body of a generated single-return function
/// (`fn __x(t, ts) { return EXPR; }`). Returns `None` when the body
/// uses features outside the compilable subset.
pub fn compile_fn(f: &FnDecl, consts: &HashMap<String, Value>) -> Option<CExpr> {
    if f.params != ["t", "ts"] || f.body.len() != 1 {
        return None;
    }
    let Stmt::Return(expr, _) = &f.body[0] else {
        return None;
    };
    compile_expr(expr, consts)
}

fn compile_expr(e: &Expr, consts: &HashMap<String, Value>) -> Option<CExpr> {
    Some(match e {
        Expr::Num(n, _) => CExpr::Lit(Value::num(*n)),
        Expr::Bool(b, _) => CExpr::Lit(Value::bool(*b)),
        Expr::Str(s, _) => CExpr::Lit(Value::str(s.clone())),
        Expr::Var(name, _) => match name.as_str() {
            "t" => CExpr::T,
            "ts" => CExpr::Ts,
            other => CExpr::Lit(consts.get(other)?.clone()),
        },
        Expr::Field(base, field, _) => {
            CExpr::Field(Box::new(compile_expr(base, consts)?), field.clone())
        }
        Expr::Index(base, idx, _) => CExpr::Index(
            Box::new(compile_expr(base, consts)?),
            Box::new(compile_expr(idx, consts)?),
        ),
        Expr::Record(fields, _) => CExpr::Record(
            fields
                .iter()
                .map(|(k, v)| Some((k.clone(), compile_expr(v, consts)?)))
                .collect::<Option<Vec<_>>>()?,
        ),
        Expr::List(..) => return None,
        Expr::Call(name, args, _) => {
            let builtin: &'static str = match name.as_str() {
                "ceil" => "ceil",
                "floor" => "floor",
                "round" => "round",
                "abs" => "abs",
                "min" => "min",
                "max" => "max",
                "sqrt" => "sqrt",
                "pow" => "pow",
                "log2" => "log2",
                "len" => "len",
                "sum" => "sum",
                "num" => "num",
                _ => return None,
            };
            CExpr::Builtin(
                builtin,
                args.iter()
                    .map(|a| compile_expr(a, consts))
                    .collect::<Option<Vec<_>>>()?,
            )
        }
        Expr::Unary(op, inner, _) => CExpr::Un(*op, Box::new(compile_expr(inner, consts)?)),
        Expr::Binary(op, l, r, _) => CExpr::Bin(
            *op,
            Box::new(compile_expr(l, consts)?),
            Box::new(compile_expr(r, consts)?),
        ),
    })
}

impl CExpr {
    /// Evaluates against the input payloads.
    pub fn eval(&self, t: &Value, ts: &[Value]) -> Result<Value, PetriError> {
        match self {
            CExpr::Lit(v) => Ok(v.clone()),
            CExpr::T => Ok(t.clone()),
            CExpr::Ts => Ok(Value::list(ts.to_vec())),
            CExpr::Field(base, field) => {
                let b = base.eval(t, ts)?;
                b.field(field).cloned().ok_or_else(|| {
                    PetriError::Expr(format!("{} has no field `{field}`", b.type_name()))
                })
            }
            CExpr::Index(base, idx) => {
                let b = base.eval(t, ts)?;
                let i = idx.eval(t, ts)?;
                let (list, n) = match (b.as_list(), i.as_num()) {
                    (Some(l), Some(n)) => (l, n),
                    _ => return Err(PetriError::Expr("bad index operation".into())),
                };
                if n < 0.0 || n.fract() != 0.0 || n as usize >= list.len() {
                    return Err(PetriError::Expr(format!("index {n} out of bounds")));
                }
                Ok(list[n as usize].clone())
            }
            CExpr::Record(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for (k, v) in fields {
                    out.push((k.clone(), v.eval(t, ts)?));
                }
                Ok(Value::record_owned(out))
            }
            CExpr::Un(op, inner) => {
                let v = inner.eval(t, ts)?;
                match op {
                    UnOp::Neg => v
                        .as_num()
                        .map(|n| Value::num(-n))
                        .ok_or_else(|| PetriError::Expr("cannot negate".into())),
                    UnOp::Not => v
                        .as_bool()
                        .map(|b| Value::bool(!b))
                        .ok_or_else(|| PetriError::Expr("cannot `!`".into())),
                }
            }
            CExpr::Bin(op, l, r) => self.eval_bin(*op, l, r, t, ts),
            CExpr::Builtin(name, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(t, ts)?);
                }
                perf_iface_lang::builtins::call(name, &vals, Default::default())
                    .map_err(|e| PetriError::Expr(e.to_string()))
            }
        }
    }

    /// Evaluates expecting a number (the hot path for delays).
    pub fn eval_num(&self, t: &Value, ts: &[Value]) -> Result<f64, PetriError> {
        self.eval(t, ts)?
            .as_num()
            .ok_or_else(|| PetriError::Expr("expected a number".into()))
    }

    fn eval_bin(
        &self,
        op: BinOp,
        l: &CExpr,
        r: &CExpr,
        t: &Value,
        ts: &[Value],
    ) -> Result<Value, PetriError> {
        if matches!(op, BinOp::And | BinOp::Or) {
            let lb = l
                .eval(t, ts)?
                .as_bool()
                .ok_or_else(|| PetriError::Expr("non-bool operand".into()))?;
            return match (op, lb) {
                (BinOp::And, false) => Ok(Value::bool(false)),
                (BinOp::Or, true) => Ok(Value::bool(true)),
                _ => {
                    let rb = r
                        .eval(t, ts)?
                        .as_bool()
                        .ok_or_else(|| PetriError::Expr("non-bool operand".into()))?;
                    Ok(Value::bool(rb))
                }
            };
        }
        let lv = l.eval(t, ts)?;
        let rv = r.eval(t, ts)?;
        if matches!(op, BinOp::Eq | BinOp::Ne) {
            let eq = lv == rv;
            return Ok(Value::bool(if op == BinOp::Eq { eq } else { !eq }));
        }
        let (a, b) = match (lv.as_num(), rv.as_num()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(PetriError::Expr("numeric operator on non-numbers".into())),
        };
        Ok(match op {
            BinOp::Add => Value::num(a + b),
            BinOp::Sub => Value::num(a - b),
            BinOp::Mul => Value::num(a * b),
            BinOp::Div => Value::num(a / b),
            BinOp::Rem => Value::num(a % b),
            BinOp::Lt => Value::bool(a < b),
            BinOp::Le => Value::bool(a <= b),
            BinOp::Gt => Value::bool(a > b),
            BinOp::Ge => Value::bool(a >= b),
            BinOp::Eq | BinOp::Ne | BinOp::And | BinOp::Or => unreachable!("handled above"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_iface_lang::Program;

    fn compile_one(src: &str, consts: &HashMap<String, Value>) -> Option<CExpr> {
        // Declare every const the test provides so the program parses.
        let mut decls = String::new();
        for (k, v) in consts {
            decls.push_str(&format!(
                "const {k} = {v};
"
            ));
        }
        let full = format!("{decls}fn __f(t, ts) {{ return ({src}); }}");
        let prog = Program::parse(&full).unwrap();
        compile_fn(&prog.ast().functions[0], consts)
    }

    fn tok(fields: Vec<(&'static str, f64)>) -> Value {
        Value::record(fields.into_iter().map(|(k, v)| (k, Value::num(v))))
    }

    #[test]
    fn compiles_arithmetic_over_fields() {
        let consts = HashMap::new();
        let c = compile_one("6 + ceil(t.bits / 4)", &consts).expect("compilable");
        let t = tok(vec![("bits", 10.0)]);
        assert_eq!(c.eval_num(&t, &[]).unwrap(), 6.0 + 3.0);
    }

    #[test]
    fn resolves_constants_at_compile_time() {
        let mut consts = HashMap::new();
        consts.insert("MEM".to_string(), Value::num(120.0));
        let c = compile_one("MEM * 2 + t.x", &consts).unwrap();
        assert_eq!(c.eval_num(&tok(vec![("x", 1.0)]), &[]).unwrap(), 241.0);
    }

    #[test]
    fn unknown_names_fall_back() {
        // The name exists in the program but not in the compile-time
        // constant environment: the compiler declines.
        let full = "const UNKNOWN = 1; fn __f(t, ts) { return (UNKNOWN + 1); }";
        let prog = Program::parse(full).unwrap();
        assert!(compile_fn(&prog.ast().functions[0], &HashMap::new()).is_none());
    }

    #[test]
    fn user_function_calls_fall_back() {
        // A call to a non-builtin cannot compile.
        let consts = HashMap::new();
        let full = "fn helper(t, ts) { return 1; } fn __f(t, ts) { return helper(t, ts); }";
        let prog = Program::parse(full).unwrap();
        assert!(compile_fn(&prog.ast().functions[1], &consts).is_none());
    }

    #[test]
    fn guards_and_short_circuit() {
        let consts = HashMap::new();
        let c = compile_one("t.pp == 1 && t.pn == 0", &consts).unwrap();
        let yes = tok(vec![("pp", 1.0), ("pn", 0.0)]);
        let no = tok(vec![("pp", 0.0), ("pn", 0.0)]);
        assert_eq!(c.eval(&yes, &[]).unwrap(), Value::bool(true));
        assert_eq!(c.eval(&no, &[]).unwrap(), Value::bool(false));
    }

    #[test]
    fn record_emit_compiles() {
        let consts = HashMap::new();
        let c = compile_one("{ u: 0, half: t.size / 2 }", &consts).unwrap();
        let out = c.eval(&tok(vec![("size", 8.0)]), &[]).unwrap();
        assert_eq!(out.field("half").unwrap().as_num(), Some(4.0));
    }

    #[test]
    fn ts_indexing() {
        let consts = HashMap::new();
        let c = compile_one("ts[1].a + t.a", &consts).unwrap();
        let t0 = tok(vec![("a", 1.0)]);
        let t1 = tok(vec![("a", 2.0)]);
        assert_eq!(c.eval_num(&t0, &[t0.clone(), t1]).unwrap(), 3.0);
    }

    #[test]
    fn matches_interpreter_semantics() {
        // Division by zero yields infinity, like the interpreter.
        let consts = HashMap::new();
        let c = compile_one("1 / 0", &consts).unwrap();
        assert_eq!(c.eval_num(&Value::num(0.0), &[]).unwrap(), f64::INFINITY);
    }
}
