//! `perf-lint` static analyses for performance nets.
//!
//! A Petri net shipped as a performance interface is a claim: "evaluate
//! me and you get the accelerator's timing". This module audits the
//! claim *structurally*, before any token is injected, and reports
//! through the shared [`perf_core::diag`] model. The analyses:
//!
//! * **P-semiflows** (place invariants) via the Farkas algorithm on the
//!   incidence matrix — reported as `PN111` info, and the foundation of
//!   the boundedness and trap lints;
//! * **structural boundedness** (`PN109`): an uncapped place not
//!   covered by any semiflow can accumulate tokens without limit;
//! * **siphons** (`PN103`): a siphon that starts unmarked can never
//!   gain a token, so every transition consuming from it is dead —
//!   structural deadlock;
//! * **traps** (`PN112` info): tokens entering a trap never leave; the
//!   VTA dependency-token queues are a legitimate example, so this is
//!   informational;
//! * **dead transitions** (`PN104`–`PN106`): never-enabled by marking
//!   propagation, impossible by arc weight vs. place capacity, or
//!   disabled by a constant-false guard;
//! * **zero-delay cycles** (`PN110`): a cycle all of whose transitions
//!   have provably-zero delay livelocks the event-driven engine (time
//!   never advances);
//! * plus the classic modeling mistakes: dead-end places (`PN101`),
//!   orphan places (`PN102`), token-destroying transitions (`PN108`),
//!   redundant constant-true guards (`PN107`).
//!
//! Lints that depend on where tokens *start* take the set of entry
//! places (places the adapter injects into); without it, places with no
//! producers are assumed to be the injection points.

use crate::net::{Net, PlaceId};
use perf_core::diag::{Diagnostic, Diagnostics};

/// Every Petri-net lint code with a one-line description, for docs and
/// `--explain`-style tooling.
pub const CODES: &[(&str, &str)] = &[
    ("PN001", "file cannot be read"),
    ("PN002", ".pnet source failed to parse"),
    ("PN003", "net structure is invalid"),
    (
        "PN101",
        "dead-end place: tokens entering it can never reach a sink",
    ),
    ("PN102", "orphan place: no arc touches it"),
    (
        "PN103",
        "structural deadlock: an initially-unmarked siphon starves its consumers",
    ),
    (
        "PN104",
        "dead transition: no reachable marking ever enables it",
    ),
    (
        "PN105",
        "impossible transition: an arc weight exceeds a place capacity",
    ),
    ("PN106", "dead transition: guard is constantly false"),
    ("PN107", "redundant guard: guard is constantly true"),
    (
        "PN108",
        "token-destroying transition: consumes tokens but has no output arc",
    ),
    (
        "PN109",
        "potentially unbounded place: uncapped and not covered by any P-semiflow",
    ),
    (
        "PN110",
        "zero-delay cycle: livelock, simulated time cannot advance",
    ),
    (
        "PN111",
        "P-invariant: weighted token count conserved (info)",
    ),
    (
        "PN112",
        "trap: tokens that enter this place set never leave (info)",
    ),
];

/// Cap on intermediate rows in the Farkas semiflow computation; nets in
/// this workspace have tens of places, far below the cap.
const FARKAS_ROW_CAP: usize = 4096;

/// Lints `.pnet` source text end to end: parse failures become `PN002`
/// / `PN003` diagnostics, unknown entry names become `PN003`, and a
/// well-formed net goes through [`lint`]. Every finding carries
/// `origin` as its file label. This is the one-call entry point used by
/// the accelerator crates' `interface::lint()` audits.
pub fn lint_pnet_src(origin: &str, src: &str, entries: &[&str]) -> Diagnostics {
    let mut out = Diagnostics::new();
    let net = match crate::text::parse(src) {
        Ok(net) => net,
        Err(crate::PetriError::Parse { line, msg }) => {
            out.push(
                Diagnostic::error("PN002", msg)
                    .with_origin(origin)
                    .with_pos(line as u32, 0),
            );
            return out;
        }
        Err(e) => {
            out.push(Diagnostic::error("PN003", e.to_string()).with_origin(origin));
            return out;
        }
    };
    let mut ids = Vec::new();
    for e in entries {
        match net.place_id(e) {
            Some(id) => ids.push(id),
            None => out.push(
                Diagnostic::error("PN003", format!("entry place `{e}` does not exist"))
                    .with_origin(origin),
            ),
        }
    }
    if out.has_errors() {
        return out;
    }
    out.merge(lint(&net, if ids.is_empty() { None } else { Some(&ids) }));
    out.set_origin(origin);
    out.sort();
    out
}

/// Runs every structural lint on `net`.
///
/// `entries` are the places the harness injects tokens into (including
/// "free"/resource places seeded with an initial marking). Pass `None`
/// when unknown: places with no producing transition are then assumed
/// to be the injection points.
pub fn lint(net: &Net, entries: Option<&[PlaceId]>) -> Diagnostics {
    let mut out = Diagnostics::new();
    let n = net.places().len();

    let semiflows = p_semiflows(net);
    let covered: Vec<bool> = (0..n).map(|p| semiflows.iter().any(|y| y[p] > 0)).collect();

    // The initially-markable set: declared entries, or sources.
    let mut marked = vec![false; n];
    match entries {
        Some(es) => {
            for p in es {
                marked[p.index()] = true;
            }
        }
        None => {
            for p in infer_entries(net) {
                marked[p.index()] = true;
            }
        }
    }

    orphan_and_dead_end_places(net, &mut out);
    let siphon = siphon_lint(net, &marked, &mut out);
    transition_lints(net, &marked, &siphon, &mut out);
    boundedness_lint(net, &covered, &mut out);
    zero_delay_cycles(net, &mut out);
    invariant_report(net, &semiflows, &mut out);
    trap_report(net, &covered, &mut out);
    out.sort();
    out
}

/// Structurally source-like places: no producing transition and not a
/// sink. These are the spots a harness must inject tokens into for
/// anything downstream to happen, so marking-dependent analyses (and
/// the [`crate::bound`] extractor) assume them as entries when none are
/// declared. `pnet lint` reports the inferred set so a markless lint run
/// is explicit about the assumption instead of silently skipping.
pub fn infer_entries(net: &Net) -> Vec<PlaceId> {
    (0..net.places().len())
        .filter(|&i| net.producers[i].is_empty() && !net.places()[i].is_sink)
        .map(PlaceId)
        .collect()
}

/// PN102 orphan places and PN101 dead ends.
fn orphan_and_dead_end_places(net: &Net, out: &mut Diagnostics) {
    let n = net.places().len();
    let orphan: Vec<bool> = (0..n)
        .map(|i| net.producers[i].is_empty() && net.consumers[i].is_empty())
        .collect();
    for (i, p) in net.places().iter().enumerate() {
        if orphan[i] && !p.is_sink {
            out.push(
                Diagnostic::warning(
                    "PN102",
                    format!("orphan place `{}`: no arc touches it", p.name),
                )
                .with_at(format!("place `{}`", p.name))
                .with_note("delete it, or wire it into the net"),
            );
        }
    }
    // Reverse reachability from sinks over the one-hop place graph.
    let mut next: Vec<Vec<usize>> = vec![Vec::new(); n];
    for t in net.transitions() {
        for &(i, _) in &t.inputs {
            for &(o, _) in &t.outputs {
                next[i.index()].push(o.index());
            }
        }
    }
    let mut reaches = vec![false; n];
    for (i, p) in net.places().iter().enumerate() {
        reaches[i] = p.is_sink;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if !reaches[i] && next[i].iter().any(|&j| reaches[j]) {
                reaches[i] = true;
                changed = true;
            }
        }
    }
    for (i, p) in net.places().iter().enumerate() {
        if !p.is_sink && !reaches[i] && !orphan[i] {
            out.push(
                Diagnostic::error(
                    "PN101",
                    format!(
                        "dead-end place `{}`: tokens entering it can never reach a sink",
                        p.name
                    ),
                )
                .with_at(format!("place `{}`", p.name))
                .with_note("every non-sink place should have a path to a sink"),
            );
        }
    }
}

/// PN103: the maximal siphon among initially-unmarked places. Returns
/// the siphon membership vector so the dead-transition lint can avoid
/// double-reporting its victims.
fn siphon_lint(net: &Net, marked: &[bool], out: &mut Diagnostics) -> Vec<bool> {
    let n = net.places().len();
    // Start from every unmarked non-sink place and shrink: a place
    // stays only while every transition producing into it also consumes
    // from the current set (the siphon property).
    let mut in_s: Vec<bool> = (0..n)
        .map(|i| !marked[i] && !net.places()[i].is_sink)
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for p in 0..n {
            if !in_s[p] {
                continue;
            }
            let violates = net.producers[p].iter().any(|&ti| {
                !net.transitions()[ti]
                    .inputs
                    .iter()
                    .any(|&(q, _)| in_s[q.index()])
            });
            if violates {
                in_s[p] = false;
                changed = true;
            }
        }
    }
    let starved: Vec<&str> = net
        .transitions()
        .iter()
        .filter(|t| t.inputs.iter().any(|&(q, _)| in_s[q.index()]))
        .map(|t| t.name.as_str())
        .collect();
    if !starved.is_empty() {
        let places: Vec<&str> = net
            .places()
            .iter()
            .enumerate()
            .filter(|&(i, _)| in_s[i])
            .map(|(_, p)| p.name.as_str())
            .collect();
        out.push(
            Diagnostic::error(
                "PN103",
                format!(
                    "structural deadlock: siphon {{{}}} starts empty and can never gain tokens",
                    places.join(", ")
                ),
            )
            .with_at(format!("place `{}`", places[0]))
            .with_note(format!(
                "transitions {} consume from the siphon and can never fire",
                starved
                    .iter()
                    .map(|t| format!("`{t}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
            .with_note(
                "mark one of these places initially (pass it as an entry) or add a producing path",
            ),
        );
    }
    in_s
}

/// PN104/PN105/PN106/PN107/PN108: per-transition lints plus the
/// markable-set propagation that finds never-enabled transitions.
fn transition_lints(net: &Net, initially: &[bool], siphon: &[bool], out: &mut Diagnostics) {
    let n = net.places().len();
    let mut cap_dead = vec![false; net.transitions().len()];
    for (ti, t) in net.transitions().iter().enumerate() {
        let at = format!("transition `{}`", t.name);
        // PN105: arc weight vs. capacity, on either side.
        for &(p, w) in &t.inputs {
            if let Some(cap) = net.places()[p.index()].capacity {
                if w > cap {
                    cap_dead[ti] = true;
                    out.push(
                        Diagnostic::error(
                            "PN105",
                            format!(
                                "transition `{}` needs {w} tokens from `{}`, which can hold at most {cap}",
                                t.name,
                                net.places()[p.index()].name
                            ),
                        )
                        .with_at(at.clone())
                        .with_note("the transition can never fire; raise the capacity or lower the arc weight"),
                    );
                }
            }
        }
        for &(p, w) in &t.outputs {
            if let Some(cap) = net.places()[p.index()].capacity {
                if w > cap {
                    cap_dead[ti] = true;
                    out.push(
                        Diagnostic::error(
                            "PN105",
                            format!(
                                "transition `{}` produces {w} tokens into `{}`, which can hold at most {cap}",
                                t.name,
                                net.places()[p.index()].name
                            ),
                        )
                        .with_at(at.clone())
                        .with_note("capacity reservation can never succeed; the transition can never fire"),
                    );
                }
            }
        }
        // PN106/PN107: constant guards.
        match t.behavior.const_guard() {
            Some(false) => out.push(
                Diagnostic::error(
                    "PN106",
                    format!(
                        "transition `{}` has a constantly-false guard; it can never fire",
                        t.name
                    ),
                )
                .with_at(at.clone()),
            ),
            Some(true) if t.behavior.has_guard() => out.push(
                Diagnostic::warning(
                    "PN107",
                    format!("transition `{}` has a constantly-true guard", t.name),
                )
                .with_at(at.clone())
                .with_note("drop the guard; it never blocks a firing"),
            ),
            _ => {}
        }
        // PN108: tokens consumed but none produced.
        if t.outputs.is_empty() {
            out.push(
                Diagnostic::warning(
                    "PN108",
                    format!(
                        "transition `{}` consumes tokens but has no output arc",
                        t.name
                    ),
                )
                .with_at(at)
                .with_note("consumed work items vanish; route them to a sink place instead"),
            );
        }
    }

    // Markable-set propagation: a transition is potentially enabled
    // once every input place is potentially markable (and it is not
    // structurally impossible); its outputs then become markable.
    let mut markable = initially.to_vec();
    let mut fireable = vec![false; net.transitions().len()];
    let mut changed = true;
    while changed {
        changed = false;
        for (ti, t) in net.transitions().iter().enumerate() {
            if fireable[ti] || cap_dead[ti] || t.behavior.const_guard() == Some(false) {
                continue;
            }
            if t.inputs.iter().all(|&(p, _)| markable[p.index()]) {
                fireable[ti] = true;
                changed = true;
                for &(p, _) in &t.outputs {
                    markable[p.index()] = true;
                }
            }
        }
    }
    let _ = n;
    for (ti, t) in net.transitions().iter().enumerate() {
        if fireable[ti] || cap_dead[ti] || t.behavior.const_guard() == Some(false) {
            continue; // impossible transitions already reported above
        }
        if t.inputs.iter().any(|&(p, _)| siphon[p.index()]) {
            continue; // already explained by the PN103 siphon finding
        }
        let blockers: Vec<String> = t
            .inputs
            .iter()
            .filter(|&&(p, _)| !markable[p.index()])
            .map(|&(p, _)| format!("`{}`", net.places()[p.index()].name))
            .collect();
        out.push(
            Diagnostic::error(
                "PN104",
                format!(
                    "dead transition `{}`: no reachable marking enables it",
                    t.name
                ),
            )
            .with_at(format!("transition `{}`", t.name))
            .with_note(format!(
                "input place(s) {} can never receive a token",
                blockers.join(", ")
            )),
        );
    }
}

/// PN109: uncapped, non-sink places with producers that no P-semiflow
/// covers can grow without bound.
fn boundedness_lint(net: &Net, covered: &[bool], out: &mut Diagnostics) {
    for (i, p) in net.places().iter().enumerate() {
        if p.is_sink || p.capacity.is_some() || covered[i] {
            continue;
        }
        if net.producers[i].is_empty() {
            // Sources only hold what the harness injects; their
            // occupancy is the workload's choice, not the net's.
            continue;
        }
        out.push(
            Diagnostic::warning(
                "PN109",
                format!(
                    "place `{}` is uncapped and no P-invariant bounds it; its queue can grow without limit",
                    p.name
                ),
            )
            .with_at(format!("place `{}`", p.name))
            .with_note("give it a `cap N` or restructure so a semiflow covers it"),
        );
    }
}

/// PN110: a cycle of provably-zero-delay transitions livelocks the
/// event-driven engine — tokens circulate forever at one timestamp.
fn zero_delay_cycles(net: &Net, out: &mut Diagnostics) {
    let n = net.places().len();
    // Edges p -> q through zero-delay transitions only.
    let mut zero_edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (to-place, trans)
    for (ti, t) in net.transitions().iter().enumerate() {
        if t.behavior.const_delay() != Some(0.0) {
            continue;
        }
        for &(i, _) in &t.inputs {
            for &(o, _) in &t.outputs {
                zero_edges[i.index()].push((o.index(), ti));
            }
        }
    }
    // Iterative DFS cycle detection with a stack mark.
    let mut color = vec![0u8; n]; // 0 white, 1 on stack, 2 done
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Each stack frame: (place, edge cursor).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        let mut path_trans: Vec<usize> = Vec::new();
        while let Some(&mut (p, ref mut cursor)) = stack.last_mut() {
            if *cursor < zero_edges[p].len() {
                let (q, ti) = zero_edges[p][*cursor];
                *cursor += 1;
                match color[q] {
                    0 => {
                        color[q] = 1;
                        stack.push((q, 0));
                        path_trans.push(ti);
                    }
                    1 => {
                        // Found a cycle: the transitions on the stack
                        // from q onward, plus the closing edge.
                        let mut cycle: Vec<usize> = Vec::new();
                        let pos = stack.iter().position(|&(sp, _)| sp == q).unwrap_or(0);
                        cycle.extend(path_trans[pos..].iter().copied());
                        cycle.push(ti);
                        cycle.dedup();
                        let names: Vec<String> = cycle
                            .iter()
                            .map(|&t| format!("`{}`", net.transitions()[t].name))
                            .collect();
                        out.push(
                            Diagnostic::error(
                                "PN110",
                                format!(
                                    "zero-delay cycle through {}: the engine livelocks, simulated time cannot advance",
                                    names.join(" -> ")
                                ),
                            )
                            .with_at(format!("place `{}`", net.places()[q].name))
                            .with_note("give at least one transition on the cycle a nonzero delay"),
                        );
                        // One report per start component is enough.
                        for (sp, _) in stack.drain(..) {
                            color[sp] = 2;
                        }
                        path_trans.clear();
                    }
                    _ => {}
                }
            } else {
                color[p] = 2;
                stack.pop();
                path_trans.pop();
            }
        }
    }
}

/// PN111: reports each minimal P-semiflow as an informational
/// invariant.
fn invariant_report(net: &Net, semiflows: &[Vec<i64>], out: &mut Diagnostics) {
    for y in semiflows {
        let terms: Vec<String> = y
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(i, &w)| {
                if w == 1 {
                    net.places()[i].name.clone()
                } else {
                    format!("{w}*{}", net.places()[i].name)
                }
            })
            .collect();
        out.push(Diagnostic::info(
            "PN111",
            format!(
                "P-invariant: {} is constant under every firing",
                terms.join(" + ")
            ),
        ));
    }
}

/// PN112: the maximal trap among non-sink places that no semiflow
/// covers — tokens that enter never leave. Informational: bounded
/// dependency-token loops (e.g. VTA's l2c/c2l) are legitimate.
fn trap_report(net: &Net, covered: &[bool], out: &mut Diagnostics) {
    let n = net.places().len();
    let mut in_t: Vec<bool> = (0..n)
        .map(|i| !net.places()[i].is_sink && !covered[i])
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for p in 0..n {
            if !in_t[p] {
                continue;
            }
            // Trap property: every transition consuming from the set
            // must also produce into it.
            let violates = net.consumers[p].iter().any(|&ti| {
                !net.transitions()[ti]
                    .outputs
                    .iter()
                    .any(|&(q, _)| in_t[q.index()])
            });
            if violates {
                in_t[p] = false;
                changed = true;
            }
        }
    }
    // Only report traps that something outside actually feeds;
    // orphan/dead places are covered by their own lints.
    let fed = net.places().iter().enumerate().any(|(i, _)| {
        in_t[i]
            && net.producers[i].iter().any(|&ti| {
                !net.transitions()[ti]
                    .inputs
                    .iter()
                    .any(|&(q, _)| in_t[q.index()])
            })
    });
    if fed {
        let places: Vec<&str> = net
            .places()
            .iter()
            .enumerate()
            .filter(|&(i, _)| in_t[i])
            .map(|(_, p)| p.name.as_str())
            .collect();
        out.push(
            Diagnostic::info(
                "PN112",
                format!(
                    "trap {{{}}}: tokens that enter never leave and strand at quiescence",
                    places.join(", ")
                ),
            )
            .with_note("expected for dependency-token queues; otherwise check the consuming arcs"),
        );
    }
}

/// Computes minimal-support P-semiflows (vectors `y >= 0`, `y != 0`,
/// with `y^T * C = 0` for incidence matrix `C`) using the Farkas
/// algorithm: start from `[C | I]` and eliminate one transition column
/// at a time by taking nonnegative combinations of rows with opposite
/// signs. The surviving identity halves are the semiflows.
pub fn p_semiflows(net: &Net) -> Vec<Vec<i64>> {
    let n = net.places().len();
    let m = net.transitions().len();
    // Incidence: effect[t][p] = out weight - in weight.
    let mut effect = vec![vec![0i64; n]; m];
    for (ti, t) in net.transitions().iter().enumerate() {
        for &(p, w) in &t.inputs {
            effect[ti][p.index()] -= w as i64;
        }
        for &(p, w) in &t.outputs {
            effect[ti][p.index()] += w as i64;
        }
    }
    // Rows: (c, y) with c = remaining transition-column values, y = the
    // nonnegative place combination that produced them.
    let mut rows: Vec<(Vec<i64>, Vec<i64>)> = (0..n)
        .map(|p| {
            let c: Vec<i64> = (0..m).map(|t| effect[t][p]).collect();
            let mut y = vec![0i64; n];
            y[p] = 1;
            (c, y)
        })
        .collect();
    for j in 0..m {
        let mut next: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
        for r in &rows {
            if r.0[j] == 0 {
                next.push(r.clone());
            }
        }
        for a in rows.iter().filter(|r| r.0[j] > 0) {
            for b in rows.iter().filter(|r| r.0[j] < 0) {
                if next.len() >= FARKAS_ROW_CAP {
                    break;
                }
                let (ka, kb) = (-b.0[j], a.0[j]);
                let mut c: Vec<i64> = (0..m).map(|t| ka * a.0[t] + kb * b.0[t]).collect();
                let mut y: Vec<i64> = (0..n).map(|p| ka * a.1[p] + kb * b.1[p]).collect();
                let g = c
                    .iter()
                    .chain(y.iter())
                    .fold(0i64, |acc, &v| gcd(acc, v.abs()));
                if g > 1 {
                    for v in c.iter_mut().chain(y.iter_mut()) {
                        *v /= g;
                    }
                }
                next.push((c, y));
            }
            if next.len() >= FARKAS_ROW_CAP {
                break;
            }
        }
        // Keep only minimal-support rows: drop any whose place support
        // strictly contains another's (keeps the basis small and the
        // reported invariants readable).
        next = minimal_support(next);
        rows = next;
    }
    rows.into_iter()
        .map(|(_, y)| y)
        .filter(|y| y.iter().any(|&v| v > 0))
        .collect()
}

fn gcd(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Drops rows whose support is a strict superset of another row's, and
/// exact duplicates.
fn minimal_support(rows: Vec<(Vec<i64>, Vec<i64>)>) -> Vec<(Vec<i64>, Vec<i64>)> {
    let support = |y: &[i64]| -> Vec<usize> {
        y.iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(i, _)| i)
            .collect()
    };
    let sups: Vec<Vec<usize>> = rows.iter().map(|(_, y)| support(y)).collect();
    let mut keep: Vec<bool> = vec![true; rows.len()];
    for i in 0..rows.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..rows.len() {
            if i == j || !keep[j] {
                continue;
            }
            let contains = sups[j].iter().all(|p| sups[i].binary_search(p).is_ok());
            if contains && (sups[j].len() < sups[i].len() || j < i) {
                // j's support is contained in i's (strictly, or a
                // duplicate with lower index): i is redundant.
                if sups[j].len() < sups[i].len() || rows[i].1 == rows[j].1 {
                    keep[i] = false;
                    break;
                }
            }
        }
    }
    rows.into_iter()
        .zip(keep)
        .filter(|&(_, k)| k)
        .map(|(r, _)| r)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;
    use crate::text;

    fn lint_src(src: &str) -> Diagnostics {
        lint(&text::parse(src).unwrap(), None)
    }

    const PIPE: &str = "
net pipe
place a
place mid cap 4
sink z
trans s1
  in a
  out mid
  delay 2
trans s2
  in mid
  out z
  delay 3
";

    #[test]
    fn clean_pipeline_has_no_errors_or_warnings() {
        let ds = lint_src(PIPE);
        assert_eq!(ds.count(perf_core::Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(perf_core::Severity::Warning), 0, "{}", ds.render());
        // The all-ones invariant of a conservative pipeline is found.
        assert!(ds.has_code("PN111"), "{}", ds.render());
    }

    #[test]
    fn orphan_place_flagged() {
        let ds =
            lint_src("net n\nplace a\nplace lonely\nsink z\ntrans t\n  in a\n  out z\n  delay 1\n");
        assert!(ds.has_code("PN102"), "{}", ds.render());
    }

    #[test]
    fn dead_end_place_flagged() {
        let ds =
            lint_src("net n\nplace a\nplace pit\nsink z\ntrans t\n  in a\n  out pit\n  delay 1\n");
        assert!(ds.has_code("PN101"), "{}", ds.render());
        let _ = ds.find("PN101").unwrap();
    }

    #[test]
    fn unmarked_siphon_is_structural_deadlock() {
        // `gate` is consumed and reproduced by `work`, but nothing else
        // ever produces it: without an initial token, `work` is dead.
        let src = "
net n
place a
place gate
sink z
trans work
  in a
  in gate
  out z
  out gate
  delay 1
";
        let ds = lint_src(src);
        assert!(ds.has_code("PN103"), "{}", ds.render());
        // Declaring `gate` as an entry place clears the finding.
        let net = text::parse(src).unwrap();
        let gate = net.place_id("gate").unwrap();
        let a = net.place_id("a").unwrap();
        let ds = lint(&net, Some(&[a, gate]));
        assert!(!ds.has_code("PN103"), "{}", ds.render());
        assert!(!ds.has_code("PN104"), "{}", ds.render());
    }

    #[test]
    fn capacity_infeasible_arc_flagged() {
        let ds =
            lint_src("net n\nplace a cap 1\nsink z\ntrans t\n  in a x 2\n  out z\n  delay 1\n");
        assert!(ds.has_code("PN105"), "{}", ds.render());
        // Not double-reported as PN104.
        assert!(!ds.has_code("PN104"), "{}", ds.render());
    }

    #[test]
    fn constant_guards_flagged() {
        let ds = lint_src(
            "net n\nplace a\nsink z\ntrans t\n  in a\n  out z\n  guard 1 == 2\n  delay 1\n",
        );
        assert!(ds.has_code("PN106"), "{}", ds.render());
        let ds = lint_src(
            "net n\nplace a\nsink z\ntrans t\n  in a\n  out z\n  guard 2 == 2\n  delay 1\n",
        );
        assert!(ds.has_code("PN107"), "{}", ds.render());
    }

    #[test]
    fn no_output_transition_flagged() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a", None);
        b.add_transition(crate::net::Transition {
            name: "leak".into(),
            inputs: vec![(a, 1)],
            outputs: vec![],
            behavior: crate::behavior::fixed_delay(1, 0),
            servers: 1,
            priority: 0,
        });
        let net = b.build().unwrap();
        let ds = lint(&net, None);
        assert!(ds.has_code("PN108"), "{}", ds.render());
    }

    #[test]
    fn unbounded_place_flagged_and_invariant_suppresses() {
        // `grow` recirculates its token and deposits into `q` each
        // lap: no semiflow can cover `q`, so it grows without bound.
        let src = "net n\nplace a\nplace q\nsink z\ntrans grow\n  in a\n  out a\n  out q\n  delay 1\ntrans drain\n  in q\n  out z\n  delay 1\n";
        let net = text::parse(src).unwrap();
        let a = net.place_id("a").unwrap();
        let ds = lint(&net, Some(&[a]));
        assert!(ds.has_code("PN109"), "{}", ds.render());
        // A conservative pipeline's uncapped middle place is covered by
        // the all-ones invariant: not flagged.
        let ds = lint_src("net n\nplace a\nplace q\nsink z\ntrans s1\n  in a\n  out q\n  delay 1\ntrans s2\n  in q\n  out z\n  delay 1\n");
        assert!(!ds.has_code("PN109"), "{}", ds.render());
    }

    #[test]
    fn zero_delay_cycle_flagged() {
        let src = "
net n
place a
place b
sink z
trans fwd
  in a
  out b
  delay 0
trans back
  in b
  out a
  delay 0
trans leave
  in b
  out z
  delay 1
";
        let ds = lint_src(src);
        assert!(ds.has_code("PN110"), "{}", ds.render());
        // Same cycle with one nonzero delay: no livelock.
        let ds = lint_src(&src.replace("delay 0\ntrans back", "delay 1\ntrans back"));
        assert!(!ds.has_code("PN110"), "{}", ds.render());
    }

    #[test]
    fn zero_delay_self_loop_flagged() {
        let src = "
net n
place a
sink z
trans spin
  in a
  out a
  delay 0
";
        let ds = lint_src(src);
        assert!(ds.has_code("PN110"), "{}", ds.render());
    }

    #[test]
    fn semiflows_of_resource_loop() {
        // A single-server resource place is its own invariant.
        let src = "
net n
place q
place free
sink z
trans serve
  in q
  in free
  out free
  out z
  delay 1
";
        let net = text::parse(src).unwrap();
        let flows = p_semiflows(&net);
        let free = net.place_id("free").unwrap().index();
        assert!(
            flows
                .iter()
                .any(|y| y[free] > 0 && y.iter().sum::<i64>() == y[free]),
            "expected a {{free}}-only semiflow, got {flows:?}"
        );
    }

    #[test]
    fn trap_reported_as_info() {
        // Tokens pushed into `dep` circulate between dep/ack forever
        // (flip's token gain keeps any semiflow from covering them).
        let src = "
net n
place a
place dep cap 4
place ack cap 4
sink z
trans work
  in a
  out dep
  out z
  delay 1
trans flip
  in dep
  out ack x 2
  delay 1
trans flop
  in ack
  out dep
  delay 1
";
        let ds = lint_src(src);
        assert!(ds.has_code("PN112"), "{}", ds.render());
        assert_eq!(
            ds.find("PN112").unwrap().severity,
            perf_core::Severity::Info
        );
    }

    #[test]
    fn lint_src_reports_parse_and_entry_errors_as_diagnostics() {
        let ds = lint_pnet_src("broken.pnet", "net n\nplace a cap x\n", &[]);
        assert!(ds.has_code("PN002"), "{}", ds.render());
        assert_eq!(ds.find("PN002").unwrap().origin, "broken.pnet");
        let ds = lint_pnet_src("n.pnet", PIPE, &["nope"]);
        assert!(ds.has_code("PN003"), "{}", ds.render());
        let ds = lint_pnet_src("n.pnet", PIPE, &["a"]);
        assert!(!ds.has_errors(), "{}", ds.render());
    }

    #[test]
    fn codes_table_is_consistent() {
        let mut seen = std::collections::HashSet::new();
        for (code, desc) in CODES {
            assert!(seen.insert(code), "duplicate code {code}");
            assert!(code.starts_with("PN"));
            assert!(!desc.is_empty());
        }
    }
}
