//! Graphviz (DOT) export for visual inspection of nets.

use crate::net::Net;

/// Renders `net` as a Graphviz digraph: places are circles, transitions
/// are boxes, arc weights label edges.
pub fn to_dot(net: &Net) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", net.name));
    out.push_str("  rankdir=LR;\n");
    for (i, p) in net.places().iter().enumerate() {
        let shape = if p.is_sink { "doublecircle" } else { "circle" };
        let cap = match p.capacity {
            Some(c) => format!("\\ncap {c}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "  p{i} [label=\"{}{}\" shape={shape}];\n",
            p.name, cap
        ));
    }
    for (i, t) in net.transitions().iter().enumerate() {
        out.push_str(&format!("  t{i} [label=\"{}\" shape=box];\n", t.name));
        for &(p, w) in &t.inputs {
            let lbl = if w > 1 {
                format!(" [label=\"{w}\"]")
            } else {
                String::new()
            };
            out.push_str(&format!("  p{} -> t{i}{lbl};\n", p.index()));
        }
        for &(p, w) in &t.outputs {
            let lbl = if w > 1 {
                format!(" [label=\"{w}\"]")
            } else {
                String::new()
            };
            out.push_str(&format!("  t{i} -> p{}{lbl};\n", p.index()));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::NetBuilder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = NetBuilder::new("demo");
        let a = b.place("a", Some(4));
        let z = b.sink("z");
        b.transition("work", &[a], &[z], |_| 1, |ts| vec![ts[0].data.clone()]);
        let net = b.build().unwrap();
        let dot = to_dot(&net);
        assert!(dot.contains("digraph \"demo\""));
        assert!(dot.contains("label=\"a\\ncap 4\""));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("p0 -> t0"));
        assert!(dot.contains("t0 -> p1"));
    }
}
