//! Autotuner cost-backend benchmarks: one query per backend tier,
//! plus the memoized decorator on its hit path.

use criterion::{criterion_group, criterion_main, Criterion};
use perf_autotune::cost::{CachedCost, CostBackend, CycleCost, PetriCost, ProgramCost};
use perf_autotune::schedule::Schedule;
use perf_autotune::workload::GemmWorkload;

fn query_program() -> accel_vta::isa::Program {
    let w = GemmWorkload::new(128, 128, 128);
    Schedule {
        tm: 4,
        tn: 4,
        tk: 2,
    }
    .lower(&w)
}

fn bench_cycle_cost(c: &mut Criterion) {
    let prog = query_program();
    let mut backend = CycleCost::new();
    c.bench_function("cost_cycle_accurate", |b| {
        b.iter(|| backend.cost(&prog).unwrap())
    });
}

fn bench_petri_cost(c: &mut Criterion) {
    let prog = query_program();
    let mut backend = PetriCost::new().unwrap();
    c.bench_function("cost_petri_net", |b| {
        b.iter(|| backend.cost(&prog).unwrap())
    });
}

fn bench_program_cost(c: &mut Criterion) {
    let prog = query_program();
    let mut backend = ProgramCost::new().unwrap();
    c.bench_function("cost_program_interface", |b| {
        b.iter(|| backend.cost(&prog).unwrap())
    });
}

fn bench_cached_hit(c: &mut Criterion) {
    let prog = query_program();
    let mut backend = CachedCost::new(PetriCost::new().unwrap());
    backend.cost(&prog).unwrap(); // prime the cache
    c.bench_function("cost_cached_hit", |b| {
        b.iter(|| backend.cost(&prog).unwrap())
    });
}

criterion_group! {
    name = cost_backends;
    config = Criterion::default().sample_size(20);
    targets = bench_cycle_cost, bench_petri_cost, bench_program_cost, bench_cached_hit
}
criterion_main!(cost_backends);
