//! Raw engine benchmarks: the substrates' own throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use perf_iface_lang::{Program, Value};
use perf_petri::engine::{Engine, Options};
use perf_petri::net::NetBuilder;
use perf_petri::token::Token;

fn bench_petri_engine(c: &mut Criterion) {
    // A three-stage pipeline pushing 1000 tokens.
    let mut b = NetBuilder::new("pipe");
    let src = b.place("src", None);
    let q1 = b.place("q1", Some(4));
    let q2 = b.place("q2", Some(4));
    let done = b.sink("done");
    b.transition("s1", &[src], &[q1], |_| 3, |ts| vec![ts[0].data.clone()]);
    b.transition("s2", &[q1], &[q2], |_| 5, |ts| vec![ts[0].data.clone()]);
    b.transition("s3", &[q2], &[done], |_| 2, |ts| vec![ts[0].data.clone()]);
    let net = b.build().expect("valid net");
    let mut group = c.benchmark_group("petri_engine");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("native_pipeline_1000_tokens", |bch| {
        bch.iter(|| {
            let mut e = Engine::new(&net, Options::default());
            for _ in 0..1000 {
                e.inject(src, Token::at(Value::num(0.0), 0));
            }
            e.run().expect("runs")
        })
    });
    group.finish();
}

fn bench_pil_interpreter(c: &mut Criterion) {
    let prog = Program::parse(accel_jpeg::interface::program::JPEG_PI_SRC).expect("parses");
    let img = Value::record([
        ("orig_size", Value::num(65536.0)),
        ("compress_rate", Value::num(8.0)),
    ]);
    c.bench_function("pil_jpeg_latency_call", |b| {
        b.iter(|| {
            prog.call("latency_jpeg_decode", std::slice::from_ref(&img))
                .expect("evals")
        })
    });
}

fn bench_jpeg_cycle_sim(c: &mut Criterion) {
    let mut g = accel_jpeg::ImageGen::new(1);
    let img = g.gen_sized(128, 128, 60);
    c.bench_function("jpeg_cycle_sim_128x128", |b| {
        let mut sim = accel_jpeg::JpegCycleSim::default();
        b.iter(|| sim.decode(&img))
    });
}

fn bench_protoacc_sim(c: &mut Criterion) {
    let desc = &accel_protoacc::suite::formats()[19]; // nest4.
    let w = accel_protoacc::simx::ProtoWorkload::of_format(desc, 10, 1);
    c.bench_function("protoacc_sim_nest4_x10", |b| {
        let mut sim = accel_protoacc::simx::ProtoaccSim::default();
        b.iter(|| {
            sim.reset();
            sim.serialize_stream(&w.messages)
        })
    });
}

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xa5u8; 4096];
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(4096));
    group.bench_function("4k_message", |b| {
        b.iter(|| accel_bitcoin::sha256::sha256(&data))
    });
    group.finish();
}

criterion_group! {
    name = engines;
    config = Criterion::default().sample_size(20);
    targets =
        bench_petri_engine,
        bench_pil_interpreter,
        bench_jpeg_cycle_sim,
        bench_protoacc_sim,
        bench_sha256
}
criterion_main!(engines);
