//! Criterion benches, one group per paper table/figure (E1–E10).
//!
//! These measure the computational kernels behind each experiment at
//! reduced scale; the `repro` binary regenerates the full tables.

use criterion::{criterion_group, criterion_main, Criterion};
use perf_bench::experiments;

fn bench_fig1_nl_laws(c: &mut Criterion) {
    c.bench_function("e1_fig1_nl_claim_checking", |b| {
        b.iter(|| experiments::e1_nl_interfaces().expect("e1"))
    });
}

fn bench_fig2_jpeg_program_iface(c: &mut Criterion) {
    c.bench_function("e2_fig2_jpeg_program_iface_30imgs", |b| {
        b.iter(|| experiments::e2_jpeg_program(30).expect("e2"))
    });
}

fn bench_fig3_protoacc_program_iface(c: &mut Criterion) {
    c.bench_function("e3_fig3_protoacc_program_iface", |b| {
        b.iter(|| experiments::e3_protoacc_program(6).expect("e3"))
    });
}

fn bench_table1_petri_accuracy(c: &mut Criterion) {
    c.bench_function("e4_table1_petri_accuracy_small", |b| {
        b.iter(|| experiments::e4_table1(6, 15).expect("e4"))
    });
}

fn bench_e5_autotune_speedup(c: &mut Criterion) {
    // The speedup itself is a measured quantity; benching the two cost
    // oracles side by side is the underlying kernel.
    use accel_vta::gen::ProgGen;
    use perf_core::GroundTruth;
    let prog = ProgGen::new(5).gen_program();
    let petri = accel_vta::interface::petri::VtaPetriInterface::new_full().expect("net");
    let mut group = c.benchmark_group("e5_profiling_oracles");
    group.bench_function("cycle_accurate_sim", |b| {
        let mut sim = accel_vta::VtaCycleSim::default();
        b.iter(|| sim.measure(&prog).expect("runs"))
    });
    group.bench_function("petri_net_eval", |b| {
        b.iter(|| petri.run(&prog).expect("runs"))
    });
    group.bench_function("program_iface_eval", |b| {
        use perf_core::iface::{Metric, PerfInterface};
        let iface = accel_vta::interface::program::VtaProgramInterface::new().expect("pi");
        b.iter(|| iface.predict(&prog, Metric::Latency).expect("predicts"))
    });
    group.finish();
}

fn bench_e6_serializer_crossover(c: &mut Criterion) {
    c.bench_function("e6_crossover_point", |b| {
        b.iter(|| perf_workloads::rpc::measure_size(1024, 1))
    });
}

fn bench_e7_soc_design(c: &mut Criterion) {
    c.bench_function("e7_soc_design_space", |b| {
        b.iter(|| perf_workloads::soc::design_space().expect("space"))
    });
}

fn bench_e8_offload_replay(c: &mut Criterion) {
    let trace = perf_workloads::offload::record_trace(10, 11);
    c.bench_function("e8_offload_replay_10req", |b| {
        b.iter(|| perf_workloads::offload::run_study(&trace).expect("study"))
    });
}

fn bench_e9_petri_ablation(c: &mut Criterion) {
    use accel_vta::gen::ProgGen;
    let prog = ProgGen::new(9).gen_program();
    let full = accel_vta::interface::petri::VtaPetriInterface::new_full().expect("net");
    let lite = accel_vta::interface::petri::VtaPetriInterface::new_lite().expect("net");
    let mut group = c.benchmark_group("e9_net_variants");
    group.bench_function("full_net", |b| b.iter(|| full.run(&prog).expect("runs")));
    group.bench_function("lite_net", |b| b.iter(|| lite.run(&prog).expect("runs")));
    group.finish();
}

fn bench_e10_autotune_quality(c: &mut Criterion) {
    use perf_autotune::cost::PetriCost;
    use perf_autotune::{GemmWorkload, Tuner};
    c.bench_function("e10_random_search_8_petri", |b| {
        b.iter(|| {
            let mut tuner = Tuner::new(GemmWorkload::new(128, 128, 128), 1).expect("tuner");
            let mut backend = PetriCost::new().expect("backend");
            tuner.random_search(&mut backend, 8).expect("search")
        })
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10);
    targets =
        bench_fig1_nl_laws,
        bench_fig2_jpeg_program_iface,
        bench_fig3_protoacc_program_iface,
        bench_table1_petri_accuracy,
        bench_e5_autotune_speedup,
        bench_e6_serializer_crossover,
        bench_e7_soc_design,
        bench_e8_offload_replay,
        bench_e9_petri_ablation,
        bench_e10_autotune_quality
}
criterion_main!(paper);
