//! Petri engine throughput: the reference full-net fixpoint scan vs
//! the incremental worklist engine vs the compiled static-topology
//! stepper, on the two stress shapes from `perf_bench::enginebench`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use perf_bench::enginebench::{deep_pipeline, fan_net, run_once, run_once_compiled};
use perf_petri::stepper::CompiledNet;

const TOKENS: usize = 256;

fn bench_deep_pipeline(c: &mut Criterion) {
    let (net, src) = deep_pipeline(28);
    let plan = CompiledNet::compile(&net);
    let events = run_once(&net, src, TOKENS, true).events;
    let mut group = c.benchmark_group("engine_deep_pipeline_28");
    group.throughput(Throughput::Elements(events));
    group.bench_function("incremental", |b| {
        b.iter(|| run_once(&net, src, TOKENS, true))
    });
    group.bench_function("reference_scan", |b| {
        b.iter(|| run_once(&net, src, TOKENS, false))
    });
    group.bench_function("compiled", |b| {
        b.iter(|| run_once_compiled(&plan, &net, src, TOKENS))
    });
    group.finish();
}

fn bench_fan(c: &mut Criterion) {
    let (net, src) = fan_net(8);
    let plan = CompiledNet::compile(&net);
    let events = run_once(&net, src, TOKENS, true).events;
    let mut group = c.benchmark_group("engine_fan_8");
    group.throughput(Throughput::Elements(events));
    group.bench_function("incremental", |b| {
        b.iter(|| run_once(&net, src, TOKENS, true))
    });
    group.bench_function("reference_scan", |b| {
        b.iter(|| run_once(&net, src, TOKENS, false))
    });
    group.bench_function("compiled", |b| {
        b.iter(|| run_once_compiled(&plan, &net, src, TOKENS))
    });
    group.finish();
}

criterion_group! {
    name = engine_throughput;
    config = Criterion::default().sample_size(20);
    targets = bench_deep_pipeline, bench_fan
}
criterion_main!(engine_throughput);
