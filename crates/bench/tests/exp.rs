//! Integration tests for the declarative experiment framework: spec
//! parsing through the public API, a property-tested spec → JSON
//! round-trip (the JSON is hand-rendered, so it must stay parseable
//! by the repo's own hand-rolled parser), and byte-stability of the
//! CLI output across runs.

use perf_bench::exp::spec::{self, CmpOp};
use perf_bench::exp::{self, CriterionOutcome, ExpResult, RunResults, VariantOutput};
use perf_service::json::Json;
use proptest::prelude::*;
use std::process::{Command, Output};

#[test]
fn parse_errors_carry_the_offending_line_number() {
    // Bad axis: values that are not a list, on line 6.
    let bad_axis = "\
[[experiment]]
id = \"E1\"
title = \"t\"
runner = \"r\"
[[axis]]
values = \"jpeg\"
";
    let e = spec::parse(bad_axis).unwrap_err().to_string();
    assert!(e.contains("experiments line 6"), "{e}");
    assert!(e.contains("list"), "{e}");

    // Bad criterion operator, on line 5.
    let bad_criterion = "\
[[experiment]]
id = \"E1\"
title = \"t\"
runner = \"r\"
criteria = [\"e1_x != 1\"]
";
    let e = spec::parse(bad_criterion).unwrap_err().to_string();
    assert!(e.contains("experiments line 5"), "{e}");
    assert!(e.contains("unknown operator"), "{e}");

    // An axis stanza with no experiment to attach to, on line 1.
    let orphan = "[[axis]]\nname = \"a\"\nvalues = [\"x\"]\n";
    let e = spec::parse(orphan).unwrap_err().to_string();
    assert!(e.contains("experiments line 1"), "{e}");
}

#[test]
fn shipped_specs_cover_the_whole_experiment_index() {
    let file = exp::load().expect("shipped spec file parses");
    let ids: Vec<&str> = file.specs.iter().map(|s| s.id.as_str()).collect();
    assert_eq!(
        ids,
        (1..=14).map(|i| format!("E{i}")).collect::<Vec<_>>(),
        "spec file must cover E1..E14 in order"
    );
    // Quick-scale sample counts exist wherever full-scale ones do, so
    // the CI drift gate can run every experiment.
    for s in &file.specs {
        for v in s.variants() {
            let values: Vec<String> = v.into_iter().map(|(_, val)| val).collect();
            assert_eq!(
                s.samples_for("quick", &values).is_some(),
                s.samples_for("full", &values).is_some(),
                "{}: quick/full sample coverage differs for {values:?}",
                s.id
            );
        }
    }
}

fn op_of(i: usize) -> CmpOp {
    [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][i % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A spec rendered as TOML parses back to the same criteria,
    /// samples, and axes.
    #[test]
    fn spec_toml_round_trips(
        seed in 0u64..1_000_000,
        threshold in -100.0f64..100.0,
        op_i in 0usize..4,
        quick_n in 1u32..10_000,
        full_n in 1u32..10_000,
    ) {
        let op = op_of(op_i);
        let src = format!(
            "master_seed = {seed}\n\n[[experiment]]\nid = \"E1\"\ntitle = \"t\"\n\
             runner = \"r\"\nsamples = {{ quick = {quick_n}, full = {full_n} }}\n\
             criteria = [\"m {} {threshold}\"]\n\n[[axis]]\nname = \"a\"\n\
             values = [\"x\", \"y\"]\n",
            op.as_str()
        );
        let file = spec::parse(&src).unwrap();
        prop_assert_eq!(file.master_seed, seed);
        let s = &file.specs[0];
        prop_assert_eq!(s.criteria[0].op, op);
        prop_assert!((s.criteria[0].threshold - threshold).abs() < 1e-9);
        prop_assert_eq!(s.samples_for("quick", &[]), Some(quick_n as usize));
        prop_assert_eq!(s.samples_for("full", &[]), Some(full_n as usize));
        prop_assert_eq!(s.variants().len(), 2);
    }

    /// The hand-rendered results JSON parses with the repo's own JSON
    /// parser and reproduces the run's values, criteria, and verdicts.
    #[test]
    fn results_json_round_trips(
        seed in 0u64..1_000_000,
        value in -1000.0f64..1000.0,
        threshold in -1000.0f64..1000.0,
        op_i in 0usize..4,
        samples_raw in 0usize..5000,
    ) {
        // The offline proptest stub has no `option` module; 0 stands
        // in for "runner reported no sample count".
        let samples = (samples_raw > 0).then_some(samples_raw);
        let op = op_of(op_i);
        let src = format!(
            "master_seed = {seed}\n[[experiment]]\nid = \"E1\"\ntitle = \"a \\\"quoted\\\" title\"\n\
             runner = \"r\"\ncriteria = [\"m {} {threshold}\"]\n",
            op.as_str()
        );
        let file = spec::parse(&src).unwrap();
        let s = file.specs[0].clone();
        let criterion = s.criteria[0].clone();
        let pass = criterion.eval(value);
        let results = RunResults {
            master_seed: seed,
            quick: true,
            experiments: vec![ExpResult {
                spec: s,
                variants: vec![VariantOutput {
                    axis: vec![("a".into(), "x".into())],
                    samples,
                    headers: vec!["H".into()],
                    rows: vec![vec!["cell".into()]],
                    notes: Vec::new(),
                    values: vec![("m".into(), value)],
                }],
                criteria: vec![CriterionOutcome {
                    criterion,
                    pass,
                    worst: Some(value),
                }],
            }],
        };
        let doc = Json::parse(results.render_json().trim_end()).unwrap();
        prop_assert_eq!(doc.get("master_seed").and_then(Json::as_f64), Some(seed as f64));
        prop_assert_eq!(doc.get("pass"), Some(&Json::Bool(pass)));
        let e = &doc.get("experiments").and_then(Json::as_arr).unwrap()[0];
        prop_assert_eq!(e.get("id").and_then(Json::as_str), Some("E1"));
        // The spec parser keeps strings verbatim (no escape
        // sequences), so the title round-trips backslashes and quotes
        // through json_escape / Json::parse unchanged.
        prop_assert_eq!(
            e.get("title").and_then(Json::as_str),
            Some(results.experiments[0].spec.title.as_str())
        );
        let v = &e.get("variants").and_then(Json::as_arr).unwrap()[0];
        prop_assert_eq!(
            v.get("axis").unwrap().get("a").and_then(Json::as_str),
            Some("x")
        );
        match samples {
            Some(n) => prop_assert_eq!(v.get("samples").and_then(Json::as_f64), Some(n as f64)),
            None => prop_assert_eq!(v.get("samples"), Some(&Json::Null)),
        }
        let m = v.get("values").unwrap().get("m").and_then(Json::as_f64).unwrap();
        prop_assert!((m - value).abs() < 1e-5, "value {value} re-read as {m}");
        let c = &e.get("criteria").and_then(Json::as_arr).unwrap()[0];
        prop_assert_eq!(c.get("op").and_then(Json::as_str), Some(op.as_str()));
        prop_assert_eq!(c.get("pass"), Some(&Json::Bool(pass)));
        let t = c.get("threshold").and_then(Json::as_f64).unwrap();
        prop_assert!((t - threshold).abs() < 1e-5);
    }
}

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

/// The golden-stability gate: the same invocation must produce
/// byte-identical output across runs — fixed seeds, no timestamps, no
/// iteration-order dependence. E2 exercises the biggest generator
/// (1.5k images at full scale) and renders percentages, so any
/// nondeterminism would show here.
#[test]
fn quick_e2_output_is_byte_stable_across_runs() {
    let a = repro(&["--experiments", "--only", "E2", "--quick"]);
    let b = repro(&["--experiments", "--only", "E2", "--quick"]);
    assert!(a.status.success(), "first run failed: {:?}", a.status);
    assert_eq!(a.status.code(), b.status.code());
    assert!(!a.stdout.is_empty());
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
        "repro --experiments --only E2 --quick must be deterministic"
    );
}

/// Criteria failures must exit nonzero: run the framework against a
/// spec whose threshold cannot hold. We can't inject a spec file via
/// the CLI (it ships compiled in), so this drives the library; the
/// CLI's exit-code mapping is one `if` on the same `pass()`.
#[test]
fn impossible_criterion_fails_the_run() {
    let src = "\
[[experiment]]
id = \"E7\"
title = \"soc\"
runner = \"soc-design\"
criteria = [\"e7_pick_loop >= 1000000\", \"absent_metric >= 1\"]
";
    let file = spec::parse(src).unwrap();
    let res = exp::run_specs(&file, true, None).unwrap();
    assert!(!res.pass());
    let text = res.render_text();
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("metric never reported"), "{text}");
}
