//! Argument-parsing behaviour of the `repro` binary: bad invocations
//! must exit with a usage message (status 2), never a panic.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

#[test]
fn unknown_flag_prints_usage_and_exits_2() {
    let out = repro(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr was: {err}");
    assert!(!err.contains("panicked"), "stderr was: {err}");
}

#[test]
fn flags_with_missing_operands_exit_2() {
    for flag in [
        "--exp",
        "--markdown",
        "--bench-engine",
        "--trace",
        "--perfetto",
        "--only",
        "--write",
        "--check",
    ] {
        let out = repro(&[flag]);
        assert_eq!(out.status.code(), Some(2), "flag {flag}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "flag {flag}: stderr was {err}");
        assert!(!err.contains("panicked"), "flag {flag}: stderr was {err}");
    }
}

#[test]
fn experiment_only_flags_require_experiments_mode() {
    for args in [
        ["--only", "E2"],
        ["--write", "OUT.md"],
        ["--check", "EXPERIMENTS.md"],
    ] {
        let out = repro(&args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--experiments"),
            "args {args:?}: stderr was {err}"
        );
    }
    let out = repro(&["--perfetto", "out.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace"));
}

#[test]
fn experiments_unknown_id_exits_2() {
    let out = repro(&["--experiments", "--only", "E99", "--quick"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "stderr was: {err}");
}

#[test]
fn help_names_the_trace_schema_and_experiment_flags() {
    let out = repro(&["--help"]);
    assert!(out.status.success(), "--help should exit 0");
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "--experiments",
        "--only",
        "--write",
        "--check",
        "--perfetto",
        "ui.perfetto.dev",
        "critical_path_total",
        "transitions[]",
        "critical_path[]",
    ] {
        assert!(text.contains(needle), "--help omits `{needle}`:\n{text}");
    }
}

#[test]
fn unknown_experiment_name_is_an_error_not_a_panic() {
    let out = repro(&["--exp", "e99"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "stderr was: {err}");
    assert!(!err.contains("panicked"), "stderr was: {err}");
}

#[test]
fn trace_flag_writes_report_and_prints_folded_stacks() {
    let dir = std::env::temp_dir().join("repro-cli-trace-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.json");
    let out = repro(&["--quick", "--trace", path.to_str().unwrap()]);
    assert!(out.status.success(), "status: {:?}", out.status);
    let json = std::fs::read_to_string(&path).expect("trace report written");
    assert!(json.contains("\"critical_path_total\""));
    assert!(json.contains("\"components\""));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("refpipe;"), "stdout was: {stdout}");
    assert!(stdout.contains("autotune;"), "stdout was: {stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_perfetto_writes_a_chrome_trace() {
    let dir = std::env::temp_dir().join("repro-cli-perfetto-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.json");
    let chrome = dir.join("chrome.json");
    let out = repro(&[
        "--quick",
        "--trace",
        path.to_str().unwrap(),
        "--perfetto",
        chrome.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "status: {:?}", out.status);
    let doc = std::fs::read_to_string(&chrome).expect("Chrome trace written");
    assert!(doc.contains("\"traceEvents\""));
    // One process per substrate: reference net, composite SoC,
    // component accounting.
    assert!(doc.contains("petri:refpipe"));
    assert!(doc.contains("petri:demo-soc"));
    assert!(doc.contains("\"name\":\"components\""));
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&chrome).ok();
}
