//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro                 # run everything at paper-scale sample sizes
//! repro --quick         # smaller samples (seconds instead of minutes)
//! repro --exp e4        # a single experiment
//! repro --markdown OUT  # also write a measured-values report
//! repro --bench-engine BENCH_engine.json
//!                       # only the engine throughput benchmark
//! repro --trace TRACE.json
//!                       # traced run of every substrate: writes the
//!                       # combined JSON report, prints folded stacks
//! repro --lint-all      # static perf-lint audit of every shipped
//!                       # .pnet net and .pi program (plus the demo
//!                       # composite's glued net); exit 1 on findings
//! repro --xcheck        # cross-tier consistency audit: NL claims vs.
//!                       # program-tier interval bounds vs. Petri-net
//!                       # structural bounds for every accelerator and
//!                       # the demo composite — no simulation; exit 1
//!                       # on any error or warning. --json prints one
//!                       # JSON object per target.
//! repro --conformance   # differential conformance check of every
//!                       # interface against its simulator (nominal +
//!                       # fault-injected); writes BENCH_conformance.json,
//!                       # exit 1 on any violation. --json prints the
//!                       # JSON report instead of the summary.
//! repro --compose       # composite-pipeline smoke: parse the demo
//!                       # TOML topology, lint the glued net, check
//!                       # engine agreement and tier cross-checks,
//!                       # run quick composite conformance; exit 1
//!                       # on any budget violation.
//! repro --serve         # performance-query server on stdin/stdout:
//!                       # one JSON request (or array) per line, one
//!                       # JSON response per line; empty line or EOF
//!                       # drains and prints a stats line.
//!                       # --workers N sets the pool size (default 4);
//!                       # --tcp ADDR serves connections on ADDR
//!                       # instead of stdio.
//! ```

use perf_bench::experiments::{self, ExperimentOutput};

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--exp eN] [--markdown PATH] [--bench-engine PATH] \
         [--trace PATH] [--lint-all] [--xcheck [--json]] [--conformance [--json]] \
         [--compose] [--serve [--workers N] [--tcp ADDR]]"
    );
    std::process::exit(2);
}

/// Reports an I/O failure and exits, instead of unwinding with a
/// panic backtrace the user has to dig a path out of.
fn io_fail(what: &str, path: &str, err: std::io::Error) -> ! {
    eprintln!("error: {what} `{path}`: {err}");
    std::process::exit(1);
}

/// Measures reference/incremental/compiled engine throughput and
/// writes the JSON artifact to `path`. Exits nonzero when the
/// compiled stepper is slower than the incremental engine on any
/// shape — a fast-path regression must not land silently.
fn bench_engine(path: &str, quick: bool) {
    let (stages, lanes, tokens, repeats) = if quick {
        (16, 6, 128, 3)
    } else {
        (48, 8, 512, 5)
    };
    let report = perf_bench::enginebench::run_engine_bench(stages, lanes, tokens, repeats);
    let json = report.to_json();
    if let Err(e) = std::fs::write(path, &json) {
        io_fail("cannot write engine bench report", path, e);
    }
    print!("{json}");
    eprintln!(
        "deep pipeline: {:.2}x incremental-over-reference, {:.2}x compiled-over-incremental; \
         fan: {:.2}x / {:.2}x; wrote {path}",
        report.deep.speedup(),
        report.deep.compiled_speedup(),
        report.fan.speedup(),
        report.fan.compiled_speedup()
    );
    if !report.pass() {
        eprintln!("FAIL: compiled stepper slower than the incremental engine");
        std::process::exit(1);
    }
}

fn main() {
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut markdown: Option<String> = None;
    let mut engine_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut lint_all = false;
    let mut xcheck = false;
    let mut conformance = false;
    let mut compose = false;
    let mut json = false;
    let mut serve = false;
    let mut workers = 4usize;
    let mut tcp: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--exp" => only = Some(args.next().unwrap_or_else(|| usage()).to_lowercase()),
            "--markdown" => markdown = Some(args.next().unwrap_or_else(|| usage())),
            "--bench-engine" => engine_out = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--lint-all" => lint_all = true,
            "--xcheck" => xcheck = true,
            "--conformance" => conformance = true,
            "--compose" => compose = true,
            "--json" => json = true,
            "--serve" => serve = true,
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    if serve {
        let cfg = perf_service::ServiceConfig {
            workers,
            ..Default::default()
        };
        let result = match tcp {
            Some(addr) => {
                eprintln!("perf-service: listening on {addr} ({workers} worker(s))");
                perf_service::line::serve_tcp(&addr, cfg, u64::MAX)
            }
            None => {
                eprintln!(
                    "perf-service: serving stdio with {workers} worker(s); \
                     one JSON request or array per line, empty line to finish"
                );
                let stdin = std::io::stdin();
                let mut stdout = std::io::stdout().lock();
                perf_service::line::serve_lines(stdin.lock(), &mut stdout, cfg).map(|_| ())
            }
        };
        if let Err(e) = result {
            eprintln!("perf-service: {e}");
            std::process::exit(1);
        }
        return;
    }

    if compose {
        let demo = perf_bench::composedemo::run(quick);
        print!("{}", demo.report);
        std::process::exit(if demo.pass { 0 } else { 1 });
    }

    if conformance {
        let rep = perf_bench::conformance::run(quick);
        let out = rep.to_json();
        let path = "BENCH_conformance.json";
        if let Err(e) = std::fs::write(path, &out) {
            io_fail("cannot write conformance report", path, e);
        }
        if json {
            print!("{out}");
        } else {
            print!("{}", rep.render());
        }
        eprintln!("wrote {path}");
        std::process::exit(if rep.pass() { 0 } else { 1 });
    }

    if xcheck {
        let (report, clean) = perf_bench::xcheckall::report(json);
        print!("{report}");
        std::process::exit(if clean { 0 } else { 1 });
    }

    if lint_all {
        let (report, clean) = perf_bench::lintall::report();
        print!("{report}");
        std::process::exit(if clean { 0 } else { 1 });
    }

    if let Some(path) = engine_out {
        bench_engine(&path, quick);
        return;
    }

    if let Some(path) = trace_out {
        let demo = perf_bench::tracedemo::run_trace_demo(quick);
        if let Err(e) = std::fs::write(&path, &demo.json) {
            io_fail("cannot write trace report", &path, e);
        }
        print!("{}", demo.folded);
        eprintln!("wrote {path}");
        return;
    }

    let run_one = |id: &str| -> Result<ExperimentOutput, perf_core::CoreError> {
        match id {
            "e1" => experiments::e1_nl_interfaces(),
            "e2" => experiments::e2_jpeg_program(if quick { 120 } else { 1500 }),
            "e3" => experiments::e3_protoacc_program(if quick { 12 } else { 40 }),
            "e4" => {
                experiments::e4_table1(if quick { 25 } else { 50 }, if quick { 80 } else { 1500 })
            }
            "e5" => experiments::e5_profiling_speedup(if quick { 40 } else { 1500 }),
            "e6" => experiments::e6_crossover(),
            "e7" => experiments::e7_soc_design(),
            "e8" => experiments::e8_offload(if quick { 40 } else { 200 }),
            "e9" => experiments::e9_petri_ablation(if quick { 60 } else { 300 }),
            "e10" => experiments::e10_autotune_quality(),
            "e11" => experiments::e11_noc_composition(),
            other => {
                eprintln!("unknown experiment `{other}`");
                std::process::exit(2);
            }
        }
    };

    let outputs: Vec<ExperimentOutput> = match only {
        Some(id) => vec![run_one(&id).unwrap_or_else(|e| {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        })],
        None => experiments::run_all(quick).unwrap_or_else(|e| {
            eprintln!("experiments failed: {e}");
            std::process::exit(1);
        }),
    };

    for out in &outputs {
        println!("{}", out.render());
    }

    if let Some(path) = markdown {
        let mut doc = String::from("# Measured values\n\n");
        for out in &outputs {
            doc.push_str(&format!("## {} — {}\n\n", out.id, out.title));
            doc.push_str(&format!("{}\n", out.table.to_markdown()));
            for n in &out.notes {
                doc.push_str(&format!("> {n}\n\n"));
            }
            for (k, v) in &out.values {
                doc.push_str(&format!("- `{k}` = {v:.6}\n"));
            }
            doc.push('\n');
        }
        if let Err(e) = std::fs::write(&path, doc) {
            io_fail("cannot write markdown report", &path, e);
        }
        eprintln!("wrote {path}");
    }
}
