//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro                 # run everything at paper-scale sample sizes
//! repro --quick         # smaller samples (seconds instead of minutes)
//! repro --exp e4        # a single experiment (legacy direct path)
//! repro --markdown OUT  # also write a measured-values report
//! repro --experiments   # the declarative spec-driven runner: every
//!                       # experiment from crates/bench/specs/
//!                       # experiments.toml, criteria checked, exit 1
//!                       # on any failure.
//!                       #   --only E4     one experiment
//!                       #   --json        machine-readable results
//!                       #   --write PATH  regenerate EXPERIMENTS.md
//!                       #   --check PATH  CI drift gate vs committed
//! repro --bench-engine BENCH_engine.json
//!                       # only the engine throughput benchmark
//! repro --trace TRACE.json [--perfetto OUT.json]
//!                       # traced run of every substrate: writes the
//!                       # combined JSON report, prints folded stacks;
//!                       # --perfetto also writes a Chrome JSON trace
//!                       # loadable at ui.perfetto.dev
//! repro --lint-all      # static perf-lint audit of every shipped
//!                       # .pnet net and .pi program (plus the demo
//!                       # composite's glued net); exit 1 on findings
//! repro --xcheck        # cross-tier consistency audit: NL claims vs.
//!                       # program-tier interval bounds vs. Petri-net
//!                       # structural bounds for every accelerator and
//!                       # the demo composite — no simulation; exit 1
//!                       # on any error or warning. --json prints one
//!                       # JSON object per target.
//! repro --conformance   # differential conformance check of every
//!                       # interface against its simulator (nominal +
//!                       # fault-injected); writes BENCH_conformance.json,
//!                       # exit 1 on any violation. --json prints the
//!                       # JSON report instead of the summary.
//! repro --compose       # composite-pipeline smoke: parse the demo
//!                       # TOML topology, lint the glued net, check
//!                       # engine agreement and tier cross-checks,
//!                       # run quick composite conformance; exit 1
//!                       # on any budget violation.
//! repro --serve         # performance-query server on stdin/stdout:
//!                       # one JSON request (or array) per line, one
//!                       # JSON response per line; empty line or EOF
//!                       # drains and prints a stats line.
//!                       # --workers N sets the pool size (default 4);
//!                       # --tcp ADDR serves connections on ADDR
//!                       # instead of stdio.
//! ```

use perf_bench::exp;
use perf_bench::experiments::{self, ExperimentOutput};

const HELP: &str = "\
repro — regenerate the paper's tables and figures

usage: repro [--quick] [--exp eN] [--markdown PATH]
       repro --experiments [--quick] [--only EID] [--json]
                           [--write PATH] [--check PATH]
       repro --bench-engine PATH [--quick]
       repro --trace PATH [--perfetto OUT] [--quick]
       repro --lint-all | --xcheck [--json] | --conformance [--json] | --compose
       repro --serve [--workers N] [--tcp ADDR]

modes:
  (default)       run experiment runners directly and print their tables
  --experiments   the declarative runner: executes every spec in
                  crates/bench/specs/experiments.toml (one table row per
                  variant-axis point, fixed seeds), evaluates each spec's
                  pass criteria, and exits 1 if any criterion fails.
                  --only EID restricts to one experiment; --json prints a
                  JSON document; --write PATH regenerates EXPERIMENTS.md;
                  --check PATH is the CI drift gate (committed file vs
                  regenerated: prose byte-exact, measured digits masked,
                  stable sections byte-exact).
  --trace PATH    traced run of every substrate. Writes a combined JSON
                  report to PATH and prints folded stacks. The report is
                  {\"petri\": <trace report>, \"components\": [...]}, where
                  the petri object has fields net, makespan, events,
                  enablement_checks, firings_recorded, firings_evicted,
                  critical_path_total, transitions[] and critical_path[]
                  (same schema as `pnet trace`). --perfetto OUT also
                  writes a Chrome JSON trace (trace-event format, 1 cycle
                  = 1 us) with one process per substrate — open it at
                  ui.perfetto.dev; per-stage slice durations telescope
                  exactly to each reported makespan.

flags:
  --quick         smaller sample counts (seconds instead of minutes)
  --json          machine-readable output where the mode supports it
  -h, --help      this text
";

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--exp eN] [--markdown PATH] [--bench-engine PATH] \
         [--trace PATH [--perfetto OUT]] [--experiments [--only EID] [--json] \
         [--write PATH] [--check PATH]] [--lint-all] [--xcheck [--json]] \
         [--conformance [--json]] [--compose] [--serve [--workers N] [--tcp ADDR]]"
    );
    std::process::exit(2);
}

/// Reports an I/O failure and exits, instead of unwinding with a
/// panic backtrace the user has to dig a path out of.
fn io_fail(what: &str, path: &str, err: std::io::Error) -> ! {
    eprintln!("error: {what} `{path}`: {err}");
    std::process::exit(1);
}

/// Measures reference/incremental/compiled engine throughput and
/// writes the JSON artifact to `path`. Exits nonzero when the
/// compiled stepper is slower than the incremental engine on any
/// shape — a fast-path regression must not land silently.
fn bench_engine(path: &str, quick: bool) {
    let (stages, lanes, tokens, repeats) = if quick {
        (16, 6, 128, 3)
    } else {
        (48, 8, 512, 5)
    };
    let report = perf_bench::enginebench::run_engine_bench(stages, lanes, tokens, repeats);
    let json = report.to_json();
    if let Err(e) = std::fs::write(path, &json) {
        io_fail("cannot write engine bench report", path, e);
    }
    print!("{json}");
    eprintln!(
        "deep pipeline: {:.2}x incremental-over-reference, {:.2}x compiled-over-incremental; \
         fan: {:.2}x / {:.2}x; wrote {path}",
        report.deep.speedup(),
        report.deep.compiled_speedup(),
        report.fan.speedup(),
        report.fan.compiled_speedup()
    );
    if !report.pass() {
        eprintln!("FAIL: compiled stepper slower than the incremental engine");
        std::process::exit(1);
    }
}

fn main() {
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut markdown: Option<String> = None;
    let mut engine_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut perfetto_out: Option<String> = None;
    let mut experiments_mode = false;
    let mut only_spec: Option<String> = None;
    let mut write_doc: Option<String> = None;
    let mut check_doc_path: Option<String> = None;
    let mut lint_all = false;
    let mut xcheck = false;
    let mut conformance = false;
    let mut compose = false;
    let mut json = false;
    let mut serve = false;
    let mut workers = 4usize;
    let mut tcp: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--exp" => only = Some(args.next().unwrap_or_else(|| usage()).to_lowercase()),
            "--markdown" => markdown = Some(args.next().unwrap_or_else(|| usage())),
            "--bench-engine" => engine_out = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--perfetto" => perfetto_out = Some(args.next().unwrap_or_else(|| usage())),
            "--experiments" => experiments_mode = true,
            "--only" => only_spec = Some(args.next().unwrap_or_else(|| usage())),
            "--write" => write_doc = Some(args.next().unwrap_or_else(|| usage())),
            "--check" => check_doc_path = Some(args.next().unwrap_or_else(|| usage())),
            "--lint-all" => lint_all = true,
            "--xcheck" => xcheck = true,
            "--conformance" => conformance = true,
            "--compose" => compose = true,
            "--json" => json = true,
            "--serve" => serve = true,
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|w| w.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => {
                print!("{HELP}");
                return;
            }
            _ => usage(),
        }
    }

    if experiments_mode {
        let file = exp::load().unwrap_or_else(|e| {
            eprintln!("broken shipped spec file: {e}");
            std::process::exit(1);
        });
        if let Some(id) = &only_spec {
            if file.find(id).is_none() {
                eprintln!("unknown experiment `{id}`");
                std::process::exit(2);
            }
            if write_doc.is_some() || check_doc_path.is_some() {
                eprintln!("--write/--check need the full experiment set; drop --only");
                std::process::exit(2);
            }
        }
        let res = exp::run_specs(&file, quick, only_spec.as_deref()).unwrap_or_else(|e| {
            eprintln!("experiments failed: {e}");
            std::process::exit(1);
        });
        if json {
            print!("{}", res.render_json());
        } else {
            print!("{}", res.render_text());
        }
        if let Some(path) = &write_doc {
            if let Err(e) = std::fs::write(path, res.render_doc()) {
                io_fail("cannot write experiments doc", path, e);
            }
            eprintln!("wrote {path}");
        }
        if let Some(path) = &check_doc_path {
            let committed = std::fs::read_to_string(path)
                .unwrap_or_else(|e| io_fail("cannot read committed experiments doc", path, e));
            if let Err(d) = exp::check_doc(&committed, &res.render_doc(), &file) {
                eprintln!("experiments doc drift: {d}");
                eprintln!("regenerate with: repro --experiments --write {path}");
                std::process::exit(1);
            }
            eprintln!("{path} matches the regenerated experiments");
        }
        std::process::exit(if res.pass() { 0 } else { 1 });
    }

    if only_spec.is_some() || write_doc.is_some() || check_doc_path.is_some() {
        eprintln!("--only/--write/--check require --experiments");
        usage();
    }
    if perfetto_out.is_some() && trace_out.is_none() {
        eprintln!("--perfetto requires --trace");
        usage();
    }

    if serve {
        let cfg = perf_service::ServiceConfig {
            workers,
            ..Default::default()
        };
        let result = match tcp {
            Some(addr) => {
                eprintln!("perf-service: listening on {addr} ({workers} worker(s))");
                perf_service::line::serve_tcp(&addr, cfg, u64::MAX)
            }
            None => {
                eprintln!(
                    "perf-service: serving stdio with {workers} worker(s); \
                     one JSON request or array per line, empty line to finish"
                );
                let stdin = std::io::stdin();
                let mut stdout = std::io::stdout().lock();
                perf_service::line::serve_lines(stdin.lock(), &mut stdout, cfg).map(|_| ())
            }
        };
        if let Err(e) = result {
            eprintln!("perf-service: {e}");
            std::process::exit(1);
        }
        return;
    }

    if compose {
        let demo = perf_bench::composedemo::run(quick);
        print!("{}", demo.report);
        std::process::exit(if demo.pass { 0 } else { 1 });
    }

    if conformance {
        let rep = perf_bench::conformance::run(quick);
        let out = rep.to_json();
        let path = "BENCH_conformance.json";
        if let Err(e) = std::fs::write(path, &out) {
            io_fail("cannot write conformance report", path, e);
        }
        if json {
            print!("{out}");
        } else {
            print!("{}", rep.render());
        }
        eprintln!("wrote {path}");
        std::process::exit(if rep.pass() { 0 } else { 1 });
    }

    if xcheck {
        let (report, clean) = perf_bench::xcheckall::report(json);
        print!("{report}");
        std::process::exit(if clean { 0 } else { 1 });
    }

    if lint_all {
        let (report, clean) = perf_bench::lintall::report();
        print!("{report}");
        std::process::exit(if clean { 0 } else { 1 });
    }

    if let Some(path) = engine_out {
        bench_engine(&path, quick);
        return;
    }

    if let Some(path) = trace_out {
        let demo = perf_bench::tracedemo::run_trace_demo(quick);
        if let Err(e) = std::fs::write(&path, &demo.json) {
            io_fail("cannot write trace report", &path, e);
        }
        print!("{}", demo.folded);
        eprintln!("wrote {path}");
        if let Some(pf) = perfetto_out {
            if let Err(e) = std::fs::write(&pf, &demo.chrome) {
                io_fail("cannot write Chrome trace", &pf, e);
            }
            eprintln!("wrote {pf} (open at ui.perfetto.dev)");
        }
        return;
    }

    let run_one = |id: &str| -> Result<ExperimentOutput, perf_core::CoreError> {
        match id {
            "e1" => experiments::e1_nl_interfaces(),
            "e2" => experiments::e2_jpeg_program(if quick { 120 } else { 1500 }),
            "e3" => experiments::e3_protoacc_program(if quick { 12 } else { 40 }),
            "e4" => {
                experiments::e4_table1(if quick { 25 } else { 50 }, if quick { 80 } else { 1500 })
            }
            "e5" => experiments::e5_profiling_speedup(if quick { 40 } else { 1500 }),
            "e6" => experiments::e6_crossover(),
            "e7" => experiments::e7_soc_design(),
            "e8" => experiments::e8_offload(if quick { 40 } else { 200 }),
            "e9" => experiments::e9_petri_ablation(if quick { 60 } else { 300 }),
            "e10" => experiments::e10_autotune_quality(),
            "e11" => experiments::e11_noc_composition(),
            other => {
                eprintln!("unknown experiment `{other}`");
                std::process::exit(2);
            }
        }
    };

    let outputs: Vec<ExperimentOutput> = match only {
        Some(id) => vec![run_one(&id).unwrap_or_else(|e| {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        })],
        None => experiments::run_all(quick).unwrap_or_else(|e| {
            eprintln!("experiments failed: {e}");
            std::process::exit(1);
        }),
    };

    for out in &outputs {
        println!("{}", out.render());
    }

    if let Some(path) = markdown {
        let mut doc = String::from("# Measured values\n\n");
        for out in &outputs {
            doc.push_str(&format!("## {} — {}\n\n", out.id, out.title));
            doc.push_str(&format!("{}\n", out.table.to_markdown()));
            for n in &out.notes {
                doc.push_str(&format!("> {n}\n\n"));
            }
            for (k, v) in &out.values {
                doc.push_str(&format!("- `{k}` = {v:.6}\n"));
            }
            doc.push('\n');
        }
        if let Err(e) = std::fs::write(&path, doc) {
            io_fail("cannot write markdown report", &path, e);
        }
        eprintln!("wrote {path}");
    }
}
