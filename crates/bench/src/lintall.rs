//! The repo-wide `perf-lint` audit behind `repro --lint-all`.
//!
//! Every accelerator crate exposes `interface::lint()`, which runs the
//! static analyses over its shipped artifacts — the `.pi` interface
//! program and the `.pnet` performance IR (for the miner, the net
//! generated from the default configuration). This module aggregates
//! the four audits into one report so CI can gate merges on it: a
//! performance interface that does not survive its own lint is not an
//! artifact a tool can reason about.

use perf_compose::{Composite, Topology};
use perf_core::query::EngineChoice;
use perf_core::{Diagnostic, Diagnostics, Severity};

/// One accelerator's audit result.
pub struct AccelLint {
    /// Accelerator name as used in the paper's tables.
    pub name: &'static str,
    /// All findings over the accelerator's shipped artifacts.
    pub diagnostics: Diagnostics,
}

/// Structural lint of the demo pipeline's *glued* net: composition can
/// introduce defects (starved boundaries, impossible bursts) that no
/// per-accelerator audit sees, so the composite net gets the same
/// treatment as the shipped component nets.
fn demo_composite_lint() -> Diagnostics {
    let build = Topology::parse_toml(crate::composedemo::DEMO_TOPOLOGY)
        .and_then(|topo| Composite::new(topo, EngineChoice::Compiled));
    match build.and_then(|c| c.lint_net()) {
        Ok(ds) => ds,
        Err(e) => {
            let mut ds = Diagnostics::new();
            ds.push(
                Diagnostic::error("PC005", format!("demo composite failed to build: {e}"))
                    .with_origin("composedemo"),
            );
            ds
        }
    }
}

/// Lints every accelerator's shipped interface artifacts, plus the
/// glued net of the demo composite pipeline.
pub fn lint_all() -> Vec<AccelLint> {
    vec![
        AccelLint {
            name: "jpeg",
            diagnostics: accel_jpeg::interface::lint(),
        },
        AccelLint {
            name: "bitcoin",
            diagnostics: accel_bitcoin::interface::lint(),
        },
        AccelLint {
            name: "protoacc",
            diagnostics: accel_protoacc::interface::lint(),
        },
        AccelLint {
            name: "vta",
            diagnostics: accel_vta::interface::lint(),
        },
        AccelLint {
            name: "compose-demo",
            diagnostics: demo_composite_lint(),
        },
    ]
}

/// Renders the combined audit. Returns `(report, clean)` where `clean`
/// is false if any accelerator has error- or warning-severity findings
/// (infos — invariant and trap reports — are expected and don't gate).
pub fn report() -> (String, bool) {
    let mut out = String::new();
    let mut clean = true;
    for a in lint_all() {
        let errors = a.diagnostics.count(Severity::Error);
        let warnings = a.diagnostics.count(Severity::Warning);
        if errors > 0 || warnings > 0 {
            clean = false;
        }
        out.push_str(&format!("== {} ==\n{}\n", a.name, a.diagnostics.render()));
    }
    out.push_str(if clean {
        "lint-all: every shipped net and interface program is clean\n"
    } else {
        "lint-all: FINDINGS ABOVE — shipped artifacts are not lint-clean\n"
    });
    (out, clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_accelerators_are_audited_and_clean() {
        let audits = lint_all();
        assert_eq!(audits.len(), 5);
        for a in &audits {
            assert_eq!(
                a.diagnostics.count(Severity::Error),
                0,
                "{}: {}",
                a.name,
                a.diagnostics.render()
            );
            assert_eq!(
                a.diagnostics.count(Severity::Warning),
                0,
                "{}: {}",
                a.name,
                a.diagnostics.render()
            );
        }
        // The structural facts themselves are reported: every
        // accelerator's net has at least one P-invariant. (The glued
        // demo net is audited for defects only; its invariants depend
        // on the topology.)
        for a in audits.iter().filter(|a| a.name != "compose-demo") {
            assert!(
                a.diagnostics.has_code("PN111"),
                "{} reports no invariant",
                a.name
            );
        }
        let (text, clean) = report();
        assert!(clean, "{text}");
        assert!(text.contains("lint-all: every shipped net"));
    }
}
