//! Engine-throughput measurement shared by the Criterion bench
//! (`benches/engine_throughput.rs`) and `repro --bench-engine`.
//!
//! Two stress shapes:
//!
//! * **deep pipeline** — a long chain of bounded stages. Backpressure
//!   keeps most transitions blocked at any instant, which is the worst
//!   case for the reference full-net fixpoint scan (it re-examines
//!   every stage after every firing) and the best case for the
//!   incremental worklist (only stages whose inputs changed wake up).
//! * **fan** — one dispatcher fanning out to parallel lanes that a
//!   join merges back. Exercises multi-arc firings, joins, and
//!   wake-ups that touch several places per event.

use perf_iface_lang::Value;
use perf_petri::engine::{Engine, Options, SimResult};
use perf_petri::net::{Net, NetBuilder, PlaceId};
use perf_petri::token::Token;
use std::time::Instant;

/// A bounded pipeline of `stages` sequential transitions.
pub fn deep_pipeline(stages: usize) -> (Net, PlaceId) {
    assert!(stages >= 1);
    let mut b = NetBuilder::new("deep-pipeline");
    let src = b.place("src", None);
    let mut prev = src;
    for i in 0..stages {
        let next = if i + 1 == stages {
            b.sink("done")
        } else {
            b.place(format!("q{i}"), Some(8))
        };
        b.transition(
            format!("s{i}"),
            &[prev],
            &[next],
            move |_| 1 + (i as u64 % 3),
            |ts| vec![ts[0].data.clone()],
        );
        prev = next;
    }
    (b.build().expect("valid pipeline net"), src)
}

/// A dispatcher fanning out to `lanes` bounded worker lanes whose
/// outputs a join merges into the sink.
pub fn fan_net(lanes: usize) -> (Net, PlaceId) {
    assert!(lanes >= 1);
    let mut b = NetBuilder::new("fan");
    let src = b.place("src", None);
    let lane_in: Vec<PlaceId> = (0..lanes)
        .map(|i| b.place(format!("lane{i}"), Some(4)))
        .collect();
    let lane_out: Vec<PlaceId> = (0..lanes)
        .map(|i| b.place(format!("merge{i}"), Some(4)))
        .collect();
    let done = b.sink("done");
    b.transition(
        "dispatch",
        &[src],
        &lane_in,
        |_| 1,
        move |ts| vec![ts[0].data.clone(); lanes],
    );
    for i in 0..lanes {
        b.transition(
            format!("work{i}"),
            &[lane_in[i]],
            &[lane_out[i]],
            move |_| 2 + (i as u64 % 3),
            |ts| vec![ts[0].data.clone()],
        );
    }
    b.transition(
        "join",
        &lane_out,
        &[done],
        |_| 1,
        |ts| vec![ts[0].data.clone()],
    );
    (b.build().expect("valid fan net"), src)
}

/// Runs `tokens` injections through `net`, on the incremental engine
/// (`run`) or the reference fixpoint scan (`run_reference`).
pub fn run_once(net: &Net, src: PlaceId, tokens: usize, incremental: bool) -> SimResult {
    let mut e = Engine::new(net, Options::default());
    for _ in 0..tokens {
        e.inject(src, Token::at(Value::num(0.0), 0));
    }
    let res = if incremental {
        e.run()
    } else {
        e.run_reference()
    };
    res.expect("bench net runs to quiescence")
}

/// One engine variant's measurement on one net shape.
#[derive(Clone, Copy, Debug)]
pub struct EngineRate {
    /// Simulation events processed per run.
    pub events: u64,
    /// Best-of-`repeats` events per wall-clock second.
    pub events_per_sec: f64,
}

/// Incremental vs reference on one net shape.
#[derive(Clone, Copy, Debug)]
pub struct ShapeReport {
    pub incremental: EngineRate,
    pub reference: EngineRate,
}

impl ShapeReport {
    /// Incremental speedup over the reference scan.
    pub fn speedup(&self) -> f64 {
        self.incremental.events_per_sec / self.reference.events_per_sec
    }
}

fn measure_variant(
    net: &Net,
    src: PlaceId,
    tokens: usize,
    repeats: usize,
    incremental: bool,
) -> EngineRate {
    // Warm-up run, then best-of-N to shed scheduler noise.
    let warm = run_once(net, src, tokens, incremental);
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let res = run_once(net, src, tokens, incremental);
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(res.events, warm.events, "run-to-run event count drifted");
        best = best.min(dt);
    }
    EngineRate {
        events: warm.events,
        events_per_sec: warm.events as f64 / best,
    }
}

/// Measures both engine variants on one shape.
pub fn measure_shape(net: &Net, src: PlaceId, tokens: usize, repeats: usize) -> ShapeReport {
    ShapeReport {
        incremental: measure_variant(net, src, tokens, repeats, true),
        reference: measure_variant(net, src, tokens, repeats, false),
    }
}

/// The full engine benchmark: deep pipeline + fan, serialized as the
/// `BENCH_engine.json` artifact.
pub struct EngineBenchReport {
    pub stages: usize,
    pub lanes: usize,
    pub tokens: usize,
    pub deep: ShapeReport,
    pub fan: ShapeReport,
}

/// Runs the engine benchmark at the given scale.
pub fn run_engine_bench(
    stages: usize,
    lanes: usize,
    tokens: usize,
    repeats: usize,
) -> EngineBenchReport {
    let (deep_net, deep_src) = deep_pipeline(stages);
    let (fan, fan_src) = fan_net(lanes);
    EngineBenchReport {
        stages,
        lanes,
        tokens,
        deep: measure_shape(&deep_net, deep_src, tokens, repeats),
        fan: measure_shape(&fan, fan_src, tokens, repeats),
    }
}

impl EngineBenchReport {
    /// Hand-rolled JSON (the repo carries no serde dependency).
    pub fn to_json(&self) -> String {
        let shape = |name: &str, s: &ShapeReport| {
            format!(
                concat!(
                    "  \"{}\": {{\n",
                    "    \"events\": {},\n",
                    "    \"incremental_events_per_sec\": {:.1},\n",
                    "    \"reference_events_per_sec\": {:.1},\n",
                    "    \"speedup\": {:.3}\n",
                    "  }}"
                ),
                name,
                s.incremental.events,
                s.incremental.events_per_sec,
                s.reference.events_per_sec,
                s.speedup()
            )
        };
        format!(
            "{{\n  \"stages\": {},\n  \"lanes\": {},\n  \"tokens\": {},\n{},\n{}\n}}\n",
            self.stages,
            self.lanes,
            self.tokens,
            shape("deep_pipeline", &self.deep),
            shape("fan", &self.fan)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_run_identically_on_both_engines() {
        for (net, src) in [deep_pipeline(12), fan_net(5)] {
            let a = run_once(&net, src, 64, true);
            let b = run_once(&net, src, 64, false);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.events, b.events);
            assert_eq!(a.firings, b.firings);
            assert_eq!(a.completions.len(), b.completions.len());
            assert!(a.stranded.is_empty(), "stranded: {:?}", a.stranded);
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let r = run_engine_bench(6, 3, 32, 1);
        let j = r.to_json();
        assert!(j.contains("\"deep_pipeline\""));
        assert!(j.contains("\"fan\""));
        assert!(j.contains("\"speedup\""));
        assert!(r.deep.speedup() > 0.0);
    }
}
