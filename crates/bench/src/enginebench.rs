//! Engine-throughput measurement shared by the Criterion bench
//! (`benches/engine_throughput.rs`) and `repro --bench-engine`.
//!
//! Two stress shapes:
//!
//! * **deep pipeline** — a long chain of bounded stages. Backpressure
//!   keeps most transitions blocked at any instant, which is the worst
//!   case for the reference full-net fixpoint scan (it re-examines
//!   every stage after every firing) and the best case for the
//!   incremental worklist (only stages whose inputs changed wake up).
//! * **fan** — one dispatcher fanning out to parallel lanes that a
//!   join merges back. Exercises multi-arc firings, joins, and
//!   wake-ups that touch several places per event.
//!
//! Both shapes carry expression behaviors (constant delays,
//! passthrough transforms) rather than native closures, so the
//! compiled stepper's constant-folded fast path applies — the same
//! shape the shipped accelerator nets use. Three engine variants are
//! measured per shape: the reference full-net fixpoint scan, the
//! incremental worklist engine, and the compiled static-topology
//! stepper (`perf_petri::CompiledNet`).

use perf_iface_lang::Value;
use perf_petri::behavior::{Behavior, ExprBehavior};
use perf_petri::engine::{Engine, Options, SimResult};
use perf_petri::net::{Net, NetBuilder, PlaceId, Transition};
use perf_petri::stepper::CompiledNet;
use perf_petri::token::Token;
use std::time::Instant;

/// An expression behavior with a constant delay and passthrough
/// transforms on all `outputs` arcs — the shape the compiled stepper
/// folds completely.
fn const_behavior(delay: u64, outputs: usize) -> Behavior {
    Behavior::Expr(
        ExprBehavior::compile("", &delay.to_string(), None, &vec![None; outputs])
            .expect("constant behavior compiles"),
    )
}

/// A bounded pipeline of `stages` sequential transitions.
pub fn deep_pipeline(stages: usize) -> (Net, PlaceId) {
    assert!(stages >= 1);
    let mut b = NetBuilder::new("deep-pipeline");
    let src = b.place("src", None);
    let mut prev = src;
    for i in 0..stages {
        let next = if i + 1 == stages {
            b.sink("done")
        } else {
            b.place(format!("q{i}"), Some(8))
        };
        b.add_transition(Transition {
            name: format!("s{i}"),
            inputs: vec![(prev, 1)],
            outputs: vec![(next, 1)],
            behavior: const_behavior(1 + (i as u64 % 3), 1),
            servers: 1,
            priority: 0,
        });
        prev = next;
    }
    (b.build().expect("valid pipeline net"), src)
}

/// A dispatcher fanning out to `lanes` bounded worker lanes whose
/// outputs a join merges into the sink.
pub fn fan_net(lanes: usize) -> (Net, PlaceId) {
    assert!(lanes >= 1);
    let mut b = NetBuilder::new("fan");
    let src = b.place("src", None);
    let lane_in: Vec<PlaceId> = (0..lanes)
        .map(|i| b.place(format!("lane{i}"), Some(4)))
        .collect();
    let lane_out: Vec<PlaceId> = (0..lanes)
        .map(|i| b.place(format!("merge{i}"), Some(4)))
        .collect();
    let done = b.sink("done");
    b.add_transition(Transition {
        name: "dispatch".into(),
        inputs: vec![(src, 1)],
        outputs: lane_in.iter().map(|&p| (p, 1)).collect(),
        behavior: const_behavior(1, lanes),
        servers: 1,
        priority: 0,
    });
    for i in 0..lanes {
        b.add_transition(Transition {
            name: format!("work{i}"),
            inputs: vec![(lane_in[i], 1)],
            outputs: vec![(lane_out[i], 1)],
            behavior: const_behavior(2 + (i as u64 % 3), 1),
            servers: 1,
            priority: 0,
        });
    }
    b.add_transition(Transition {
        name: "join".into(),
        inputs: lane_out.iter().map(|&p| (p, 1)).collect(),
        outputs: vec![(done, 1)],
        behavior: const_behavior(1, 1),
        servers: 1,
        priority: 0,
    });
    (b.build().expect("valid fan net"), src)
}

/// Which engine variant a measurement runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineMode {
    /// Full-net fixpoint scan after every event.
    Reference,
    /// Incremental worklist engine (the interpreted default).
    Incremental,
    /// Static-topology compiled stepper.
    Compiled,
}

/// Runs `tokens` injections through `net`, on the incremental engine
/// (`run`) or the reference fixpoint scan (`run_reference`).
pub fn run_once(net: &Net, src: PlaceId, tokens: usize, incremental: bool) -> SimResult {
    let mut e = Engine::new(net, Options::default());
    for _ in 0..tokens {
        e.inject(src, Token::at(Value::num(0.0), 0));
    }
    let res = if incremental {
        e.run()
    } else {
        e.run_reference()
    };
    res.expect("bench net runs to quiescence")
}

/// Runs `tokens` injections through a pre-compiled stepper plan.
pub fn run_once_compiled(plan: &CompiledNet, net: &Net, src: PlaceId, tokens: usize) -> SimResult {
    let mut st = plan.stepper(net, Options::default());
    for _ in 0..tokens {
        st.inject(src, Token::at(Value::num(0.0), 0));
    }
    st.run().expect("bench net runs to quiescence")
}

/// One engine variant's measurement on one net shape.
#[derive(Clone, Copy, Debug)]
pub struct EngineRate {
    /// Simulation events processed per run.
    pub events: u64,
    /// Best-of-`repeats` events per wall-clock second.
    pub events_per_sec: f64,
}

/// Reference vs incremental vs compiled on one net shape.
#[derive(Clone, Copy, Debug)]
pub struct ShapeReport {
    pub incremental: EngineRate,
    pub reference: EngineRate,
    pub compiled: EngineRate,
}

impl ShapeReport {
    /// Incremental speedup over the reference scan.
    pub fn speedup(&self) -> f64 {
        self.incremental.events_per_sec / self.reference.events_per_sec
    }

    /// Compiled-stepper speedup over the incremental engine.
    pub fn compiled_speedup(&self) -> f64 {
        self.compiled.events_per_sec / self.incremental.events_per_sec
    }
}

fn measure(mut run: impl FnMut() -> SimResult, repeats: usize) -> EngineRate {
    // Warm-up run, then best-of-N to shed scheduler noise.
    let warm = run();
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t0 = Instant::now();
        let res = run();
        let dt = t0.elapsed().as_secs_f64();
        assert_eq!(res.events, warm.events, "run-to-run event count drifted");
        best = best.min(dt);
    }
    EngineRate {
        events: warm.events,
        events_per_sec: warm.events as f64 / best,
    }
}

/// Measures all three engine variants on one shape. The compiled
/// variant's plan is built once outside the timed region, matching
/// how long-lived services amortize compilation.
pub fn measure_shape(net: &Net, src: PlaceId, tokens: usize, repeats: usize) -> ShapeReport {
    let plan = CompiledNet::compile(net);
    let report = ShapeReport {
        incremental: measure(|| run_once(net, src, tokens, true), repeats),
        reference: measure(|| run_once(net, src, tokens, false), repeats),
        compiled: measure(|| run_once_compiled(&plan, net, src, tokens), repeats),
    };
    assert_eq!(
        report.compiled.events, report.incremental.events,
        "compiled stepper diverged from the incremental engine"
    );
    report
}

/// The full engine benchmark: deep pipeline + fan, serialized as the
/// `BENCH_engine.json` artifact.
pub struct EngineBenchReport {
    pub stages: usize,
    pub lanes: usize,
    pub tokens: usize,
    pub deep: ShapeReport,
    pub fan: ShapeReport,
}

/// Runs the engine benchmark at the given scale.
pub fn run_engine_bench(
    stages: usize,
    lanes: usize,
    tokens: usize,
    repeats: usize,
) -> EngineBenchReport {
    let (deep_net, deep_src) = deep_pipeline(stages);
    let (fan, fan_src) = fan_net(lanes);
    EngineBenchReport {
        stages,
        lanes,
        tokens,
        deep: measure_shape(&deep_net, deep_src, tokens, repeats),
        fan: measure_shape(&fan, fan_src, tokens, repeats),
    }
}

impl EngineBenchReport {
    /// Whether the compiled stepper held its ground: at least as fast
    /// as the incremental engine on every shape. `repro
    /// --bench-engine` exits nonzero when this fails, so a regression
    /// in the compiled fast path cannot land silently.
    pub fn pass(&self) -> bool {
        self.deep.compiled_speedup() >= 1.0 && self.fan.compiled_speedup() >= 1.0
    }

    /// Hand-rolled JSON (the repo carries no serde dependency).
    pub fn to_json(&self) -> String {
        let shape = |name: &str, s: &ShapeReport| {
            format!(
                concat!(
                    "  \"{}\": {{\n",
                    "    \"events\": {},\n",
                    "    \"reference_events_per_sec\": {:.1},\n",
                    "    \"incremental_events_per_sec\": {:.1},\n",
                    "    \"compiled_events_per_sec\": {:.1},\n",
                    "    \"speedup\": {:.3},\n",
                    "    \"compiled_speedup\": {:.3}\n",
                    "  }}"
                ),
                name,
                s.incremental.events,
                s.reference.events_per_sec,
                s.incremental.events_per_sec,
                s.compiled.events_per_sec,
                s.speedup(),
                s.compiled_speedup()
            )
        };
        format!(
            "{{\n  \"stages\": {},\n  \"lanes\": {},\n  \"tokens\": {},\n{},\n{},\n  \"pass\": {}\n}}\n",
            self.stages,
            self.lanes,
            self.tokens,
            shape("deep_pipeline", &self.deep),
            shape("fan", &self.fan),
            self.pass()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_run_identically_on_all_engines() {
        for (net, src) in [deep_pipeline(12), fan_net(5)] {
            let a = run_once(&net, src, 64, true);
            let b = run_once(&net, src, 64, false);
            let plan = CompiledNet::compile(&net);
            let c = run_once_compiled(&plan, &net, src, 64);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.events, b.events);
            assert_eq!(a.firings, b.firings);
            assert_eq!(a.completions.len(), b.completions.len());
            assert_eq!(a.makespan, c.makespan);
            assert_eq!(a.events, c.events);
            assert_eq!(a.firings, c.firings);
            assert_eq!(a.completions, c.completions);
            assert!(a.stranded.is_empty(), "stranded: {:?}", a.stranded);
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let r = run_engine_bench(6, 3, 32, 1);
        let j = r.to_json();
        assert!(j.contains("\"deep_pipeline\""));
        assert!(j.contains("\"fan\""));
        assert!(j.contains("\"speedup\""));
        assert!(j.contains("\"compiled_events_per_sec\""));
        assert!(r.deep.speedup() > 0.0);
        assert!(r.deep.compiled_speedup() > 0.0);
    }
}
