//! The experiment-spec mini-TOML parser.
//!
//! Same dialect family as `perf_compose::topology` (the build has no
//! TOML crate): top-level `key = value` pairs, `[[experiment]]` /
//! `[[axis]]` array-of-table headers, quoted strings, `"""` multiline
//! strings, `["a", "b"]` string lists, `{ k = 1 }` inline numeric
//! tables, booleans, and `#` comments. Anything else is a parse error
//! with a line number. `[[axis]]` stanzas attach to the preceding
//! `[[experiment]]`; `criteria` may repeat to append.

use perf_core::CoreError;

/// Comparison operator of a pass criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The spec-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One pass criterion: `metric op threshold`, checked against every
/// variant that reports `metric`.
#[derive(Clone, Debug, PartialEq)]
pub struct Criterion {
    /// Metric name as emitted by the runner (e.g. `e2_lat_avg`).
    pub metric: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Threshold on the right-hand side.
    pub threshold: f64,
}

impl Criterion {
    /// Whether a measured value satisfies the criterion.
    pub fn eval(&self, x: f64) -> bool {
        match self.op {
            CmpOp::Lt => x < self.threshold,
            CmpOp::Le => x <= self.threshold,
            CmpOp::Gt => x > self.threshold,
            CmpOp::Ge => x >= self.threshold,
        }
    }

    /// The canonical `metric op threshold` rendering.
    pub fn render(&self) -> String {
        format!("{} {} {}", self.metric, self.op.as_str(), self.threshold)
    }
}

/// One variant axis: the experiment runs once per value.
#[derive(Clone, Debug, PartialEq)]
pub struct Axis {
    /// Axis name (becomes the variant's context key).
    pub name: String,
    /// Axis values, in declaration order.
    pub values: Vec<String>,
}

/// One declarative experiment.
#[derive(Clone, Debug)]
pub struct ExpSpec {
    /// Experiment id (`E1`…); unique, uppercase `E` + digits.
    pub id: String,
    /// Section title for EXPERIMENTS.md.
    pub title: String,
    /// Runner name resolved by `perf_bench::exp::run_variant`.
    pub runner: String,
    /// Hypothesis / commentary prose (markdown).
    pub hypothesis: String,
    /// Output is byte-identical across scales and runs: the drift
    /// gate compares these sections exactly instead of digit-masked.
    pub stable: bool,
    /// Numbers depend on wall-clock time (speedups, qps).
    pub volatile: bool,
    /// Per-scale sample counts: `quick`/`full`, optionally
    /// `<scale>_<axisvalue>` for per-variant overrides.
    pub samples: Vec<(String, f64)>,
    /// Pass criteria over the emitted metric values.
    pub criteria: Vec<Criterion>,
    /// Variant axes; the experiment runs once per cartesian point.
    pub axes: Vec<Axis>,
    /// 1-based line of the `[[experiment]]` header.
    pub line: usize,
}

impl ExpSpec {
    fn blank(line: usize) -> ExpSpec {
        ExpSpec {
            id: String::new(),
            title: String::new(),
            runner: String::new(),
            hypothesis: String::new(),
            stable: false,
            volatile: false,
            samples: Vec::new(),
            criteria: Vec::new(),
            axes: Vec::new(),
            line,
        }
    }

    /// Resolves the sample count for one variant at one scale
    /// (`"quick"` / `"full"`): the first `<scale>_<axisvalue>` key
    /// wins, then the bare `<scale>` key; `None` when the spec gives
    /// no counts (the runner uses its own default).
    pub fn samples_for(&self, scale: &str, axis_values: &[String]) -> Option<usize> {
        let lookup = |key: &str| {
            self.samples
                .iter()
                .find(|(k, _)| k == key)
                .map(|&(_, v)| v as usize)
        };
        axis_values
            .iter()
            .find_map(|v| lookup(&format!("{scale}_{v}")))
            .or_else(|| lookup(scale))
    }

    /// Every variant of this experiment: the cartesian product of its
    /// axes as `(axis_name, value)` rows; a single empty variant when
    /// the experiment has no axes.
    pub fn variants(&self) -> Vec<Vec<(String, String)>> {
        let mut out: Vec<Vec<(String, String)>> = vec![Vec::new()];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(out.len() * axis.values.len());
            for prefix in &out {
                for v in &axis.values {
                    let mut row = prefix.clone();
                    row.push((axis.name.clone(), v.clone()));
                    next.push(row);
                }
            }
            out = next;
        }
        out
    }
}

/// A parsed spec file.
#[derive(Clone, Debug)]
pub struct SpecFile {
    /// The master seed named in the provenance header; individual
    /// runners derive their fixed seeds from their own constants, this
    /// one labels the artifact.
    pub master_seed: u64,
    /// Experiments in declaration order.
    pub specs: Vec<ExpSpec>,
}

impl SpecFile {
    /// Looks an experiment up by id, case-insensitively.
    pub fn find(&self, id: &str) -> Option<&ExpSpec> {
        self.specs.iter().find(|s| s.id.eq_ignore_ascii_case(id))
    }
}

fn err(line: usize, msg: impl std::fmt::Display) -> CoreError {
    CoreError::Artifact(format!("experiments line {}: {msg}", line + 1))
}

/// Cuts a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, line: usize) -> Result<String, CoreError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') && !v.starts_with("\"\"\"") {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(err(line, format!("expected a quoted string, got `{v}`")))
    }
}

fn parse_number(value: &str, line: usize) -> Result<f64, CoreError> {
    let v = value.trim();
    v.parse::<f64>()
        .map_err(|_| err(line, format!("expected a number, got `{v}`")))
}

fn parse_bool(value: &str, line: usize) -> Result<bool, CoreError> {
    match value.trim() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(err(line, format!("expected true/false, got `{other}`"))),
    }
}

/// Parses `{ k = 1, j = 2 }` with positive-integer values (sample
/// counts; fractional or non-positive counts are rejected, not
/// truncated).
fn parse_samples(value: &str, line: usize) -> Result<Vec<(String, f64)>, CoreError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| {
            err(
                line,
                format!("expected an inline table `{{ k = v }}`, got `{v}`"),
            )
        })?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, val) = part.split_once('=').ok_or_else(|| {
            err(
                line,
                format!("expected `key = number` in table, got `{part}`"),
            )
        })?;
        let n = parse_number(val, line)?;
        if !n.is_finite() || n.fract() != 0.0 || n < 1.0 {
            return Err(err(
                line,
                format!("sample count `{}` must be a positive integer", val.trim()),
            ));
        }
        out.push((k.trim().to_string(), n));
    }
    Ok(out)
}

/// Parses `["a", "b"]` (single line, quoted strings).
fn parse_string_list(value: &str, line: usize) -> Result<Vec<String>, CoreError> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected a list `[\"a\", …]`, got `{v}`")))?;
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                if !cur.trim().is_empty() {
                    out.push(parse_string(&cur, line)?);
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if in_str {
        return Err(err(line, "unterminated string in list"));
    }
    if !cur.trim().is_empty() {
        out.push(parse_string(&cur, line)?);
    }
    Ok(out)
}

/// Parses one `metric op threshold` criterion string.
fn parse_criterion(s: &str, line: usize) -> Result<Criterion, CoreError> {
    let parts: Vec<&str> = s.split_whitespace().collect();
    let [metric, op, threshold] = parts.as_slice() else {
        return Err(err(
            line,
            format!("criterion `{s}` must be `metric op threshold`"),
        ));
    };
    let op = match *op {
        "<" => CmpOp::Lt,
        "<=" => CmpOp::Le,
        ">" => CmpOp::Gt,
        ">=" => CmpOp::Ge,
        other => {
            return Err(err(
                line,
                format!("unknown operator `{other}` in criterion `{s}` (have: < <= > >=)"),
            ))
        }
    };
    let threshold = threshold
        .parse::<f64>()
        .map_err(|_| err(line, format!("bad threshold in criterion `{s}`")))?;
    if metric.is_empty()
        || !metric
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Err(err(
            line,
            format!("bad metric name `{metric}` in criterion `{s}`"),
        ));
    }
    Ok(Criterion {
        metric: metric.to_string(),
        op,
        threshold,
    })
}

/// Which array-of-tables stanza the parser is inside.
enum Section {
    Top,
    Experiment,
    Axis,
}

/// Parses a spec file. Errors name the offending line:
/// `experiments line N: …`.
pub fn parse(src: &str) -> Result<SpecFile, CoreError> {
    let mut master_seed: u64 = 0;
    let mut specs: Vec<ExpSpec> = Vec::new();
    let mut section = Section::Top;
    let lines: Vec<&str> = src.lines().collect();
    let mut ln = 0usize;
    while ln < lines.len() {
        let raw = lines[ln];
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            ln += 1;
            continue;
        }
        if line == "[[experiment]]" {
            specs.push(ExpSpec::blank(ln + 1));
            section = Section::Experiment;
            ln += 1;
            continue;
        }
        if line == "[[axis]]" {
            let Some(exp) = specs.last_mut() else {
                return Err(err(ln, "[[axis]] before any [[experiment]]"));
            };
            exp.axes.push(Axis {
                name: String::new(),
                values: Vec::new(),
            });
            section = Section::Axis;
            ln += 1;
            continue;
        }
        if line.starts_with('[') {
            return Err(err(
                ln,
                format!("unknown table `{line}`; only [[experiment]] and [[axis]]"),
            ));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(ln, "expected `key = value`"))?;
        let key = key.trim();
        // Multiline strings: `key = """` opens; lines are taken
        // verbatim (no comment stripping) until a line that is
        // exactly `"""`.
        let value = if value.trim() == "\"\"\"" {
            let start = ln;
            let mut body = String::new();
            loop {
                ln += 1;
                match lines.get(ln) {
                    None => return Err(err(start, "unterminated multiline string")),
                    Some(l) if l.trim() == "\"\"\"" => break,
                    Some(l) => {
                        body.push_str(l);
                        body.push('\n');
                    }
                }
            }
            MultiOr::Multi(body.trim().to_string())
        } else {
            MultiOr::Single(value.to_string())
        };
        match section {
            Section::Top => match key {
                "master_seed" => {
                    let n = parse_number(value.single(ln)?, ln)?;
                    if !n.is_finite() || n.fract() != 0.0 || n < 0.0 {
                        return Err(err(ln, "master_seed must be a non-negative integer"));
                    }
                    master_seed = n as u64;
                }
                other => {
                    return Err(err(
                        ln,
                        format!("unknown top-level key `{other}` (before any [[experiment]])"),
                    ))
                }
            },
            Section::Experiment => {
                let exp = specs.last_mut().expect("in an [[experiment]] stanza");
                match key {
                    "id" => exp.id = parse_string(value.single(ln)?, ln)?,
                    "title" => exp.title = parse_string(value.single(ln)?, ln)?,
                    "runner" => exp.runner = parse_string(value.single(ln)?, ln)?,
                    "hypothesis" => exp.hypothesis = value.text(ln)?,
                    "stable" => exp.stable = parse_bool(value.single(ln)?, ln)?,
                    "volatile" => exp.volatile = parse_bool(value.single(ln)?, ln)?,
                    "samples" => exp.samples = parse_samples(value.single(ln)?, ln)?,
                    "criteria" => {
                        for c in parse_string_list(value.single(ln)?, ln)? {
                            exp.criteria.push(parse_criterion(&c, ln)?);
                        }
                    }
                    other => return Err(err(ln, format!("unknown experiment key `{other}`"))),
                }
            }
            Section::Axis => {
                let axis = specs
                    .last_mut()
                    .and_then(|e| e.axes.last_mut())
                    .expect("in an [[axis]] stanza");
                match key {
                    "name" => axis.name = parse_string(value.single(ln)?, ln)?,
                    "values" => axis.values = parse_string_list(value.single(ln)?, ln)?,
                    other => return Err(err(ln, format!("unknown axis key `{other}`"))),
                }
            }
        }
        ln += 1;
    }
    validate(&specs)?;
    Ok(SpecFile { master_seed, specs })
}

/// A single-line value or a collected multiline string.
enum MultiOr {
    Single(String),
    Multi(String),
}

impl MultiOr {
    fn single(&self, line: usize) -> Result<&str, CoreError> {
        match self {
            MultiOr::Single(s) => Ok(s),
            MultiOr::Multi(_) => Err(err(line, "this key does not accept a multiline string")),
        }
    }

    fn text(&self, line: usize) -> Result<String, CoreError> {
        match self {
            MultiOr::Single(s) => parse_string(s, line),
            MultiOr::Multi(s) => Ok(s.clone()),
        }
    }
}

fn validate(specs: &[ExpSpec]) -> Result<(), CoreError> {
    if specs.is_empty() {
        return Err(CoreError::Artifact(
            "experiments: no [[experiment]] stanzas".to_string(),
        ));
    }
    for (i, s) in specs.iter().enumerate() {
        let at = s.line.saturating_sub(1);
        let id_ok = s.id.len() >= 2
            && s.id.starts_with('E')
            && s.id[1..].chars().all(|c| c.is_ascii_digit());
        if !id_ok {
            return Err(err(
                at,
                format!("experiment id `{}` must be `E<number>`", s.id),
            ));
        }
        if s.title.is_empty() {
            return Err(err(at, format!("experiment {} has no title", s.id)));
        }
        if s.runner.is_empty() {
            return Err(err(at, format!("experiment {} has no runner", s.id)));
        }
        for other in &specs[..i] {
            if other.id == s.id {
                return Err(err(at, format!("duplicate experiment id `{}`", s.id)));
            }
        }
        for axis in &s.axes {
            if axis.name.is_empty() {
                return Err(err(at, format!("experiment {}: axis has no name", s.id)));
            }
            if axis.values.is_empty() {
                return Err(err(
                    at,
                    format!("experiment {}: axis `{}` has no values", s.id, axis.name),
                ));
            }
            for (j, v) in axis.values.iter().enumerate() {
                if axis.values[..j].contains(v) {
                    return Err(err(
                        at,
                        format!(
                            "experiment {}: axis `{}` repeats value `{v}`",
                            s.id, axis.name
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
master_seed = 7

[[experiment]]
id = "E1"
title = "first"
runner = "nl-claims"
stable = true
hypothesis = """
Two lines of
prose here.
"""
criteria = ["a >= 1"]
criteria = ["b < 0.5"]

[[experiment]]
id = "E4"
title = "second"
runner = "petri-table1"
samples = { quick_jpeg = 25, full_jpeg = 50, quick = 10 }

[[axis]]
name = "accel"
values = ["jpeg", "vta"]
"#;

    #[test]
    fn parses_experiments_axes_and_criteria() {
        let f = parse(MINI).unwrap();
        assert_eq!(f.master_seed, 7);
        assert_eq!(f.specs.len(), 2);
        let e1 = &f.specs[0];
        assert!(e1.stable && !e1.volatile);
        assert_eq!(e1.hypothesis, "Two lines of\nprose here.");
        assert_eq!(e1.criteria.len(), 2, "repeated criteria keys append");
        assert_eq!(e1.criteria[0].render(), "a >= 1");
        assert!(e1.criteria[1].eval(0.4) && !e1.criteria[1].eval(0.5));
        let e4 = &f.specs[1];
        assert_eq!(e4.axes.len(), 1);
        assert_eq!(
            e4.variants(),
            vec![
                vec![("accel".to_string(), "jpeg".to_string())],
                vec![("accel".to_string(), "vta".to_string())],
            ]
        );
        assert_eq!(e4.samples_for("quick", &["jpeg".into()]), Some(25));
        assert_eq!(e4.samples_for("full", &["jpeg".into()]), Some(50));
        assert_eq!(e4.samples_for("quick", &["vta".into()]), Some(10));
        assert_eq!(e4.samples_for("full", &["vta".into()]), None);
        assert!(f.find("e4").is_some(), "lookup is case-insensitive");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, &str)] = &[
            ("bogus = 3\n", "line 1"),
            ("[[axis]]\n", "[[axis]] before any [[experiment]]"),
            ("[[experiment]]\nid = unquoted\n", "line 2"),
            ("[[experiment]]\nwat = \"x\"\n", "unknown experiment key"),
            (
                "[[experiment]]\ncriteria = [\"a ~ 1\"]\n",
                "unknown operator",
            ),
            (
                "[[experiment]]\ncriteria = [\"a <\"]\n",
                "metric op threshold",
            ),
            ("[[experiment]]\ncriteria = [\"a < x\"]\n", "bad threshold"),
            ("[[experiment]]\nsamples = { quick = 2.5 }\n", "integer"),
            (
                "[[experiment]]\nhypothesis = \"\"\"\nnever closed\n",
                "unterminated",
            ),
            ("[table]\n", "unknown table"),
        ];
        for (src, want) in cases {
            let e = parse(src).unwrap_err().to_string();
            assert!(e.contains(want), "`{src}` → `{e}` (wanted `{want}`)");
            assert!(e.contains("experiments line"), "`{e}` lacks a line number");
        }
    }

    #[test]
    fn validation_rejects_bad_ids_and_axes() {
        let bad_id = "[[experiment]]\nid = \"X1\"\ntitle = \"t\"\nrunner = \"r\"\n";
        assert!(parse(bad_id).unwrap_err().to_string().contains("E<number>"));
        let dup = "[[experiment]]\nid = \"E1\"\ntitle = \"t\"\nrunner = \"r\"\n\
                   [[experiment]]\nid = \"E1\"\ntitle = \"t\"\nrunner = \"r\"\n";
        assert!(parse(dup).unwrap_err().to_string().contains("duplicate"));
        let empty_axis = "[[experiment]]\nid = \"E1\"\ntitle = \"t\"\nrunner = \"r\"\n\
                          [[axis]]\nname = \"a\"\nvalues = []\n";
        assert!(parse(empty_axis)
            .unwrap_err()
            .to_string()
            .contains("no values"));
        let dup_val = "[[experiment]]\nid = \"E1\"\ntitle = \"t\"\nrunner = \"r\"\n\
                       [[axis]]\nname = \"a\"\nvalues = [\"x\", \"x\"]\n";
        assert!(parse(dup_val)
            .unwrap_err()
            .to_string()
            .contains("repeats value"));
    }

    #[test]
    fn shipped_spec_file_parses() {
        let f = parse(crate::exp::SPEC_SRC).unwrap();
        assert_eq!(f.master_seed, 20230622);
        assert_eq!(f.specs.len(), 14);
        for (i, s) in f.specs.iter().enumerate() {
            assert_eq!(s.id, format!("E{}", i + 1));
            assert!(!s.hypothesis.is_empty(), "{} has no hypothesis", s.id);
            assert!(!s.criteria.is_empty(), "{} has no criteria", s.id);
        }
        // The axes that drive multi-variant experiments.
        assert_eq!(f.find("E12").unwrap().variants().len(), 6);
        assert_eq!(
            f.find("E4").unwrap().samples_for("full", &["vta".into()]),
            Some(1500)
        );
    }
}
