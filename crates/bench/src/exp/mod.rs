//! The declarative experiment framework behind `repro --experiments`.
//!
//! Experiments are *specs*, not code paths: `specs/experiments.toml`
//! declares each experiment's id, hypothesis, runner, variant axes,
//! per-scale sample counts, and pass criteria; this module parses the
//! file ([`spec`]), executes every variant with the repo's fixed
//! seeds, evaluates the criteria, and renders the results as text, as
//! a JSON document, and as the committed `EXPERIMENTS.md`
//! ([`RunResults::render_doc`]). The CI drift gate
//! ([`check_doc`]) re-runs everything at `--quick` scale and compares
//! the committed doc against the regenerated one — prose byte-exact,
//! measured digits masked, `stable = true` sections byte-exact
//! throughout.

pub mod spec;

use crate::composedemo;
use crate::experiments::{self, ExperimentOutput, E4_HEADERS, E9_HEADERS};
use perf_conformance::harness::run_subject;
use perf_core::report::{pct, Table};
use perf_core::trace::json_escape;
use perf_core::CoreError;
use spec::{CmpOp, Criterion, ExpSpec, SpecFile};

/// The shipped spec file, compiled in so `repro --experiments` needs
/// no working directory.
pub const SPEC_SRC: &str = include_str!("../../specs/experiments.toml");

/// Parses the shipped spec file.
pub fn load() -> Result<SpecFile, CoreError> {
    spec::parse(SPEC_SRC)
}

/// One executed variant of one experiment.
pub struct VariantOutput {
    /// The axis point this variant ran at (empty for axis-free
    /// experiments).
    pub axis: Vec<(String, String)>,
    /// Resolved sample count, when the spec declares one.
    pub samples: Option<usize>,
    /// Table headers (identical across an experiment's variants).
    pub headers: Vec<String>,
    /// Table rows contributed by this variant.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes.
    pub notes: Vec<String>,
    /// Named measured values, checked by the criteria.
    pub values: Vec<(String, f64)>,
}

impl VariantOutput {
    fn from_output(out: ExperimentOutput, samples: Option<usize>) -> VariantOutput {
        VariantOutput {
            axis: Vec::new(),
            samples,
            headers: out.table.headers().to_vec(),
            rows: out.table.rows().to_vec(),
            notes: out.notes,
            values: out.values,
        }
    }

    /// `axis=value` rendering of the variant's axis point.
    pub fn axis_label(&self) -> String {
        self.axis
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Verdict on one criterion, evaluated over every variant value.
pub struct CriterionOutcome {
    /// The criterion as declared.
    pub criterion: Criterion,
    /// Whether every occurrence of the metric satisfied it. A metric
    /// reported by no variant fails (`worst` is `None`).
    pub pass: bool,
    /// The occurrence closest to (or furthest past) the threshold.
    pub worst: Option<f64>,
}

/// One experiment's spec, executed variants, and criteria verdicts.
pub struct ExpResult {
    /// The spec this result executed.
    pub spec: ExpSpec,
    /// One entry per axis point, in cartesian order.
    pub variants: Vec<VariantOutput>,
    /// One entry per declared criterion.
    pub criteria: Vec<CriterionOutcome>,
}

impl ExpResult {
    /// Whether every criterion passed.
    pub fn pass(&self) -> bool {
        self.criteria.iter().all(|c| c.pass)
    }

    /// Merges the per-variant row sets into one table.
    pub fn table(&self) -> Table {
        let headers = self
            .variants
            .first()
            .map(|v| v.headers.clone())
            .unwrap_or_default();
        let rows = self
            .variants
            .iter()
            .flat_map(|v| v.rows.iter().cloned())
            .collect();
        Table::from_parts(headers, rows)
    }

    /// Deduplicated notes across variants, in first-seen order.
    pub fn notes(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for v in &self.variants {
            for n in &v.notes {
                if !out.contains(&n.as_str()) {
                    out.push(n);
                }
            }
        }
        out
    }
}

/// Results of one `run_specs` invocation.
pub struct RunResults {
    /// Master seed from the spec file (labels the artifact).
    pub master_seed: u64,
    /// Whether the run used `--quick` sample counts.
    pub quick: bool,
    /// One entry per executed experiment, in spec order.
    pub experiments: Vec<ExpResult>,
}

impl RunResults {
    /// Whether every experiment's criteria passed.
    pub fn pass(&self) -> bool {
        self.experiments.iter().all(ExpResult::pass)
    }
}

fn samples_or_err(s: &ExpSpec, scale: &str, axis_values: &[String]) -> Result<usize, CoreError> {
    s.samples_for(scale, axis_values).ok_or_else(|| {
        CoreError::Artifact(format!(
            "experiment {}: runner `{}` needs a `samples` entry for scale `{scale}`",
            s.id, s.runner
        ))
    })
}

/// Executes one variant of one experiment by dispatching its spec'd
/// runner name. Unknown runners are an error, not a skip: a spec that
/// names a runner this binary does not ship is a broken artifact.
pub fn run_variant(
    s: &ExpSpec,
    axis: &[(String, String)],
    quick: bool,
) -> Result<VariantOutput, CoreError> {
    let scale = if quick { "quick" } else { "full" };
    let axis_values: Vec<String> = axis.iter().map(|(_, v)| v.clone()).collect();
    let mut out = match s.runner.as_str() {
        "nl-claims" => VariantOutput::from_output(experiments::e1_nl_interfaces()?, None),
        "jpeg-program" => {
            let n = samples_or_err(s, scale, &axis_values)?;
            VariantOutput::from_output(experiments::e2_jpeg_program(n)?, Some(n))
        }
        "protoacc-program" => {
            let n = samples_or_err(s, scale, &axis_values)?;
            VariantOutput::from_output(experiments::e3_protoacc_program(n)?, Some(n))
        }
        "petri-table1" => {
            let n = samples_or_err(s, scale, &axis_values)?;
            let accel = axis_values.first().ok_or_else(|| {
                CoreError::Artifact(format!("experiment {}: petri-table1 needs an axis", s.id))
            })?;
            let (row, values) = experiments::e4_row(accel, n)?;
            VariantOutput {
                axis: Vec::new(),
                samples: Some(n),
                headers: E4_HEADERS.iter().map(|h| h.to_string()).collect(),
                rows: vec![row],
                notes: Vec::new(),
                values,
            }
        }
        "profiling-speedup" => {
            let n = samples_or_err(s, scale, &axis_values)?;
            VariantOutput::from_output(experiments::e5_profiling_speedup(n)?, Some(n))
        }
        "crossover" => VariantOutput::from_output(experiments::e6_crossover()?, None),
        "soc-design" => VariantOutput::from_output(experiments::e7_soc_design()?, None),
        "offload" => {
            let n = samples_or_err(s, scale, &axis_values)?;
            VariantOutput::from_output(experiments::e8_offload(n)?, Some(n))
        }
        "petri-ablation" => {
            let n = samples_or_err(s, scale, &axis_values)?;
            let net = axis_values.first().ok_or_else(|| {
                CoreError::Artifact(format!("experiment {}: petri-ablation needs an axis", s.id))
            })?;
            let (row, values) = experiments::e9_row(net, n)?;
            VariantOutput {
                axis: Vec::new(),
                samples: Some(n),
                headers: E9_HEADERS.iter().map(|h| h.to_string()).collect(),
                rows: vec![row],
                notes: Vec::new(),
                values,
            }
        }
        "autotune" => VariantOutput::from_output(experiments::e10_autotune_quality()?, None),
        "noc-compose" => VariantOutput::from_output(experiments::e11_noc_composition()?, None),
        "conformance" => {
            let subject = axis_values.first().ok_or_else(|| {
                CoreError::Artifact(format!("experiment {}: conformance needs an axis", s.id))
            })?;
            conformance_variant(subject, quick)?
        }
        "svcbench" => svcbench_variant(quick),
        "compose-smoke" => {
            let topology = axis_values.first().ok_or_else(|| {
                CoreError::Artifact(format!("experiment {}: compose-smoke needs an axis", s.id))
            })?;
            compose_variant(topology, quick)?
        }
        other => {
            return Err(CoreError::Artifact(format!(
                "experiment {}: unknown runner `{other}`",
                s.id
            )))
        }
    };
    out.axis = axis.to_vec();
    Ok(out)
}

/// E12: one conformance subject as a fixed-column table row.
fn conformance_variant(subject: &str, quick: bool) -> Result<VariantOutput, CoreError> {
    use perf_conformance::subjects;
    let r = match subject {
        "jpeg-decoder" => run_subject(&mut subjects::jpeg::JpegSubject::new(), quick),
        "bitcoin-miner" => run_subject(&mut subjects::bitcoin::BitcoinSubject::new(), quick),
        "protoacc" => run_subject(&mut subjects::protoacc::ProtoaccSubject::new(), quick),
        "vta" => run_subject(&mut subjects::vta::VtaSubject::new(), quick),
        "pipeline" => run_subject(&mut subjects::pipeline::PipelineSubject::new(), quick),
        "pipeline-dag" => run_subject(&mut subjects::dag::DagSubject::new(), quick),
        other => {
            return Err(CoreError::Artifact(format!(
                "conformance has no subject `{other}`"
            )))
        }
    };
    let worst_avg = r.nominal.iter().map(|c| c.avg).fold(0.0, f64::max);
    let worst_max = r.nominal.iter().map(|c| c.max).fold(0.0, f64::max);
    let bounds_n: usize = r.nominal.iter().map(|c| c.bounds_n).sum();
    let bounds_within: usize = r.nominal.iter().map(|c| c.bounds_within).sum();
    let nl_hold = r.nl.iter().filter(|n| n.holds).count();
    let in_contract = r.faults.iter().filter(|f| f.in_contract).count();
    let pass = r.pass();
    Ok(VariantOutput {
        axis: Vec::new(),
        samples: None,
        headers: [
            "Subject",
            "Cases (adv)",
            "Worst avg err",
            "Worst max err",
            "Bounds",
            "NL claims",
            "Fault regions",
            "Verdict",
        ]
        .iter()
        .map(|h| h.to_string())
        .collect(),
        rows: vec![vec![
            r.name.into(),
            format!("{} ({})", r.cases, r.adversarial),
            pct(worst_avg),
            pct(worst_max),
            format!("{bounds_within}/{bounds_n}"),
            format!("{nl_hold}/{} hold", r.nl.len()),
            format!("{} ({in_contract} in-contract)", r.faults.len()),
            if pass { "ok" } else { "FAIL" }.into(),
        ]],
        notes: Vec::new(),
        values: vec![("e12_pass".into(), f64::from(u8::from(pass)))],
    })
}

/// E13: the serving-layer sweep, one table row per measured point.
/// The dequeue-path diagnosis is deliberately left out of the table:
/// its text depends on the machine's hardware parallelism, which
/// would break the drift gate's masked comparison.
fn svcbench_variant(quick: bool) -> VariantOutput {
    let r = perf_service::svcbench::run(quick);
    let rows = r
        .points
        .iter()
        .map(|p| {
            vec![
                if p.warm { "warm" } else { "cold" }.into(),
                p.engine.name().into(),
                p.topology.clone(),
                format!("{}", p.workers),
                format!("{}", p.batch),
                format!("{}", p.offered),
                format!("{:.0}", p.qps),
                format!("{}", p.cache_hits),
            ]
        })
        .collect();
    VariantOutput {
        axis: Vec::new(),
        samples: None,
        headers: [
            "Phase",
            "Engine",
            "Topology",
            "Workers",
            "Batch",
            "Offered",
            "QPS",
            "Cache hits",
        ]
        .iter()
        .map(|h| h.to_string())
        .collect(),
        rows,
        notes: vec![format!(
            "headline: warm batched over cold unbatched = {:.1}x ({:.0} qps over {:.0} qps), \
             computed over the mixed-4 rows only",
            r.speedup, r.best_batched_qps, r.baseline_qps
        )],
        values: vec![
            ("e13_speedup".into(), r.speedup),
            ("e13_baseline_qps".into(), r.baseline_qps),
            ("e13_best_batched_qps".into(), r.best_batched_qps),
            ("e13_scaling_ok".into(), f64::from(u8::from(r.scaling_ok()))),
        ],
    }
}

/// E14: one composed topology as a fixed-column table row.
fn compose_variant(topology: &str, quick: bool) -> Result<VariantOutput, CoreError> {
    let src = match topology {
        "chain" => composedemo::DEMO_TOPOLOGY,
        "dag" => composedemo::DEMO_DAG_TOPOLOGY,
        other => {
            return Err(CoreError::Artifact(format!(
                "compose-smoke has no topology `{other}` (have: chain, dag)"
            )))
        }
    };
    let m = composedemo::topology_metrics(src, quick)?;
    let lint_clean = m.config_lint_clean && m.net_lint_clean;
    let engines_agree = m.interp == m.compiled;
    let nl_contains = m.nl_lo <= m.measured && m.measured <= m.nl_hi;
    Ok(VariantOutput {
        axis: Vec::new(),
        samples: None,
        headers: [
            "Topology",
            "Chain",
            "Stages",
            "Edges",
            "Lint",
            "Petri interp = compiled",
            "Measured",
            "NL bounds",
            "Program tier",
        ]
        .iter()
        .map(|h| h.to_string())
        .collect(),
        rows: vec![vec![
            topology.into(),
            m.label.clone(),
            format!("{}", m.stages),
            format!("{}", m.edges),
            if lint_clean { "clean" } else { "FAIL" }.into(),
            format!("{} = {}", m.interp, m.compiled),
            format!("{:.0}", m.measured),
            format!("[{:.0}, {:.0}]", m.nl_lo, m.nl_hi),
            format!("{:.0} ({} err)", m.prog, pct(m.prog_rel_err())),
        ]],
        notes: Vec::new(),
        values: vec![
            ("e14_lint_clean".into(), f64::from(u8::from(lint_clean))),
            (
                "e14_engines_agree".into(),
                f64::from(u8::from(engines_agree)),
            ),
            ("e14_nl_contains".into(), f64::from(u8::from(nl_contains))),
            ("e14_prog_rel_err".into(), m.prog_rel_err()),
        ],
    })
}

fn evaluate(s: &ExpSpec, variants: &[VariantOutput]) -> Vec<CriterionOutcome> {
    s.criteria
        .iter()
        .map(|c| {
            let vals: Vec<f64> = variants
                .iter()
                .flat_map(|v| v.values.iter())
                .filter(|(k, _)| *k == c.metric)
                .map(|&(_, v)| v)
                .collect();
            if vals.is_empty() {
                return CriterionOutcome {
                    criterion: c.clone(),
                    pass: false,
                    worst: None,
                };
            }
            // The "worst" occurrence is the one an upper bound is
            // tightest on (max for < / <=) or a lower bound is
            // loosest on (min for > / >=).
            let worst = match c.op {
                CmpOp::Lt | CmpOp::Le => vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                CmpOp::Gt | CmpOp::Ge => vals.iter().copied().fold(f64::INFINITY, f64::min),
            };
            CriterionOutcome {
                criterion: c.clone(),
                pass: vals.iter().all(|&x| x.is_finite() && c.eval(x)),
                worst: Some(worst),
            }
        })
        .collect()
}

/// Runs every spec (or just `only`, matched case-insensitively),
/// evaluating criteria as it goes. Execution errors abort; criteria
/// *failures* do not — they are verdicts in the result, and the CLI
/// turns them into a nonzero exit.
pub fn run_specs(
    file: &SpecFile,
    quick: bool,
    only: Option<&str>,
) -> Result<RunResults, CoreError> {
    if let Some(id) = only {
        if file.find(id).is_none() {
            return Err(CoreError::Artifact(format!(
                "unknown experiment `{id}` (have: E1..E{})",
                file.specs.len()
            )));
        }
    }
    let mut results = Vec::new();
    for s in &file.specs {
        if let Some(id) = only {
            if !s.id.eq_ignore_ascii_case(id) {
                continue;
            }
        }
        let mut variants = Vec::new();
        for axis in s.variants() {
            variants.push(run_variant(s, &axis, quick)?);
        }
        for v in &variants[1..] {
            if v.headers != variants[0].headers {
                return Err(CoreError::Artifact(format!(
                    "experiment {}: variants disagree on table headers",
                    s.id
                )));
            }
        }
        let criteria = evaluate(s, &variants);
        results.push(ExpResult {
            spec: s.clone(),
            variants,
            criteria,
        });
    }
    Ok(RunResults {
        master_seed: file.master_seed,
        quick,
        experiments: results,
    })
}

fn criterion_line(c: &CriterionOutcome) -> String {
    match c.worst {
        Some(w) => format!(
            "`{}` — {} (worst {})",
            c.criterion.render(),
            if c.pass { "ok" } else { "FAIL" },
            fmt_value(w)
        ),
        None => format!("`{}` — FAIL (metric never reported)", c.criterion.render()),
    }
}

/// Fixed-precision value rendering for criteria lines and JSON:
/// enough digits to be meaningful, few enough to stay readable.
fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

impl RunResults {
    /// Renders the run as terminal text.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "experiments ({} scale, master seed {}): {} spec(s)\n\n",
            if self.quick { "quick" } else { "full" },
            self.master_seed,
            self.experiments.len()
        );
        for e in &self.experiments {
            out.push_str(&format!("== {} — {} ==\n", e.spec.id, e.spec.title));
            out.push_str(&format!("{}", e.table()));
            for n in e.notes() {
                out.push_str(&format!("note: {n}\n"));
            }
            for c in &e.criteria {
                out.push_str(&format!(
                    "  {}  {}\n",
                    if c.pass { "ok  " } else { "FAIL" },
                    criterion_line(c)
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "experiments: {}\n",
            if self.pass() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Renders the run as a JSON document (hand-rendered, like every
    /// other artifact in the repo).
    pub fn render_json(&self) -> String {
        let exps: Vec<String> = self
            .experiments
            .iter()
            .map(|e| {
                let variants: Vec<String> = e
                    .variants
                    .iter()
                    .map(|v| {
                        let axis: Vec<String> = v
                            .axis
                            .iter()
                            .map(|(k, val)| {
                                format!("\"{}\":\"{}\"", json_escape(k), json_escape(val))
                            })
                            .collect();
                        let values: Vec<String> = v
                            .values
                            .iter()
                            .map(|(k, val)| format!("\"{}\":{}", json_escape(k), json_num(*val)))
                            .collect();
                        let samples = match v.samples {
                            Some(n) => format!("{n}"),
                            None => "null".to_string(),
                        };
                        format!(
                            "{{\"axis\":{{{}}},\"samples\":{samples},\"values\":{{{}}}}}",
                            axis.join(","),
                            values.join(",")
                        )
                    })
                    .collect();
                let criteria: Vec<String> = e
                    .criteria
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"metric\":\"{}\",\"op\":\"{}\",\"threshold\":{},\"pass\":{},\"worst\":{}}}",
                            json_escape(&c.criterion.metric),
                            c.criterion.op.as_str(),
                            json_num(c.criterion.threshold),
                            c.pass,
                            c.worst.map_or("null".to_string(), json_num)
                        )
                    })
                    .collect();
                format!(
                    "{{\"id\":\"{}\",\"title\":\"{}\",\"runner\":\"{}\",\"stable\":{},\
                     \"volatile\":{},\"pass\":{},\"variants\":[{}],\"criteria\":[{}]}}",
                    json_escape(&e.spec.id),
                    json_escape(&e.spec.title),
                    json_escape(&e.spec.runner),
                    e.spec.stable,
                    e.spec.volatile,
                    e.pass(),
                    variants.join(","),
                    criteria.join(",")
                )
            })
            .collect();
        format!(
            "{{\"master_seed\":{},\"quick\":{},\"pass\":{},\"experiments\":[{}]}}\n",
            self.master_seed,
            self.quick,
            self.pass(),
            exps.join(",")
        )
    }

    /// Renders the committed `EXPERIMENTS.md`: a static provenance
    /// header and intro, one section per experiment (hypothesis,
    /// merged variant table, notes, criteria verdicts), and a static
    /// "Reproducing" tail. Everything non-numeric is identical across
    /// scales so [`check_doc`] can compare prose byte-for-byte.
    pub fn render_doc(&self) -> String {
        let mut out = String::from(
            "<!--\n  GENERATED FILE - regenerated from declarative specs; do not hand-edit numbers.\n\
             \x20 Command:  cargo run --release -p perf-bench --bin repro -- --experiments --write EXPERIMENTS.md\n\
             \x20 Specs:    crates/bench/specs/experiments.toml (master seed 20230622)\n\
             \x20 CI gate:  scripts/check.sh re-runs at --quick scale and diffs via `--check EXPERIMENTS.md`\n-->\n\n",
        );
        out.push_str("# Experiments\n\n");
        out.push_str(
            "Every section below is regenerated from the declarative specs in\n\
             `crates/bench/specs/experiments.toml` by `perf_bench::exp` (see\n\
             DESIGN.md, \"Experiments\"): one section per `[[experiment]]`, one\n\
             table row per variant-axis point, pass criteria evaluated on every\n\
             run — a criterion failure is a nonzero `repro` exit. Committed\n\
             numbers come from a full-scale run; the CI drift gate re-runs the\n\
             suite at `--quick` scale and compares these sections with measured\n\
             digits masked (sections marked `stable` in the spec must match\n\
             byte-for-byte).\n\n",
        );
        for e in &self.experiments {
            out.push_str(&format!("## {} — {}\n\n", e.spec.id, e.spec.title));
            if !e.spec.hypothesis.is_empty() {
                out.push_str(&e.spec.hypothesis);
                out.push_str("\n\n");
            }
            out.push_str(&e.table().to_markdown());
            out.push('\n');
            for n in e.notes() {
                out.push_str(&format!("> {n}\n"));
            }
            if !e.notes().is_empty() {
                out.push('\n');
            }
            let marks: Vec<String> = e.criteria.iter().map(criterion_line).collect();
            out.push_str(&format!("Criteria: {}\n\n", marks.join(" · ")));
        }
        out.push_str(
            "## Reproducing the numbers\n\n\
             ```bash\n\
             # full scale (minutes); rewrites this file in place\n\
             cargo run --release -p perf-bench --bin repro -- --experiments --write EXPERIMENTS.md\n\n\
             # CI scale + drift gate against the committed file\n\
             cargo run --release -p perf-bench --bin repro -- --experiments --quick --check EXPERIMENTS.md\n\n\
             # one experiment, to stdout\n\
             cargo run --release -p perf-bench --bin repro -- --experiments --only E4 --quick\n\n\
             # machine-readable results\n\
             cargo run --release -p perf-bench --bin repro -- --experiments --quick --json\n\
             ```\n\n\
             Each invocation exits nonzero if any pass criterion fails. The\n\
             other `repro` modes (`--conformance`, `--compose`, `--trace`,\n\
             `--bench-engines`, the legacy `--exp <id>`) are unchanged; Chrome\n\
             traces for ui.perfetto.dev come from `repro --trace --perfetto\n\
             <out.json>` (see README).\n",
        );
        out
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        fmt_value(v)
    } else {
        "null".to_string()
    }
}

/// Replaces each maximal run of ASCII digits with a single `#`, and
/// collapses runs of spaces (and of `-`) to one character, so `1.35%`
/// and `12.7%` compare equal — and so do markdown cells and `|---|`
/// separator rows whose padding width follows the numbers in the
/// column. Every other character stays significant; prose dashes are
/// em dashes and unaffected.
pub fn mask_digits(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut run: Option<char> = None;
    for c in s.chars() {
        let class = match c {
            '0'..='9' => Some('#'),
            ' ' => Some(' '),
            '-' => Some('-'),
            _ => None,
        };
        match class {
            Some(rep) => {
                if run != Some(rep) {
                    out.push(rep);
                    run = Some(rep);
                }
            }
            None => {
                run = None;
                out.push(c);
            }
        }
    }
    out
}

/// Splits a rendered doc into its preamble and `## E<n>` sections
/// (each section body includes its heading line and runs to the next
/// experiment heading or end of file — trailing non-experiment
/// headings like "Reproducing" belong to the last section).
fn split_sections(doc: &str) -> (String, Vec<(String, String)>) {
    let mut pre = String::new();
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in doc.lines() {
        if let Some(rest) = line.strip_prefix("## E") {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            if !digits.is_empty() {
                sections.push((format!("E{digits}"), String::new()));
            }
        }
        match sections.last_mut() {
            Some((_, body)) => {
                body.push_str(line);
                body.push('\n');
            }
            None => {
                pre.push_str(line);
                pre.push('\n');
            }
        }
    }
    (pre, sections)
}

fn first_diff(what: &str, committed: &str, regenerated: &str, masked: bool) -> Option<String> {
    let norm = |s: &str| {
        if masked {
            mask_digits(s)
        } else {
            s.to_string()
        }
    };
    let a: Vec<&str> = committed.lines().collect();
    let b: Vec<&str> = regenerated.lines().collect();
    for i in 0..a.len().max(b.len()) {
        let (la, lb) = (
            a.get(i).copied().unwrap_or(""),
            b.get(i).copied().unwrap_or(""),
        );
        if norm(la) != norm(lb) {
            return Some(format!(
                "{what} drifted at line {} ({}):\n  committed:   {la}\n  regenerated: {lb}",
                i + 1,
                if masked {
                    "digit-masked compare"
                } else {
                    "byte compare"
                }
            ));
        }
    }
    None
}

/// The CI drift gate: compares the committed `EXPERIMENTS.md` against
/// a regenerated one. The preamble and every `stable = true` section
/// must match byte-for-byte; other sections are compared with digit
/// runs masked, so quick-scale sample counts and re-measured numbers
/// don't trip the gate while any prose, structure, or formatting
/// drift does. Returns the first difference as an error message.
pub fn check_doc(committed: &str, regenerated: &str, file: &SpecFile) -> Result<(), String> {
    let (pre_c, secs_c) = split_sections(committed);
    let (pre_r, secs_r) = split_sections(regenerated);
    if let Some(d) = first_diff("preamble", &pre_c, &pre_r, false) {
        return Err(d);
    }
    let ids_c: Vec<&str> = secs_c.iter().map(|(id, _)| id.as_str()).collect();
    let ids_r: Vec<&str> = secs_r.iter().map(|(id, _)| id.as_str()).collect();
    if ids_c != ids_r {
        return Err(format!(
            "section sets differ: committed has [{}], regenerated has [{}]",
            ids_c.join(", "),
            ids_r.join(", ")
        ));
    }
    for ((id, body_c), (_, body_r)) in secs_c.iter().zip(secs_r.iter()) {
        let stable = file.find(id).map(|s| s.stable).unwrap_or(false);
        if let Some(d) = first_diff(&format!("section {id}"), body_c, body_r, !stable) {
            return Err(d);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_collapses_digit_runs() {
        assert_eq!(mask_digits("1.35% (15.84%)"), "#.#% (#.#%)");
        assert_eq!(mask_digits("n=1500"), mask_digits("n=120"));
        assert_ne!(mask_digits("1.35%"), mask_digits("1.35x"));
        // Markdown padding follows the numbers in a column, so cell
        // padding and `|---|` separators must mask too.
        assert_eq!(mask_digits("| n    |"), mask_digits("| n   |"));
        assert_eq!(mask_digits("|------|"), mask_digits("|-----|"));
        assert_ne!(mask_digits("| n |"), mask_digits("| m |"));
    }

    #[test]
    fn split_assigns_trailing_headings_to_last_section() {
        let doc =
            "# T\n\nintro\n\n## E1 — a\n\nbody\n\n## E2 — b\n\nmore\n\n## Reproducing\n\nbash\n";
        let (pre, secs) = split_sections(doc);
        assert!(pre.contains("intro"));
        assert_eq!(secs.len(), 2);
        assert_eq!(secs[0].0, "E1");
        assert!(secs[1].1.contains("Reproducing"));
    }

    #[test]
    fn check_doc_masks_numbers_but_not_prose() {
        let file = spec::parse(
            "[[experiment]]\nid = \"E1\"\ntitle = \"t\"\nrunner = \"r\"\nstable = true\n\
             [[experiment]]\nid = \"E2\"\ntitle = \"t\"\nrunner = \"r\"\n",
        )
        .unwrap();
        let committed = "pre\n\n## E1 — t\n\nexact 42\n\n## E2 — t\n\navg 1.35%\n";
        let renumbered = "pre\n\n## E1 — t\n\nexact 42\n\n## E2 — t\n\navg 9.99%\n";
        assert!(check_doc(committed, renumbered, &file).is_ok());
        let reworded = "pre\n\n## E1 — t\n\nexact 42\n\n## E2 — t\n\nmean 1.35%\n";
        assert!(check_doc(committed, reworded, &file).is_err());
        let stable_drift = "pre\n\n## E1 — t\n\nexact 43\n\n## E2 — t\n\navg 1.35%\n";
        let e = check_doc(committed, stable_drift, &file).unwrap_err();
        assert!(
            e.contains("section E1") && e.contains("byte compare"),
            "{e}"
        );
        let pre_drift = "PRE\n\n## E1 — t\n\nexact 42\n\n## E2 — t\n\navg 1.35%\n";
        assert!(check_doc(committed, pre_drift, &file)
            .unwrap_err()
            .contains("preamble"));
    }

    #[test]
    fn criteria_fail_on_missing_metric_and_nonfinite_values() {
        let s = spec::parse(
            "[[experiment]]\nid = \"E1\"\ntitle = \"t\"\nrunner = \"r\"\n\
             criteria = [\"present < 1\", \"absent >= 1\", \"nan < 1\"]\n",
        )
        .unwrap();
        let variants = vec![VariantOutput {
            axis: Vec::new(),
            samples: None,
            headers: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
            values: vec![("present".into(), 0.5), ("nan".into(), f64::NAN)],
        }];
        let out = evaluate(&s.specs[0], &variants);
        assert!(out[0].pass);
        assert!(!out[1].pass && out[1].worst.is_none());
        assert!(!out[2].pass, "non-finite values must not pass");
    }

    #[test]
    fn quick_e7_runs_through_the_framework() {
        let file = load().unwrap();
        let res = run_specs(&file, true, Some("e7")).unwrap();
        assert_eq!(res.experiments.len(), 1);
        let e = &res.experiments[0];
        assert_eq!(e.spec.id, "E7");
        assert!(e.pass(), "{}", res.render_text());
        let doc = res.render_doc();
        assert!(doc.contains("## E7 —"));
        assert!(doc.contains("Criteria:"));
        let json = res.render_json();
        assert!(json.contains("\"id\":\"E7\""));
        assert!(json.contains("\"e7_pick_loop\""));
    }

    #[test]
    fn quick_e14_merges_both_topology_variants() {
        let file = load().unwrap();
        let res = run_specs(&file, true, Some("E14")).unwrap();
        let e = &res.experiments[0];
        assert_eq!(e.variants.len(), 2);
        assert!(e.pass(), "{}", res.render_text());
        let t = e.table();
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0][0], "chain");
        assert_eq!(t.rows()[1][0], "dag");
    }
}
