//! The `repro --compose` smoke: config-driven pipeline round-trip.
//!
//! Exercises the whole composition story end to end on a small demo
//! topology: parse the TOML config, lint the glued Petri net, check
//! that the interpreted and compiled engines agree on the composite
//! makespan, sanity-check the three composite interface tiers against
//! each other, and finally run the quick composite conformance
//! subject under the full Budget machinery (fault injection
//! included). Any failure is a nonzero exit for `scripts/check.sh`.

use perf_compose::{Composite, StreamParams, Topology};
use perf_conformance::harness::run_subject;
use perf_conformance::subjects::dag::DagSubject;
use perf_conformance::subjects::pipeline::PipelineSubject;
use perf_core::query::EngineChoice;

/// The demo SoC config: a decode → compress-scan → serialize chain,
/// written as the TOML the `perf-compose` parser accepts (headers,
/// comments, quoted strings, inline field tables).
pub const DEMO_TOPOLOGY: &str = r#"
# Demo SoC: decode images, scan nonces over the payload, serialize.
name = "demo-soc"

[[stage]]
accel = "vta"
instance = "decode"
queue = 3

[[stage]]
accel = "bitcoin-miner"
queue = 2
kind = "scan"
fields = { loop = 4, nonce_count = 8, difficulty = 512, seed = 5 }

[[stage]]
accel = "protoacc"
instance = "serialize"
queue = 4
"#;

/// The demo fan-out/fan-in SoC config: a replicated decode stage
/// round-robining its stream across a miner branch and a packer
/// branch, which merge back into one serializer. Written with explicit
/// `[[edge]]` tables — the DAG form of the config format.
pub const DEMO_DAG_TOPOLOGY: &str = r#"
# Demo SoC, branched: decode fans out over two unlike branches that
# merge into a final serializer.
name = "demo-soc-dag"

[[stage]]
accel = "vta"
instance = "decode"
queue = 3
replicas = 2

[[stage]]
accel = "bitcoin-miner"
instance = "scan"
queue = 2
kind = "scan"
fields = { loop = 4, nonce_count = 8, difficulty = 512, seed = 5 }

[[stage]]
accel = "protoacc"
instance = "pack"
queue = 2

[[stage]]
accel = "protoacc"
instance = "serialize"
queue = 4

[[edge]]
from = "decode"
to = "scan"
policy = "round-robin"

[[edge]]
from = "decode"
to = "pack"
policy = "round-robin"

[[edge]]
from = "scan"
to = "serialize"

[[edge]]
from = "pack"
to = "serialize"
"#;

/// Outcome of the compose smoke run.
pub struct ComposeDemo {
    /// Human-readable report, one line per check.
    pub report: String,
    /// Whether every check passed.
    pub pass: bool,
}

fn check(report: &mut String, pass: &mut bool, ok: bool, line: &str) {
    report.push_str(if ok { "  ok    " } else { "  FAIL  " });
    report.push_str(line);
    report.push('\n');
    *pass &= ok;
}

/// Runs the shared per-topology checks — parse, config lint, net
/// lint, engine agreement, tier cross-check — appending one report
/// line per check.
fn smoke_topology(report: &mut String, pass: &mut bool, src: &str, quick: bool) {
    let topo = match Topology::parse_toml(src) {
        Ok(t) => t,
        Err(e) => {
            check(report, pass, false, &format!("parse demo topology: {e}"));
            return;
        }
    };
    report.push_str(&format!(
        "  topology `{}`: {} ({} stages, {} edges)\n",
        topo.name,
        topo.chain_label(),
        topo.stages.len(),
        topo.edges.len()
    ));

    // Config-level lint catches graph pathologies (PC006 cycles,
    // PC007 orphans, PC008 policy mismatches) before any net exists.
    let cfg = perf_compose::lint::lint_toml("demo", src);
    check(
        report,
        pass,
        !cfg.has_errors(),
        "config lint of the demo topology is clean",
    );

    let mut comp = match Composite::new(topo, EngineChoice::Compiled) {
        Ok(c) => c,
        Err(e) => {
            check(report, pass, false, &format!("build composite: {e}"));
            return;
        }
    };

    match comp.lint_net() {
        Ok(d) => check(
            report,
            pass,
            !d.has_errors(),
            "pnet lint of the glued net is clean",
        ),
        Err(e) => check(report, pass, false, &format!("lint: {e}")),
    }

    // Incremental and compiled engines must agree exactly on the
    // composite net — same structure, same token costs.
    let items = if quick { 5 } else { 12 };
    let stream = StreamParams { items, seed: 7 };
    match comp.petri_makespan_both(&stream) {
        Ok((interp, compiled)) => check(
            report,
            pass,
            interp == compiled,
            &format!(
                "engines agree on composite makespan: interpreted {interp} == compiled {compiled}"
            ),
        ),
        Err(e) => check(report, pass, false, &format!("makespan: {e}")),
    }

    // Tier cross-check: the ground-truth stream makespan must fall
    // inside the composite NL bounds, and the program-tier recurrence
    // must land in the same decade as the measurement.
    let tiers = (|| -> Result<(f64, f64, f64, f64), perf_core::CoreError> {
        let obs = comp.measure_stream(&stream)?;
        let actual = obs.latency.0 as f64;
        let (lo, hi) = comp.nl_bounds(&stream)?;
        let prog = comp.program_makespan(&stream)?;
        Ok((actual, lo, hi, prog))
    })();
    match tiers {
        Ok((actual, lo, hi, prog)) => {
            check(
                report,
                pass,
                lo <= actual && actual <= hi,
                &format!("NL bounds [{lo:.0}, {hi:.0}] contain measured makespan {actual:.0}"),
            );
            check(
                report,
                pass,
                prog > 0.0 && (prog - actual).abs() / actual < 0.5,
                &format!("program-tier recurrence {prog:.0} within 50% of measured {actual:.0}"),
            );
        }
        Err(e) => check(report, pass, false, &format!("tiers: {e}")),
    }
}

/// Structured results of the per-topology checks, for the E14
/// experiment variant (`exp::run_variant` turns one of these into a
/// table row; `smoke_topology` above renders the same checks as
/// prose).
pub struct TopologyMetrics {
    /// `Topology::chain_label()` of the parsed config.
    pub label: String,
    /// Stage count.
    pub stages: usize,
    /// Edge count.
    pub edges: usize,
    /// Config-level lint (PC0xx) found no errors.
    pub config_lint_clean: bool,
    /// `pnet`-level lint of the glued net found no errors.
    pub net_lint_clean: bool,
    /// Composite makespan under the incremental engine.
    pub interp: u64,
    /// Composite makespan under the compiled stepper.
    pub compiled: u64,
    /// Ground-truth stream makespan from the composed simulators.
    pub measured: f64,
    /// Composite NL lower bound.
    pub nl_lo: f64,
    /// Composite NL upper bound.
    pub nl_hi: f64,
    /// Program-tier recurrence prediction.
    pub prog: f64,
}

impl TopologyMetrics {
    /// Relative error of the program-tier recurrence against the
    /// measured makespan.
    pub fn prog_rel_err(&self) -> f64 {
        (self.prog - self.measured).abs() / self.measured
    }
}

/// Runs the shared per-topology checks and returns them as structured
/// values instead of report lines.
pub fn topology_metrics(src: &str, quick: bool) -> Result<TopologyMetrics, perf_core::CoreError> {
    let topo = Topology::parse_toml(src)?;
    let label = topo.chain_label();
    let stages = topo.stages.len();
    let edges = topo.edges.len();
    let config_lint_clean = !perf_compose::lint::lint_toml("demo", src).has_errors();
    let mut comp = Composite::new(topo, EngineChoice::Compiled)?;
    let net_lint_clean = !comp.lint_net()?.has_errors();
    let stream = StreamParams {
        items: if quick { 5 } else { 12 },
        seed: 7,
    };
    let (interp, compiled) = comp.petri_makespan_both(&stream)?;
    let measured = comp.measure_stream(&stream)?.latency.0 as f64;
    let (nl_lo, nl_hi) = comp.nl_bounds(&stream)?;
    let prog = comp.program_makespan(&stream)?;
    Ok(TopologyMetrics {
        label,
        stages,
        edges,
        config_lint_clean,
        net_lint_clean,
        interp,
        compiled,
        measured,
        nl_lo,
        nl_hi,
        prog,
    })
}

/// Runs the compose smoke. `quick` shrinks stream lengths and the
/// conformance sweep; the checks themselves are identical.
pub fn run(quick: bool) -> ComposeDemo {
    let mut report = String::from("repro --compose: composite pipeline smoke\n");
    let mut pass = true;

    smoke_topology(&mut report, &mut pass, DEMO_TOPOLOGY, quick);
    smoke_topology(&mut report, &mut pass, DEMO_DAG_TOPOLOGY, quick);

    // The composite conformance subjects under the full Budget
    // machinery: nominal channels plus per-stage fault injection, over
    // the linear chain and the branched DAG.
    let accel = run_subject(&mut PipelineSubject::new(), true);
    check(
        &mut report,
        &mut pass,
        accel.pass(),
        &format!(
            "composite conformance (quick): {} cases, {} fault regions",
            accel.cases,
            accel.faults.len()
        ),
    );
    if !accel.pass() {
        report.push_str(&accel.diags.render());
    }
    let dag = run_subject(&mut DagSubject::new(), true);
    check(
        &mut report,
        &mut pass,
        dag.pass(),
        &format!(
            "DAG conformance (quick): {} cases, {} fault regions",
            dag.cases,
            dag.faults.len()
        ),
    );
    if !dag.pass() {
        report.push_str(&dag.diags.render());
    }

    report.push_str(if pass {
        "PASS: composition round-trips both substrates within budget\n"
    } else {
        "FAIL: see lines above\n"
    });
    ComposeDemo { report, pass }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_topology_parses_to_three_stages() {
        let t = Topology::parse_toml(DEMO_TOPOLOGY).unwrap();
        assert_eq!(t.name, "demo-soc");
        assert_eq!(t.stages.len(), 3);
        assert_eq!(t.stages[0].instance, "decode");
        assert_eq!(t.stages[1].accel, "bitcoin-miner");
        assert_eq!(t.stages[1].fields.len(), 4);
        assert_eq!(t.chain_label(), "vta:3>bitcoin-miner:2>protoacc:4");
    }

    #[test]
    fn dag_demo_topology_parses_to_a_diamond() {
        let t = Topology::parse_toml(DEMO_DAG_TOPOLOGY).unwrap();
        assert_eq!(t.name, "demo-soc-dag");
        assert_eq!(t.stages.len(), 4);
        assert_eq!(t.edges.len(), 4);
        assert_eq!(t.stages[0].replicas, 2);
        assert!(
            !t.is_chain(),
            "explicit fan-out must not degrade to a chain"
        );
        t.validate()
            .expect("shipped DAG config must be well-formed");
    }

    #[test]
    fn compose_smoke_passes_quick() {
        let demo = run(true);
        assert!(demo.pass, "{}", demo.report);
        assert!(demo.report.contains("engines agree"));
        assert!(demo.report.contains("demo-soc-dag"));
        assert!(demo.report.contains("DAG conformance"));
    }
}
