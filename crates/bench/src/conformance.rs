//! `repro --conformance`: the differential conformance gate.
//!
//! Thin wrapper over [`perf_conformance::run_all`] that renders the
//! human summary and writes the `BENCH_conformance.json` artifact.

use perf_conformance::ConformanceReport;

/// Runs the harness over all four accelerators.
pub fn run(quick: bool) -> ConformanceReport {
    perf_conformance::run_all(quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_conformance_passes() {
        let rep = run(true);
        assert!(rep.pass(), "{}", rep.render());
        assert_eq!(rep.accels.len(), 6);
        // Every accelerator exercises all four channels nominally and
        // at least one in- and one out-of-contract fault region.
        for a in &rep.accels {
            assert_eq!(a.nominal.len(), 4, "{}: missing channels", a.name);
            assert!(a.faults.iter().any(|f| f.in_contract), "{}", a.name);
            assert!(a.faults.iter().any(|f| !f.in_contract), "{}", a.name);
            assert!(!a.nl.is_empty(), "{}: no NL claims checked", a.name);
        }
        let json = rep.to_json();
        assert!(json.contains("\"accelerator\":\"jpeg-decoder\""));
        assert!(json.contains("\"pass\":true"));
    }
}
