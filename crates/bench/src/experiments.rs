//! Experiment runners E1–E11 (see DESIGN.md for the index).

use perf_core::complexity::{CommentStyle, Complexity};
use perf_core::iface::Metric;
use perf_core::report::{pct, speedup, Table};
use perf_core::stats;
use perf_core::validate::validate;
use perf_core::{CoreError, GroundTruth};
use std::time::Instant;

/// One experiment's rendered output plus machine-readable numbers.
pub struct ExperimentOutput {
    /// Experiment id (`"E1"` ...).
    pub id: &'static str,
    /// Paper artifact it regenerates.
    pub title: &'static str,
    /// The rendered table.
    pub table: Table,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
    /// Named measured values for EXPERIMENTS.md.
    pub values: Vec<(String, f64)>,
}

impl ExperimentOutput {
    /// Renders the experiment as text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n{}", self.id, self.title, self.table);
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// E1 — Fig. 1: natural-language interfaces, printed and checked.
pub fn e1_nl_interfaces() -> Result<ExperimentOutput, CoreError> {
    let mut table = Table::new(vec!["Accelerator", "Interface text", "Claims", "Hold?"]);
    let mut values = Vec::new();

    // JPEG decoder: check claims on a quality sweep and a size sweep.
    {
        let nl = accel_jpeg::interface::nl::interface();
        let mut sim = accel_jpeg::JpegCycleSim::default();
        let mut g = accel_jpeg::ImageGen::new(1001);
        let rate_sweep = g.gen_quality_sweep(128, 128, &[20, 35, 50, 65, 80, 92]);
        let mut samples = Vec::new();
        for img in &rate_sweep {
            let obs = sim.measure(img)?;
            samples.push((img.compress_rate(), Metric::Latency.of(&obs)));
        }
        let v0 = nl.claims[0].check(&samples)?;
        let size_sweep: Vec<_> = [64u32, 128, 192, 256, 384]
            .iter()
            .map(|&d| g.gen_sized(d, d, 60))
            .collect();
        let mut s2 = Vec::new();
        for img in &size_sweep {
            let obs = sim.measure(img)?;
            s2.push((img.orig_size() as f64, Metric::Latency.of(&obs)));
        }
        let v1 = nl.claims[1].check(&s2)?;
        let holds = v0.holds && v1.holds;
        table.row(vec![
            "jpeg-decoder".into(),
            nl.text.chars().take(60).collect::<String>() + "…",
            format!("{}", nl.claims.len()),
            format!("{holds}"),
        ]);
        values.push(("e1_jpeg_claims_hold".into(), f64::from(u8::from(holds))));
    }
    // Bitcoin miner: latency == Loop, area ~ 1/Loop.
    {
        let nl = accel_bitcoin::interface::nl::interface();
        let cfgs: Vec<_> = [1u64, 2, 4, 8, 16, 32, 64]
            .iter()
            .map(|&l| accel_bitcoin::miner::MinerConfig::with_loop(l).unwrap())
            .collect();
        let lat: Vec<(f64, f64)> = cfgs
            .iter()
            .map(|c| (c.loop_ as f64, c.hash_latency() as f64))
            .collect();
        let area: Vec<(f64, f64)> = cfgs
            .iter()
            .map(|c| (c.loop_ as f64, c.area_kge() - 48.0))
            .collect();
        let holds = nl.claims[0].check(&lat)?.holds && nl.claims[2].check(&area)?.holds;
        table.row(vec![
            "bitcoin-miner".into(),
            nl.text.chars().take(60).collect::<String>() + "…",
            format!("{}", nl.claims.len()),
            format!("{holds}"),
        ]);
        values.push(("e1_bitcoin_claims_hold".into(), f64::from(u8::from(holds))));
    }
    // Protoacc: throughput decreasing in nesting.
    {
        let nl = accel_protoacc::interface::nl::interface();
        let mut samples = Vec::new();
        for depth in [0usize, 1, 2, 4, 6] {
            let mut d = accel_protoacc::suite::formats()[0].clone();
            for _ in 0..depth {
                d = accel_protoacc::descriptor::MessageDesc::new(
                    "wrap",
                    vec![
                        accel_protoacc::descriptor::FieldDesc::single(
                            1,
                            accel_protoacc::descriptor::FieldKind::Uint64,
                        ),
                        accel_protoacc::descriptor::FieldDesc::single(
                            2,
                            accel_protoacc::descriptor::FieldKind::Message(Box::new(d)),
                        ),
                    ],
                );
            }
            let mut sim = accel_protoacc::simx::ProtoaccSim::default();
            let w = accel_protoacc::simx::ProtoWorkload::of_format(&d, 30, 5);
            let obs = sim.measure(&w)?;
            samples.push((depth as f64, Metric::Throughput.of(&obs)));
        }
        let holds = nl.claims[0].check(&samples)?.holds;
        table.row(vec![
            "protoacc".into(),
            nl.text.chars().take(60).collect::<String>() + "…",
            format!("{}", nl.claims.len()),
            format!("{holds}"),
        ]);
        values.push(("e1_protoacc_claims_hold".into(), f64::from(u8::from(holds))));
    }
    Ok(ExperimentOutput {
        id: "E1",
        title: "Fig. 1 — natural-language interfaces (checked against the models)",
        table,
        notes: vec![
            "The paper ships these as prose; here each statement also carries \
             machine-checkable claims validated against the cycle models."
                .into(),
        ],
        values,
    })
}

/// E2 — §3 in-text: JPEG program-interface accuracy over random images.
pub fn e2_jpeg_program(n_images: usize) -> Result<ExperimentOutput, CoreError> {
    let mut sim = accel_jpeg::JpegCycleSim::default();
    let iface = accel_jpeg::interface::program::JpegProgramInterface::new()?;
    let mut g = accel_jpeg::ImageGen::new(20230622);
    let imgs = g.gen_many(n_images);
    let lat = validate(&mut sim, &iface, Metric::Latency, &imgs)?;
    let tput = validate(&mut sim, &iface, Metric::Throughput, &imgs)?;
    let mut table = Table::new(vec!["Metric", "Paper avg (max)", "Measured avg (max)", "n"]);
    table.row(vec![
        "latency".into(),
        "2.1% (10.3%)".into(),
        lat.point.paper_style(),
        format!("{n_images}"),
    ]);
    table.row(vec![
        "throughput".into(),
        "2.2% (11.2%)".into(),
        tput.point.paper_style(),
        format!("{n_images}"),
    ]);
    Ok(ExperimentOutput {
        id: "E2",
        title: "Fig. 2 / §3 — JPEG program-interface prediction error",
        table,
        notes: vec!["Shape target: low-single-digit average, low-teens maximum.".into()],
        values: vec![
            ("e2_lat_avg".into(), lat.point.avg),
            ("e2_lat_max".into(), lat.point.max),
            ("e2_tput_avg".into(), tput.point.avg),
            ("e2_tput_max".into(), tput.point.max),
        ],
    })
}

/// E3 — §3 in-text: Protoacc program interface over the 32-format
/// suite.
pub fn e3_protoacc_program(instances: usize) -> Result<ExperimentOutput, CoreError> {
    let mut sim = accel_protoacc::simx::ProtoaccSim::default();
    let iface = accel_protoacc::interface::program::ProtoaccProgramInterface::new()?;
    let tput_workloads: Vec<_> = accel_protoacc::suite::formats()
        .iter()
        .map(|d| accel_protoacc::simx::ProtoWorkload::of_format(d, instances, 42))
        .collect();
    let tput = validate(&mut sim, &iface, Metric::Throughput, &tput_workloads)?;
    let lat_workloads: Vec<_> = accel_protoacc::suite::formats()
        .iter()
        .map(|d| accel_protoacc::simx::ProtoWorkload::of_format(d, 1, 42))
        .collect();
    let lat = validate(&mut sim, &iface, Metric::Latency, &lat_workloads)?;
    let mut table = Table::new(vec!["Metric", "Paper", "Measured"]);
    table.row(vec![
        "throughput avg (max) err".into(),
        "5.9% (13.3%)".into(),
        tput.point.paper_style(),
    ]);
    table.row(vec![
        "latency within bounds".into(),
        "always".into(),
        format!("{}/32", lat.bounds.within),
    ]);
    Ok(ExperimentOutput {
        id: "E3",
        title: "Fig. 3 / §3 — Protoacc program-interface accuracy (32 formats)",
        table,
        notes: vec![format!(
            "bounds coverage {} with mean relative width {:.1}",
            pct(lat.bounds.coverage()),
            lat.bounds.avg_rel_width
        )],
        values: vec![
            ("e3_tput_avg".into(), tput.point.avg),
            ("e3_tput_max".into(), tput.point.max),
            ("e3_bounds_coverage".into(), lat.bounds.coverage()),
        ],
    })
}

/// One table row plus the named measured values it contributes —
/// what a per-axis-variant runner ([`e4_row`], [`e9_row`]) returns.
pub type RowAndValues = (Vec<String>, Vec<(String, f64)>);

/// Header of the E4 table; [`e4_row`] rows line up with it.
pub const E4_HEADERS: [&str; 7] = [
    "Accel",
    "Latency err paper",
    "Latency err ours",
    "Tput err paper",
    "Tput err ours",
    "Complexity paper",
    "Complexity ours",
];

/// One variant of E4: the Table-1 row for `accel` (`"jpeg"` or
/// `"vta"`) at `n` workloads, as (cells, named values).
pub fn e4_row(accel: &str, n: usize) -> Result<RowAndValues, CoreError> {
    match accel {
        "jpeg" => {
            let mut sim = accel_jpeg::JpegCycleSim::default();
            let iface = accel_jpeg::interface::petri::JpegPetriInterface::new()?;
            let mut g = accel_jpeg::ImageGen::new(50);
            let imgs = g.gen_many(n);
            let lat = validate(&mut sim, &iface, Metric::Latency, &imgs)?;
            let tput = validate(&mut sim, &iface, Metric::Throughput, &imgs)?;
            let impl_src = accel_jpeg::implementation_sources().join("\n");
            let cx = Complexity::measure(
                iface.source(),
                CommentStyle::Hash,
                &impl_src,
                CommentStyle::Slashes,
            );
            Ok((
                vec![
                    "JPEG".into(),
                    "0.09% (0.50%)".into(),
                    lat.point.paper_style(),
                    "0.09% (0.51%)".into(),
                    tput.point.paper_style(),
                    "2.5%".into(),
                    cx.paper_style(),
                ],
                vec![
                    ("e4_jpeg_lat_avg".into(), lat.point.avg),
                    ("e4_jpeg_lat_max".into(), lat.point.max),
                    ("e4_jpeg_complexity".into(), cx.ratio()),
                ],
            ))
        }
        "vta" => {
            let mut sim =
                accel_vta::VtaCycleSim::new_timing_only(accel_vta::VtaHwConfig::default());
            let iface = accel_vta::interface::petri::VtaPetriInterface::new_full()?;
            let mut g = accel_vta::gen::ProgGen::new(1500);
            let progs = g.gen_many(n);
            let lat = validate(&mut sim, &iface, Metric::Latency, &progs)?;
            let tput = validate(&mut sim, &iface, Metric::Throughput, &progs)?;
            let impl_src = accel_vta::implementation_sources().join("\n");
            let cx = Complexity::measure(
                iface.source(),
                CommentStyle::Hash,
                &impl_src,
                CommentStyle::Slashes,
            );
            Ok((
                vec![
                    "VTA".into(),
                    "1.49% (9.3%)".into(),
                    lat.point.paper_style(),
                    "1.44% (8.55%)".into(),
                    tput.point.paper_style(),
                    "2.6%".into(),
                    cx.paper_style(),
                ],
                vec![
                    ("e4_vta_lat_avg".into(), lat.point.avg),
                    ("e4_vta_lat_max".into(), lat.point.max),
                    ("e4_vta_complexity".into(), cx.ratio()),
                ],
            ))
        }
        other => Err(CoreError::Artifact(format!(
            "E4 has no accelerator `{other}` (have: jpeg, vta)"
        ))),
    }
}

/// E4 — Table 1: Petri-net accuracy and complexity for JPEG and VTA.
pub fn e4_table1(n_jpeg: usize, n_vta: usize) -> Result<ExperimentOutput, CoreError> {
    let mut table = Table::new(E4_HEADERS.to_vec());
    let mut values = Vec::new();
    for (accel, n) in [("jpeg", n_jpeg), ("vta", n_vta)] {
        let (row, vals) = e4_row(accel, n)?;
        table.row(row);
        values.extend(vals);
    }
    Ok(ExperimentOutput {
        id: "E4",
        title: "Table 1 — Petri-net prediction accuracy and complexity",
        table,
        notes: vec![
            "Complexity = LoC(.pnet) / LoC(cycle-accurate implementation); our \
             implementation is Rust rather than Verilog, so the ratio's scale differs \
             while staying in the low single-digit percent."
                .into(),
        ],
        values,
    })
}

/// E5 — §3 in-text: autotuner profiling speedup, Petri net vs
/// cycle-accurate simulation, over random instruction sequences.
pub fn e5_profiling_speedup(n_progs: usize) -> Result<ExperimentOutput, CoreError> {
    let mut sim = accel_vta::VtaCycleSim::default(); // RTL fidelity.
    let petri = accel_vta::interface::petri::VtaPetriInterface::new_full()?;
    let mut g = accel_vta::gen::ProgGen::new(7777);
    // The paper's 1500 sequences include long kernels: widen the block
    // range so sequence lengths span two orders of magnitude.
    g.cfg.blocks = (1, 96);
    let progs = g.gen_many(n_progs);
    let mut speedups = Vec::with_capacity(n_progs);
    let mut total_sim = 0.0;
    let mut total_petri = 0.0;
    for p in &progs {
        let t0 = Instant::now();
        let _ = sim.measure(p)?;
        let t_sim = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = petri.run(p)?;
        let t_petri = t0.elapsed().as_secs_f64();
        total_sim += t_sim;
        total_petri += t_petri;
        speedups.push(t_sim / t_petri.max(1e-9));
    }
    let max = stats::max(&speedups);
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = stats::mean(&speedups);
    let mut table = Table::new(vec!["Quantity", "Paper", "Measured"]);
    table.row(vec!["max speedup".into(), "1312x".into(), speedup(max)]);
    table.row(vec!["min speedup".into(), "2.1x".into(), speedup(min)]);
    table.row(vec!["mean speedup".into(), "—".into(), speedup(mean)]);
    table.row(vec![
        "total profiling time".into(),
        "minutes–hours vs seconds".into(),
        format!("{total_sim:.2}s vs {total_petri:.2}s"),
    ]);
    Ok(ExperimentOutput {
        id: "E5",
        title: "§3 — TVM-style profiling: Petri net vs cycle-accurate simulation",
        table,
        notes: vec![
            "Our cycle model evaluates the datapath every cycle (Verilator-class \
             cost) but remains lighter than true RTL simulation, so absolute \
             speedups sit below the paper's 1312x while preserving the shape: \
             always > 1x and growing with sequence length."
                .into(),
        ],
        values: vec![
            ("e5_max_speedup".into(), max),
            ("e5_min_speedup".into(), min),
            ("e5_mean_speedup".into(), mean),
        ],
    })
}

/// E6 — §2 Example #2 / §4: serializer crossover study.
pub fn e6_crossover() -> Result<ExperimentOutput, CoreError> {
    let sweep = perf_workloads::rpc::crossover_sweep(42);
    let mut table = Table::new(vec!["Wire bytes", "CPU", "Optimus", "Protoacc", "Winner"]);
    for c in &sweep {
        table.row(vec![
            format!("{}", c.bytes),
            format!("{:.0}", c.cpu),
            format!("{:.0}", c.optimus),
            format!("{:.0}", c.protoacc),
            c.winner().into(),
        ]);
    }
    let (peak, eff) = perf_workloads::rpc::peak_vs_realistic(3, 400);
    let small = sweep.iter().find(|c| c.bytes >= 100).expect("covered");
    let large = sweep.iter().find(|c| c.bytes >= 8192).expect("covered");
    Ok(ExperimentOutput {
        id: "E6",
        title: "§2 Ex.2 / §4 — serialization backend crossover",
        table,
        notes: vec![
            format!(
                "small objects (~{} B): winner {}; large objects (~{} B): winner {}",
                small.bytes,
                small.winner(),
                large.bytes,
                large.winner()
            ),
            format!(
                "datasheet peak vs realistic mix: {:.2} vs {:.2} B/cycle ({:.1}x gap; paper: 33 vs 14 Gb/s = 2.4x)",
                peak,
                eff,
                peak / eff
            ),
        ],
        values: vec![
            ("e6_peak_over_eff".into(), peak / eff),
            (
                "e6_small_pa_loses_to_cpu".into(),
                f64::from(u8::from(small.protoacc > small.cpu)),
            ),
        ],
    })
}

/// E7 — §2 Example #1: SoC design from interfaces.
pub fn e7_soc_design() -> Result<ExperimentOutput, CoreError> {
    let space = perf_workloads::soc::design_space()?;
    let mut table = Table::new(vec![
        "Loop",
        "Area (kGE)",
        "Latency (cyc/hash)",
        "Tput (hash/cyc)",
        "Validated latency",
    ]);
    let mut worst_rel = 0.0f64;
    for p in &space {
        let (claimed, measured) = perf_workloads::soc::validate_point(p)?;
        worst_rel = worst_rel.max((claimed - measured).abs() / measured);
        table.row(vec![
            format!("{}", p.loop_),
            format!("{:.0}", p.area_kge),
            format!("{:.0}", p.latency),
            format!("{:.4}", p.throughput),
            format!("{measured:.2}"),
        ]);
    }
    let pick = perf_workloads::soc::pick_within_area(300.0)?.expect("budget feasible");
    Ok(ExperimentOutput {
        id: "E7",
        title: "§2 Ex.1 — SoC sizing of the Bitcoin miner from its interface",
        table,
        notes: vec![
            format!(
                "under a 300 kGE budget the interface picks Loop = {} ({:.0} kGE, {} cyc/hash)",
                pick.loop_, pick.area_kge, pick.latency
            ),
            format!(
                "interface-claimed latencies validated within {} of the cycle model",
                pct(worst_rel)
            ),
        ],
        values: vec![
            ("e7_pick_loop".into(), pick.loop_ as f64),
            ("e7_worst_validation_err".into(), worst_rel),
        ],
    })
}

/// E8 — §5 strawman: end-to-end offload prediction.
pub fn e8_offload(n_requests: usize) -> Result<ExperimentOutput, CoreError> {
    let trace = perf_workloads::offload::record_trace(n_requests, 11);
    let s = perf_workloads::offload::run_study(&trace)?;
    let (pred_sp, actual_sp) = s.speedups();
    let mut table = Table::new(vec!["Run", "End-to-end cycles"]);
    table.row(vec![
        "software serializer".into(),
        format!("{}", s.software),
    ]);
    table.row(vec![
        "offload (interface-predicted)".into(),
        format!("{:.0}", s.predicted_offload),
    ]);
    table.row(vec![
        "offload (accelerator model)".into(),
        format!("{}", s.actual_offload),
    ]);
    Ok(ExperimentOutput {
        id: "E8",
        title: "§5 — record/replay end-to-end offload prediction",
        table,
        notes: vec![format!(
            "prediction error {}; speedup predicted {:.2}x vs measured {:.2}x",
            pct(s.prediction_error()),
            pred_sp,
            actual_sp
        )],
        values: vec![
            ("e8_prediction_error".into(), s.prediction_error()),
            ("e8_actual_speedup".into(), actual_sp),
        ],
    })
}

/// Header of the E9 table; [`e9_row`] rows line up with it.
pub const E9_HEADERS: [&str; 4] = [
    "Net",
    "Avg (max) latency err",
    "Events/program",
    "Transitions",
];

/// One variant of E9: the ablation row for `net` (`"full"` or
/// `"lite"`) at `n` programs, as (cells, named values).
pub fn e9_row(net: &str, n: usize) -> Result<RowAndValues, CoreError> {
    let (label, iface) = match net {
        "full" => (
            "full (dep tokens)",
            accel_vta::interface::petri::VtaPetriInterface::new_full()?,
        ),
        "lite" => (
            "lite (corner-cut)",
            accel_vta::interface::petri::VtaPetriInterface::new_lite()?,
        ),
        other => {
            return Err(CoreError::Artifact(format!(
                "E9 has no net variant `{other}` (have: full, lite)"
            )))
        }
    };
    let mut sim = accel_vta::VtaCycleSim::new_timing_only(accel_vta::VtaHwConfig::default());
    let mut g = accel_vta::gen::ProgGen::new(99);
    let progs = g.gen_many(n);
    let r = validate(&mut sim, &iface, Metric::Latency, &progs)?;
    let mut events = 0.0;
    for p in &progs {
        events += iface.run(p)?.events as f64;
    }
    Ok((
        vec![
            label.into(),
            r.point.paper_style(),
            format!("{:.0}", events / n as f64),
            format!("{}", iface.net().transitions().len()),
        ],
        vec![(format!("e9_{net}_avg"), r.point.avg)],
    ))
}

/// E9 — ablation: full vs corner-cut VTA Petri net.
pub fn e9_petri_ablation(n_progs: usize) -> Result<ExperimentOutput, CoreError> {
    let mut table = Table::new(E9_HEADERS.to_vec());
    let mut values = Vec::new();
    for net in ["full", "lite"] {
        let (row, vals) = e9_row(net, n_progs)?;
        table.row(row);
        values.extend(vals);
    }
    Ok(ExperimentOutput {
        id: "E9",
        title: "Ablation — corner-cutting the VTA Petri net (§3/§5)",
        table,
        notes: vec![
            "Dropping the dependency-token places makes the net smaller and \
             cheaper but blind to cross-module stalls — the error the paper \
             attributes to 'deliberately cutting corners', magnified."
                .into(),
        ],
        values,
    })
}

/// E10 — autotuner quality: does Petri-net costing pick the same
/// schedules as cycle-accurate costing?
pub fn e10_autotune_quality() -> Result<ExperimentOutput, CoreError> {
    use perf_autotune::cost::{CostBackend, CycleCost, PetriCost};
    use perf_autotune::{GemmWorkload, Tuner};
    let w = GemmWorkload::new(256, 256, 256);
    let mut tuner = Tuner::new(w, 5)?;
    let mut cyc = CycleCost::new();
    let mut pet = PetriCost::new()?;
    let truth = tuner.exhaustive(&mut cyc)?;
    let approx = tuner.exhaustive(&mut pet)?;
    let xs: Vec<f64> = truth.iter().map(|(_, c)| *c).collect();
    let ys: Vec<f64> = approx.iter().map(|(_, c)| *c).collect();
    let rho = stats::spearman(&xs, &ys);
    let best_true = truth
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("nonempty");
    let best_petri = approx
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("nonempty");
    // Cost (under ground truth) of the schedule the petri backend picks.
    let petri_choice_true_cost = truth
        .iter()
        .find(|(s, _)| *s == best_petri.0)
        .expect("same space")
        .1;
    let regret = petri_choice_true_cost / best_true.1 - 1.0;
    let mut table = Table::new(vec!["Quantity", "Value"]);
    table.row(vec![
        "schedule space".into(),
        format!("{} tilings of 256^3 GEMM", tuner.space.len()),
    ]);
    table.row(vec![
        "rank correlation (Spearman)".into(),
        format!("{rho:.3}"),
    ]);
    table.row(vec![
        "best schedule (cycle-accurate)".into(),
        format!("{:?} @ {:.0} cyc", best_true.0, best_true.1),
    ]);
    table.row(vec![
        "best schedule (petri)".into(),
        format!("{:?} @ {:.0} cyc", best_petri.0, best_petri.1),
    ]);
    table.row(vec!["tuning regret".into(), pct(regret)]);
    // Fixed units: `Duration`'s `{:?}` switches between ms and s,
    // which defeats the digit-masked drift comparison in
    // `exp::check_doc`.
    table.row(vec![
        "profiling time".into(),
        format!(
            "{:.0} ms vs {:.0} ms",
            cyc.time_spent().as_secs_f64() * 1e3,
            pet.time_spent().as_secs_f64() * 1e3
        ),
    ]);
    Ok(ExperimentOutput {
        id: "E10",
        title: "Autotuner quality — Petri-net costing matches cycle-accurate tuning",
        table,
        notes: vec![
            "The IR is useful for tuning if it ranks candidates like the ground \
             truth; regret is the end-to-end cost of trusting it."
                .into(),
        ],
        values: vec![("e10_spearman".into(), rho), ("e10_regret".into(), regret)],
    })
}

/// E11 — §5: composing an accelerator net with the reusable
/// interconnect component (the SmartNIC case).
pub fn e11_noc_composition() -> Result<ExperimentOutput, CoreError> {
    let rows = perf_workloads::smartnic::sweep(40)?;
    let mut table = Table::new(vec![
        "Msg bytes",
        "Engine-only cyc/msg",
        "Composed cyc/msg",
        "Engine optimism",
    ]);
    for r in &rows {
        table.row(vec![
            format!("{}", r.bytes),
            format!("{:.1}", r.engine_only),
            format!("{:.1}", r.composed),
            format!("{:.2}x", r.optimism()),
        ]);
    }
    let small = rows.first().expect("sweep nonempty").optimism();
    let large = rows.last().expect("sweep nonempty").optimism();
    Ok(ExperimentOutput {
        id: "E11",
        title: "§5 — accelerator net composed with a reusable interconnect component",
        table,
        notes: vec![format!(
            "engine-only and composed nets agree for small messages ({small:.2}x) and              diverge once the shared channel saturates ({large:.2}x at 4 KB) — the              component-reuse answer to §5's SmartNIC question"
        )],
        values: vec![
            ("e11_small_optimism".into(), small),
            ("e11_large_optimism".into(), large),
        ],
    })
}

/// Runs every experiment. `quick` trims sample counts for CI-scale
/// runs; the full configuration matches the paper's sample sizes.
pub fn run_all(quick: bool) -> Result<Vec<ExperimentOutput>, CoreError> {
    let (n_jpeg_e2, n_jpeg_e4, n_vta_e4, n_e5, n_e8, n_e9) = if quick {
        (120, 25, 80, 40, 40, 60)
    } else {
        (1500, 50, 1500, 1500, 200, 300)
    };
    Ok(vec![
        e1_nl_interfaces()?,
        e2_jpeg_program(n_jpeg_e2)?,
        e3_protoacc_program(if quick { 12 } else { 40 })?,
        e4_table1(n_jpeg_e4, n_vta_e4)?,
        e5_profiling_speedup(n_e5)?,
        e6_crossover()?,
        e7_soc_design()?,
        e8_offload(n_e8)?,
        e9_petri_ablation(n_e9)?,
        e10_autotune_quality()?,
        e11_noc_composition()?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_all_claims_hold() {
        let out = e1_nl_interfaces().unwrap();
        for (k, v) in &out.values {
            assert_eq!(*v, 1.0, "{k} should hold");
        }
    }

    #[test]
    fn e2_shape_matches_paper() {
        let out = e2_jpeg_program(80).unwrap();
        let get = |k: &str| out.values.iter().find(|(n, _)| n == k).unwrap().1;
        assert!(get("e2_lat_avg") < 0.06, "avg {:.4}", get("e2_lat_avg"));
        assert!(get("e2_lat_max") < 0.30);
    }

    #[test]
    fn e4_shape_matches_paper() {
        let out = e4_table1(15, 40).unwrap();
        let get = |k: &str| out.values.iter().find(|(n, _)| n == k).unwrap().1;
        assert!(get("e4_jpeg_lat_avg") < 0.01);
        assert!(get("e4_vta_lat_avg") < 0.05);
        assert!(get("e4_jpeg_complexity") < 0.10);
        assert!(get("e4_vta_complexity") < 0.12);
    }

    #[test]
    fn e5_speedup_always_above_one() {
        let out = e5_profiling_speedup(10).unwrap();
        let get = |k: &str| out.values.iter().find(|(n, _)| n == k).unwrap().1;
        assert!(get("e5_min_speedup") > 1.0);
        assert!(get("e5_max_speedup") > get("e5_min_speedup"));
    }

    #[test]
    fn e9_lite_errs_more_than_full() {
        let out = e9_petri_ablation(25).unwrap();
        let get = |k: &str| out.values.iter().find(|(n, _)| n == k).unwrap().1;
        assert!(get("e9_lite_avg") > get("e9_full_avg") * 3.0);
    }

    #[test]
    fn outputs_render() {
        let out = e7_soc_design().unwrap();
        let text = out.render();
        assert!(text.contains("E7"));
        assert!(text.contains("Loop"));
    }
}
