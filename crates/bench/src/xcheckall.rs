//! The repo-wide cross-tier consistency audit behind `repro --xcheck`.
//!
//! Runs `perf_xcheck` over every shipped accelerator (NL claims vs.
//! program-tier bounds vs. Petri-net structural bounds) and over the
//! demo composite pipeline (topology lints + glued-net checks) — all
//! statically, without a single simulation. CI gates merges on a clean
//! report: the three tiers of every shipped interface provably agree
//! on their guaranteed bounds, or the build fails.

use perf_compose::Topology;
use perf_core::{Diagnostics, Severity};

/// One check target's findings.
pub struct XcheckResult {
    /// Accelerator name, or the composite pipeline's label.
    pub name: String,
    /// All cross-tier findings for this target.
    pub diagnostics: Diagnostics,
}

fn xcheck_demo_config(out: &mut Vec<XcheckResult>, src: &str) {
    match Topology::parse_toml(src) {
        Ok(topo) => out.push(XcheckResult {
            name: format!("composite `{}`", topo.name),
            diagnostics: perf_xcheck::xcheck_topology(&topo),
        }),
        Err(e) => {
            let mut ds = Diagnostics::new();
            ds.push(
                perf_core::diag::Diagnostic::error(
                    "PC005",
                    format!("demo topology failed to parse: {e}"),
                )
                .with_origin("composedemo"),
            );
            out.push(XcheckResult {
                name: "composite demo".to_string(),
                diagnostics: ds,
            });
        }
    }
}

/// Cross-checks every shipped accelerator plus the two demo composite
/// pipelines (linear chain and fan-out/fan-in DAG — the latter runs
/// the static Petri bound extractor over a *branched* glued net).
pub fn xcheck_all() -> Vec<XcheckResult> {
    let mut out = Vec::new();
    for accel in perf_xcheck::accels() {
        out.push(XcheckResult {
            name: accel.to_string(),
            diagnostics: perf_xcheck::xcheck_accel(accel)
                .expect("shipped accelerator names are registered"),
        });
    }
    xcheck_demo_config(&mut out, crate::composedemo::DEMO_TOPOLOGY);
    xcheck_demo_config(&mut out, crate::composedemo::DEMO_DAG_TOPOLOGY);
    out
}

/// Renders the combined audit. Returns `(report, clean)` where `clean`
/// is false if any target has error- or warning-severity findings
/// (infos — expected rate-structure notes — don't gate). With `json`,
/// the report is one JSON object per target.
pub fn report(json: bool) -> (String, bool) {
    let mut out = String::new();
    let mut clean = true;
    for r in xcheck_all() {
        let errors = r.diagnostics.count(Severity::Error);
        let warnings = r.diagnostics.count(Severity::Warning);
        if errors > 0 || warnings > 0 {
            clean = false;
        }
        if json {
            out.push_str(&format!(
                "{{\"target\":{:?},\"errors\":{errors},\"warnings\":{warnings},\
                 \"diagnostics\":{}}}\n",
                r.name,
                r.diagnostics.render_json()
            ));
        } else {
            out.push_str(&format!("== {} ==\n{}\n", r.name, r.diagnostics.render()));
        }
    }
    if !json {
        out.push_str(if clean {
            "xcheck: all three tiers agree on every shipped interface\n"
        } else {
            "xcheck: FINDINGS ABOVE — shipped interface tiers disagree\n"
        });
    }
    (out, clean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_artifacts_are_cross_tier_consistent() {
        let (report, clean) = report(false);
        assert!(clean, "{report}");
        // Four accelerators plus the chain and DAG composite demos.
        assert_eq!(xcheck_all().len(), 6);
    }

    #[test]
    fn json_report_is_one_object_per_target() {
        let (report, clean) = report(true);
        assert!(clean, "{report}");
        assert_eq!(report.lines().count(), 6);
        for line in report.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }
}
