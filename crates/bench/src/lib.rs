//! The benchmark harness: one runner per paper table/figure.
//!
//! Every artifact in the paper's evaluation maps to a function here
//! (see `DESIGN.md`'s experiment index). The `repro` binary prints them
//! all; the Criterion benches under `benches/` exercise the same
//! runners at reduced scale; integration tests assert the headline
//! shapes.

pub mod composedemo;
pub mod conformance;
pub mod enginebench;
pub mod exp;
pub mod experiments;
pub mod lintall;
pub mod tracedemo;
pub mod xcheckall;

pub use experiments::{run_all, ExperimentOutput};
