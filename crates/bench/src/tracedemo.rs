//! The `repro --trace` artifact: one traced run of every execution
//! substrate, collected into a single report.
//!
//! Three layers feed the same observability surface:
//!
//! * the Petri-net engine runs a reference pipeline with firing-trace
//!   provenance enabled, and the critical-path extractor decomposes
//!   the end-to-end latency into per-transition service and queueing
//!   cycles;
//! * the four accelerator cycle models emit per-stage busy/stall/idle
//!   accounting through [`perf_sim::TraceSink`];
//! * the autotuner evaluates a handful of candidate schedules through
//!   a [`perf_autotune::TracedCost`] decorator, logging one span per
//!   evaluation (backend, cache hit/miss, wall nanoseconds).
//!
//! The result renders twice: a JSON object (machine-readable) and
//! folded-stack text ready for flame-graph tooling.

use accel_bitcoin::miner::{MineJob, MinerCycleSim};
use accel_jpeg::{ImageGen, JpegCycleSim, JpegHwConfig};
use accel_protoacc::simx::ProtoWorkload;
use accel_protoacc::{FieldDesc, FieldKind, MessageDesc, ProtoaccSim};
use accel_vta::cycle::VtaCycleSim;
use perf_autotune::{CachedCost, CostBackend, GemmWorkload, PetriCost, Schedule, TracedCost};
use perf_compose::{Composite, StreamParams, Topology};
use perf_core::query::EngineChoice;
use perf_core::{ChromeTrace, MemorySink};
use perf_iface_lang::Value;
use perf_petri::engine::{Engine, Options};
use perf_petri::net::{Net, NetBuilder};
use perf_petri::token::Token;
use perf_petri::trace::{
    chrome_trace_events, critical_path, trace_report_json, DEFAULT_TRACE_CAPACITY,
};
use perf_petri::SimResult;

/// The rendered trace report.
pub struct TraceDemo {
    /// Combined JSON: the Petri critical-path report plus the
    /// stage/span records of every other substrate.
    pub json: String,
    /// Folded stacks (one `frame;frame;state count` line each) for the
    /// whole report.
    pub folded: String,
    /// Chrome JSON trace (`repro --trace --perfetto`): pid 0 is the
    /// reference Petri pipeline, pid 1 the composite demo SoC, pid 2
    /// the per-stage accounting of the cycle models and autotuner
    /// spans. Open at ui.perfetto.dev.
    pub chrome: String,
}

/// The reference net: a three-stage pipeline with a deliberately slow
/// middle stage behind a bounded queue, so the critical path contains
/// both service and queueing segments.
fn reference_net() -> Net {
    let mut b = NetBuilder::new("refpipe");
    let src = b.place("src", None);
    let q1 = b.place("q1", Some(4));
    let q2 = b.place("q2", Some(4));
    let done = b.sink("done");
    let pass = |ts: &[Token]| vec![ts[0].data.clone()];
    b.transition("decode", &[src], &[q1], |_| 2, pass);
    b.transition("transform", &[q1], &[q2], |_| 9, pass);
    b.transition("writeback", &[q2], &[done], |_| 3, pass);
    b.build().expect("reference net is valid")
}

/// Runs the reference net with tracing on and returns the net and its
/// result (completions, counters, firing trace).
pub fn traced_reference_run(tokens: usize) -> (Net, SimResult) {
    let net = reference_net();
    let mut eng = Engine::new(
        &net,
        Options {
            trace: Some(DEFAULT_TRACE_CAPACITY),
            ..Options::default()
        },
    );
    let src = net.place_id("src").expect("net has src");
    for i in 0..tokens {
        eng.inject(src, Token::at(Value::num(i as f64), 0));
    }
    let res = eng.run().expect("reference net cannot deadlock");
    (net, res)
}

/// Runs every substrate traced and renders the combined report.
pub fn run_trace_demo(quick: bool) -> TraceDemo {
    let (jpeg_px, msgs, nonces, tokens) = if quick {
        (32, 5, 200, 16)
    } else {
        (128, 20, 2_000, 64)
    };

    // 1. Petri-net engine with firing trace + critical path.
    let (net, res) = traced_reference_run(tokens);
    let path = critical_path(&res).expect("traced run completes");
    debug_assert_eq!(path.total(), res.makespan);
    let petri_json = trace_report_json(&net, &res, Some(&path));
    let petri_folded = path.to_folded(&net);

    // 2. Accelerator cycle models, all emitting into one sink.
    let mut sink = MemorySink::new();
    let mut jpeg = JpegCycleSim::new(JpegHwConfig::default());
    jpeg.decode(&ImageGen::new(11).gen_sized(jpeg_px, jpeg_px, 60));
    jpeg.trace_stages(&mut sink);

    let mut vta = VtaCycleSim::new_timing_only(accel_vta::VtaHwConfig::default());
    let gemm = GemmWorkload::new(64, 64, 64);
    vta.run(
        &Schedule {
            tm: 2,
            tn: 2,
            tk: 2,
        }
        .lower(&gemm),
    );
    vta.trace_stages(&mut sink);

    let mut proto = ProtoaccSim::default();
    let desc = MessageDesc::new(
        "demo",
        (0..16)
            .map(|i| FieldDesc::single(i + 1, FieldKind::Uint64))
            .collect(),
    );
    proto.serialize_stream(&ProtoWorkload::of_format(&desc, msgs, 13).messages);
    proto.trace_stages(&mut sink);

    let mut miner = MinerCycleSim::default();
    miner.mine(&MineJob::random(17, nonces, 256));
    miner.trace_stages(&mut sink);

    // 3. Autotuner evaluation spans through the same sink: evaluate a
    // few candidates twice so both cache misses and hits appear.
    let mut traced = TracedCost::new(
        CachedCost::new(PetriCost::new().expect("shipped net parses")),
        MemorySink::new(),
    );
    let candidates = [
        Schedule {
            tm: 1,
            tn: 1,
            tk: 1,
        },
        Schedule {
            tm: 2,
            tn: 2,
            tk: 2,
        },
        Schedule {
            tm: 4,
            tn: 4,
            tk: 2,
        },
    ];
    for s in candidates.iter().chain(candidates.iter()) {
        traced
            .cost(&s.lower(&gemm))
            .expect("demo schedules evaluate");
    }
    let (_, spans) = traced.into_parts();
    sink.spans.extend(spans.spans);

    let json = format!(
        "{{\n\"petri\": {},\n\"components\": {}}}\n",
        petri_json.trim_end(),
        sink.to_json()
    );
    let folded = format!("{petri_folded}{}", sink.to_folded());

    // 4. Chrome JSON trace: one process per substrate. The two Petri
    // exports assert the telescoping invariant — critical-path slice
    // durations sum exactly to each run's reported makespan.
    let mut ct = ChromeTrace::new();
    let attributed = chrome_trace_events(&net, &res, Some(&path), 0, &mut ct);
    assert_eq!(
        attributed, res.makespan,
        "reference-net critical path must telescope to the makespan"
    );
    let topo = Topology::parse_toml(crate::composedemo::DEMO_TOPOLOGY)
        .expect("shipped demo topology parses");
    let mut comp = Composite::new(topo, EngineChoice::Compiled).expect("demo composite builds");
    let stream = StreamParams {
        items: if quick { 5 } else { 12 },
        seed: 7,
    };
    let (cnet, cres) = comp
        .petri_traced(&stream)
        .expect("demo composite runs traced");
    let cpath = critical_path(&cres).expect("traced composite run has a path");
    let cattr = chrome_trace_events(&cnet, &cres, Some(&cpath), 1, &mut ct);
    assert_eq!(
        cattr, cres.makespan,
        "composite critical path must telescope to the makespan"
    );
    ct.process_name(2, "components");
    sink.chrome_events(2, &mut ct);
    let chrome = ct.to_json();

    TraceDemo {
        json,
        folded,
        chrome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_attribution_sums_to_reported_latency() {
        // The acceptance check: over the reference net, the critical
        // path's attributed cycles reproduce the engine's end-to-end
        // latency exactly (integer arithmetic — well within 1e-9).
        let (_, res) = traced_reference_run(64);
        let path = critical_path(&res).expect("traced");
        assert!(res.makespan > 0);
        assert!(
            (path.total() as f64 - res.makespan as f64).abs() < 1e-9,
            "attributed {} vs makespan {}",
            path.total(),
            res.makespan
        );
        assert_eq!(path.end, res.makespan);
        // The bounded queue ahead of the slow middle stage makes the
        // last token wait: queueing, not service, must dominate the
        // attributed latency.
        let by_kind = |k: perf_petri::trace::SegmentKind| -> u64 {
            path.segments
                .iter()
                .filter(|s| s.kind == k)
                .map(|s| s.cycles)
                .sum()
        };
        let queue = by_kind(perf_petri::trace::SegmentKind::Queue);
        let service = by_kind(perf_petri::trace::SegmentKind::Service);
        assert!(
            queue > service,
            "backpressured pipeline should be queue-dominated: queue {queue}, service {service}"
        );
        // All three stages appear on the chain from injection to the
        // last completion.
        for t in [0usize, 1, 2] {
            assert!(path.segments.iter().any(|s| s.trans == Some(t)));
        }
    }

    #[test]
    fn demo_renders_all_three_substrates() {
        let demo = run_trace_demo(true);
        // Petri section.
        assert!(demo.json.contains("\"net\": \"refpipe\""));
        assert!(demo.json.contains("\"critical_path_total\""));
        // Accelerator stage records.
        for comp in ["jpeg", "vta", "protoacc", "bitcoin"] {
            assert!(
                demo.json.contains(&format!("\"component\": \"{comp}\"")),
                "missing {comp} in JSON"
            );
        }
        // Autotuner spans, with both cache outcomes present.
        assert!(demo.json.contains("cache=miss"));
        assert!(demo.json.contains("cache=hit"));
        // Folded stacks cover the same ground.
        assert!(demo.folded.contains("refpipe;transform;service"));
        assert!(demo.folded.contains("jpeg;"));
        assert!(demo.folded.contains("autotune;petri-net"));
        // Every folded line is `frames count`.
        for line in demo.folded.lines() {
            let (_, count) = line.rsplit_once(' ').expect("space-separated count");
            count.parse::<u64>().expect("numeric count");
        }
    }

    #[test]
    fn chrome_export_has_all_processes_and_telescopes() {
        // `run_trace_demo` itself asserts the telescoping invariant
        // for both Petri processes (reference net and the composite
        // demo SoC); here we check the document structure.
        let demo = run_trace_demo(true);
        assert!(demo.chrome.contains("\"traceEvents\""));
        assert!(demo.chrome.ends_with("]}\n"));
        assert!(demo.chrome.contains("petri:refpipe"));
        assert!(demo.chrome.contains("petri:demo-soc"));
        assert!(demo.chrome.contains("\"name\":\"components\""));
        assert!(demo.chrome.contains("critical-path"));
        // Per-stage accounting tracks from the cycle models.
        assert!(demo.chrome.contains("jpeg."));
        assert!(demo.chrome.contains("autotune.spans"));
    }
}
