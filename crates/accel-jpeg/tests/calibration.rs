//! Calibration harness (run with --nocapture to see error stats).
use accel_jpeg::cycle::JpegCycleSim;
use accel_jpeg::hw::JpegHwConfig;
use accel_jpeg::interface::{petri::JpegPetriInterface, program::JpegProgramInterface};
use accel_jpeg::workload::ImageGen;
use perf_core::iface::Metric;
use perf_core::validate::validate;

#[test]
fn calibration_report() {
    let mut sim = JpegCycleSim::new(JpegHwConfig::default());
    let prog = JpegProgramInterface::new().unwrap();
    let petri = JpegPetriInterface::new().unwrap();
    let mut g = ImageGen::new(20260705);
    let imgs = g.gen_many(60);
    let rp = validate(&mut sim, &prog, Metric::Latency, &imgs).unwrap();
    let rt = validate(&mut sim, &prog, Metric::Throughput, &imgs).unwrap();
    let pp = validate(&mut sim, &petri, Metric::Latency, &imgs).unwrap();
    let pt = validate(&mut sim, &petri, Metric::Throughput, &imgs).unwrap();
    println!("program latency: {}", rp.point.paper_style());
    println!("program tput:    {}", rt.point.paper_style());
    println!("petri latency:   {}", pp.point.paper_style());
    println!("petri tput:      {}", pt.point.paper_style());
}

#[test]
fn interfaces_hold_on_color_images() {
    // The interfaces were written against grayscale workloads; 4:2:0
    // color changes the block mix but not the per-block laws, so the
    // Petri net must stay near-exact and the program interface in its
    // usual band.
    let mut sim = JpegCycleSim::new(JpegHwConfig::default());
    let prog = JpegProgramInterface::new().unwrap();
    let petri = JpegPetriInterface::new().unwrap();
    let mut g = ImageGen::new(31);
    let imgs: Vec<_> = (0..12)
        .map(|i| g.gen_color(64 + 16 * (i % 5), 64 + 16 * (i % 3), 30 + 5 * i as u8))
        .collect();
    let rp = validate(&mut sim, &petri, Metric::Latency, &imgs).unwrap();
    let rg = validate(&mut sim, &prog, Metric::Latency, &imgs).unwrap();
    assert!(
        rp.point.avg < 0.01,
        "petri avg on color {:.4}",
        rp.point.avg
    );
    assert!(
        rg.point.avg < 0.25,
        "program avg on color {:.4}",
        rg.point.avg
    );
}
