//! The 8×8 forward and inverse DCT-II used by the functional model.
//!
//! The decoder's IDCT stage has a fixed cycle cost in hardware, but the
//! functional model still computes real pixels so that the workload
//! generator can derive coefficient statistics from synthetic image
//! content rather than inventing them.

use std::f64::consts::PI;

/// Forward 8×8 DCT-II with orthonormal scaling (JPEG convention).
pub fn fdct8x8(pixels: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0f64; 64];
    for u in 0..8 {
        for v in 0..8 {
            let cu = if u == 0 { 1.0 / f64::sqrt(2.0) } else { 1.0 };
            let cv = if v == 0 { 1.0 / f64::sqrt(2.0) } else { 1.0 };
            let mut s = 0.0;
            for x in 0..8 {
                for y in 0..8 {
                    s += pixels[x * 8 + y]
                        * ((2 * x + 1) as f64 * u as f64 * PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * PI / 16.0).cos();
                }
            }
            out[u * 8 + v] = 0.25 * cu * cv * s;
        }
    }
    out
}

/// Inverse 8×8 DCT-II (the reconstruction the accelerator performs).
pub fn idct8x8(coefs: &[f64; 64]) -> [f64; 64] {
    let mut out = [0.0f64; 64];
    for x in 0..8 {
        for y in 0..8 {
            let mut s = 0.0;
            for u in 0..8 {
                for v in 0..8 {
                    let cu = if u == 0 { 1.0 / f64::sqrt(2.0) } else { 1.0 };
                    let cv = if v == 0 { 1.0 / f64::sqrt(2.0) } else { 1.0 };
                    s += cu
                        * cv
                        * coefs[u * 8 + v]
                        * ((2 * x + 1) as f64 * u as f64 * PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * PI / 16.0).cos();
                }
            }
            out[x * 8 + y] = 0.25 * s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_recovers_pixels() {
        let mut px = [0.0f64; 64];
        for (i, p) in px.iter_mut().enumerate() {
            *p = ((i * 37) % 256) as f64 - 128.0;
        }
        let co = fdct8x8(&px);
        let back = idct8x8(&co);
        for i in 0..64 {
            assert!((px[i] - back[i]).abs() < 1e-9, "pixel {i} differs");
        }
    }

    #[test]
    fn dc_of_flat_block_is_mean_times_eight() {
        let px = [100.0f64; 64];
        let co = fdct8x8(&px);
        assert!((co[0] - 800.0).abs() < 1e-9);
        for (i, c) in co.iter().enumerate().skip(1) {
            assert!(c.abs() < 1e-9, "AC coefficient {i} should vanish");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut px = [0.0f64; 64];
        for (i, p) in px.iter_mut().enumerate() {
            *p = (i as f64 * 0.7).sin() * 50.0;
        }
        let co = fdct8x8(&px);
        let e_px: f64 = px.iter().map(|v| v * v).sum();
        let e_co: f64 = co.iter().map(|v| v * v).sum();
        assert!((e_px - e_co).abs() / e_px < 1e-9);
    }
}
