//! The cycle-accurate ground-truth model of the JPEG decoder.
//!
//! This is the stand-in for the accelerator's RTL: a four-stage decode
//! pipeline simulated tick by tick on the `perf-sim` substrate. Every
//! 8×8 block flows through Huffman → dequant → IDCT → writer with
//! data-dependent stage delays and bounded FIFOs, after a header-parse
//! prologue.

use crate::hw::JpegHwConfig;
use crate::workload::{Image, HEADER_BYTES};
use perf_core::units::Cycles;
use perf_core::{CoreError, GroundTruth, Observation};
use perf_sim::{FaultPlan, Pipeline, StageCycles, StageSpec, TraceSink};

/// One block's job descriptor flowing through the pipeline.
#[derive(Clone, Copy, Debug)]
struct BlockJob {
    bits: u64,
    nonzero: u64,
    idx: u64,
}

/// Cycle-accurate JPEG decoder simulator.
#[derive(Clone, Debug, Default)]
pub struct JpegCycleSim {
    /// Hardware configuration.
    pub hw: JpegHwConfig,
    ticks: u64,
    images: u64,
    /// Per-stage busy/stall/idle totals accumulated across decodes
    /// (the per-decode pipeline is dropped after each image).
    stage_totals: Vec<(String, StageCycles)>,
    /// Header-parse prologue cycles accumulated across decodes.
    header_cycles: u64,
    /// Armed fault plan, applied to every per-image pipeline.
    fault: Option<FaultPlan>,
}

impl JpegCycleSim {
    /// Creates a simulator with the given configuration.
    pub fn new(hw: JpegHwConfig) -> JpegCycleSim {
        JpegCycleSim {
            hw,
            ticks: 0,
            images: 0,
            stage_totals: Vec::new(),
            header_cycles: 0,
            fault: None,
        }
    }

    /// Arms (or with `None` disarms) deterministic fault injection.
    /// Each decode derives a per-image seed from the plan's seed and
    /// the running image count, so a sequence of decodes is replayable
    /// on a fresh simulator while distinct images still see distinct
    /// fault schedules.
    pub fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// Total clock ticks simulated so far (a proxy for simulation cost;
    /// compare with the Petri-net engine's event count in experiment
    /// E5).
    pub fn ticks_simulated(&self) -> u64 {
        self.ticks
    }

    /// Images decoded so far.
    pub fn images_decoded(&self) -> u64 {
        self.images
    }

    /// Decodes one image and returns its end-to-end latency in cycles.
    pub fn decode(&mut self, img: &Image) -> u64 {
        let hw = self.hw;
        let mut pipe: Pipeline<BlockJob> = Pipeline::new(
            hw.queue_capacity,
            vec![
                StageSpec::new("huffman", hw.queue_capacity, move |j: &BlockJob| {
                    hw.huff_delay(j.bits)
                }),
                StageSpec::new("dequant", hw.queue_capacity, move |j: &BlockJob| {
                    hw.dequant_delay(j.nonzero)
                }),
                StageSpec::new("idct", hw.queue_capacity, move |_: &BlockJob| {
                    hw.idct_cycles
                }),
                StageSpec::new("writer", hw.queue_capacity, move |j: &BlockJob| {
                    hw.write_delay(j.idx)
                }),
            ],
        );
        if let Some(plan) = self.fault {
            pipe.set_fault(Some(FaultPlan {
                seed: plan.seed.wrapping_add(self.images),
                ..plan
            }));
        }
        let jobs: Vec<BlockJob> = img
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| BlockJob {
                bits: b.bits as u64,
                nonzero: b.nonzero as u64,
                idx: i as u64,
            })
            .collect();
        let (pipe_cycles, out) = pipe.run_to_completion(jobs);
        debug_assert_eq!(out.len(), img.num_blocks());
        let per_stage = pipe.stage_cycles();
        if self.stage_totals.is_empty() {
            self.stage_totals = per_stage;
        } else {
            for (acc, (_, c)) in self.stage_totals.iter_mut().zip(per_stage) {
                acc.1.busy += c.busy;
                acc.1.stall += c.stall;
                acc.1.idle += c.idle;
            }
        }
        let header = self.hw.header_cycles(HEADER_BYTES);
        self.header_cycles += header;
        let total = header + pipe_cycles;
        self.ticks += total;
        self.images += 1;
        total
    }

    /// Per-stage busy/stall/idle totals accumulated across decodes.
    pub fn stage_totals(&self) -> &[(String, StageCycles)] {
        &self.stage_totals
    }

    /// Emits accumulated per-stage cycle accounting into `sink` under
    /// component `jpeg`, including the header-parse prologue as its own
    /// (always-busy) stage.
    pub fn trace_stages(&self, sink: &mut dyn TraceSink) {
        if !sink.is_enabled() {
            return;
        }
        sink.stage(
            "jpeg",
            "header",
            StageCycles {
                busy: self.header_cycles,
                ..StageCycles::default()
            },
        );
        for (name, c) in &self.stage_totals {
            sink.stage("jpeg", name, *c);
        }
    }
}

impl GroundTruth<Image> for JpegCycleSim {
    fn measure(&mut self, img: &Image) -> Result<Observation, CoreError> {
        if img.num_blocks() == 0 {
            return Err(CoreError::InvalidObservation("image has no blocks".into()));
        }
        let lat = self.decode(img);
        // Images are processed one by one (paper Fig. 2): throughput is
        // the inverse of latency.
        Ok(Observation::single_item(Cycles(lat)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ImageGen;
    use perf_core::iface::Metric;

    fn sim() -> JpegCycleSim {
        JpegCycleSim::new(JpegHwConfig::default())
    }

    #[test]
    fn latency_scales_with_block_count() {
        let mut g = ImageGen::new(5);
        let small = g.gen_sized(32, 32, 60); // 16 blocks.
        let big = g.gen_sized(128, 128, 60); // 256 blocks.
        let mut s = sim();
        let l_small = s.decode(&small);
        let l_big = s.decode(&big);
        let ratio = l_big as f64 / l_small as f64;
        // 16x the blocks: latency should scale roughly linearly once
        // the header overhead is amortized.
        assert!(ratio > 8.0 && ratio < 20.0, "ratio = {ratio}");
    }

    #[test]
    fn more_compression_decodes_faster() {
        let mut g1 = ImageGen::new(8);
        let mut g2 = ImageGen::new(8);
        let hi_q = g1.gen_sized(128, 128, 95); // Low compression.
        let lo_q = g2.gen_sized(128, 128, 20); // High compression.
        let mut s = sim();
        let l_hi = s.decode(&hi_q);
        let l_lo = s.decode(&lo_q);
        assert!(
            l_lo <= l_hi,
            "highly compressed image should not be slower: {l_lo} vs {l_hi}"
        );
    }

    #[test]
    fn idct_floor_bounds_latency_below() {
        // Even an extremely compressible image pays the IDCT cost.
        let mut g = ImageGen::new(3);
        let img = g.gen_sized(64, 64, 15);
        let mut s = sim();
        let lat = s.decode(&img);
        let floor = img.num_blocks() as u64 * s.hw.idct_cycles;
        assert!(lat >= floor, "latency {lat} below IDCT floor {floor}");
    }

    #[test]
    fn ground_truth_observation() {
        let mut g = ImageGen::new(4);
        let img = g.gen_sized(64, 64, 60);
        let mut s = sim();
        let obs = s.measure(&img).unwrap();
        assert!(obs.latency.get() > 0);
        let tput = Metric::Throughput.of(&obs);
        assert!((tput - 1.0 / obs.latency.as_f64()).abs() < 1e-15);
        assert_eq!(s.images_decoded(), 1);
        assert!(s.ticks_simulated() >= obs.latency.get());
    }

    #[test]
    fn deterministic_measurement() {
        let mut g = ImageGen::new(6);
        let img = g.gen_sized(96, 96, 70);
        let a = sim().decode(&img);
        let b = sim().decode(&img);
        assert_eq!(a, b);
    }

    #[test]
    fn stage_accounting_accumulates_across_decodes() {
        let mut g = ImageGen::new(9);
        let img = g.gen_sized(64, 64, 60);
        let mut s = sim();
        s.decode(&img);
        let after_one: Vec<_> = s.stage_totals().to_vec();
        assert_eq!(after_one.len(), 4);
        assert!(after_one.iter().all(|(_, c)| c.busy > 0));
        s.decode(&img);
        for ((_, one), (_, two)) in after_one.iter().zip(s.stage_totals()) {
            assert_eq!(two.busy, 2 * one.busy);
            assert_eq!(two.stall, 2 * one.stall);
            assert_eq!(two.idle, 2 * one.idle);
        }
        let mut sink = perf_sim::MemorySink::new();
        s.trace_stages(&mut sink);
        // Four pipeline stages plus the header prologue.
        assert_eq!(sink.stages.len(), 5);
        assert_eq!(sink.stages[0].stage, "header");
        assert!(sink.stages[0].cycles.busy > 0);
        // A NullSink costs nothing and records nothing.
        s.trace_stages(&mut perf_sim::NullSink);
    }

    #[test]
    fn empty_image_rejected() {
        let img = Image {
            width: 0,
            height: 0,
            quality: 50,
            color: crate::workload::ColorMode::Grayscale,
            blocks: vec![],
        };
        assert!(sim().measure(&img).is_err());
    }
}
