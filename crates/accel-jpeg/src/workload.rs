//! The JPEG workload model: images with real per-block entropy
//! statistics.
//!
//! The decoder's performance depends on image *statistics* — coded bits
//! and nonzero coefficients per 8×8 block — not pixel content. The
//! generator synthesizes those statistics through the real encoding
//! pipeline: coefficient blocks are drawn from a spectral model (or
//! computed from synthetic pixels via the real forward DCT), quantized
//! with the standard luminance table at the image's quality setting,
//! and costed with the real Huffman bit model. Compression rate is then
//! an *output* of the model, exactly as it would be for a real file.

use crate::huffman::{self, BlockCost};
use crate::idct;
use perf_iface_lang::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chroma subsampling / color layout of an image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColorMode {
    /// Single luma plane (the default used by the paper-scale
    /// experiments).
    Grayscale,
    /// Y'CbCr with 4:2:0 chroma subsampling: two quarter-resolution
    /// chroma planes follow the luma plane in scan order.
    Yuv420,
}

/// A workload image: dimensions plus per-block entropy statistics.
#[derive(Clone, Debug)]
pub struct Image {
    /// Width in pixels (multiple of 8; multiple of 16 for 4:2:0).
    pub width: u32,
    /// Height in pixels (multiple of 8; multiple of 16 for 4:2:0).
    pub height: u32,
    /// JPEG quality setting used to encode it (1–100).
    pub quality: u8,
    /// Color layout.
    pub color: ColorMode,
    /// Per-block coded statistics in scan order (luma plane first,
    /// then Cb, then Cr for 4:2:0).
    pub blocks: Vec<BlockCost>,
}

/// Fixed size of the JFIF/DQT/DHT header in bytes, charged once per
/// image.
pub const HEADER_BYTES: u64 = 623;

impl Image {
    /// Number of 8×8 blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Decoded (original) size in bytes: one byte per pixel for
    /// grayscale, 1.5 bytes per pixel for 4:2:0.
    pub fn orig_size(&self) -> u64 {
        let luma = self.width as u64 * self.height as u64;
        match self.color {
            ColorMode::Grayscale => luma,
            ColorMode::Yuv420 => luma * 3 / 2,
        }
    }

    /// Total entropy-coded bits across all blocks.
    pub fn total_bits(&self) -> u64 {
        self.blocks.iter().map(|b| b.bits as u64).sum()
    }

    /// Compressed size in bytes, including the fixed header.
    pub fn coded_size(&self) -> u64 {
        HEADER_BYTES + self.total_bits().div_ceil(8)
    }

    /// Compression rate: `orig_size / coded_size` (the quantity in the
    /// paper's Fig. 1 and Fig. 2 interfaces).
    pub fn compress_rate(&self) -> f64 {
        self.orig_size() as f64 / self.coded_size() as f64
    }

    /// The image as a PIL record, the input format of the program
    /// interface (paper Fig. 2 passes `img` with `orig_size` and
    /// `compress_rate`).
    pub fn to_value(&self) -> Value {
        Value::record([
            ("orig_size", Value::from(self.orig_size())),
            ("compress_rate", Value::num(self.compress_rate())),
            ("num_blocks", Value::from(self.num_blocks())),
            ("total_bits", Value::from(self.total_bits())),
        ])
    }
}

/// How the generator synthesizes coefficient blocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SynthMode {
    /// Draw DCT coefficients directly from a spectral decay model
    /// (fast; the default).
    Spectral,
    /// Synthesize pixel blocks and run the real forward DCT (slow;
    /// used to validate the spectral model).
    Pixels,
}

/// Seeded random image generator.
#[derive(Clone, Debug)]
pub struct ImageGen {
    rng: StdRng,
    /// Synthesis mode.
    pub mode: SynthMode,
    /// Minimum image dimension in 8-pixel units.
    pub min_dim8: u32,
    /// Maximum image dimension in 8-pixel units.
    pub max_dim8: u32,
    /// Quality range (inclusive).
    pub quality: (u8, u8),
}

impl ImageGen {
    /// Creates a generator with the default ranges used by the paper
    /// reproduction (random images from 32×32 to 512×512, quality
    /// 15–95).
    pub fn new(seed: u64) -> ImageGen {
        ImageGen {
            rng: StdRng::seed_from_u64(seed),
            mode: SynthMode::Spectral,
            min_dim8: 6,
            max_dim8: 64,
            quality: (15, 95),
        }
    }

    /// Generates one random image.
    pub fn gen_image(&mut self) -> Image {
        let w8 = self.rng.gen_range(self.min_dim8..=self.max_dim8);
        let h8 = self.rng.gen_range(self.min_dim8..=self.max_dim8);
        let quality = self.rng.gen_range(self.quality.0..=self.quality.1);
        self.gen_sized(w8 * 8, h8 * 8, quality)
    }

    /// Generates an image with fixed dimensions and quality (used by
    /// the Fig. 1 claim-checking sweeps, which vary one axis at a
    /// time).
    pub fn gen_sized(&mut self, width: u32, height: u32, quality: u8) -> Image {
        assert!(
            width.is_multiple_of(8) && height.is_multiple_of(8),
            "dimensions must be multiples of 8"
        );
        let nblocks = (width as usize / 8) * (height as usize / 8);
        let mut blocks = Vec::with_capacity(nblocks);
        let mut dc_pred = 0i32;
        // Image-level "busyness": textured images cost more bits.
        let busyness = self.rng.gen_range(0.5..2.0);
        // Images are made of spatially-correlated regions (smooth sky,
        // texture, edges): a persistent Markov chain over region types
        // scales each block's activity. This heterogeneity is what the
        // aggregate-statistics program interface cannot see.
        const REGION_ACTIVITY: [f64; 3] = [0.15, 1.0, 3.0];
        let mut region = 1usize;
        for _ in 0..nblocks {
            if self.rng.gen_bool(0.05) {
                region = self.rng.gen_range(0..REGION_ACTIVITY.len());
            }
            let act = busyness * REGION_ACTIVITY[region];
            let coefs = match self.mode {
                SynthMode::Spectral => self.spectral_block(act),
                SynthMode::Pixels => self.pixel_block(act),
            };
            let q = huffman::quantize(&coefs, quality);
            let (cost, dc) = huffman::block_cost(&q, dc_pred);
            dc_pred = dc;
            blocks.push(cost);
        }
        Image {
            width,
            height,
            quality,
            color: ColorMode::Grayscale,
            blocks,
        }
    }

    /// Generates a 4:2:0 color image: a full-resolution luma plane
    /// followed by two quarter-resolution chroma planes with lower
    /// spectral activity (chroma is smooth in natural images).
    pub fn gen_color(&mut self, width: u32, height: u32, quality: u8) -> Image {
        assert!(
            width.is_multiple_of(16) && height.is_multiple_of(16),
            "4:2:0 dimensions must be multiples of 16"
        );
        let luma = self.gen_sized(width, height, quality);
        let mut blocks = luma.blocks;
        for _chroma_plane in 0..2 {
            let mut dc_pred = 0i32;
            let nblocks = (width as usize / 16) * (height as usize / 16);
            for _ in 0..nblocks {
                let act = self.rng.gen_range(0.1..0.5) * 40.0;
                let mut coefs = self.spectral_block(act / 60.0);
                // Chroma planes are smoother: damp high frequencies.
                for (i, c) in coefs.iter_mut().enumerate() {
                    if i > 20 {
                        *c *= 0.5;
                    }
                }
                let q = huffman::quantize(&coefs, quality);
                let (cost, dc) = huffman::block_cost(&q, dc_pred);
                dc_pred = dc;
                blocks.push(cost);
            }
        }
        Image {
            width,
            height,
            quality,
            color: ColorMode::Yuv420,
            blocks,
        }
    }

    /// Generates `n` random images.
    pub fn gen_many(&mut self, n: usize) -> Vec<Image> {
        (0..n).map(|_| self.gen_image()).collect()
    }

    /// Generates one image's raw coefficient content and encodes it at
    /// each of the given qualities. Re-encoding the *same* content
    /// isolates the compression-rate axis, which is how the Fig. 1
    /// claims are checked.
    pub fn gen_quality_sweep(&mut self, width: u32, height: u32, qualities: &[u8]) -> Vec<Image> {
        assert!(width.is_multiple_of(8) && height.is_multiple_of(8));
        let nblocks = (width as usize / 8) * (height as usize / 8);
        let busyness = self.rng.gen_range(0.5..2.0);
        const REGION_ACTIVITY: [f64; 3] = [0.15, 1.0, 3.0];
        let mut region = 1usize;
        let mut coef_blocks = Vec::with_capacity(nblocks);
        for _ in 0..nblocks {
            if self.rng.gen_bool(0.05) {
                region = self.rng.gen_range(0..REGION_ACTIVITY.len());
            }
            let act = busyness * REGION_ACTIVITY[region];
            coef_blocks.push(match self.mode {
                SynthMode::Spectral => self.spectral_block(act),
                SynthMode::Pixels => self.pixel_block(act),
            });
        }
        qualities
            .iter()
            .map(|&q| {
                let mut dc_pred = 0i32;
                let blocks = coef_blocks
                    .iter()
                    .map(|c| {
                        let quant = huffman::quantize(c, q);
                        let (cost, dc) = huffman::block_cost(&quant, dc_pred);
                        dc_pred = dc;
                        cost
                    })
                    .collect();
                Image {
                    width,
                    height,
                    quality: q,
                    color: ColorMode::Grayscale,
                    blocks,
                }
            })
            .collect()
    }

    /// Draws a Laplace sample with scale `b`.
    fn laplace(&mut self, b: f64) -> f64 {
        let u: f64 = self.rng.gen_range(-0.5..0.5);
        -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Spectral model: coefficient energy decays with frequency, as in
    /// natural images.
    fn spectral_block(&mut self, busyness: f64) -> [f64; 64] {
        let mut coefs = [0.0f64; 64];
        let activity = busyness * f64::exp(self.rng.gen_range(-0.8..0.8)) * 60.0;
        coefs[0] = self.rng.gen_range(-1024.0..1016.0); // DC: mean level.
        for u in 0..8 {
            for v in 0..8 {
                if u == 0 && v == 0 {
                    continue;
                }
                let scale = activity / (1.0 + (u + v) as f64).powf(1.7);
                coefs[u * 8 + v] = self.laplace(scale);
            }
        }
        coefs
    }

    /// Pixel model: smooth gradient + sinusoidal texture + noise, then
    /// the real forward DCT.
    fn pixel_block(&mut self, busyness: f64) -> [f64; 64] {
        let base = self.rng.gen_range(-100.0..100.0);
        let gx = self.rng.gen_range(-6.0..6.0);
        let gy = self.rng.gen_range(-6.0..6.0);
        let freq = self.rng.gen_range(0.3..2.5);
        let amp = busyness * self.rng.gen_range(0.0..30.0);
        let mut px = [0.0f64; 64];
        for x in 0..8 {
            for y in 0..8 {
                let noise: f64 = self.rng.gen_range(-4.0..4.0);
                px[x * 8 + y] = (base
                    + gx * x as f64
                    + gy * y as f64
                    + amp * (freq * (x + 2 * y) as f64).sin()
                    + noise)
                    .clamp(-128.0, 127.0);
            }
        }
        idct::fdct8x8(&px)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_image_is_consistent() {
        let mut g = ImageGen::new(7);
        let img = g.gen_sized(64, 48, 75);
        assert_eq!(img.num_blocks(), 8 * 6);
        assert_eq!(img.orig_size(), 64 * 48);
        assert!(img.total_bits() > 0);
        assert!(img.compress_rate() > 1.0, "JPEG should compress");
    }

    #[test]
    fn lower_quality_compresses_more() {
        let mut g1 = ImageGen::new(42);
        let mut g2 = ImageGen::new(42);
        let hi = g1.gen_sized(128, 128, 95);
        let lo = g2.gen_sized(128, 128, 20);
        assert!(
            lo.compress_rate() > hi.compress_rate(),
            "q20 rate {} should exceed q95 rate {}",
            lo.compress_rate(),
            hi.compress_rate()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ImageGen::new(9).gen_many(3);
        let b = ImageGen::new(9).gen_many(3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.width, y.width);
            assert_eq!(x.total_bits(), y.total_bits());
        }
    }

    #[test]
    fn pixel_and_spectral_modes_agree_in_magnitude() {
        let mut gs = ImageGen::new(1);
        gs.mode = SynthMode::Spectral;
        let mut gp = ImageGen::new(1);
        gp.mode = SynthMode::Pixels;
        let s = gs.gen_sized(64, 64, 60);
        let p = gp.gen_sized(64, 64, 60);
        let bs = s.total_bits() as f64 / s.num_blocks() as f64;
        let bp = p.total_bits() as f64 / p.num_blocks() as f64;
        // Same order of magnitude (both are plausible JPEG content).
        assert!(bs / bp < 8.0 && bp / bs < 8.0, "bs={bs} bp={bp}");
    }

    #[test]
    fn to_value_exposes_interface_fields() {
        let mut g = ImageGen::new(3);
        let img = g.gen_sized(32, 32, 50);
        let v = img.to_value();
        assert_eq!(
            v.field("orig_size").unwrap().as_num(),
            Some(img.orig_size() as f64)
        );
        assert!(v.field("compress_rate").unwrap().as_num().unwrap() > 0.0);
        assert_eq!(v.field("num_blocks").unwrap().as_num(), Some(16.0));
    }

    #[test]
    fn random_sizes_within_bounds() {
        let mut g = ImageGen::new(11);
        for img in g.gen_many(20) {
            assert!(img.width >= 48 && img.width <= 512);
            assert!(img.height >= 48 && img.height <= 512);
            assert!(img.width % 8 == 0 && img.height % 8 == 0);
        }
    }
}

#[cfg(test)]
mod color_tests {
    use super::*;

    #[test]
    fn color_image_has_chroma_blocks() {
        let mut g = ImageGen::new(21);
        let img = g.gen_color(128, 96, 70);
        let luma = (128 / 8) * (96 / 8);
        let chroma = 2 * (128 / 16) * (96 / 16);
        assert_eq!(img.num_blocks(), luma + chroma);
        assert_eq!(img.orig_size(), 128 * 96 * 3 / 2);
        assert_eq!(img.color, ColorMode::Yuv420);
        assert!(img.compress_rate() > 1.0);
    }

    #[test]
    fn chroma_is_cheaper_than_luma() {
        let mut g = ImageGen::new(22);
        let img = g.gen_color(128, 128, 70);
        let luma_blocks = (128 / 8) * (128 / 8);
        let luma_bits: u64 = img.blocks[..luma_blocks]
            .iter()
            .map(|b| b.bits as u64)
            .sum();
        let chroma_bits: u64 = img.blocks[luma_blocks..]
            .iter()
            .map(|b| b.bits as u64)
            .sum();
        let luma_avg = luma_bits as f64 / luma_blocks as f64;
        let chroma_avg = chroma_bits as f64 / (img.num_blocks() - luma_blocks) as f64;
        assert!(
            chroma_avg < luma_avg,
            "chroma {chroma_avg:.1} bits/block should be below luma {luma_avg:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "multiples of 16")]
    fn color_dimensions_validated() {
        ImageGen::new(1).gen_color(120, 128, 60);
    }
}
