//! Hardware configuration of the JPEG decoder accelerator.

/// Microarchitectural parameters of the decode pipeline.
///
/// The defaults model a `core_jpeg`-style design: a serial
/// bitstream/Huffman front end that consumes a few coded bits per
/// cycle, a coefficient dequantizer, a fixed-latency 2-D IDCT datapath
/// and a DMA writer, connected by small FIFOs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JpegHwConfig {
    /// Fixed per-block overhead of the Huffman stage (symbol setup,
    /// DC prediction), in cycles.
    pub huff_fixed: u64,
    /// Coded bits the Huffman decoder retires per cycle.
    pub huff_bits_per_cycle: u64,
    /// The bitstream buffer refills from the input FIFO once per this
    /// many coded bits, costing one extra cycle each time.
    pub huff_refill_bits: u64,
    /// Fixed per-block overhead of the dequant/zig-zag stage.
    pub dequant_fixed: u64,
    /// Cycles per nonzero coefficient in the dequant stage.
    pub dequant_per_coef: u64,
    /// Fixed cycles of the 2-D IDCT datapath per block.
    pub idct_cycles: u64,
    /// Cycles to write one block's 64 output bytes in the common case.
    pub write_cycles: u64,
    /// Extra cycles when the writer crosses an output DRAM page.
    pub write_page_penalty: u64,
    /// Blocks per output DRAM page (4 KiB / 64 B).
    pub blocks_per_page: u64,
    /// Fixed cycles to parse the JFIF/DQT/DHT header.
    pub header_fixed: u64,
    /// Header bytes consumed per cycle during parsing.
    pub header_bytes_per_cycle: u64,
    /// Capacity of each inter-stage FIFO, in blocks.
    pub queue_capacity: usize,
}

impl Default for JpegHwConfig {
    fn default() -> JpegHwConfig {
        JpegHwConfig {
            huff_fixed: 6,
            huff_bits_per_cycle: 2,
            huff_refill_bits: 128,
            dequant_fixed: 4,
            dequant_per_coef: 1,
            idct_cycles: 64,
            write_cycles: 16,
            write_page_penalty: 30,
            blocks_per_page: 64,
            header_fixed: 300,
            header_bytes_per_cycle: 4,
            queue_capacity: 4,
        }
    }
}

impl JpegHwConfig {
    /// Cycles spent parsing a header of `bytes` bytes.
    pub fn header_cycles(&self, bytes: u64) -> u64 {
        self.header_fixed + bytes.div_ceil(self.header_bytes_per_cycle)
    }

    /// Huffman-stage delay for a block with `bits` coded bits,
    /// including bit-buffer refill stalls.
    pub fn huff_delay(&self, bits: u64) -> u64 {
        self.huff_fixed + bits.div_ceil(self.huff_bits_per_cycle) + bits / self.huff_refill_bits
    }

    /// Dequant-stage delay for a block with `nonzero` coefficients.
    pub fn dequant_delay(&self, nonzero: u64) -> u64 {
        self.dequant_fixed + nonzero * self.dequant_per_coef
    }

    /// Writer delay for the block at scan index `idx`.
    pub fn write_delay(&self, idx: u64) -> u64 {
        if idx.is_multiple_of(self.blocks_per_page) {
            self.write_cycles + self.write_page_penalty
        } else {
            self.write_cycles
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_helpers() {
        let hw = JpegHwConfig::default();
        assert_eq!(hw.header_cycles(623), 300 + 156);
        assert_eq!(hw.huff_delay(100), 6 + 50);
        assert_eq!(hw.huff_delay(0), 6);
        // Refill stall: one extra cycle per 512 coded bits.
        assert_eq!(hw.huff_delay(1024), 6 + 512 + 8);
        assert_eq!(hw.dequant_delay(10), 14);
        assert_eq!(hw.write_delay(0), 46);
        assert_eq!(hw.write_delay(1), 16);
        assert_eq!(hw.write_delay(64), 46);
    }
}
