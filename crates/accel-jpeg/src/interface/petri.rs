//! Petri-net performance IR for the JPEG decoder (paper Table 1).
//!
//! The net ships as text (`assets/jpeg.pnet`). Evaluating it means
//! injecting one token per 8×8 block — carrying the block's actual
//! coded-bit and nonzero counts — and running the event-driven engine.
//! This is far cheaper than the tick-accurate simulator because nothing
//! happens between events.

use crate::hw::JpegHwConfig;
use crate::workload::{Image, HEADER_BYTES};
use perf_core::iface::{InterfaceKind, Metric, PerfInterface};
use perf_core::query::EngineChoice;
use perf_core::{CoreError, Prediction};
use perf_iface_lang::Value;
use perf_petri::engine::Options;
use perf_petri::net::Net;
use perf_petri::stepper::NetExec;
use perf_petri::text;
use perf_petri::token::Token;

/// The shipped Petri-net source.
pub const JPEG_PNET_SRC: &str = include_str!("../../assets/jpeg.pnet");

/// Petri-net interface for the JPEG decoder.
pub struct JpegPetriInterface {
    exec: NetExec,
    header_cycles: u64,
    events_evaluated: std::cell::Cell<u64>,
}

impl JpegPetriInterface {
    /// Parses the shipped net; evaluations run the compiled stepper.
    pub fn new() -> Result<JpegPetriInterface, CoreError> {
        Self::with_engine(EngineChoice::Compiled)
    }

    /// Parses the shipped net with an explicit evaluation substrate.
    pub fn with_engine(engine: EngineChoice) -> Result<JpegPetriInterface, CoreError> {
        let net = text::parse(JPEG_PNET_SRC)?;
        let exec = match engine {
            EngineChoice::Compiled => NetExec::compiled(net),
            EngineChoice::Interpreted => NetExec::interpreted(net),
        };
        Ok(JpegPetriInterface {
            exec,
            header_cycles: JpegHwConfig::default().header_cycles(HEADER_BYTES),
            events_evaluated: std::cell::Cell::new(0),
        })
    }

    /// The `.pnet` source (for display and the Table 1 complexity
    /// ratio).
    pub fn source(&self) -> &'static str {
        JPEG_PNET_SRC
    }

    /// The parsed net (for DOT export or structural analysis).
    pub fn net(&self) -> &Net {
        self.exec.net()
    }

    /// Which evaluation substrate [`JpegPetriInterface::run`] uses.
    pub fn engine(&self) -> EngineChoice {
        if self.exec.is_compiled() {
            EngineChoice::Compiled
        } else {
            EngineChoice::Interpreted
        }
    }

    /// Engine events processed across all predictions so far (the cost
    /// metric compared against simulator ticks in E5-style analyses).
    pub fn events_evaluated(&self) -> u64 {
        self.events_evaluated.get()
    }

    /// Runs the net on an image and returns predicted end-to-end
    /// latency in cycles.
    pub fn run(&self, img: &Image) -> Result<u64, CoreError> {
        let src = self
            .exec
            .net()
            .place_id("blocks_in")
            .ok_or_else(|| CoreError::Artifact("net lacks blocks_in".into()))?;
        let mut eng = self.exec.session(Options::default());
        let per_page = JpegHwConfig::default().blocks_per_page;
        for (i, b) in img.blocks.iter().enumerate() {
            // Blocks at page-aligned output offsets carry the writer's
            // DRAM page-open flag (the token transform that keeps the
            // net's delay expressions exact).
            let opens_page = (i as u64).is_multiple_of(per_page);
            eng.inject(
                src,
                Token::at(
                    Value::record([
                        ("bits", Value::from(b.bits as u64)),
                        ("nz", Value::from(b.nonzero as u64)),
                        ("pg", Value::from(u64::from(opens_page))),
                    ]),
                    self.header_cycles,
                ),
            );
        }
        let res = eng.run().map_err(CoreError::from)?;
        if res.completions.len() != img.num_blocks() {
            return Err(CoreError::Artifact(format!(
                "net completed {} of {} blocks",
                res.completions.len(),
                img.num_blocks()
            )));
        }
        self.events_evaluated
            .set(self.events_evaluated.get() + res.events);
        Ok(res.makespan)
    }
}

impl PerfInterface<Image> for JpegPetriInterface {
    fn kind(&self) -> InterfaceKind {
        InterfaceKind::PetriNet
    }

    fn predict(&self, img: &Image, metric: Metric) -> Result<Prediction, CoreError> {
        let lat = self.run(img)? as f64;
        Ok(match metric {
            Metric::Latency => Prediction::point(lat),
            Metric::Throughput => Prediction::point(1.0 / lat),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::JpegCycleSim;
    use crate::huffman::BlockCost;
    use crate::workload::ImageGen;
    use perf_core::validate::validate;
    use perf_core::GroundTruth;

    #[test]
    fn net_parses_and_predicts() {
        let iface = JpegPetriInterface::new().unwrap();
        let mut g = ImageGen::new(5);
        let img = g.gen_sized(64, 64, 60);
        let lat = iface.run(&img).unwrap();
        assert!(lat > 0);
        assert!(iface.events_evaluated() > 0);
    }

    // Conformance-harness counterexample: on a single minimal block
    // the old net amortized the writer's page-open penalty away and
    // predicted 547 where the hardware takes 580 cycles (5.7% off,
    // against a 1% budget). With the `pg` token flag and the refill
    // term the net now tracks the simulator to within the pipeline's
    // handoff cycles on degenerate and page-aligned images alike.
    #[test]
    fn degenerate_and_page_aligned_images_track_simulator() {
        let mut sim = JpegCycleSim::new(JpegHwConfig::default());
        let iface = JpegPetriInterface::new().unwrap();
        let flat = |blocks: usize, bits: u32, nonzero: u8| Image {
            width: 8 * blocks as u32,
            height: 8,
            quality: 50,
            color: crate::workload::ColorMode::Grayscale,
            blocks: vec![BlockCost { bits, nonzero }; blocks],
        };
        for img in [
            flat(1, 0, 0),       // minimal single block
            flat(1, 4000, 63),   // huffman bomb: 31 refill stalls
            flat(129, 3000, 63), // crosses two page boundaries
            flat(128, 0, 0),     // page-aligned idct-bound stream
        ] {
            let obs = sim.measure(&img).unwrap();
            let pred = iface.run(&img).unwrap() as f64;
            let gap = (pred - obs.latency.as_f64()).abs();
            assert!(
                gap <= 8.0,
                "{}x{} ({} blocks): net {pred} vs sim {} (gap {gap})",
                img.width,
                img.height,
                img.num_blocks(),
                obs.latency.as_f64()
            );
        }
    }

    #[test]
    fn petri_is_more_accurate_than_program_interface() {
        // Table 1's headline: the net's error is ~20x below the program
        // interface's. Verify the ordering on a small sample.
        let mut sim = JpegCycleSim::new(JpegHwConfig::default());
        let petri = JpegPetriInterface::new().unwrap();
        let prog = super::super::program::JpegProgramInterface::new().unwrap();
        let mut g = ImageGen::new(99);
        let imgs = g.gen_many(15);
        let rp = validate(&mut sim, &petri, Metric::Latency, &imgs).unwrap();
        let rg = validate(&mut sim, &prog, Metric::Latency, &imgs).unwrap();
        assert!(
            rp.point.avg < rg.point.avg,
            "petri avg {:.4} should beat program avg {:.4}",
            rp.point.avg,
            rg.point.avg
        );
        assert!(
            rp.point.avg < 0.01,
            "petri avg error {:.4} should be sub-1%",
            rp.point.avg
        );
    }

    #[test]
    fn dot_export_works() {
        let iface = JpegPetriInterface::new().unwrap();
        let dot = perf_petri::dot::to_dot(iface.net());
        assert!(dot.contains("huffman"));
        assert!(dot.contains("idct"));
    }
}
