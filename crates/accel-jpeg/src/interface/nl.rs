//! Natural-language interface for the JPEG decoder (paper Fig. 1, top).

use perf_core::nl::{Claim, Direction, NlInterface, Quantity};

/// The Fig. 1 prose for the JPEG decoder, with machine-checkable
/// claims attached:
///
/// * latency falls monotonically as the compression rate rises (until
///   the IDCT floor),
/// * latency grows proportionally with decoded image size at a fixed
///   compression rate,
/// * throughput rises monotonically with the compression rate.
pub fn interface() -> NlInterface {
    NlInterface::new(
        "jpeg-decoder",
        "Latency is inversely proportional to the input image's compression rate, \
         down to a fixed IDCT floor, and proportional to the decoded image size.",
    )
    .with_claim(Claim::Monotone {
        metric: Quantity::Latency,
        axis: "compress_rate".into(),
        direction: Direction::Decreasing,
    })
    .with_claim(Claim::Proportional {
        metric: Quantity::Latency,
        axis: "orig_size".into(),
        tolerance: 0.20,
    })
    .with_claim(Claim::Monotone {
        metric: Quantity::Throughput,
        axis: "compress_rate".into(),
        direction: Direction::Increasing,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::JpegCycleSim;
    use crate::hw::JpegHwConfig;
    use crate::workload::ImageGen;
    use perf_core::iface::Metric;
    use perf_core::validate::collect_axis_samples;
    use perf_core::GroundTruth;

    #[test]
    fn claims_hold_on_the_simulator() {
        let mut sim = JpegCycleSim::new(JpegHwConfig::default());
        let nl = interface();

        // Sweep compression rate by re-encoding the same content at
        // different qualities.
        let mut g = ImageGen::new(77);
        let rate_sweep = g.gen_quality_sweep(128, 128, &[20, 35, 50, 65, 80, 92]);
        let lat_rate = collect_axis_samples(&mut sim, Metric::Latency, &rate_sweep, |i| {
            i.compress_rate()
        })
        .unwrap();
        let v = nl.claims[0].check(&lat_rate).unwrap();
        assert!(v.holds, "latency not decreasing in rate: {v:?}");

        // Sweep size at fixed quality.
        let mut g = ImageGen::new(78);
        let size_sweep: Vec<_> = [64u32, 128, 192, 256, 384]
            .iter()
            .map(|&d| g.gen_sized(d, d, 60))
            .collect();
        let lat_size = collect_axis_samples(&mut sim, Metric::Latency, &size_sweep, |i| {
            i.orig_size() as f64
        })
        .unwrap();
        let v = nl.claims[1].check(&lat_size).unwrap();
        assert!(
            v.holds,
            "latency not ~proportional to size: worst {:.3}",
            v.worst_violation
        );

        // Throughput rises with compression rate.
        let tput_rate: Vec<_> = rate_sweep
            .iter()
            .map(|i| {
                let obs = sim.measure(i).unwrap();
                (i.compress_rate(), Metric::Throughput.of(&obs))
            })
            .collect();
        let v = nl.claims[2].check(&tput_rate).unwrap();
        assert!(v.holds, "throughput not increasing in rate: {v:?}");
    }
}
