//! Query-service adapter for the JPEG decoder.
//!
//! Implements [`perf_core::query::QueryBackend`] so the `perf-service`
//! server can answer latency/throughput queries for decoder workloads
//! from any of the three interface representations. The spec kinds
//! mirror the conformance harness's generator-level specs, so service
//! answers are accountable to the same budgets `BENCH_conformance.json`
//! reports.

use crate::cycle::JpegCycleSim;
use crate::huffman::BlockCost;
use crate::hw::JpegHwConfig;
use crate::interface::{petri, program};
use crate::workload::{ColorMode, Image, ImageGen};
use perf_core::iface::{InterfaceKind, Metric};
use perf_core::query::{EngineChoice, Fnv1a, QueryBackend, WorkloadSpec};
use perf_core::{Budget, CoreError, GroundTruth, Observation, Prediction};
use perf_petri::net::Net;
use perf_petri::text;

/// The decoder's query-service backend.
///
/// Holds the parsed program and Petri-net interfaces (built once, at
/// worker startup) plus the raw net for deep cache fingerprints.
pub struct JpegService {
    program: program::JpegProgramInterface,
    petri: petri::JpegPetriInterface,
    net: Net,
    engine: EngineChoice,
}

impl JpegService {
    /// Builds the backend from the shipped interface artifacts; the
    /// interfaces run on the compiled substrate.
    pub fn new() -> Result<JpegService, CoreError> {
        Self::with_engine(EngineChoice::Compiled)
    }

    /// Builds the backend with an explicit evaluation substrate.
    pub fn with_engine(engine: EngineChoice) -> Result<JpegService, CoreError> {
        Ok(JpegService {
            program: program::JpegProgramInterface::with_engine(engine)?,
            petri: petri::JpegPetriInterface::with_engine(engine)?,
            net: text::parse(petri::JPEG_PNET_SRC)?,
            engine,
        })
    }

    /// Realizes a spec into a concrete image, exactly like the
    /// conformance subject does (same generators, same seeds).
    pub fn realize(&self, spec: &WorkloadSpec) -> Result<Image, CoreError> {
        let seed = spec.get_or("seed", 1.0) as u64;
        match spec.kind.as_str() {
            "random" => Ok(ImageGen::new(seed).gen_image()),
            "sized" | "color" => {
                let q = spec.get_uint("quality")?.clamp(1, 100) as u8;
                let align = if spec.kind == "color" { 16 } else { 8 };
                let dim = |name: &str| -> Result<u32, CoreError> {
                    let v = spec.get_uint(name)?.clamp(align, 4096) as u32;
                    Ok(v.div_ceil(align as u32) * align as u32)
                };
                let (w, h) = (dim("width")?, dim("height")?);
                let mut g = ImageGen::new(seed);
                Ok(if spec.kind == "color" {
                    g.gen_color(w, h, q)
                } else {
                    g.gen_sized(w, h, q)
                })
            }
            "flat" => {
                let blocks = spec.get_uint("blocks")?.clamp(1, 1 << 20) as u32;
                let bits = spec.get_uint("bits")?.min(1 << 20) as u32;
                let nonzero = spec.get_uint("nonzero")?.min(63) as u8;
                Ok(Image {
                    width: 8 * blocks,
                    height: 8,
                    quality: 50,
                    color: ColorMode::Grayscale,
                    blocks: vec![BlockCost { bits, nonzero }; blocks as usize],
                })
            }
            other => Err(CoreError::Artifact(format!(
                "jpeg-decoder: unknown spec kind `{other}`"
            ))),
        }
    }
}

/// The natural-language closed-form bound for an image.
///
/// The NL interface says: "decode latency is a fixed header parse plus
/// per-block pipeline work; the bottleneck stage is between the IDCT
/// floor and the serial sum of all stage work." This function turns
/// that prose into an interval:
///
/// * lower bound — header plus the busiest single stage's total work
///   (a pipeline cannot finish before its bottleneck stage does);
/// * upper bound — header plus the *serial* sum of every stage's work
///   on every block, plus per-block handoff slack (a blocking pipeline
///   never idles on all stages at once).
///
/// Sound but wide: the ratio between the two is roughly the pipeline
/// depth, which is exactly the precision the NL representation gives
/// up relative to the program and the net.
pub fn nl_bounds(img: &Image, metric: Metric) -> Prediction {
    let hw = JpegHwConfig::default();
    let header = hw.header_cycles(crate::workload::HEADER_BYTES);
    let b = img.blocks.len() as u64;
    let (mut huff, mut dq, mut write) = (0u64, 0u64, 0u64);
    for (idx, blk) in img.blocks.iter().enumerate() {
        huff += hw.huff_delay(blk.bits as u64);
        dq += hw.dequant_delay(blk.nonzero as u64);
        write += hw.write_delay(idx as u64);
    }
    let idct = b * hw.idct_cycles;
    let lo = header + huff.max(dq).max(idct).max(write);
    // Handoff slack: one cycle per block per FIFO boundary, plus a
    // fill/drain constant.
    let hi = header + huff + dq + idct + write + 4 * b + 64;
    let (lo, hi) = (lo as f64, hi as f64);
    match metric {
        Metric::Latency => Prediction::bounds(lo, hi),
        // One image at a time: throughput is the reciprocal.
        Metric::Throughput => Prediction::bounds(1.0 / hi, 1.0 / lo),
    }
}

impl QueryBackend for JpegService {
    fn accel(&self) -> &'static str {
        "jpeg-decoder"
    }

    fn engine(&self) -> EngineChoice {
        self.engine
    }

    fn spec_kinds(&self) -> &'static [&'static str] {
        &["random", "sized", "color", "flat"]
    }

    fn predict(
        &mut self,
        spec: &WorkloadSpec,
        repr: InterfaceKind,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        let img = self.realize(spec)?;
        match repr {
            InterfaceKind::NaturalLanguage => Ok(nl_bounds(&img, metric)),
            InterfaceKind::Program => {
                perf_core::iface::PerfInterface::predict(&self.program, &img, metric)
            }
            InterfaceKind::PetriNet => {
                perf_core::iface::PerfInterface::predict(&self.petri, &img, metric)
            }
        }
    }

    fn budget(&self, repr: InterfaceKind, _metric: Metric) -> Budget {
        // Program and Petri budgets mirror the conformance subject;
        // the NL bound is accountable only to containment plus slack.
        match repr {
            InterfaceKind::NaturalLanguage => Budget::new(0.80, 3.0).with_atol(32.0),
            InterfaceKind::Program => Budget::new(0.10, 0.35),
            InterfaceKind::PetriNet => Budget::new(0.01, 0.05).with_atol(8.0),
        }
    }

    fn fingerprint(&mut self, spec: &WorkloadSpec, repr: InterfaceKind) -> u64 {
        if repr != InterfaceKind::PetriNet {
            let mut h = Fnv1a::new();
            h.write(self.accel().as_bytes());
            h.write(&[repr as u8]);
            h.write_u64(spec.fingerprint());
            return h.finish();
        }
        // Petri tier: hash the net structure plus the injected block
        // stream, so structurally identical workloads share a cache
        // slot regardless of which spec generated them.
        let mut h = Fnv1a::new();
        h.write(self.accel().as_bytes());
        h.write(&[repr as u8]);
        h.write_u64(self.net.fingerprint());
        if let Ok(img) = self.realize(spec) {
            for blk in &img.blocks {
                h.write_u64(blk.bits as u64);
                h.write(&[blk.nonzero]);
            }
        } else {
            h.write_u64(spec.fingerprint());
        }
        h.finish()
    }

    fn measure(&mut self, spec: &WorkloadSpec) -> Result<Observation, CoreError> {
        let img = self.realize(spec)?;
        JpegCycleSim::new(JpegHwConfig::default()).measure(&img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<WorkloadSpec> {
        let mut v = vec![
            WorkloadSpec::new("random").with("seed", 3.0),
            WorkloadSpec::new("sized")
                .with("seed", 101.0)
                .with("width", 128.0)
                .with("height", 64.0)
                .with("quality", 60.0),
            WorkloadSpec::new("color")
                .with("seed", 44.0)
                .with("width", 128.0)
                .with("height", 64.0)
                .with("quality", 70.0),
            WorkloadSpec::new("flat")
                .with("blocks", 1.0)
                .with("bits", 4000.0)
                .with("nonzero", 63.0),
            WorkloadSpec::new("flat")
                .with("blocks", 128.0)
                .with("bits", 0.0)
                .with("nonzero", 0.0),
        ];
        for seed in 0..6 {
            v.push(WorkloadSpec::new("random").with("seed", seed as f64));
        }
        v
    }

    #[test]
    fn all_kinds_realize_and_predict() {
        let mut svc = JpegService::new().unwrap();
        for spec in corpus() {
            for repr in [
                InterfaceKind::NaturalLanguage,
                InterfaceKind::Program,
                InterfaceKind::PetriNet,
            ] {
                for metric in [Metric::Latency, Metric::Throughput] {
                    let p = svc.predict(&spec, repr, metric).unwrap();
                    assert!(p.is_finite(), "{spec:?} {repr:?} {metric:?}");
                }
            }
        }
    }

    #[test]
    fn nl_bounds_contain_the_simulator() {
        let mut svc = JpegService::new().unwrap();
        for spec in corpus() {
            let obs = svc.measure(&spec).unwrap();
            for metric in [Metric::Latency, Metric::Throughput] {
                let p = svc
                    .predict(&spec, InterfaceKind::NaturalLanguage, metric)
                    .unwrap();
                assert!(
                    p.contains(metric.of(&obs)),
                    "{spec:?} {metric:?}: {p:?} vs {}",
                    metric.of(&obs)
                );
            }
        }
    }

    #[test]
    fn petri_fingerprint_canonicalizes_identical_block_streams() {
        let mut svc = JpegService::new().unwrap();
        let a = WorkloadSpec::new("flat")
            .with("blocks", 4.0)
            .with("bits", 100.0)
            .with("nonzero", 10.0);
        // Same spec content, different field order: same key.
        let b = WorkloadSpec::new("flat")
            .with("nonzero", 10.0)
            .with("bits", 100.0)
            .with("blocks", 4.0);
        assert_eq!(
            svc.fingerprint(&a, InterfaceKind::PetriNet),
            svc.fingerprint(&b, InterfaceKind::PetriNet)
        );
        // Different tiers never share a slot.
        assert_ne!(
            svc.fingerprint(&a, InterfaceKind::PetriNet),
            svc.fingerprint(&a, InterfaceKind::Program)
        );
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let mut svc = JpegService::new().unwrap();
        assert!(svc
            .predict(
                &WorkloadSpec::new("bogus"),
                InterfaceKind::Program,
                Metric::Latency
            )
            .is_err());
    }
}
