//! The JPEG decoder's three performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;
pub mod service;

use crate::workload::Image;
use perf_core::{Diagnostics, InterfaceBundle};

/// Builds the full vendor-shipped interface bundle for the JPEG
/// decoder: prose, program, and Petri net.
pub fn bundle() -> InterfaceBundle<Image> {
    InterfaceBundle::new("jpeg-decoder", nl::interface())
        .with(Box::new(
            program::JpegProgramInterface::new().expect("shipped .pi program parses"),
        ))
        .with(Box::new(
            petri::JpegPetriInterface::new().expect("shipped .pnet net parses"),
        ))
}

/// Statically audits the decoder's shipped interface artifacts (the
/// `.pi` program and the `.pnet` net) with the `perf-lint` analyses.
/// Tokens enter the net at `blocks_in`, one per 8×8 block.
pub fn lint() -> Diagnostics {
    let mut ds = perf_iface_lang::lint::lint_src("jpeg.pi", program::JPEG_PI_SRC);
    ds.merge(perf_petri::lint::lint_pnet_src(
        "jpeg.pnet",
        petri::JPEG_PNET_SRC,
        &["blocks_in"],
    ));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn shipped_artifacts_lint_clean() {
        let ds = lint();
        assert_eq!(ds.count(perf_core::Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(perf_core::Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn bundle_has_all_three_representations() {
        let b = bundle();
        assert!(!b.natural_language.text.is_empty());
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
        assert_eq!(b.most_precise().unwrap().kind(), InterfaceKind::PetriNet);
    }
}
