//! The JPEG decoder's three performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;

use crate::workload::Image;
use perf_core::InterfaceBundle;

/// Builds the full vendor-shipped interface bundle for the JPEG
/// decoder: prose, program, and Petri net.
pub fn bundle() -> InterfaceBundle<Image> {
    InterfaceBundle::new("jpeg-decoder", nl::interface())
        .with(Box::new(
            program::JpegProgramInterface::new().expect("shipped .pi program parses"),
        ))
        .with(Box::new(
            petri::JpegPetriInterface::new().expect("shipped .pnet net parses"),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn bundle_has_all_three_representations() {
        let b = bundle();
        assert!(!b.natural_language.text.is_empty());
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
        assert_eq!(b.most_precise().unwrap().kind(), InterfaceKind::PetriNet);
    }
}
