//! The JPEG decoder's three performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;
pub mod service;

use crate::workload::Image;
use perf_core::{Diagnostics, InterfaceBundle};
use perf_iface_lang::lint::BoxVal;

/// Builds the full vendor-shipped interface bundle for the JPEG
/// decoder: prose, program, and Petri net.
pub fn bundle() -> InterfaceBundle<Image> {
    InterfaceBundle::new("jpeg-decoder", nl::interface())
        .with(Box::new(
            program::JpegProgramInterface::new().expect("shipped .pi program parses"),
        ))
        .with(Box::new(
            petri::JpegPetriInterface::new().expect("shipped .pnet net parses"),
        ))
}

/// The decoder's declared workload family as an interval box over the
/// `.pi` program's input record: every image the workload generators
/// can produce falls inside it (dimensions clamp to 8..4096 per axis,
/// so 64 ≤ `orig_size` ≤ 4096², and re-encoding never leaves the
/// 1.5×–64× compression envelope). The cross-tier bound checker
/// evaluates the program interface over this box.
pub fn workload_box() -> BoxVal {
    BoxVal::record([
        ("orig_size", BoxVal::num(64.0, 4096.0 * 4096.0)),
        ("compress_rate", BoxVal::num(1.5, 64.0)),
    ])
}

/// One Petri-net token's feature box: an 8×8 block carries its coded
/// bit count (floored at 6 by the encoder, capped by 64 coefficients ×
/// 32 bits), its nonzero-coefficient count, and a 0/1 page-crossing
/// flag.
pub fn token_box() -> BoxVal {
    BoxVal::record([
        ("bits", BoxVal::num(6.0, 2048.0)),
        ("nz", BoxVal::num(0.0, 63.0)),
        ("pg", BoxVal::num(0.0, 1.0)),
    ])
}

/// Statically audits the decoder's shipped interface artifacts (the
/// `.pi` program and the `.pnet` net) with the `perf-lint` analyses.
/// Tokens enter the net at `blocks_in`, one per 8×8 block.
pub fn lint() -> Diagnostics {
    let mut ds = perf_iface_lang::lint::lint_src("jpeg.pi", program::JPEG_PI_SRC);
    ds.merge(perf_petri::lint::lint_pnet_src(
        "jpeg.pnet",
        petri::JPEG_PNET_SRC,
        &["blocks_in"],
    ));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn shipped_artifacts_lint_clean() {
        let ds = lint();
        assert_eq!(ds.count(perf_core::Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(perf_core::Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn bundle_has_all_three_representations() {
        let b = bundle();
        assert!(!b.natural_language.text.is_empty());
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
        assert_eq!(b.most_precise().unwrap().kind(), InterfaceKind::PetriNet);
    }
}
