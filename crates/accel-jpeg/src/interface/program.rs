//! Program interface for the JPEG decoder (paper Fig. 2).
//!
//! The interface is a PIL program shipped as text
//! (`assets/jpeg.pi`); this module is the thin adapter that feeds it
//! an [`Image`] and returns a [`Prediction`].

use crate::workload::Image;
use perf_core::iface::{InterfaceKind, Metric, PerfInterface};
use perf_core::query::EngineChoice;
use perf_core::{CoreError, Prediction};
use perf_iface_lang::vm::Executable;
use perf_iface_lang::Program;

/// The shipped interface program source.
pub const JPEG_PI_SRC: &str = include_str!("../../assets/jpeg.pi");

/// Executable program interface for the JPEG decoder.
pub struct JpegProgramInterface {
    prog: Executable,
}

impl JpegProgramInterface {
    /// Parses the shipped program; calls run the bytecode VM.
    pub fn new() -> Result<JpegProgramInterface, CoreError> {
        Self::with_engine(EngineChoice::Compiled)
    }

    /// Parses the shipped program with an explicit evaluation
    /// substrate.
    pub fn with_engine(engine: EngineChoice) -> Result<JpegProgramInterface, CoreError> {
        let prog = Program::parse(JPEG_PI_SRC).map_err(|e| CoreError::Artifact(e.to_string()))?;
        let prog = match engine {
            EngineChoice::Compiled => {
                Executable::compiled(prog).map_err(|e| CoreError::Artifact(e.to_string()))?
            }
            EngineChoice::Interpreted => Executable::interpreted(prog),
        };
        Ok(JpegProgramInterface { prog })
    }

    /// The program's source text (for display and complexity
    /// measurement).
    pub fn source(&self) -> &str {
        self.prog.source()
    }

    /// Which evaluation substrate calls use.
    pub fn engine(&self) -> EngineChoice {
        if self.prog.is_compiled() {
            EngineChoice::Compiled
        } else {
            EngineChoice::Interpreted
        }
    }
}

impl PerfInterface<Image> for JpegProgramInterface {
    fn kind(&self) -> InterfaceKind {
        InterfaceKind::Program
    }

    fn predict(&self, img: &Image, metric: Metric) -> Result<Prediction, CoreError> {
        let f = match metric {
            Metric::Latency => "latency_jpeg_decode",
            Metric::Throughput => "tput_jpeg_decode",
        };
        let v = self
            .prog
            .call(f, &[img.to_value()])
            .map_err(|e| CoreError::Artifact(e.to_string()))?;
        let n = v
            .as_num()
            .ok_or_else(|| CoreError::InvalidPrediction("non-numeric result".into()))?;
        Ok(Prediction::point(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::JpegCycleSim;
    use crate::hw::JpegHwConfig;
    use crate::workload::ImageGen;
    use perf_core::validate::validate;

    #[test]
    fn program_parses_and_predicts() {
        let iface = JpegProgramInterface::new().unwrap();
        let mut g = ImageGen::new(2);
        let img = g.gen_sized(128, 128, 60);
        let lat = iface.predict(&img, Metric::Latency).unwrap();
        assert!(lat.is_finite());
        assert!(lat.midpoint() > 0.0);
        let tput = iface.predict(&img, Metric::Throughput).unwrap();
        assert!((tput.midpoint() - 1.0 / lat.midpoint()).abs() < 1e-12);
    }

    #[test]
    fn accuracy_is_single_digit_percent_on_small_sample() {
        // The paper reports 2.1% (10.3%) over 1500 images; the bench
        // reproduces that scale. Here: a quick 40-image sanity check
        // that errors are in the right ballpark.
        let mut sim = JpegCycleSim::new(JpegHwConfig::default());
        let iface = JpegProgramInterface::new().unwrap();
        let mut g = ImageGen::new(1234);
        let imgs = g.gen_many(40);
        let rep = validate(&mut sim, &iface, Metric::Latency, &imgs).unwrap();
        assert!(
            rep.point.avg < 0.10,
            "avg error {:.3} too large",
            rep.point.avg
        );
        assert!(
            rep.point.max < 0.35,
            "max error {:.3} too large",
            rep.point.max
        );
    }

    #[test]
    fn source_exposed_for_complexity_metric() {
        let iface = JpegProgramInterface::new().unwrap();
        assert!(iface.source().contains("latency_jpeg_decode"));
    }
}
