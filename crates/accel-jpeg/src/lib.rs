//! A cycle-accurate model of a pipelined JPEG-decoder accelerator and
//! its performance interfaces.
//!
//! The paper's running example is `core_jpeg`, a high-throughput
//! pipelined JPEG decoder. We model a baseline-JPEG (grayscale) decode
//! pipeline:
//!
//! ```text
//! header parse → [bitstream/Huffman] → [dequant+zigzag] → [IDCT] → [writer]
//! ```
//!
//! with bounded queues between stages. The Huffman stage's delay depends
//! on the *actual coded bits* of each 8×8 block (computed with a real
//! entropy model in [`huffman`]), the dequant stage on the block's
//! nonzero coefficient count, the IDCT and writer stages are fixed per
//! block — which is exactly why the paper's Fig. 1 law holds: latency is
//! inversely proportional to the image's compression rate until the
//! IDCT becomes the bottleneck.
//!
//! The crate ships the accelerator's three performance interfaces:
//!
//! * [`interface::nl`] — Fig. 1-style prose plus machine-checkable
//!   claims,
//! * [`interface::program`] — the Fig. 2 PIL program,
//! * [`interface::petri`] — the Table 1 Petri-net IR (a `.pnet` file).

pub mod cycle;
pub mod huffman;
pub mod hw;
pub mod idct;
pub mod interface;
pub mod workload;

pub use cycle::JpegCycleSim;
pub use hw::JpegHwConfig;
pub use workload::{Image, ImageGen};

/// Source text of the accelerator implementation (the cycle-accurate
/// model and the subsystems it is built from), for the Table 1
/// interface-complexity ratio.
pub fn implementation_sources() -> Vec<&'static str> {
    vec![
        include_str!("cycle.rs"),
        include_str!("hw.rs"),
        include_str!("huffman.rs"),
        include_str!("idct.rs"),
    ]
}
