//! Baseline-JPEG entropy model: quantization, zig-zag scan and Huffman
//! bit costs.
//!
//! The decoder's Huffman stage spends time proportional to the coded
//! bits of each block, so the workload model needs *real* per-block bit
//! counts. This module quantizes DCT coefficient blocks with the
//! standard luminance quantization matrix and computes the exact number
//! of bits a baseline sequential JPEG encoder would emit for the block:
//! DC category code + magnitude bits, then run-length coded AC symbols
//! with (run, size) Huffman codes, ZRL for 16-zero runs and EOB.
//!
//! Code lengths use canonical tables with the same structure as the
//! JPEG Annex K tables (short codes for low-run/low-size symbols,
//! 16-bit codes in the tail). The workspace's encoder and decoder share
//! these tables, so all bit counts are self-consistent.

/// The standard JPEG luminance quantization matrix (Annex K.1), in
/// natural (row-major) order.
pub const LUMA_QUANT: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Code lengths for the DC luminance table (Annex K.3.1): one code per
/// magnitude category 0..=11.
pub const DC_CODE_LEN: [u8; 12] = [2, 3, 3, 3, 3, 3, 4, 5, 6, 7, 8, 9];

/// Length in bits of the EOB (end-of-block) code.
pub const EOB_LEN: u8 = 4;

/// Length in bits of the ZRL (sixteen-zero run) code.
pub const ZRL_LEN: u8 = 11;

/// Returns the zig-zag scan order: `ZIGZAG[k]` is the natural-order
/// index of the `k`-th scanned coefficient.
pub fn zigzag_order() -> [usize; 64] {
    let mut order = [0usize; 64];
    let mut k = 0;
    for diag in 0..15 {
        // Walk each anti-diagonal, alternating direction.
        let points: Vec<(usize, usize)> = (0..8)
            .filter_map(|r| {
                let c = diag as isize - r as isize;
                if (0..8).contains(&c) {
                    Some((r, c as usize))
                } else {
                    None
                }
            })
            .collect();
        let iter: Box<dyn Iterator<Item = &(usize, usize)>> = if diag % 2 == 0 {
            Box::new(points.iter().rev())
        } else {
            Box::new(points.iter())
        };
        for &(r, c) in iter {
            order[k] = r * 8 + c;
            k += 1;
        }
    }
    debug_assert_eq!(k, 64);
    order
}

/// The magnitude category of a coefficient: the number of bits needed
/// to represent `|v|` (0 for 0).
pub fn category(v: i32) -> u8 {
    let mut a = v.unsigned_abs();
    let mut bits = 0u8;
    while a > 0 {
        bits += 1;
        a >>= 1;
    }
    bits
}

/// Code length of an AC (run, size) symbol, canonical-table model: low
/// runs and small sizes get short codes; everything saturates at 16
/// bits, like the Annex K tail.
pub fn ac_code_len(run: u8, size: u8) -> u8 {
    debug_assert!(run <= 15 && (1..=10).contains(&size));
    let base = match (run, size) {
        (0, 1) => 2,
        (0, 2) => 2,
        (0, 3) => 3,
        (0, 4) => 4,
        (0, 5) => 5,
        (0, 6) => 7,
        (0, 7) => 8,
        (0, 8) => 10,
        (1, 1) => 4,
        (1, 2) => 5,
        (1, 3) => 7,
        (1, 4) => 9,
        (2, 1) => 5,
        (2, 2) => 8,
        (3, 1) => 6,
        (3, 2) => 9,
        (4, 1) => 6,
        (5, 1) => 7,
        (6, 1) => 7,
        (7, 1) => 8,
        (8, 1) => 9,
        _ => 0,
    };
    if base > 0 {
        base
    } else {
        // Tail symbols: rare, long codes.
        (10 + run / 4 + size).min(16)
    }
}

/// Quality scaling factor as used by libjpeg: maps quality 1..=100 to a
/// percentage scaling of the quantization table.
pub fn quality_scale(quality: u8) -> f64 {
    let q = quality.clamp(1, 100) as f64;
    if q < 50.0 {
        5000.0 / q / 100.0
    } else {
        (200.0 - 2.0 * q) / 100.0
    }
}

/// Quantizes a natural-order coefficient block at the given quality.
pub fn quantize(coefs: &[f64; 64], quality: u8) -> [i32; 64] {
    let s = quality_scale(quality);
    let mut out = [0i32; 64];
    for i in 0..64 {
        let q = (LUMA_QUANT[i] as f64 * s).max(1.0);
        out[i] = (coefs[i] / q).round() as i32;
    }
    out
}

/// Entropy statistics of one coded block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCost {
    /// Total coded bits for the block (DC + AC + EOB).
    pub bits: u32,
    /// Number of nonzero quantized coefficients (including DC if
    /// nonzero).
    pub nonzero: u8,
}

/// Computes the exact coded size of a quantized block.
///
/// `dc_pred` is the previous block's DC value (baseline JPEG codes DC
/// differentially). Returns the cost and the block's DC value for
/// chaining.
pub fn block_cost(quantized: &[i32; 64], dc_pred: i32) -> (BlockCost, i32) {
    let zz = zigzag_order();
    let dc = quantized[0];
    let dc_cat = category(dc - dc_pred).min(11);
    let mut bits = DC_CODE_LEN[dc_cat as usize] as u32 + dc_cat as u32;
    let mut nonzero = u8::from(dc != 0);

    let mut run = 0u8;
    let mut last_nonzero = 0usize;
    for k in (1..64).rev() {
        if quantized[zz[k]] != 0 {
            last_nonzero = k;
            break;
        }
    }
    for k in 1..=last_nonzero {
        let v = quantized[zz[k]];
        if v == 0 {
            run += 1;
            if run == 16 {
                bits += ZRL_LEN as u32;
                run = 0;
            }
        } else {
            nonzero += 1;
            let size = category(v).min(10);
            bits += ac_code_len(run, size) as u32 + size as u32;
            run = 0;
        }
    }
    if last_nonzero < 63 {
        bits += EOB_LEN as u32;
    }
    (BlockCost { bits, nonzero }, dc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation_with_known_prefix() {
        let z = zigzag_order();
        let mut seen = [false; 64];
        for &i in &z {
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        // The canonical JPEG zig-zag prefix.
        assert_eq!(&z[..10], &[0, 1, 8, 16, 9, 2, 3, 10, 17, 24]);
        assert_eq!(z[63], 63);
    }

    #[test]
    fn category_is_bit_length() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(2), 2);
        assert_eq!(category(-3), 2);
        assert_eq!(category(255), 8);
        assert_eq!(category(-1024), 11);
    }

    #[test]
    fn quality_scale_matches_libjpeg_shape() {
        assert!((quality_scale(50) - 1.0).abs() < 1e-12);
        assert!((quality_scale(25) - 2.0).abs() < 1e-12);
        assert!((quality_scale(100) - 0.0).abs() < 1e-12);
        assert!(quality_scale(10) > quality_scale(90));
    }

    #[test]
    fn all_zero_block_costs_dc_plus_eob() {
        let q = [0i32; 64];
        let (c, dc) = block_cost(&q, 0);
        assert_eq!(dc, 0);
        assert_eq!(c.nonzero, 0);
        // DC category 0 code (2 bits) + EOB (4 bits).
        assert_eq!(c.bits, 2 + 4);
    }

    #[test]
    fn single_ac_coefficient() {
        let mut q = [0i32; 64];
        let zz = zigzag_order();
        q[zz[1]] = 1; // First AC position, value 1 -> (run 0, size 1).
        let (c, _) = block_cost(&q, 0);
        // DC cat 0 (2) + AC(0,1)=2 + 1 magnitude bit + EOB 4.
        assert_eq!(c.bits, 2 + 2 + 1 + 4);
        assert_eq!(c.nonzero, 1);
    }

    #[test]
    fn long_zero_run_uses_zrl() {
        let mut q = [0i32; 64];
        let zz = zigzag_order();
        q[zz[20]] = 1; // 19 zeros before it: one ZRL + (run 3, size 1).
        let (c, _) = block_cost(&q, 0);
        let expect = 2 + ZRL_LEN as u32 + ac_code_len(3, 1) as u32 + 1 + 4;
        assert_eq!(c.bits, expect);
    }

    #[test]
    fn trailing_nonzero_skips_eob() {
        let mut q = [0i32; 64];
        q[63] = 5; // Natural index 63 is also last in zig-zag.
        let (c, _) = block_cost(&q, 0);
        let size = category(5);
        // 63 zeros before it: 3 ZRL (48 zeros) + run 15 left.
        let expect = 2 + 3 * ZRL_LEN as u32 + ac_code_len(15, size) as u32 + size as u32;
        assert_eq!(c.bits, expect);
    }

    #[test]
    fn dc_coded_differentially() {
        let mut q = [0i32; 64];
        q[0] = 100;
        let (c1, dc1) = block_cost(&q, 0);
        assert_eq!(dc1, 100);
        // Same DC again: difference 0 -> cheapest DC code.
        let (c2, _) = block_cost(&q, 100);
        assert!(c2.bits < c1.bits);
    }

    #[test]
    fn denser_blocks_cost_more_bits() {
        let zz = zigzag_order();
        let mut sparse = [0i32; 64];
        let mut dense = [0i32; 64];
        for k in 1..4 {
            sparse[zz[k]] = 3;
        }
        for k in 1..32 {
            dense[zz[k]] = 3;
        }
        let (cs, _) = block_cost(&sparse, 0);
        let (cd, _) = block_cost(&dense, 0);
        assert!(cd.bits > cs.bits * 4);
        assert_eq!(cd.nonzero, 31);
    }

    #[test]
    fn quantize_kills_high_frequencies_at_low_quality() {
        let mut coefs = [0.0f64; 64];
        for (i, c) in coefs.iter_mut().enumerate() {
            *c = 50.0 / (1.0 + i as f64 * 0.2);
        }
        let hi = quantize(&coefs, 90);
        let lo = quantize(&coefs, 10);
        let nz_hi = hi.iter().filter(|&&v| v != 0).count();
        let nz_lo = lo.iter().filter(|&&v| v != 0).count();
        assert!(nz_hi > nz_lo);
    }

    #[test]
    fn ac_code_lengths_are_sane() {
        // Short codes for common symbols, long for the tail; all within
        // the 16-bit JPEG limit.
        assert!(ac_code_len(0, 1) <= 2);
        for run in 0..=15u8 {
            for size in 1..=10u8 {
                let l = ac_code_len(run, size);
                assert!((2..=16).contains(&l), "len({run},{size}) = {l}");
            }
        }
        // Longer runs and bigger magnitudes never get shorter codes
        // within the modeled region.
        assert!(ac_code_len(15, 10) >= ac_code_len(0, 1));
    }
}
