//! Cross-tier consistency checker (`perf-xcheck`).
//!
//! A vendor ships three performance interfaces per accelerator — prose
//! with machine-checkable claims, an executable `.pi` program, and a
//! timed Petri net — at three fidelities. Nothing so far guaranteed
//! they *agree*. This crate proves pairwise consistency statically,
//! without running a single simulation:
//!
//! * the **program tier** is evaluated symbolically over the
//!   accelerator's declared workload *box* (per-feature intervals)
//!   with the interval abstract interpreter in
//!   [`perf_iface_lang::lint`], yielding guaranteed `[lo, hi]`
//!   latency/throughput enclosures;
//! * the **net tier** contributes structural bounds from
//!   [`perf_petri::bound`]: a critical-path latency floor and a
//!   bottleneck-transition throughput ceiling, both valid for every
//!   token drawn from the same box;
//! * the **NL tier**'s claims are probed against the program tier at
//!   concretized box points (`BoxVal::sample`) with the claim checker
//!   in [`perf_core::nl`].
//!
//! Containment direction: the net's floor is a *proof* that no item
//! finishes faster, so a program promising a lower latency (`XT101`)
//! or a higher rate than the net's ceiling (`XT102`) is lying at one
//! tier or the other. Disagreements surface as `XT0xx`/`XT1xx`
//! diagnostics through [`perf_core::diag`]; composite pipelines
//! additionally get the topology lints (`PC0xx`) from
//! [`perf_compose::lint`].

#![deny(missing_docs)]

use perf_core::diag::{Diagnostic, Diagnostics};
use perf_core::nl::{Claim, NlInterface, Quantity};
use perf_core::query::EngineChoice;
use perf_core::CoreError;
use perf_iface_lang::lint::{bound_fn, BoxVal};
use perf_iface_lang::{Program, Value};
use perf_petri::{bounds, bounds_any, Net, PlaceId};

/// The cross-tier check catalog: code, summary.
pub const XCHECK_CODES: &[(&str, &str)] = &[
    (
        "XT001",
        "bound extraction failed: a tier could not be analyzed (program \
         function missing or unanalyzable, net unparsable, no entry→sink path)",
    ),
    (
        "XT002",
        "negative bound: an extracted latency/throughput interval admits \
         values below zero",
    ),
    (
        "XT003",
        "unbounded enclosure: an extracted interval has an infinite upper \
         end over the declared (finite) workload box (warning)",
    ),
    (
        "XT101",
        "program latency floor below the net's structural floor: the program \
         promises a latency the net proves impossible",
    ),
    (
        "XT102",
        "program throughput ceiling above the net's structural ceiling: the \
         program promises a rate the net's bottleneck cannot sustain",
    ),
    (
        "XT103",
        "NL claim contradicted by program-tier probes over the workload box",
    ),
    (
        "XT104",
        "NL proportionality claim outside tolerance against program-tier \
         probes (warning)",
    ),
    (
        "XT105",
        "NL claim references a workload feature the declared box does not \
         cover (no probe registered for its metric/axis)",
    ),
];

/// How a claim's metric is computed from the program tier at one axis
/// value.
type ProbeFn = fn(&Program, f64) -> Result<f64, String>;

/// Registered program-tier probe for one NL claim axis.
struct ClaimProbe {
    metric: Quantity,
    axis: &'static str,
    /// Axis interval the probe sweeps.
    lo: f64,
    hi: f64,
    eval: ProbeFn,
}

/// One Petri net to extract structural bounds from.
struct NetSpec {
    origin: &'static str,
    src: String,
    entries: Vec<&'static str>,
    token_box: BoxVal,
}

/// Everything the checker knows about one accelerator's shipped tiers.
struct AccelSpec {
    pi_origin: &'static str,
    pi_src: String,
    /// Latency-valued functions to extract, each over its input box.
    /// Functions named `latency_*` are point predictors and must not
    /// undercut any net floor (`XT101`).
    latency_fns: Vec<(&'static str, BoxVal)>,
    /// Throughput-valued functions; no ceiling may exceed any net's
    /// structural ceiling (`XT102`).
    tput_fns: Vec<(&'static str, BoxVal)>,
    nets: Vec<NetSpec>,
    nl: NlInterface,
    probes: Vec<ClaimProbe>,
}

fn call_num(prog: &Program, f: &str, arg: Value) -> Result<f64, String> {
    prog.call(f, &[arg])
        .map_err(|e| e.to_string())?
        .as_num()
        .ok_or_else(|| format!("`{f}` returned a non-number"))
}

fn jpeg_img(orig_size: f64, compress_rate: f64) -> Value {
    Value::record([
        ("orig_size", Value::num(orig_size)),
        ("compress_rate", Value::num(compress_rate)),
    ])
}

/// A leaf protobuf message wrapped `depth` times: each level adds one
/// sub-message pointer chase on the read path and two field writes on
/// the write path, mirroring the NL claim's nesting axis.
fn nested_msg(depth: usize) -> Value {
    let mut writes = 4.0;
    let mut wire = 64.0;
    let mut m = Value::record([
        ("num_fields", Value::num(4.0)),
        ("num_writes", Value::num(writes)),
        ("wire_bytes", Value::num(wire)),
        ("subs", Value::list(vec![])),
    ]);
    for _ in 0..depth {
        writes += 2.0;
        wire += 16.0;
        m = Value::record([
            ("num_fields", Value::num(2.0)),
            ("num_writes", Value::num(writes)),
            ("wire_bytes", Value::num(wire)),
            ("subs", Value::list(vec![m])),
        ]);
    }
    m
}

fn vta_insn(m: f64, gemm: f64, alu: f64, mem: f64, fin: f64, bytes: f64, macs: f64) -> Value {
    Value::record([
        ("m", Value::num(m)),
        ("is_gemm", Value::num(gemm)),
        ("is_alu", Value::num(alu)),
        ("is_mem", Value::num(mem)),
        ("is_fin", Value::num(fin)),
        ("bytes", Value::num(bytes)),
        ("macs", Value::num(macs)),
        ("ops", Value::num(0.0)),
    ])
}

/// A canonical load→GEMM→store→finish block, parameterized on the GEMM
/// extent and the load transfer size (the two NL claim axes).
fn vta_block(macs: f64, load_bytes: f64) -> Value {
    Value::record([(
        "insns",
        Value::list(vec![
            vta_insn(0.0, 0.0, 0.0, 1.0, 0.0, load_bytes, 0.0),
            vta_insn(1.0, 1.0, 0.0, 0.0, 0.0, 0.0, macs),
            vta_insn(2.0, 0.0, 0.0, 1.0, 0.0, 128.0, 0.0),
            vta_insn(1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0),
        ]),
    )])
}

/// The names `xcheck_accel` accepts.
pub fn accels() -> &'static [&'static str] {
    &["jpeg-decoder", "bitcoin-miner", "protoacc", "vta"]
}

fn spec(accel: &str) -> Option<AccelSpec> {
    use accel_bitcoin::interface as btc;
    use accel_jpeg::interface as jpeg;
    use accel_protoacc::interface as pacc;
    use accel_vta::interface as vta;
    match accel {
        "jpeg-decoder" => Some(AccelSpec {
            pi_origin: "jpeg.pi",
            pi_src: jpeg::program::JPEG_PI_SRC.to_string(),
            latency_fns: vec![("latency_jpeg_decode", jpeg::workload_box())],
            tput_fns: vec![("tput_jpeg_decode", jpeg::workload_box())],
            nets: vec![NetSpec {
                origin: "jpeg.pnet",
                src: jpeg::petri::JPEG_PNET_SRC.to_string(),
                entries: vec!["blocks_in"],
                token_box: jpeg::token_box(),
            }],
            nl: jpeg::nl::interface(),
            probes: vec![
                ClaimProbe {
                    metric: Quantity::Latency,
                    axis: "compress_rate",
                    lo: 1.5,
                    hi: 64.0,
                    eval: |p, x| call_num(p, "latency_jpeg_decode", jpeg_img(512.0 * 512.0, x)),
                },
                ClaimProbe {
                    metric: Quantity::Latency,
                    axis: "orig_size",
                    lo: 65536.0,
                    hi: 4_194_304.0,
                    eval: |p, x| call_num(p, "latency_jpeg_decode", jpeg_img(x, 8.0)),
                },
                ClaimProbe {
                    metric: Quantity::Throughput,
                    axis: "compress_rate",
                    lo: 1.5,
                    hi: 64.0,
                    eval: |p, x| call_num(p, "tput_jpeg_decode", jpeg_img(512.0 * 512.0, x)),
                },
            ],
        }),
        "bitcoin-miner" => Some(AccelSpec {
            pi_origin: "bitcoin.pi",
            pi_src: btc::program::BITCOIN_PI_SRC.to_string(),
            latency_fns: vec![
                ("latency_hash", btc::workload_box()),
                ("latency_scan", btc::workload_box()),
                ("min_latency_job", btc::workload_box()),
                ("max_latency_job", btc::workload_box()),
            ],
            tput_fns: vec![
                ("tput_hash", btc::workload_box()),
                ("min_tput_job", btc::workload_box()),
                ("max_tput_job", btc::workload_box()),
            ],
            nets: vec![NetSpec {
                origin: "bitcoin.pnet",
                src: btc::petri::pnet_source(&Default::default()),
                entries: vec!["nonces"],
                token_box: btc::token_box(),
            }],
            nl: btc::nl::interface(),
            probes: vec![
                ClaimProbe {
                    metric: Quantity::Latency,
                    axis: "loop",
                    lo: 1.0,
                    hi: 128.0,
                    eval: |p, x| {
                        call_num(p, "latency_hash", Value::record([("loop", Value::num(x))]))
                    },
                },
                ClaimProbe {
                    metric: Quantity::Throughput,
                    axis: "loop",
                    lo: 1.0,
                    hi: 128.0,
                    eval: |p, x| call_num(p, "tput_hash", Value::record([("loop", Value::num(x))])),
                },
                ClaimProbe {
                    metric: Quantity::Area,
                    axis: "loop",
                    lo: 1.0,
                    hi: 128.0,
                    // The prose scopes "grows inversely" to the datapath,
                    // so the fixed control/I/O area is subtracted — the
                    // same reading the miner's own NL test uses.
                    eval: |p, x| {
                        call_num(p, "area_kge", Value::record([("loop", Value::num(x))]))
                            .map(|a| a - 48.0)
                    },
                },
            ],
        }),
        "protoacc" => Some(AccelSpec {
            pi_origin: "protoacc.pi",
            pi_src: pacc::program::PROTOACC_PI_SRC.to_string(),
            latency_fns: vec![
                ("min_latency_protoacc_ser", pacc::workload_box()),
                ("max_latency_protoacc_ser", pacc::workload_box()),
                ("read_cost", pacc::workload_box()),
                ("read_cost_worst", pacc::workload_box()),
            ],
            tput_fns: vec![("tput_protoacc_ser", pacc::workload_box())],
            nets: vec![NetSpec {
                origin: "protoacc.pnet",
                src: pacc::petri::PROTOACC_PNET_SRC.to_string(),
                entries: vec!["msgs_in"],
                token_box: pacc::token_box(),
            }],
            nl: pacc::nl::interface(),
            probes: vec![
                ClaimProbe {
                    metric: Quantity::Throughput,
                    axis: "nesting_depth",
                    lo: 0.0,
                    hi: 6.0,
                    eval: |p, x| call_num(p, "tput_protoacc_ser", nested_msg(x.round() as usize)),
                },
                ClaimProbe {
                    metric: Quantity::Latency,
                    axis: "nesting_depth",
                    lo: 0.0,
                    hi: 6.0,
                    eval: |p, x| {
                        call_num(
                            p,
                            "max_latency_protoacc_ser",
                            nested_msg(x.round() as usize),
                        )
                    },
                },
            ],
        }),
        "vta" => Some(AccelSpec {
            pi_origin: "vta.pi",
            pi_src: vta::program::VTA_PI_SRC.to_string(),
            latency_fns: vec![
                ("latency_vta", vta::workload_box()),
                ("insn_cost", vta::token_box()),
            ],
            tput_fns: vec![("tput_vta", vta::workload_box())],
            nets: vec![
                NetSpec {
                    origin: "vta_full.pnet",
                    src: vta::petri::VTA_FULL_PNET_SRC.to_string(),
                    entries: vta::ENTRY_PLACES.to_vec(),
                    token_box: vta::token_box(),
                },
                NetSpec {
                    origin: "vta_lite.pnet",
                    src: vta::petri::VTA_LITE_PNET_SRC.to_string(),
                    entries: vta::ENTRY_PLACES.to_vec(),
                    token_box: vta::token_box(),
                },
            ],
            nl: vta::nl::interface(),
            probes: vec![
                ClaimProbe {
                    metric: Quantity::Latency,
                    axis: "total_macs",
                    lo: 8.0,
                    hi: 65536.0,
                    eval: |p, x| call_num(p, "latency_vta", vta_block(x, 256.0)),
                },
                ClaimProbe {
                    metric: Quantity::Latency,
                    axis: "dma_bytes",
                    lo: 16.0,
                    hi: 4096.0,
                    eval: |p, x| call_num(p, "latency_vta", vta_block(512.0, x)),
                },
            ],
        }),
        _ => None,
    }
}

/// Extracted program-tier enclosure for one function.
struct FnBound {
    name: &'static str,
    lo: f64,
    hi: f64,
}

/// Extracts `[lo, hi]` for each `(fn, box)` pair, reporting `XT001`/
/// `XT002`/`XT003` as it goes; returns the successful enclosures.
fn extract_fns(
    prog: &Program,
    origin: &str,
    fns: &[(&'static str, BoxVal)],
    ds: &mut Diagnostics,
) -> Vec<FnBound> {
    let mut out = Vec::new();
    for (name, bx) in fns {
        match bound_fn(prog.ast(), name, bx) {
            Err(e) => ds.push(
                Diagnostic::error("XT001", format!("cannot bound `{name}`: {e}"))
                    .with_origin(origin)
                    .with_at(format!("fn `{name}`")),
            ),
            Ok(iv) => {
                if iv.lo < 0.0 {
                    ds.push(
                        Diagnostic::error(
                            "XT002",
                            format!(
                                "`{name}` admits negative values over the workload box: \
                                 [{}, {}]",
                                iv.lo, iv.hi
                            ),
                        )
                        .with_origin(origin)
                        .with_at(format!("fn `{name}`")),
                    );
                }
                if !iv.hi.is_finite() {
                    ds.push(
                        Diagnostic::warning(
                            "XT003",
                            format!(
                                "`{name}` is unbounded above over the declared workload box \
                                 (lo = {})",
                                iv.lo
                            ),
                        )
                        .with_origin(origin)
                        .with_at(format!("fn `{name}`")),
                    );
                }
                out.push(FnBound {
                    name,
                    lo: iv.lo,
                    hi: iv.hi,
                });
            }
        }
    }
    out
}

fn resolve_entries(net: &Net, names: &[&str]) -> Result<Vec<PlaceId>, String> {
    names
        .iter()
        .map(|n| {
            net.place_id(n)
                .ok_or_else(|| format!("entry place `{n}` not in net"))
        })
        .collect()
}

/// Cross-checks one shipped accelerator's three interface tiers.
/// Returns the (sorted) findings; an empty set is the proof that the
/// tiers agree on every checked bound.
pub fn xcheck_accel(accel: &str) -> Result<Diagnostics, CoreError> {
    let spec = spec(accel).ok_or_else(|| {
        CoreError::Artifact(format!(
            "unknown accelerator `{accel}` (have: {})",
            accels().join(", ")
        ))
    })?;
    Ok(run_spec(accel, &spec))
}

/// The containment engine proper, separated from the spec lookup so the
/// mutation corpus can run it against deliberately corrupted tiers.
fn run_spec(accel: &str, spec: &AccelSpec) -> Diagnostics {
    let mut ds = Diagnostics::new();

    let prog = match Program::parse(&spec.pi_src) {
        Ok(p) => p,
        Err(e) => {
            ds.push(
                Diagnostic::error("XT001", format!("program does not parse: {e}"))
                    .with_origin(spec.pi_origin),
            );
            ds.sort();
            return ds;
        }
    };

    let lat = extract_fns(&prog, spec.pi_origin, &spec.latency_fns, &mut ds);
    let tput = extract_fns(&prog, spec.pi_origin, &spec.tput_fns, &mut ds);

    // Net structural bounds, and program-vs-net containment.
    for ns in &spec.nets {
        let nb = perf_petri::text::parse(&ns.src)
            .map_err(|e| e.to_string())
            .and_then(|net| {
                let entries = resolve_entries(&net, &ns.entries)?;
                bounds(&net, Some(&entries), &ns.token_box)
            });
        let nb = match nb {
            Ok(nb) => nb,
            Err(e) => {
                ds.push(
                    Diagnostic::error("XT001", format!("cannot bound net: {e}"))
                        .with_origin(ns.origin),
                );
                continue;
            }
        };
        for fb in &lat {
            // Only point predictors promise "this workload takes f(w)
            // cycles"; bounds functions (min_/max_) legitimately quote
            // optimistic floors below any single path's cost.
            if fb.name.starts_with("latency_") && fb.lo < nb.latency_lo - 1e-9 {
                ds.push(
                    Diagnostic::error(
                        "XT101",
                        format!(
                            "`{}` promises latencies down to {} cycles, but the net's \
                             critical-path floor is {} cycles: no token can finish that fast",
                            fb.name, fb.lo, nb.latency_lo
                        ),
                    )
                    .with_origin(spec.pi_origin)
                    .with_at(format!("fn `{}` vs {}", fb.name, ns.origin)),
                );
            }
        }
        for fb in &tput {
            if fb.hi > nb.throughput_hi * (1.0 + 1e-9) {
                ds.push(
                    Diagnostic::error(
                        "XT102",
                        format!(
                            "`{}` promises rates up to {} items/cycle, but the net's \
                             bottleneck ceiling is {} items/cycle",
                            fb.name, fb.hi, nb.throughput_hi
                        ),
                    )
                    .with_origin(spec.pi_origin)
                    .with_at(format!("fn `{}` vs {}", fb.name, ns.origin)),
                );
            }
        }
    }

    // NL claims vs program-tier probes.
    let nl_origin = format!("{accel}.nl");
    for claim in &spec.nl.claims {
        let probe = spec
            .probes
            .iter()
            .find(|p| p.metric == claim.metric() && p.axis == claim.axis());
        let Some(probe) = probe else {
            ds.push(
                Diagnostic::error(
                    "XT105",
                    format!(
                        "claim about {} along `{}` has no program-tier probe: the declared \
                         workload model does not cover that feature",
                        claim.metric().name(),
                        claim.axis()
                    ),
                )
                .with_origin(nl_origin.clone()),
            );
            continue;
        };
        let mut samples = Vec::new();
        let mut failed = false;
        for i in 0..5 {
            let t = i as f64 / 4.0;
            let x = probe.lo + t * (probe.hi - probe.lo);
            match (probe.eval)(&prog, x) {
                Ok(y) => samples.push((x, y)),
                Err(e) => {
                    ds.push(
                        Diagnostic::error(
                            "XT001",
                            format!(
                                "probe for {} along `{}` failed at {x}: {e}",
                                claim.metric().name(),
                                claim.axis()
                            ),
                        )
                        .with_origin(nl_origin.clone()),
                    );
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            continue;
        }
        match claim.check(&samples) {
            Err(e) => ds.push(
                Diagnostic::error(
                    "XT001",
                    format!("claim along `{}` is uncheckable: {e}", claim.axis()),
                )
                .with_origin(nl_origin.clone()),
            ),
            Ok(v) if !v.holds => {
                let approx = matches!(
                    claim,
                    Claim::Proportional { .. } | Claim::InverselyProportional { .. }
                );
                let d = if approx {
                    Diagnostic::warning(
                        "XT104",
                        format!(
                            "claim that {} is {} `{}` deviates by {:.3} against the program \
                             tier",
                            claim.metric().name(),
                            match claim {
                                Claim::InverselyProportional { .. } => "inversely proportional to",
                                _ => "proportional to",
                            },
                            claim.axis(),
                            v.worst_violation
                        ),
                    )
                } else {
                    Diagnostic::error(
                        "XT103",
                        format!(
                            "claim about {} along `{}` is contradicted by program-tier \
                             probes (worst violation {:.3})",
                            claim.metric().name(),
                            claim.axis(),
                            v.worst_violation
                        ),
                    )
                };
                ds.push(d.with_origin(nl_origin.clone()));
            }
            Ok(_) => {}
        }
    }

    ds.sort();
    ds
}

/// Cross-checks a composite pipeline: the `PC0xx` topology lints, the
/// composite net's structural lints, and sanity of the composite net's
/// extracted bounds (tokens unconstrained — stage behaviors are
/// opaque at composition time).
pub fn xcheck_topology(topo: &perf_compose::Topology) -> Diagnostics {
    let mut ds = perf_compose::lint::lint(topo);
    let origin = format!("composite `{}`", topo.name);
    match perf_compose::Composite::new(topo.clone(), EngineChoice::Compiled) {
        Err(e) => ds.push(
            Diagnostic::error("XT001", format!("composite does not build: {e}"))
                .with_origin(origin),
        ),
        Ok(c) => {
            match c.lint_net() {
                Err(e) => ds.push(
                    Diagnostic::error("XT001", format!("composite net does not lint: {e}"))
                        .with_origin(origin.clone()),
                ),
                Ok(nd) => ds.merge(nd.with_origin(&origin)),
            }
            match c.build_net() {
                Err(e) => ds.push(
                    Diagnostic::error("XT001", format!("composite net does not build: {e}"))
                        .with_origin(origin),
                ),
                Ok(net) => {
                    let entry = net.place_id("in");
                    match bounds_any(&net, entry.as_ref().map(std::slice::from_ref)) {
                        Err(e) => ds.push(
                            Diagnostic::error("XT001", format!("cannot bound composite net: {e}"))
                                .with_origin(origin),
                        ),
                        Ok(nb) => {
                            if nb.latency_lo < 0.0 {
                                ds.push(
                                    Diagnostic::error(
                                        "XT002",
                                        format!(
                                            "composite net latency floor is negative: {}",
                                            nb.latency_lo
                                        ),
                                    )
                                    .with_origin(origin),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    ds.sort();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::Severity;

    #[test]
    fn all_shipped_accelerators_xcheck_clean() {
        for accel in accels() {
            let ds = xcheck_accel(accel).unwrap();
            assert_eq!(ds.count(Severity::Error), 0, "{accel}:\n{}", ds.render());
            assert_eq!(ds.count(Severity::Warning), 0, "{accel}:\n{}", ds.render());
        }
    }

    #[test]
    fn unknown_accelerator_is_rejected() {
        assert!(xcheck_accel("warp-drive").is_err());
    }

    #[test]
    fn codes_table_is_sorted_and_unique() {
        for w in XCHECK_CODES.windows(2) {
            assert!(w[0].0 < w[1].0, "{} vs {}", w[0].0, w[1].0);
        }
    }

    /// Every compiled shipped program must pass the bytecode verifier
    /// (`PBC0xx`) — the acceptance gate for the codegen itself. Seeded
    /// bytecode defects live next to the verifier in
    /// `perf_iface_lang::vm`.
    #[test]
    fn verifier_accepts_all_shipped_programs() {
        use perf_iface_lang::vm::CompiledProgram;
        for accel in accels() {
            let s = spec(accel).unwrap();
            let prog = Program::parse(&s.pi_src).unwrap();
            let ds = CompiledProgram::compile(&prog).unwrap().verify();
            assert!(!ds.has_errors(), "{accel}:\n{}", ds.render());
        }
    }

    /// Mutation corpus: each test seeds exactly one defect into one
    /// tier of a shipped artifact set and asserts the checker pins it
    /// with the expected code — zero false negatives by construction.
    mod mutations {
        use super::super::*;
        use perf_core::nl::Direction;
        use perf_core::Severity;

        fn jpeg() -> AccelSpec {
            spec("jpeg-decoder").unwrap()
        }

        fn check(accel: &str, s: &AccelSpec, code: &str) -> Diagnostics {
            let ds = run_spec(accel, s);
            assert!(ds.find(code).is_some(), "expected {code}:\n{}", ds.render());
            ds
        }

        // -- program tier --

        #[test]
        fn program_undercutting_net_floor_is_xt101() {
            let mut s = jpeg();
            s.pi_src = s
                .pi_src
                .replace("const HEADER_CYCLES = 456;", "const HEADER_CYCLES = 0;")
                .replace("const FILL = 160;", "const FILL = 0;");
            check("jpeg-decoder", &s, "XT101");
        }

        #[test]
        fn program_overclaiming_throughput_is_xt102() {
            let mut s = jpeg();
            s.pi_src = s
                .pi_src
                .replace("return 1 / latency_jpeg_decode(img);", "return 1;");
            check("jpeg-decoder", &s, "XT102");
        }

        #[test]
        fn negative_latency_bound_is_xt002() {
            let mut s = spec("bitcoin-miner").unwrap();
            s.pi_src = s
                .pi_src
                .replace("return cfg.loop;", "return cfg.loop - 200;");
            check("bitcoin-miner", &s, "XT002");
        }

        #[test]
        fn unbounded_enclosure_is_xt003() {
            let mut s = jpeg();
            s.pi_src = s
                .pi_src
                .replace("const HUFF_BPC = 2;", "const HUFF_BPC = 0;");
            check("jpeg-decoder", &s, "XT003");
        }

        #[test]
        fn missing_function_is_xt001() {
            let mut s = jpeg();
            s.pi_src = s
                .pi_src
                .replace("fn latency_jpeg_decode(img)", "fn latency_jpeg_dec0de(img)");
            check("jpeg-decoder", &s, "XT001");
        }

        // -- NL tier --

        #[test]
        fn inverted_monotone_claim_is_xt103() {
            let mut s = jpeg();
            s.nl.claims.push(Claim::Monotone {
                metric: Quantity::Latency,
                axis: "compress_rate".into(),
                direction: Direction::Increasing,
            });
            check("jpeg-decoder", &s, "XT103");
        }

        #[test]
        fn overtight_proportionality_claim_is_xt104_warning() {
            let mut s = jpeg();
            s.nl.claims.push(Claim::Proportional {
                metric: Quantity::Latency,
                axis: "compress_rate".into(),
                tolerance: 0.01,
            });
            let ds = check("jpeg-decoder", &s, "XT104");
            assert_eq!(ds.find("XT104").unwrap().severity, Severity::Warning);
        }

        #[test]
        fn claim_on_unprobed_axis_is_xt105() {
            let mut s = spec("bitcoin-miner").unwrap();
            s.nl.claims.push(Claim::Monotone {
                metric: Quantity::Area,
                axis: "nonce_count".into(),
                direction: Direction::Increasing,
            });
            check("bitcoin-miner", &s, "XT105");
        }

        // -- net tier --

        #[test]
        fn slowed_net_stage_raises_floor_above_program_is_xt101() {
            let mut s = jpeg();
            s.nets[0].src = s.nets[0].src.replace("delay 64", "delay 64000");
            check("jpeg-decoder", &s, "XT101");
        }

        #[test]
        fn slowed_net_bottleneck_contradicts_program_tput_is_xt102() {
            let mut s = spec("protoacc").unwrap();
            s.nets[0].src = s.nets[0]
                .src
                .replace("delay t.read_cost", "delay t.read_cost * 2");
            check("protoacc", &s, "XT102");
        }

        #[test]
        fn renamed_entry_place_is_xt001() {
            let mut s = jpeg();
            s.nets[0].entries = vec!["blocks_1n"];
            check("jpeg-decoder", &s, "XT001");
        }

        #[test]
        fn garbled_net_source_is_xt001() {
            let mut s = jpeg();
            s.nets[0].src = "flagrantly not a net".to_string();
            check("jpeg-decoder", &s, "XT001");
        }

        // -- topology tier --

        #[test]
        fn topology_template_mismatch_is_pc003() {
            let mut topo = perf_compose::Topology::parse_chain("vta:3>protoacc:4").unwrap();
            topo.stages[0].kind = "scan".into();
            let ds = xcheck_topology(&topo);
            assert!(ds.find("PC003").is_some(), "{}", ds.render());
        }

        #[test]
        fn topology_rate_mismatch_is_informational_pc001() {
            let topo = perf_compose::Topology::parse_chain("bitcoin-miner:2>protoacc:4").unwrap();
            let ds = xcheck_topology(&topo);
            let pc1 = ds.find("PC001").expect("rate mismatch surfaced");
            assert_eq!(pc1.severity, Severity::Info);
            assert!(!ds.has_errors(), "{}", ds.render());
        }
    }
}
