//! Property tests for the SHA-256 functional model and miner timing.

use accel_bitcoin::miner::{MineJob, MinerConfig, MinerCycleSim};
use accel_bitcoin::sha256;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The midstate fast path equals hashing the whole 80-byte header,
    /// for arbitrary headers and nonces.
    #[test]
    fn midstate_equals_full_hash(
        header in prop::collection::vec(any::<u8>(), 80),
        nonce in any::<u32>(),
    ) {
        let mut h: [u8; 80] = header.try_into().expect("sized");
        h[76..80].copy_from_slice(&nonce.to_le_bytes());
        let full = sha256::double_sha256(&h);
        let first: &[u8; 64] = h[..64].try_into().expect("sized");
        let tail: &[u8; 12] = h[64..76].try_into().expect("sized");
        let fast = sha256::header_pow_hash(&sha256::midstate(first), tail, nonce);
        prop_assert_eq!(full, fast);
    }

    /// Hashing is deterministic and never panics on arbitrary input.
    #[test]
    fn hash_deterministic(msg in prop::collection::vec(any::<u8>(), 0..300)) {
        let a = sha256::sha256(&msg);
        let b = sha256::sha256(&msg);
        prop_assert_eq!(a, b);
        prop_assert!(sha256::leading_zero_bits(&a) <= 256);
    }

    /// Padding boundaries (55/56/63/64 bytes) are all handled: the
    /// digest of a message never equals the digest of its extension.
    #[test]
    fn extension_changes_digest(len in 50usize..70, extra in 1usize..4) {
        let msg = vec![0x42u8; len];
        let ext = vec![0x42u8; len + extra];
        prop_assert_ne!(sha256::sha256(&msg), sha256::sha256(&ext));
    }

    /// Exhaustive-scan cycle accounting is exact for every Loop.
    #[test]
    fn scan_cycles_exact(loop_pow in 0u32..8, nonces in 1u32..300, seed in any::<u64>()) {
        let l = 1u64 << loop_pow;
        let cfg = MinerConfig::with_loop(l).expect("power of two divides 128");
        let mut sim = MinerCycleSim::new(cfg);
        let job = MineJob::random(seed, nonces, 256);
        let out = sim.mine(&job);
        prop_assert_eq!(out.hashes_done, nonces as u64);
        prop_assert_eq!(out.cycles, nonces as u64 * l);
    }

    /// A found golden nonce always satisfies its difficulty target.
    #[test]
    fn golden_nonce_is_valid(seed in any::<u64>(), bits in 1u32..6) {
        let mut sim = MinerCycleSim::new(MinerConfig::default());
        let job = MineJob::random(seed, 2000, bits);
        let out = sim.mine(&job);
        if let Some(nonce) = out.golden_nonce {
            let mut h = job.header;
            h[76..80].copy_from_slice(&nonce.to_le_bytes());
            let d = sha256::double_sha256(&h);
            prop_assert!(sha256::leading_zero_bits(&d) >= bits);
        }
    }
}
