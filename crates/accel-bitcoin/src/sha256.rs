//! SHA-256 and double SHA-256 (FIPS 180-4), the miner's functional
//! model.

/// Initial hash values (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A SHA-256 chaining state (the "midstate" miners cache).
pub type State = [u32; 8];

/// Compresses one 64-byte block into `state`.
pub fn compress(state: &mut State, block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, wi) in w.iter_mut().take(16).enumerate() {
        *wi = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Hashes an arbitrary message.
pub fn sha256(msg: &[u8]) -> [u8; 32] {
    let mut state = H0;
    let bit_len = (msg.len() as u64) * 8;
    let mut iter = msg.chunks_exact(64);
    for chunk in &mut iter {
        let block: &[u8; 64] = chunk.try_into().expect("exact chunk");
        compress(&mut state, block);
    }
    // Padding: 0x80, zeros, 64-bit big-endian length.
    let rem = iter.remainder();
    let mut last = [0u8; 128];
    last[..rem.len()].copy_from_slice(rem);
    last[rem.len()] = 0x80;
    let blocks = if rem.len() + 9 <= 64 { 1 } else { 2 };
    last[blocks * 64 - 8..blocks * 64].copy_from_slice(&bit_len.to_be_bytes());
    for i in 0..blocks {
        let block: &[u8; 64] = last[i * 64..(i + 1) * 64].try_into().expect("sized");
        compress(&mut state, block);
    }
    digest_bytes(&state)
}

/// Serializes a state to the big-endian digest bytes.
pub fn digest_bytes(state: &State) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, w) in state.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
    }
    out
}

/// The Bitcoin proof-of-work hash: SHA-256(SHA-256(header)).
pub fn double_sha256(msg: &[u8]) -> [u8; 32] {
    sha256(&sha256(msg))
}

/// Computes the midstate after the first 64 bytes of an 80-byte block
/// header — the optimization every miner implements, since the first
/// block of the header does not change while scanning nonces.
pub fn midstate(header_first_64: &[u8; 64]) -> State {
    let mut s = H0;
    compress(&mut s, header_first_64);
    s
}

/// Hashes an 80-byte Bitcoin block header (with `nonce` patched into
/// bytes 76..80) using a precomputed midstate.
pub fn header_pow_hash(midstate: &State, header_tail: &[u8; 12], nonce: u32) -> [u8; 32] {
    // Second block: 12 tail bytes + 4 nonce bytes + padding for an
    // 80-byte message.
    let mut block = [0u8; 64];
    block[..12].copy_from_slice(header_tail);
    block[12..16].copy_from_slice(&nonce.to_le_bytes());
    block[16] = 0x80;
    block[56..64].copy_from_slice(&(80u64 * 8).to_be_bytes());
    let mut s = *midstate;
    compress(&mut s, &block);
    sha256(&digest_bytes(&s))
}

/// Counts leading zero bits of a digest (the difficulty check).
pub fn leading_zero_bits(digest: &[u8; 32]) -> u32 {
    let mut n = 0;
    for &b in digest {
        if b == 0 {
            n += 8;
        } else {
            n += b.leading_zeros();
            break;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        // 56-byte message forces the two-block padding path.
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_message_crosses_many_blocks() {
        let msg = vec![0x61u8; 200]; // 200 x 'a'.
        let d = sha256(&msg);
        // Compare against an independently computed reference: hashing
        // in two different chunkings must agree (sanity of padding).
        assert_eq!(d, sha256(&[&msg[..], &[]].concat()));
        assert_eq!(d.len(), 32);
    }

    #[test]
    fn double_sha_differs_from_single() {
        assert_ne!(double_sha256(b"abc"), sha256(b"abc"));
        assert_eq!(double_sha256(b"abc"), sha256(&sha256(b"abc")));
    }

    #[test]
    fn midstate_path_matches_full_hash() {
        let mut header = [0u8; 80];
        for (i, b) in header.iter_mut().enumerate() {
            *b = (i * 7 + 3) as u8;
        }
        let nonce = 0xdeadbeefu32;
        header[76..80].copy_from_slice(&nonce.to_le_bytes());
        let full = double_sha256(&header);
        let first: &[u8; 64] = header[..64].try_into().unwrap();
        let tail: &[u8; 12] = header[64..76].try_into().unwrap();
        let fast = header_pow_hash(&midstate(first), tail, nonce);
        assert_eq!(full, fast);
    }

    #[test]
    fn leading_zeros_counted() {
        let mut d = [0u8; 32];
        d[0] = 0x01;
        assert_eq!(leading_zero_bits(&d), 7);
        d[0] = 0;
        d[1] = 0x80;
        assert_eq!(leading_zero_bits(&d), 8);
        let z = [0u8; 32];
        assert_eq!(leading_zero_bits(&z), 256);
        let mut f = [0xffu8; 32];
        assert_eq!(leading_zero_bits(&f), 0);
        f[0] = 0x0f;
        assert_eq!(leading_zero_bits(&f), 4);
    }
}
