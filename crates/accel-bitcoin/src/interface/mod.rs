//! The Bitcoin miner's performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;

use crate::miner::{MineJob, MinerConfig};
use perf_core::InterfaceBundle;

/// Builds the miner's vendor-shipped interface bundle for a given
/// configuration.
pub fn bundle(cfg: MinerConfig) -> InterfaceBundle<MineJob> {
    InterfaceBundle::new("bitcoin-miner", nl::interface())
        .with(Box::new(
            program::BitcoinProgramInterface::new(cfg).expect("shipped .pi parses"),
        ))
        .with(Box::new(
            petri::BitcoinPetriInterface::new(cfg).expect("generated .pnet parses"),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn bundle_complete() {
        let b = bundle(MinerConfig::default());
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
    }
}
