//! The Bitcoin miner's performance-interface representations.

pub mod nl;
pub mod petri;
pub mod program;
pub mod service;

use crate::miner::{MineJob, MinerConfig};
use perf_core::query::EngineChoice;
use perf_core::{Diagnostics, InterfaceBundle};
use perf_iface_lang::lint::BoxVal;

/// Builds the miner's vendor-shipped interface bundle for a given
/// configuration (compiled evaluation substrate).
pub fn bundle(cfg: MinerConfig) -> InterfaceBundle<MineJob> {
    bundle_with_engine(cfg, EngineChoice::Compiled)
}

/// Builds the bundle with an explicit evaluation substrate.
pub fn bundle_with_engine(cfg: MinerConfig, engine: EngineChoice) -> InterfaceBundle<MineJob> {
    InterfaceBundle::new("bitcoin-miner", nl::interface())
        .with(Box::new(
            program::BitcoinProgramInterface::with_engine(cfg, engine).expect("shipped .pi parses"),
        ))
        .with(Box::new(
            petri::BitcoinPetriInterface::with_engine(cfg, engine).expect("generated .pnet parses"),
        ))
}

/// The miner's declared job family as an interval box over the `.pi`
/// program's input record. `loop` is pinned to the default synthesized
/// configuration — the shipped `.pnet` is generated per configuration,
/// so cross-tier checks must compare both tiers at the *same* `Loop` —
/// while the scan window and difficulty range over every job the
/// harnesses generate.
pub fn workload_box() -> BoxVal {
    let loop_ = MinerConfig::default().loop_ as f64;
    BoxVal::record([
        ("loop", BoxVal::point(loop_)),
        ("nonce_count", BoxVal::num(1.0, 1_000_000.0)),
        ("difficulty_bits", BoxVal::num(0.0, 256.0)),
    ])
}

/// One Petri-net token's feature box: a nonce result carries only its
/// 0/1 `golden` flag (the generated net's delays are otherwise
/// configuration constants).
pub fn token_box() -> BoxVal {
    BoxVal::record([("golden", BoxVal::num(0.0, 1.0))])
}

/// Statically audits the miner's shipped interface artifacts with the
/// `perf-lint` analyses. The net is generated per configuration, so
/// the audit covers the default-configuration instance; nonces enter
/// at `nonces`.
pub fn lint() -> Diagnostics {
    let mut ds = perf_iface_lang::lint::lint_src("bitcoin.pi", program::BITCOIN_PI_SRC);
    ds.merge(perf_petri::lint::lint_pnet_src(
        "bitcoin.pnet",
        &petri::pnet_source(&MinerConfig::default()),
        &["nonces"],
    ));
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::InterfaceKind;

    #[test]
    fn shipped_artifacts_lint_clean() {
        let ds = lint();
        assert_eq!(ds.count(perf_core::Severity::Error), 0, "{}", ds.render());
        assert_eq!(ds.count(perf_core::Severity::Warning), 0, "{}", ds.render());
    }

    #[test]
    fn bundle_complete() {
        let b = bundle(MinerConfig::default());
        assert!(b.get(InterfaceKind::Program).is_some());
        assert!(b.get(InterfaceKind::PetriNet).is_some());
    }
}
