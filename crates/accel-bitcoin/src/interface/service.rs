//! Query-service adapter for the Bitcoin miner.
//!
//! Implements [`perf_core::query::QueryBackend`] for `perf-service`.
//! The single spec kind `scan` describes a mining job plus the `Loop`
//! hardware configuration; interface bundles are cached per `Loop`
//! value because the miner's interfaces are configuration-specific.

use crate::miner::{MineJob, MinerConfig, MinerCycleSim};
use perf_core::iface::{InterfaceBundle, InterfaceKind, Metric};
use perf_core::query::{EngineChoice, QueryBackend, WorkloadSpec};
use perf_core::{Budget, CoreError, GroundTruth, Observation, Prediction};

/// The miner's query-service backend.
pub struct BitcoinService {
    /// Interface bundles keyed by the `Loop` parameter (at most the
    /// eight divisors of 128 ever materialize).
    bundles: Vec<(u64, InterfaceBundle<MineJob>)>,
    engine: EngineChoice,
}

impl BitcoinService {
    /// Builds an empty backend on the compiled substrate; bundles
    /// materialize per queried `Loop`.
    pub fn new() -> BitcoinService {
        Self::with_engine(EngineChoice::Compiled)
    }

    /// Builds an empty backend with an explicit evaluation substrate.
    pub fn with_engine(engine: EngineChoice) -> BitcoinService {
        BitcoinService {
            bundles: Vec::new(),
            engine,
        }
    }

    /// Realizes a spec into its hardware config and mining job.
    pub fn realize(&self, spec: &WorkloadSpec) -> Result<(MinerConfig, MineJob), CoreError> {
        if spec.kind != "scan" {
            return Err(CoreError::Artifact(format!(
                "bitcoin-miner: unknown spec kind `{}`",
                spec.kind
            )));
        }
        let cfg = MinerConfig::with_loop(spec.get_uint("loop")?)?;
        let nonce_count = spec.get_uint("nonce_count")?.clamp(1, 1 << 24) as u32;
        let difficulty = spec.get_uint("difficulty")?.min(256) as u32;
        let seed = spec.get_or("seed", 1.0) as u64;
        Ok((cfg, MineJob::random(seed, nonce_count, difficulty)))
    }

    fn bundle(&mut self, cfg: MinerConfig) -> &InterfaceBundle<MineJob> {
        if let Some(i) = self.bundles.iter().position(|(l, _)| *l == cfg.loop_) {
            return &self.bundles[i].1;
        }
        self.bundles.push((
            cfg.loop_,
            crate::interface::bundle_with_engine(cfg, self.engine),
        ));
        &self.bundles.last().expect("just pushed").1
    }
}

impl Default for BitcoinService {
    fn default() -> Self {
        BitcoinService::new()
    }
}

/// The natural-language closed-form bound for a mining job.
///
/// The NL interface says: "one hash takes `Loop` cycles; a scan stops
/// at the first golden nonce and pays a fixed report overhead". That
/// prose pins the whole behavior envelope:
///
/// * latency — at best the first hash wins (plus the report), or a
///   short scan exhausts without finding anything; at worst the scan
///   exhausts and reports;
/// * throughput — a first-find scan amortizes the report over at least
///   one hash, so the rate sits between `1/(Loop+report)` and
///   `1/Loop`.
pub fn nl_bounds(cfg: MinerConfig, job: &MineJob, metric: Metric) -> Prediction {
    let l = cfg.loop_ as f64;
    let r = cfg.report_cycles as f64;
    let n = job.nonce_count as f64;
    match metric {
        Metric::Latency => Prediction::bounds((l + r).min(n * l), n * l + r),
        Metric::Throughput => Prediction::bounds(1.0 / (l + r), 1.0 / l),
    }
}

impl QueryBackend for BitcoinService {
    fn accel(&self) -> &'static str {
        "bitcoin-miner"
    }

    fn engine(&self) -> EngineChoice {
        self.engine
    }

    fn spec_kinds(&self) -> &'static [&'static str] {
        &["scan"]
    }

    fn predict(
        &mut self,
        spec: &WorkloadSpec,
        repr: InterfaceKind,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        let (cfg, job) = self.realize(spec)?;
        match repr {
            InterfaceKind::NaturalLanguage => Ok(nl_bounds(cfg, &job, metric)),
            _ => self
                .bundle(cfg)
                .get(repr)
                .ok_or_else(|| CoreError::Artifact(format!("no {} interface", repr.name())))?
                .predict(&job, metric),
        }
    }

    fn budget(&self, repr: InterfaceKind, _metric: Metric) -> Budget {
        // Deterministic hardware: the executable tiers are essentially
        // exact (conformance budget), and the NL bounds are provably
        // containing, so even its budget stays tight.
        match repr {
            InterfaceKind::NaturalLanguage => Budget::new(0.05, 0.5).with_atol(4.0),
            _ => Budget::new(0.002, 0.01).with_atol(2.0),
        }
    }

    fn measure(&mut self, spec: &WorkloadSpec) -> Result<Observation, CoreError> {
        let (cfg, job) = self.realize(spec)?;
        MinerCycleSim::new(cfg).measure(&job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<WorkloadSpec> {
        let mut v = Vec::new();
        for l in [1.0, 8.0, 64.0] {
            v.push(
                WorkloadSpec::new("scan")
                    .with("loop", l)
                    .with("seed", 2.0)
                    .with("nonce_count", 200.0)
                    .with("difficulty", 256.0),
            );
            v.push(
                WorkloadSpec::new("scan")
                    .with("loop", l)
                    .with("seed", 3.0)
                    .with("nonce_count", 5000.0)
                    .with("difficulty", 10.0),
            );
        }
        v.push(
            WorkloadSpec::new("scan")
                .with("loop", 8.0)
                .with("seed", 9.0)
                .with("nonce_count", 1.0)
                .with("difficulty", 256.0),
        );
        v
    }

    #[test]
    fn all_reprs_predict_and_nl_contains_sim() {
        let mut svc = BitcoinService::new();
        for spec in corpus() {
            let obs = svc.measure(&spec).unwrap();
            for metric in [Metric::Latency, Metric::Throughput] {
                for repr in [
                    InterfaceKind::NaturalLanguage,
                    InterfaceKind::Program,
                    InterfaceKind::PetriNet,
                ] {
                    let p = svc.predict(&spec, repr, metric).unwrap();
                    assert!(p.is_finite());
                    if repr == InterfaceKind::NaturalLanguage {
                        assert!(
                            p.contains(metric.of(&obs)),
                            "{spec:?} {metric:?}: {p:?} vs {}",
                            metric.of(&obs)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_loop_is_rejected() {
        let mut svc = BitcoinService::new();
        let spec = WorkloadSpec::new("scan")
            .with("loop", 3.0)
            .with("nonce_count", 10.0)
            .with("difficulty", 256.0);
        assert!(svc
            .predict(&spec, InterfaceKind::Program, Metric::Latency)
            .is_err());
    }
}
