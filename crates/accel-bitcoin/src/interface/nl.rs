//! Natural-language interface for the Bitcoin miner (paper Fig. 1,
//! middle).

use perf_core::nl::{Claim, Direction, NlInterface, Quantity};

/// The Fig. 1 prose, with checkable claims: per-hash latency *equals*
/// `Loop`, throughput falls as `Loop` grows, and area is inversely
/// proportional to `Loop`.
pub fn interface() -> NlInterface {
    NlInterface::new(
        "bitcoin-miner",
        "Latency (cycles) is equal to the configuration parameter Loop. \
         However, the area occupied by the accelerator grows inversely with Loop.",
    )
    .with_claim(Claim::Equals {
        metric: Quantity::Latency,
        axis: "loop".into(),
    })
    .with_claim(Claim::Monotone {
        metric: Quantity::Throughput,
        axis: "loop".into(),
        direction: Direction::Decreasing,
    })
    .with_claim(Claim::InverselyProportional {
        metric: Quantity::Area,
        axis: "loop".into(),
        tolerance: 0.02,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::MinerConfig;

    #[test]
    fn claims_hold_on_the_model() {
        let nl = interface();
        let loops = [1u64, 2, 4, 8, 16, 32, 64];
        let cfgs: Vec<MinerConfig> = loops
            .iter()
            .map(|&l| MinerConfig::with_loop(l).unwrap())
            .collect();

        // Latency == Loop, exactly.
        let lat: Vec<(f64, f64)> = cfgs
            .iter()
            .map(|c| (c.loop_ as f64, c.hash_latency() as f64))
            .collect();
        assert!(nl.claims[0].check(&lat).unwrap().holds);

        // Throughput decreasing in Loop.
        let tput: Vec<(f64, f64)> = cfgs
            .iter()
            .map(|c| (c.loop_ as f64, c.hash_throughput()))
            .collect();
        assert!(nl.claims[1].check(&tput).unwrap().holds);

        // The *variable* area is inversely proportional to Loop; the
        // fixed overhead is subtracted as the interface text implies
        // "grows inversely" about the datapath.
        let area: Vec<(f64, f64)> = cfgs
            .iter()
            .map(|c| (c.loop_ as f64, c.area_kge() - 48.0))
            .collect();
        assert!(nl.claims[2].check(&area).unwrap().holds);
    }

    #[test]
    fn equals_claim_rejects_wrong_hardware() {
        // A buggy config whose latency were Loop+1 would be caught.
        let nl = interface();
        let bad = [(8.0, 9.0), (16.0, 17.0)];
        assert!(!nl.claims[0].check(&bad).unwrap().holds);
    }
}
