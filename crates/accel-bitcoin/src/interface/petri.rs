//! Petri-net performance IR for the Bitcoin miner.
//!
//! The miner's net is tiny — a single hash-core transition whose delay
//! is the configuration's `Loop` — which is the point: the *structure*
//! (one serially-reused resource) plus one number captures the whole
//! accelerator's timing. The net text is generated per configuration,
//! as a vendor would ship one IR per synthesized variant.

use crate::miner::{MineJob, MinerConfig};
use perf_core::iface::{InterfaceKind, Metric, PerfInterface};
use perf_core::query::EngineChoice;
use perf_core::{CoreError, Prediction};
use perf_iface_lang::Value;
use perf_petri::engine::Options;
use perf_petri::net::Net;
use perf_petri::stepper::NetExec;
use perf_petri::text;
use perf_petri::token::Token;

/// Renders the miner's `.pnet` source for a configuration.
pub fn pnet_source(cfg: &MinerConfig) -> String {
    format!(
        "# Petri-net performance IR for the Bitcoin miner (Loop = {loop_}).\n\
         net bitcoin_miner\n\
         const LOOP = {loop_};\n\
         const REPORT = {report};\n\
         \n\
         place nonces\n\
         place results cap 2\n\
         sink reported\n\
         \n\
         trans hash_core\n\
         \x20 in nonces\n\
         \x20 out results\n\
         \x20 delay LOOP\n\
         \n\
         trans report\n\
         \x20 in results\n\
         \x20 out reported\n\
         \x20 guard t.golden == 1\n\
         \x20 delay REPORT\n\
         \x20 priority 1\n\
         \n\
         trans discard\n\
         \x20 in results\n\
         \x20 out reported\n\
         \x20 delay 0\n",
        loop_ = cfg.loop_,
        report = cfg.report_cycles,
    )
}

/// Petri-net interface for the miner.
pub struct BitcoinPetriInterface {
    exec: NetExec,
    src: String,
}

impl BitcoinPetriInterface {
    /// Generates and parses the net for `cfg`; evaluations run the
    /// compiled stepper.
    pub fn new(cfg: MinerConfig) -> Result<BitcoinPetriInterface, CoreError> {
        Self::with_engine(cfg, EngineChoice::Compiled)
    }

    /// Generates and parses the net for `cfg` with an explicit
    /// evaluation substrate.
    pub fn with_engine(
        cfg: MinerConfig,
        engine: EngineChoice,
    ) -> Result<BitcoinPetriInterface, CoreError> {
        let src = pnet_source(&cfg);
        let net = text::parse(&src)?;
        let exec = match engine {
            EngineChoice::Compiled => NetExec::compiled(net),
            EngineChoice::Interpreted => NetExec::interpreted(net),
        };
        Ok(BitcoinPetriInterface { exec, src })
    }

    /// The generated `.pnet` source.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// The parsed net.
    pub fn net(&self) -> &Net {
        self.exec.net()
    }

    /// Runs the net for a scan of `hashes` nonces, the last of which is
    /// golden if `found` (mirrors the simulator's early-stop shape).
    pub fn run(&self, hashes: u64, found: bool) -> Result<u64, CoreError> {
        let src = self
            .exec
            .net()
            .place_id("nonces")
            .ok_or_else(|| CoreError::Artifact("net lacks nonces place".into()))?;
        let mut eng = self.exec.session(Options::default());
        for i in 0..hashes {
            let golden = found && i == hashes - 1;
            eng.inject(
                src,
                Token::at(
                    Value::record([("golden", Value::from(u64::from(golden)))]),
                    0,
                ),
            );
        }
        let res = eng.run().map_err(CoreError::from)?;
        Ok(res.makespan)
    }
}

impl PerfInterface<MineJob> for BitcoinPetriInterface {
    fn kind(&self) -> InterfaceKind {
        InterfaceKind::PetriNet
    }

    fn predict(&self, job: &MineJob, metric: Metric) -> Result<Prediction, CoreError> {
        match metric {
            Metric::Throughput => {
                if job.difficulty_bits >= 200 {
                    // Steady-state: measure a long exhaustive scan.
                    let n = 1000u64;
                    let span = self.run(n, false)?;
                    Ok(Prediction::point(n as f64 / span as f64))
                } else {
                    // A first-find scan stops after a data-dependent
                    // number of hashes k, observing k / (k*Loop +
                    // report): worst with the report amortized over a
                    // single hash, best the reportless steady state.
                    let n = 1000u64;
                    let lo = self.run(1, true)?;
                    let hi = self.run(n, false)?;
                    Ok(Prediction::bounds(1.0 / lo as f64, n as f64 / hi as f64))
                }
            }
            Metric::Latency => {
                if job.difficulty_bits >= 200 {
                    let span = self.run(job.nonce_count as u64, false)?;
                    Ok(Prediction::point(span as f64))
                } else {
                    // The cheapest outcomes are an instant find (one
                    // hash plus the report) or — for short scans —
                    // exhausting without any find, paying no report.
                    let find = self.run(1, true)?;
                    let exhaust = self.run(job.nonce_count as u64, false)?;
                    let hi = self.run(job.nonce_count as u64, true)?;
                    Ok(Prediction::bounds(find.min(exhaust) as f64, hi as f64))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::MinerCycleSim;
    use perf_core::GroundTruth;

    #[test]
    fn net_matches_simulator_on_exhaustive_scan() {
        for l in [1u64, 8, 64] {
            let cfg = MinerConfig::with_loop(l).unwrap();
            let iface = BitcoinPetriInterface::new(cfg).unwrap();
            let mut sim = MinerCycleSim::new(cfg);
            let job = MineJob::random(2, 200, 256);
            let obs = sim.measure(&job).unwrap();
            let pred = iface.predict(&job, Metric::Latency).unwrap();
            assert_eq!(pred, Prediction::Point(obs.latency.as_f64()), "Loop = {l}");
        }
    }

    #[test]
    fn net_matches_simulator_when_golden_found() {
        let cfg = MinerConfig::default();
        let iface = BitcoinPetriInterface::new(cfg).unwrap();
        let mut sim = MinerCycleSim::new(cfg);
        let job = MineJob::random(11, 100_000, 8);
        let out = sim.mine(&job);
        assert!(out.golden_nonce.is_some());
        // Replaying the net with the known hash count reproduces the
        // exact latency (hashes x Loop + report).
        let span = iface.run(out.hashes_done, true).unwrap();
        assert_eq!(span, out.cycles);
    }

    #[test]
    fn throughput_prediction() {
        let cfg = MinerConfig::with_loop(32).unwrap();
        let iface = BitcoinPetriInterface::new(cfg).unwrap();
        let job = MineJob::random(1, 10, 256);
        let t = iface.predict(&job, Metric::Throughput).unwrap();
        assert!((t.midpoint() - 1.0 / 32.0).abs() < 1e-6);
    }

    // Conformance-harness counterexamples: short first-find scans
    // observe a report-amortized throughput well below 1/Loop, and a
    // short scan that exhausts unfound undercuts the instant-find
    // latency; both must fall inside the net's bounds.
    #[test]
    fn short_scan_bounds_cover_find_and_exhaust() {
        for (loop_, seed, n, diff) in [(1u64, 3u64, 1u32, 0u32), (8, 3, 1, 0), (8, 7, 1, 64)] {
            let cfg = MinerConfig::with_loop(loop_).unwrap();
            let iface = BitcoinPetriInterface::new(cfg).unwrap();
            let mut sim = MinerCycleSim::new(cfg);
            let job = MineJob::random(seed, n, diff);
            let obs = sim.measure(&job).unwrap();
            for metric in [Metric::Latency, Metric::Throughput] {
                let v = metric.of(&obs);
                let pred = iface.predict(&job, metric).unwrap();
                assert!(matches!(pred, Prediction::Bounds { .. }));
                assert!(
                    pred.contains(v),
                    "Loop {loop_} diff {diff}: {} {v} outside {pred}",
                    metric.name()
                );
            }
        }
    }

    #[test]
    fn source_is_parseable_text() {
        let cfg = MinerConfig::with_loop(2).unwrap();
        let iface = BitcoinPetriInterface::new(cfg).unwrap();
        assert!(iface.source().contains("const LOOP = 2;"));
        assert!(perf_petri::text::parse(iface.source()).is_ok());
    }
}
