//! Program interface for the Bitcoin miner.
//!
//! Latency of a first-find scan is inherently stochastic (the golden
//! nonce's position is data-dependent), so the interface predicts
//! *bounds* for such jobs — the same move the paper makes for
//! Protoacc's latency in Fig. 3 — and a point for exhaustive scans.

use crate::miner::{MineJob, MinerConfig};
use perf_core::iface::{InterfaceKind, Metric, PerfInterface};
use perf_core::query::EngineChoice;
use perf_core::{CoreError, Prediction};
use perf_iface_lang::vm::Executable;
use perf_iface_lang::{Program, Value};

/// The shipped interface program source.
pub const BITCOIN_PI_SRC: &str = include_str!("../../assets/bitcoin.pi");

/// Executable program interface for the miner, bound to a hardware
/// configuration.
pub struct BitcoinProgramInterface {
    prog: Executable,
    cfg: MinerConfig,
}

impl BitcoinProgramInterface {
    /// Parses the shipped program for configuration `cfg`; calls run
    /// the bytecode VM.
    pub fn new(cfg: MinerConfig) -> Result<BitcoinProgramInterface, CoreError> {
        Self::with_engine(cfg, EngineChoice::Compiled)
    }

    /// Parses the shipped program with an explicit evaluation
    /// substrate.
    pub fn with_engine(
        cfg: MinerConfig,
        engine: EngineChoice,
    ) -> Result<BitcoinProgramInterface, CoreError> {
        let prog =
            Program::parse(BITCOIN_PI_SRC).map_err(|e| CoreError::Artifact(e.to_string()))?;
        let prog = match engine {
            EngineChoice::Compiled => {
                Executable::compiled(prog).map_err(|e| CoreError::Artifact(e.to_string()))?
            }
            EngineChoice::Interpreted => Executable::interpreted(prog),
        };
        Ok(BitcoinProgramInterface { prog, cfg })
    }

    /// The program's source text.
    pub fn source(&self) -> &str {
        self.prog.source()
    }

    fn cfg_value(&self) -> Value {
        Value::record([("loop", Value::from(self.cfg.loop_))])
    }

    fn job_value(&self, job: &MineJob) -> Value {
        Value::record([
            ("loop", Value::from(self.cfg.loop_)),
            ("nonce_count", Value::from(job.nonce_count as u64)),
            ("difficulty_bits", Value::from(job.difficulty_bits as u64)),
        ])
    }

    fn call_num(&self, f: &str, arg: Value) -> Result<f64, CoreError> {
        self.prog
            .call(f, &[arg])
            .map_err(|e| CoreError::Artifact(e.to_string()))?
            .as_num()
            .ok_or_else(|| CoreError::InvalidPrediction("non-numeric".into()))
    }

    /// Predicted per-hash latency in cycles.
    pub fn hash_latency(&self) -> Result<f64, CoreError> {
        self.call_num("latency_hash", self.cfg_value())
    }

    /// Predicted silicon area in kGE.
    pub fn area_kge(&self) -> Result<f64, CoreError> {
        self.call_num("area_kge", self.cfg_value())
    }
}

impl PerfInterface<MineJob> for BitcoinProgramInterface {
    fn kind(&self) -> InterfaceKind {
        InterfaceKind::Program
    }

    fn predict(&self, job: &MineJob, metric: Metric) -> Result<Prediction, CoreError> {
        match metric {
            Metric::Throughput => {
                if job.difficulty_bits >= 200 {
                    // Exhaustive scan: the steady-state rate is exact.
                    let t = self.call_num("tput_hash", self.cfg_value())?;
                    Ok(Prediction::point(t))
                } else {
                    // A first-find scan stops after a data-dependent
                    // number of hashes and amortizes the report
                    // overhead over however many it did: bounds, like
                    // latency.
                    let lo = self.call_num("min_tput_job", self.job_value(job))?;
                    let hi = self.call_num("max_tput_job", self.job_value(job))?;
                    Ok(Prediction::bounds(lo, hi))
                }
            }
            Metric::Latency => {
                if job.difficulty_bits >= 200 {
                    // Effectively unreachable target: exhaustive scan,
                    // deterministic latency.
                    let l = self.call_num("latency_scan", self.job_value(job))?;
                    Ok(Prediction::point(l))
                } else {
                    let lo = self.call_num("min_latency_job", self.job_value(job))?;
                    let hi = self.call_num("max_latency_job", self.job_value(job))?;
                    Ok(Prediction::bounds(lo, hi))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::MinerCycleSim;
    use perf_core::validate::validate;
    use perf_core::GroundTruth;

    #[test]
    fn exhaustive_scan_predicted_exactly() {
        let cfg = MinerConfig::with_loop(16).unwrap();
        let iface = BitcoinProgramInterface::new(cfg).unwrap();
        let mut sim = MinerCycleSim::new(cfg);
        let job = MineJob::random(5, 1000, 256);
        let obs = sim.measure(&job).unwrap();
        let pred = iface.predict(&job, Metric::Latency).unwrap();
        assert_eq!(pred, Prediction::Point(obs.latency.as_f64()));
    }

    #[test]
    fn first_find_latency_within_bounds() {
        let cfg = MinerConfig::default();
        let iface = BitcoinProgramInterface::new(cfg).unwrap();
        let mut sim = MinerCycleSim::new(cfg);
        let jobs: Vec<MineJob> = (0..20).map(|s| MineJob::random(s, 50_000, 8)).collect();
        let rep = validate(&mut sim, &iface, Metric::Latency, &jobs).unwrap();
        assert_eq!(rep.bounds.n, 20);
        assert_eq!(rep.bounds.coverage(), 1.0, "all runs inside bounds");
    }

    #[test]
    fn throughput_and_area_from_program() {
        let cfg = MinerConfig::with_loop(4).unwrap();
        let iface = BitcoinProgramInterface::new(cfg).unwrap();
        assert_eq!(iface.hash_latency().unwrap(), 4.0);
        assert_eq!(iface.area_kge().unwrap(), 48.0 + 14.0 * 32.0);
        let job = MineJob::random(1, 10, 256);
        let t = iface.predict(&job, Metric::Throughput).unwrap();
        assert_eq!(t, Prediction::Point(0.25));
    }

    // Conformance-harness counterexample: a Loop=1 single-nonce job
    // that finds instantly runs 1 hash in 1*Loop + report = 5 cycles,
    // so its observed throughput is 0.2 — far from the steady-state
    // 1/Loop = 1.0 the interface used to predict as a point. First-find
    // scans get bounds now.
    #[test]
    fn short_find_throughput_within_bounds() {
        for l in [1u64, 8] {
            let cfg = MinerConfig::with_loop(l).unwrap();
            let iface = BitcoinProgramInterface::new(cfg).unwrap();
            let mut sim = MinerCycleSim::new(cfg);
            let job = MineJob::random(3, 1, 0); // difficulty 0: instant find
            let obs = sim.measure(&job).unwrap();
            let t = Metric::Throughput.of(&obs);
            let pred = iface.predict(&job, Metric::Throughput).unwrap();
            assert!(matches!(pred, Prediction::Bounds { .. }));
            assert!(pred.contains(t), "Loop {l}: tput {t} outside {pred}");
            assert!((t - 1.0 / (l as f64 + 4.0)).abs() < 1e-12);
        }
    }

    // Conformance-harness counterexample: a single-nonce scan that
    // exhausts *without* finding pays no report, finishing in Loop
    // cycles — below the old `Loop + REPORT` lower latency bound.
    #[test]
    fn short_unfound_scan_within_latency_bounds() {
        let cfg = MinerConfig::default();
        let iface = BitcoinProgramInterface::new(cfg).unwrap();
        let mut sim = MinerCycleSim::new(cfg);
        let job = MineJob::random(7, 1, 64); // ~2^-64: never finds
        let obs = sim.measure(&job).unwrap();
        let lat = obs.latency.as_f64();
        let lpred = iface.predict(&job, Metric::Latency).unwrap();
        assert!(lpred.contains(lat), "latency {lat} outside {lpred}");
        let t = Metric::Throughput.of(&obs);
        let tpred = iface.predict(&job, Metric::Throughput).unwrap();
        assert!(tpred.contains(t), "tput {t} outside {tpred}");
    }
}
