//! The miner accelerator: configuration, area model, functional nonce
//! search and cycle-accurate simulator.

use crate::sha256;
use perf_core::units::Cycles;
use perf_core::units::Throughput;
use perf_core::{CoreError, GroundTruth, Observation};
use perf_sim::fault::{FaultInjector, FaultPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total SHA-256 rounds per proof-of-work hash (two 64-round
/// compressions).
pub const TOTAL_ROUNDS: u64 = 128;

/// Hardware configuration of the miner.
///
/// `Loop` is the paper's parameter: the number of clock cycles one hash
/// takes. The hardware instantiates `128 / Loop` chained round units;
/// each cycle a hash advances through all of them, so after `Loop`
/// cycles all 128 rounds are done. Smaller `Loop` means more round
/// units: lower latency, more area.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinerConfig {
    /// Cycles per hash; must divide 128. Valid values: 1, 2, 4, 8, 16,
    /// 32, 64, 128.
    pub loop_: u64,
    /// Fixed result-reporting overhead when a golden nonce is found.
    pub report_cycles: u64,
}

impl MinerConfig {
    /// Creates a configuration with the given `Loop`.
    ///
    /// # Errors
    ///
    /// Fails if `Loop` does not divide 128.
    pub fn with_loop(loop_: u64) -> Result<MinerConfig, CoreError> {
        if loop_ == 0 || !TOTAL_ROUNDS.is_multiple_of(loop_) {
            return Err(CoreError::InvalidObservation(format!(
                "Loop must divide {TOTAL_ROUNDS}, got {loop_}"
            )));
        }
        Ok(MinerConfig {
            loop_,
            report_cycles: 4,
        })
    }

    /// Round units instantiated in silicon.
    pub fn round_units(&self) -> u64 {
        TOTAL_ROUNDS / self.loop_
    }

    /// Area in kilo-gate-equivalents: each unrolled round unit costs
    /// ~14 kGE (adders, message schedule slice, pipeline registers) on
    /// top of ~48 kGE of fixed control, I/O and state.
    pub fn area_kge(&self) -> f64 {
        48.0 + 14.0 * self.round_units() as f64
    }

    /// Per-hash latency in cycles — the quantity the Fig. 1 interface
    /// says equals `Loop`.
    pub fn hash_latency(&self) -> u64 {
        self.loop_
    }

    /// Sustained hash throughput in hashes per cycle (`1 / Loop`; the
    /// round units are occupied by one hash for all `Loop` cycles).
    pub fn hash_throughput(&self) -> f64 {
        1.0 / self.loop_ as f64
    }
}

impl Default for MinerConfig {
    fn default() -> MinerConfig {
        MinerConfig::with_loop(8).expect("8 divides 128")
    }
}

/// A mining job: scan `nonce_count` nonces of a block header looking
/// for a digest with at least `difficulty_bits` leading zero bits.
#[derive(Clone, Debug)]
pub struct MineJob {
    /// The 80-byte block header template (nonce bytes 76..80 ignored).
    pub header: [u8; 80],
    /// First nonce to try.
    pub start_nonce: u32,
    /// Number of nonces to scan.
    pub nonce_count: u32,
    /// Required leading zero bits.
    pub difficulty_bits: u32,
}

impl MineJob {
    /// Generates a random job with the given scan size and difficulty.
    pub fn random(seed: u64, nonce_count: u32, difficulty_bits: u32) -> MineJob {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut header = [0u8; 80];
        rng.fill(&mut header[..]);
        MineJob {
            header,
            start_nonce: rng.gen(),
            nonce_count,
            difficulty_bits,
        }
    }
}

/// The result of running a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MineOutcome {
    /// The first nonce meeting the difficulty target, if any.
    pub golden_nonce: Option<u32>,
    /// Hashes actually computed.
    pub hashes_done: u64,
    /// Total cycles consumed.
    pub cycles: u64,
}

/// Cycle-accurate miner simulator: really computes double SHA-256 per
/// nonce (via the midstate path, as the RTL does) and charges `Loop`
/// cycles per hash.
#[derive(Clone, Debug, Default)]
pub struct MinerCycleSim {
    /// Hardware configuration.
    pub cfg: MinerConfig,
    ticks: u64,
    /// Hashing cycles accumulated across jobs (`hashes x Loop`).
    hash_cycles: u64,
    /// Result-reporting cycles accumulated across jobs.
    report_cycles: u64,
    /// Transient hasher stalls injected by the armed fault plan.
    fault_stall_cycles: u64,
    /// Armed fault injector (the miner has no memory system or FIFOs,
    /// so only the transient-stall class applies: a stall extends one
    /// hash's occupancy of the round units).
    fault: Option<FaultInjector>,
}

impl MinerCycleSim {
    /// Creates a simulator.
    pub fn new(cfg: MinerConfig) -> MinerCycleSim {
        MinerCycleSim {
            cfg,
            ticks: 0,
            hash_cycles: 0,
            report_cycles: 0,
            fault_stall_cycles: 0,
            fault: None,
        }
    }

    /// Arms (or with `None` disarms) deterministic fault injection:
    /// each hash may pay extra stall cycles per the plan's
    /// transient-stall parameters.
    pub fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan.map(FaultInjector::new);
    }

    /// Total stall cycles injected by the armed fault plan so far.
    pub fn fault_cycles(&self) -> u64 {
        self.fault_stall_cycles
    }

    /// Total cycles simulated so far.
    pub fn ticks_simulated(&self) -> u64 {
        self.ticks
    }

    /// Runs a job to completion (golden nonce found or scan
    /// exhausted).
    pub fn mine(&mut self, job: &MineJob) -> MineOutcome {
        let first: &[u8; 64] = job.header[..64].try_into().expect("80-byte header");
        let tail: &[u8; 12] = job.header[64..76].try_into().expect("80-byte header");
        let mid = sha256::midstate(first);
        let mut cycles = 0u64;
        let mut hashes = 0u64;
        let mut golden = None;
        for i in 0..job.nonce_count {
            let nonce = job.start_nonce.wrapping_add(i);
            let digest = sha256::header_pow_hash(&mid, tail, nonce);
            cycles += self.cfg.loop_;
            if let Some(f) = self.fault.as_mut() {
                let extra = f.stage_stall();
                cycles += extra;
                self.fault_stall_cycles += extra;
            }
            hashes += 1;
            if sha256::leading_zero_bits(&digest) >= job.difficulty_bits {
                golden = Some(nonce);
                cycles += self.cfg.report_cycles;
                self.report_cycles += self.cfg.report_cycles;
                break;
            }
        }
        self.hash_cycles += hashes * self.cfg.loop_;
        self.ticks += cycles;
        MineOutcome {
            golden_nonce: golden,
            hashes_done: hashes,
            cycles,
        }
    }

    /// Emits accumulated cycle accounting into `sink` under component
    /// `bitcoin`: the hasher's round units are fully busy while a job
    /// runs (no queues, no backpressure — the one accelerator whose
    /// interface fits in a single constant), plus the result-report
    /// overhead as its own stage.
    pub fn trace_stages(&self, sink: &mut dyn perf_sim::TraceSink) {
        if !sink.is_enabled() {
            return;
        }
        sink.stage(
            "bitcoin",
            "hasher",
            perf_sim::StageCycles {
                busy: self.hash_cycles,
                stall: self.fault_stall_cycles,
                ..perf_sim::StageCycles::default()
            },
        );
        sink.stage(
            "bitcoin",
            "report",
            perf_sim::StageCycles {
                busy: self.report_cycles,
                ..perf_sim::StageCycles::default()
            },
        );
    }
}

impl GroundTruth<MineJob> for MinerCycleSim {
    fn measure(&mut self, job: &MineJob) -> Result<Observation, CoreError> {
        if job.nonce_count == 0 {
            return Err(CoreError::InvalidObservation("empty nonce range".into()));
        }
        let out = self.mine(job);
        Ok(Observation::new(
            Cycles(out.cycles),
            Throughput::of(out.hashes_done, Cycles(out.cycles)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(MinerConfig::with_loop(0).is_err());
        assert!(MinerConfig::with_loop(3).is_err());
        for l in [1u64, 2, 4, 8, 16, 32, 64, 128] {
            let c = MinerConfig::with_loop(l).unwrap();
            assert_eq!(c.round_units() * l, TOTAL_ROUNDS);
        }
    }

    #[test]
    fn area_grows_inversely_with_loop() {
        let a1 = MinerConfig::with_loop(1).unwrap().area_kge();
        let a8 = MinerConfig::with_loop(8).unwrap().area_kge();
        let a64 = MinerConfig::with_loop(64).unwrap().area_kge();
        assert!(a1 > a8 && a8 > a64);
        // Variable part scales exactly inversely.
        assert!(((a1 - 48.0) / (a8 - 48.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn latency_equals_loop() {
        for l in [1u64, 4, 16, 64] {
            let c = MinerConfig::with_loop(l).unwrap();
            assert_eq!(c.hash_latency(), l);
            assert!((c.hash_throughput() - 1.0 / l as f64).abs() < 1e-15);
        }
    }

    #[test]
    fn exhausting_scan_costs_loop_per_nonce() {
        let mut sim = MinerCycleSim::new(MinerConfig::with_loop(8).unwrap());
        // Impossible difficulty: scan everything.
        let job = MineJob::random(1, 100, 256);
        let out = sim.mine(&job);
        assert_eq!(out.golden_nonce, None);
        assert_eq!(out.hashes_done, 100);
        assert_eq!(out.cycles, 100 * 8);
    }

    #[test]
    fn finds_easy_golden_nonce_and_stops() {
        let mut sim = MinerCycleSim::new(MinerConfig::default());
        // Difficulty 4 bits: every 16th hash qualifies on average.
        let job = MineJob::random(7, 10_000, 4);
        let out = sim.mine(&job);
        let nonce = out.golden_nonce.expect("4-bit target should be found");
        assert!(out.hashes_done < 10_000, "should stop early");
        // Verify the winner really meets the target.
        let mut header = job.header;
        header[76..80].copy_from_slice(&nonce.to_le_bytes());
        let d = sha256::double_sha256(&header);
        assert!(sha256::leading_zero_bits(&d) >= 4);
        // Cycle accounting: hashes x Loop + report.
        assert_eq!(out.cycles, out.hashes_done * 8 + 4);
    }

    #[test]
    fn same_job_same_result_across_loops() {
        // Loop changes timing, not function.
        let job = MineJob::random(3, 5_000, 6);
        let o1 = MinerCycleSim::new(MinerConfig::with_loop(1).unwrap()).mine(&job);
        let o64 = MinerCycleSim::new(MinerConfig::with_loop(64).unwrap()).mine(&job);
        assert_eq!(o1.golden_nonce, o64.golden_nonce);
        assert_eq!(o1.hashes_done, o64.hashes_done);
        assert_eq!(o64.cycles, o1.cycles + o1.hashes_done * 63);
    }

    #[test]
    fn trace_stages_account_for_all_ticks() {
        let mut sim = MinerCycleSim::new(MinerConfig::with_loop(8).unwrap());
        sim.mine(&MineJob::random(1, 100, 256)); // Exhausts the scan.
        sim.mine(&MineJob::random(7, 10_000, 4)); // Finds a nonce.
        let mut sink = perf_sim::MemorySink::new();
        sim.trace_stages(&mut sink);
        assert_eq!(sink.stages.len(), 2);
        let total: u64 = sink.stages.iter().map(|s| s.cycles.busy).sum();
        assert_eq!(total, sim.ticks_simulated());
        assert_eq!(sink.stages[1].stage, "report");
        assert_eq!(sink.stages[1].cycles.busy, 4);
        sim.trace_stages(&mut perf_sim::NullSink);
    }

    #[test]
    fn ground_truth_throughput_is_inverse_loop() {
        let mut sim = MinerCycleSim::new(MinerConfig::with_loop(16).unwrap());
        let job = MineJob::random(9, 500, 256);
        let obs = sim.measure(&job).unwrap();
        assert!((obs.throughput.items_per_cycle() - 1.0 / 16.0).abs() < 1e-9);
        assert!(sim.measure(&MineJob::random(9, 0, 1)).is_err());
    }
}
