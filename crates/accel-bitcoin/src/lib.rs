//! A Bitcoin-miner accelerator model with the paper's `Loop`
//! latency/area trade-off, plus its performance interfaces.
//!
//! The paper's second Fig. 1 interface describes an open-source FPGA
//! Bitcoin miner: the accelerator computes double SHA-256 over block
//! headers, and a configuration parameter `Loop` controls how far the
//! hash rounds are unrolled in hardware. With `128/Loop` round units
//! instantiated, a hash completes in `Loop` cycles — so *latency
//! (cycles) equals `Loop`*, while *area grows inversely with `Loop`*.
//!
//! This crate contains:
//!
//! * [`sha256`] — a real SHA-256 / double-SHA-256 implementation
//!   (validated against FIPS 180-4 vectors) used as the functional
//!   model,
//! * [`miner`] — the miner configuration, area model, functional nonce
//!   search and cycle-accurate simulator,
//! * [`interface`] — the natural-language, program, and Petri-net
//!   performance interfaces.

pub mod interface;
pub mod miner;
pub mod sha256;

pub use miner::{MineJob, MinerConfig, MinerCycleSim};
