//! Structured conformance reports: per-channel statistics, minimized
//! counterexamples, fault-region verdicts, and their text and JSON
//! renderings (`BENCH_conformance.json`).

use perf_core::diag::Diagnostics;
use perf_core::trace::json_escape;

use crate::budget::Budget;

/// Accumulated error statistics for one (representation, metric)
/// channel of one accelerator.
#[derive(Clone, Debug)]
pub struct ChannelReport {
    /// Representation name (`program`, `petri-net`).
    pub kind: &'static str,
    /// Metric name (`latency`, `throughput`).
    pub metric: &'static str,
    /// Cases evaluated.
    pub n: usize,
    /// Mean relative error.
    pub avg: f64,
    /// Worst single-case relative error.
    pub max: f64,
    /// 99th-percentile relative error.
    pub p99: f64,
    /// Interval predictions seen.
    pub bounds_n: usize,
    /// Interval predictions that contained the observation.
    pub bounds_within: usize,
    /// The budget the channel was held to.
    pub budget: Budget,
    /// Whether the channel stayed within budget.
    pub pass: bool,
}

impl ChannelReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"metric\":\"{}\",\"n\":{},\"avg\":{:.6},\"max\":{:.6},\
             \"p99\":{:.6},\"bounds_n\":{},\"bounds_within\":{},\"budget_avg\":{:.6},\
             \"budget_max\":{:.6},\"pass\":{}}}",
            self.kind,
            self.metric,
            self.n,
            self.avg,
            self.max,
            self.p99,
            self.bounds_n,
            self.bounds_within,
            self.budget.avg,
            self.budget.max,
            self.pass
        )
    }
}

/// A budget violation shrunk to a minimal still-failing workload.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Representation name.
    pub kind: &'static str,
    /// Metric name.
    pub metric: &'static str,
    /// Label of the originating case.
    pub label: String,
    /// Description of the minimized workload spec.
    pub desc: String,
    /// The interface's prediction, rendered.
    pub predicted: String,
    /// The simulator's observation.
    pub actual: f64,
    /// Relative error of the minimized case.
    pub rel: f64,
    /// Shrink steps taken from the original case.
    pub shrink_steps: usize,
}

impl Counterexample {
    fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"metric\":\"{}\",\"label\":\"{}\",\"workload\":\"{}\",\
             \"predicted\":\"{}\",\"actual\":{:.3},\"rel_error\":{:.6},\"shrink_steps\":{}}}",
            self.kind,
            self.metric,
            json_escape(&self.label),
            json_escape(&self.desc),
            json_escape(&self.predicted),
            self.actual,
            self.rel,
            self.shrink_steps
        )
    }
}

/// Verdict for one natural-language claim checked against the
/// simulator.
#[derive(Clone, Debug)]
pub struct NlResult {
    /// Human description of the claim (metric vs axis).
    pub claim: String,
    /// Whether the claim held on the sweep.
    pub holds: bool,
    /// Worst violation magnitude reported by the checker.
    pub worst: f64,
}

impl NlResult {
    fn to_json(&self) -> String {
        format!(
            "{{\"claim\":\"{}\",\"holds\":{},\"worst_violation\":{:.6}}}",
            json_escape(&self.claim),
            self.holds,
            self.worst
        )
    }
}

/// One fault-injected operating region and the verdict on it.
#[derive(Clone, Debug)]
pub struct FaultRegion {
    /// Seed of the injected plan (for replay).
    pub seed: u64,
    /// Expected extra cycles per fault opportunity.
    pub intensity: f64,
    /// Whether the region is within the accelerator's declared
    /// contract (budgets apply, widened) or beyond it (predictions
    /// need only stay finite; the region is explicitly reported).
    pub in_contract: bool,
    /// Per-channel statistics under this plan (empty when out of
    /// contract — only finiteness is checked there).
    pub channels: Vec<ChannelReport>,
    /// Whether the region met its obligations.
    pub pass: bool,
}

impl FaultRegion {
    fn to_json(&self) -> String {
        let ch: Vec<String> = self.channels.iter().map(ChannelReport::to_json).collect();
        format!(
            "{{\"seed\":{},\"intensity\":{:.4},\"in_contract\":{},\"channels\":[{}],\"pass\":{}}}",
            self.seed,
            self.intensity,
            self.in_contract,
            ch.join(","),
            self.pass
        )
    }
}

/// Full conformance report for one accelerator.
#[derive(Debug)]
pub struct AccelReport {
    /// Accelerator name.
    pub name: &'static str,
    /// Cases generated (including adversarial ones).
    pub cases: usize,
    /// Adversarial cases among them.
    pub adversarial: usize,
    /// Cases the simulator itself rejected (skipped).
    pub rejected: usize,
    /// Nominal (fault-free) per-channel statistics.
    pub nominal: Vec<ChannelReport>,
    /// Natural-language claim verdicts.
    pub nl: Vec<NlResult>,
    /// Fault-injected operating regions.
    pub faults: Vec<FaultRegion>,
    /// Minimized counterexamples for budget violations.
    pub counterexamples: Vec<Counterexample>,
    /// Structured findings (errors mean the accelerator failed).
    pub diags: Diagnostics,
}

impl AccelReport {
    /// Whether every check passed for this accelerator.
    pub fn pass(&self) -> bool {
        !self.diags.has_errors()
    }

    fn to_json(&self) -> String {
        let nom: Vec<String> = self.nominal.iter().map(ChannelReport::to_json).collect();
        let nl: Vec<String> = self.nl.iter().map(NlResult::to_json).collect();
        let fr: Vec<String> = self.faults.iter().map(FaultRegion::to_json).collect();
        let cx: Vec<String> = self
            .counterexamples
            .iter()
            .map(Counterexample::to_json)
            .collect();
        format!(
            "{{\"accelerator\":\"{}\",\"cases\":{},\"adversarial\":{},\"rejected\":{},\
             \"pass\":{},\"nominal\":[{}],\"nl_claims\":[{}],\"fault_regions\":[{}],\
             \"counterexamples\":[{}],\"diagnostics\":{}}}",
            self.name,
            self.cases,
            self.adversarial,
            self.rejected,
            self.pass(),
            nom.join(","),
            nl.join(","),
            fr.join(","),
            cx.join(","),
            self.diags.render_json()
        )
    }
}

/// The combined report across all accelerators.
#[derive(Debug)]
pub struct ConformanceReport {
    /// Whether the run used reduced sample sizes.
    pub quick: bool,
    /// Per-accelerator reports.
    pub accels: Vec<AccelReport>,
}

impl ConformanceReport {
    /// Whether every accelerator passed every check.
    pub fn pass(&self) -> bool {
        self.accels.iter().all(AccelReport::pass)
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("perf-conformance: interface <-> simulator differential check\n");
        for a in &self.accels {
            s.push_str(&format!(
                "\n== {} ({} cases, {} adversarial, {} rejected): {}\n",
                a.name,
                a.cases,
                a.adversarial,
                a.rejected,
                if a.pass() { "PASS" } else { "FAIL" }
            ));
            for c in &a.nominal {
                s.push_str(&format!(
                    "  {:9} {:10} n={:3} avg={:7.4} max={:7.4} p99={:7.4} \
                     (budget avg {:.3} max {:.3}) {}\n",
                    c.kind,
                    c.metric,
                    c.n,
                    c.avg,
                    c.max,
                    c.p99,
                    c.budget.avg,
                    c.budget.max,
                    if c.pass { "ok" } else { "VIOLATION" }
                ));
                if c.bounds_n > 0 {
                    s.push_str(&format!(
                        "            bounds: {}/{} contained\n",
                        c.bounds_within, c.bounds_n
                    ));
                }
            }
            for r in &a.nl {
                s.push_str(&format!(
                    "  nl claim  {:28} {}\n",
                    r.claim,
                    if r.holds { "holds" } else { "VIOLATED" }
                ));
            }
            for f in &a.faults {
                s.push_str(&format!(
                    "  faults    seed={:<4} intensity={:5.2} {:15} {}\n",
                    f.seed,
                    f.intensity,
                    if f.in_contract {
                        "in-contract"
                    } else {
                        "out-of-contract"
                    },
                    if f.pass { "ok" } else { "VIOLATION" }
                ));
            }
            for cx in &a.counterexamples {
                s.push_str(&format!(
                    "  counterexample [{} {}] {} -> predicted {}, simulated {:.0} \
                     (rel {:.3}, {} shrink steps)\n",
                    cx.kind, cx.metric, cx.desc, cx.predicted, cx.actual, cx.rel, cx.shrink_steps
                ));
            }
            let rendered = a.diags.render();
            if !rendered.is_empty() {
                s.push_str(&rendered);
            }
        }
        s.push_str(&format!(
            "\nconformance: {}\n",
            if self.pass() { "PASS" } else { "FAIL" }
        ));
        s
    }

    /// Serializes the full report as JSON (`BENCH_conformance.json`).
    pub fn to_json(&self) -> String {
        let accels: Vec<String> = self.accels.iter().map(AccelReport::to_json).collect();
        format!(
            "{{\"quick\":{},\"pass\":{},\"accelerators\":[{}]}}\n",
            self.quick,
            self.pass(),
            accels.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_passes_and_serializes() {
        let r = ConformanceReport {
            quick: true,
            accels: vec![],
        };
        assert!(r.pass());
        let j = r.to_json();
        assert!(j.contains("\"pass\":true"));
        assert!(r.render().contains("PASS"));
    }

    #[test]
    fn json_escapes_workload_descriptions() {
        let cx = Counterexample {
            kind: "program",
            metric: "latency",
            label: "flat \"blocks\"".into(),
            desc: "a\\b".into(),
            predicted: "12.0".into(),
            actual: 10.0,
            rel: 0.2,
            shrink_steps: 3,
        };
        let j = cx.to_json();
        assert!(j.contains("flat \\\"blocks\\\""));
        assert!(j.contains("a\\\\b"));
    }
}
