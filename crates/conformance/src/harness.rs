//! The differential conformance harness.
//!
//! A [`Subject`] adapts one accelerator to the harness: it enumerates
//! workload specs (randomized plus adversarial edge cases), realizes
//! them into workloads, measures ground truth on the cycle-accurate
//! simulator, queries each interface representation, and declares the
//! error [`Budget`] each channel is held to. [`run_subject`] then
//! drives three phases:
//!
//! 1. **Nominal**: every case through every (representation, metric)
//!    channel; budget violations are shrunk to a minimal
//!    counterexample via the subject's spec-level `shrink`.
//! 2. **NL claims**: the natural-language interface's machine-checkable
//!    claims are swept against the simulator.
//! 3. **Fault regions**: deterministic fault plans are armed on the
//!    simulator (the interfaces never see them); in-contract regions
//!    must stay within a widened budget, out-of-contract regions are
//!    explicitly reported and predictions must merely stay finite —
//!    never silently wrong, never non-finite.

use perf_core::diag::{Diagnostic, Diagnostics};
use perf_core::iface::{InterfaceKind, Metric};
use perf_core::{CoreError, Observation, Prediction};
use perf_sim::FaultPlan;

use crate::budget::{Budget, Contract};
use crate::report::{AccelReport, ChannelReport, Counterexample, FaultRegion, NlResult};

/// The (representation, metric) channels every subject is checked on.
pub const CHANNELS: [(InterfaceKind, Metric); 4] = [
    (InterfaceKind::Program, Metric::Latency),
    (InterfaceKind::Program, Metric::Throughput),
    (InterfaceKind::PetriNet, Metric::Latency),
    (InterfaceKind::PetriNet, Metric::Throughput),
];

/// Ceiling on greedy shrink steps per counterexample.
const MAX_SHRINK_STEPS: usize = 64;

/// One generated conformance case: a labelled workload spec.
#[derive(Clone, Debug)]
pub struct CaseSpec<S> {
    /// Short label for reports (`random-3`, `single-block`, ...).
    pub label: String,
    /// Whether this is a hand-built adversarial edge case.
    pub adversarial: bool,
    /// The generator-level spec (shrunk instead of the raw workload so
    /// structural invariants — e.g. VTA dependency-validity — are
    /// preserved by construction).
    pub spec: S,
}

impl<S> CaseSpec<S> {
    /// A randomized case.
    pub fn random(label: impl Into<String>, spec: S) -> CaseSpec<S> {
        CaseSpec {
            label: label.into(),
            adversarial: false,
            spec,
        }
    }

    /// An adversarial edge case.
    pub fn adversarial(label: impl Into<String>, spec: S) -> CaseSpec<S> {
        CaseSpec {
            label: label.into(),
            adversarial: true,
            spec,
        }
    }
}

/// Adapts one accelerator (simulator + interface bundle) to the
/// harness.
pub trait Subject {
    /// Generator-level workload description; shrinking operates on
    /// these, regenerating workloads so invariants hold.
    type Spec: Clone;
    /// The realized workload type.
    type Workload;

    /// Accelerator name for reports.
    fn name(&self) -> &'static str;

    /// Enumerates the conformance cases (smaller set when `quick`).
    fn specs(&mut self, quick: bool) -> Vec<CaseSpec<Self::Spec>>;

    /// Deterministically realizes a spec into a workload.
    fn realize(&mut self, spec: &Self::Spec) -> Self::Workload;

    /// Human-readable description of a spec (for counterexamples).
    fn describe(&self, spec: &Self::Spec) -> String;

    /// Smaller specs to try when minimizing a violation (may be
    /// empty when the spec is already minimal).
    fn shrink(&mut self, spec: &Self::Spec) -> Vec<Self::Spec>;

    /// Ground truth: runs the cycle-accurate simulator (fresh per
    /// call, with the currently armed fault plan applied).
    fn measure(&mut self, w: &Self::Workload) -> Result<Observation, CoreError>;

    /// Queries one interface representation.
    fn predict(
        &mut self,
        kind: InterfaceKind,
        w: &Self::Workload,
        metric: Metric,
    ) -> Result<Prediction, CoreError>;

    /// The error budget for one channel.
    fn budget(&self, kind: InterfaceKind, metric: Metric) -> Budget;

    /// The fault-operating contract.
    fn contract(&self) -> Contract;

    /// Deterministic fault plans probing in- and out-of-contract
    /// operation.
    fn fault_plans(&self, quick: bool) -> Vec<FaultPlan>;

    /// Arms (or disarms) fault injection for subsequent `measure`
    /// calls.
    fn set_fault(&mut self, plan: Option<FaultPlan>);

    /// Sweeps the NL interface's machine-checkable claims against the
    /// simulator.
    fn check_nl(&mut self) -> Vec<NlResult>;
}

// The error measures moved to `perf_core::budget` (shared with the
// `perf-service` degradation checks); re-exported here so existing
// harness callers keep working unchanged.
pub use perf_core::budget::{channel_error, cycle_distance, relative_error};

/// Outcome of evaluating one (spec, channel) pair.
struct CaseEval {
    rel: f64,
    pred: Prediction,
    actual: f64,
}

fn eval_case<S: Subject + ?Sized>(
    s: &mut S,
    spec: &S::Spec,
    kind: InterfaceKind,
    metric: Metric,
) -> Result<Option<CaseEval>, CoreError> {
    let w = s.realize(spec);
    let Ok(obs) = s.measure(&w) else {
        return Ok(None); // Simulator rejects this workload: skip.
    };
    let pred = s.predict(kind, &w, metric)?;
    let actual = metric.of(&obs);
    let atol = s.budget(kind, metric).atol;
    let rel = if pred.is_finite() {
        channel_error(&pred, actual, metric, atol)
    } else {
        f64::INFINITY
    };
    Ok(Some(CaseEval { rel, pred, actual }))
}

/// Greedily shrinks `start` while some shrink candidate still exceeds
/// `threshold` on the given channel.
fn shrink_violation<S: Subject>(
    s: &mut S,
    start: &S::Spec,
    kind: InterfaceKind,
    metric: Metric,
    threshold: f64,
) -> (S::Spec, CaseEval, usize) {
    let mut cur = start.clone();
    let mut cur_eval = match eval_case(s, &cur, kind, metric) {
        Ok(Some(e)) => e,
        _ => CaseEval {
            rel: f64::INFINITY,
            pred: Prediction::point(f64::NAN),
            actual: 0.0,
        },
    };
    let mut steps = 0;
    while steps < MAX_SHRINK_STEPS {
        let mut advanced = false;
        for cand in s.shrink(&cur) {
            if let Ok(Some(e)) = eval_case(s, &cand, kind, metric) {
                if e.rel > threshold {
                    cur = cand;
                    cur_eval = e;
                    steps += 1;
                    advanced = true;
                    break;
                }
            }
        }
        if !advanced {
            break;
        }
    }
    (cur, cur_eval, steps)
}

/// Per-channel accumulator.
#[derive(Default)]
struct ChannelAcc {
    rels: Vec<f64>,
    bounds_n: usize,
    bounds_within: usize,
    worst: Option<(f64, usize)>, // (rel, spec index)
    rejected: usize,
    non_finite: usize,
}

impl ChannelAcc {
    fn record(&mut self, e: &CaseEval, idx: usize) {
        self.rels.push(e.rel);
        if let Prediction::Bounds { .. } = e.pred {
            self.bounds_n += 1;
            if e.rel == 0.0 {
                self.bounds_within += 1;
            }
        }
        if self.worst.is_none_or(|(w, _)| e.rel > w) {
            self.worst = Some((e.rel, idx));
        }
    }

    fn avg(&self) -> f64 {
        if self.rels.is_empty() {
            0.0
        } else {
            self.rels.iter().sum::<f64>() / self.rels.len() as f64
        }
    }

    fn max(&self) -> f64 {
        self.rels.iter().cloned().fold(0.0, f64::max)
    }

    fn p99(&self) -> f64 {
        // `stats::percentile` interpolates between ranks. Truncating
        // the rank index instead (the old `v[(n-1)*0.99 as usize]`)
        // reported p99 = 0.0 whenever only the max sample was nonzero
        // at small n — e.g. n=16 truncated rank 14.85 down to 14.
        perf_core::stats::percentile(&self.rels, 99.0)
    }
}

/// Evaluates all `specs` on all channels with the currently armed
/// fault state, returning one accumulator per channel plus the number
/// of simulator-rejected cases.
fn sweep<S: Subject>(
    s: &mut S,
    specs: &[CaseSpec<S::Spec>],
    diags: &mut Diagnostics,
    phase: &str,
) -> ([ChannelAcc; 4], usize) {
    let mut accs: [ChannelAcc; 4] = Default::default();
    let mut rejected = 0;
    for (idx, case) in specs.iter().enumerate() {
        let w = s.realize(&case.spec);
        let Ok(obs) = s.measure(&w) else {
            rejected += 1;
            continue;
        };
        for (ci, &(kind, metric)) in CHANNELS.iter().enumerate() {
            let actual = metric.of(&obs);
            let atol = s.budget(kind, metric).atol;
            match s.predict(kind, &w, metric) {
                Ok(pred) => {
                    let rel = if pred.is_finite() {
                        channel_error(&pred, actual, metric, atol)
                    } else {
                        accs[ci].non_finite += 1;
                        diags.push(
                            Diagnostic::error(
                                "CONF03",
                                format!(
                                    "{} {} prediction is non-finite ({}) on `{}` [{}]",
                                    kind.name(),
                                    metric.name(),
                                    pred,
                                    case.label,
                                    phase
                                ),
                            )
                            .with_origin(s.name()),
                        );
                        f64::INFINITY
                    };
                    accs[ci].record(&CaseEval { rel, pred, actual }, idx);
                }
                Err(e) => {
                    accs[ci].rejected += 1;
                    // An explicit refusal is only acceptable under
                    // fault injection (out-of-contract declaration);
                    // in nominal operation it is a conformance bug.
                    if phase == "nominal" {
                        diags.push(
                            Diagnostic::error(
                                "CONF04",
                                format!(
                                    "{} interface rejected simulator-accepted workload \
                                     `{}` for {}: {}",
                                    kind.name(),
                                    case.label,
                                    metric.name(),
                                    e
                                ),
                            )
                            .with_origin(s.name()),
                        );
                    }
                }
            }
        }
    }
    (accs, rejected)
}

/// Builds channel reports from accumulators and flags budget
/// violations; returns the reports plus, for per-case (max) budget
/// violations, the index of the worst offending spec per channel.
#[allow(clippy::type_complexity)]
fn settle<S: Subject>(
    s: &mut S,
    accs: &[ChannelAcc; 4],
    widen_by: f64,
    diags: &mut Diagnostics,
    phase: &str,
) -> (Vec<ChannelReport>, Vec<(usize, InterfaceKind, Metric, f64)>) {
    let mut reports = Vec::new();
    let mut to_shrink = Vec::new();
    for (ci, &(kind, metric)) in CHANNELS.iter().enumerate() {
        let acc = &accs[ci];
        if acc.rels.is_empty() && acc.rejected == 0 {
            continue;
        }
        let budget = s.budget(kind, metric).widen(widen_by);
        let (avg, max) = (acc.avg(), acc.max());
        let mut pass = acc.non_finite == 0;
        if phase == "nominal" && acc.rejected > 0 {
            pass = false;
        }
        if avg > budget.avg {
            pass = false;
            diags.push(
                Diagnostic::error(
                    "CONF02",
                    format!(
                        "{} {} mean relative error {:.4} exceeds budget {:.4} [{}]",
                        kind.name(),
                        metric.name(),
                        avg,
                        budget.avg,
                        phase
                    ),
                )
                .with_origin(s.name()),
            );
        }
        if max > budget.max {
            pass = false;
            if let Some((rel, idx)) = acc.worst {
                if rel > budget.max {
                    to_shrink.push((idx, kind, metric, budget.max));
                }
            }
        }
        reports.push(ChannelReport {
            kind: kind.name(),
            metric: metric.name(),
            n: acc.rels.len(),
            avg,
            max,
            p99: acc.p99(),
            bounds_n: acc.bounds_n,
            bounds_within: acc.bounds_within,
            budget,
            pass,
        });
    }
    (reports, to_shrink)
}

/// Runs the full three-phase conformance check for one subject.
pub fn run_subject<S: Subject>(s: &mut S, quick: bool) -> AccelReport {
    let mut diags = Diagnostics::new();
    s.set_fault(None);
    let specs = s.specs(quick);
    let adversarial = specs.iter().filter(|c| c.adversarial).count();

    // Phase 1: nominal differential check, with shrinking.
    let (accs, rejected) = sweep(s, &specs, &mut diags, "nominal");
    let (nominal, to_shrink) = settle(s, &accs, 0.0, &mut diags, "nominal");
    let mut counterexamples = Vec::new();
    for (idx, kind, metric, threshold) in to_shrink {
        let case = &specs[idx];
        let (min_spec, e, steps) = shrink_violation(s, &case.spec.clone(), kind, metric, threshold);
        let desc = s.describe(&min_spec);
        diags.push(
            Diagnostic::error(
                "CONF01",
                format!(
                    "{} {} relative error {:.4} exceeds per-case budget {:.4}",
                    kind.name(),
                    metric.name(),
                    e.rel,
                    threshold
                ),
            )
            .with_origin(s.name())
            .with_at(case.label.clone())
            .with_note(format!(
                "minimal counterexample ({} shrink steps): {} -> predicted {}, simulated {:.0}",
                steps, desc, e.pred, e.actual
            )),
        );
        counterexamples.push(Counterexample {
            kind: kind.name(),
            metric: metric.name(),
            label: case.label.clone(),
            desc,
            predicted: e.pred.to_string(),
            actual: e.actual,
            rel: e.rel,
            shrink_steps: steps,
        });
    }

    // Phase 2: NL claims against the simulator.
    let nl = s.check_nl();
    for r in &nl {
        if !r.holds {
            diags.push(
                Diagnostic::error(
                    "CONF07",
                    format!(
                        "NL claim `{}` violated on simulator sweep (worst {:.4})",
                        r.claim, r.worst
                    ),
                )
                .with_origin(s.name()),
            );
        }
    }

    // Phase 3: fault-injected operating regions.
    let contract = s.contract();
    let mut faults = Vec::new();
    for plan in s.fault_plans(quick) {
        let intensity = plan.intensity();
        let in_contract = intensity <= contract.max_intensity;
        s.set_fault(Some(plan));
        let phase = if in_contract {
            "fault-in-contract"
        } else {
            "fault-out-of-contract"
        };
        let (accs, _) = sweep(s, &specs, &mut diags, phase);
        let (channels, pass) = if in_contract {
            let before = diags.count(perf_core::diag::Severity::Error);
            let (ch, violations) = settle(s, &accs, contract.slack(intensity), &mut diags, phase);
            for (idx, kind, metric, threshold) in violations {
                diags.push(
                    Diagnostic::error(
                        "CONF05",
                        format!(
                            "{} {} exceeds widened budget {:.4} under in-contract fault \
                             plan (seed {}, intensity {:.3}) on `{}`",
                            kind.name(),
                            metric.name(),
                            threshold,
                            plan.seed,
                            intensity,
                            specs[idx].label
                        ),
                    )
                    .with_origin(s.name()),
                );
            }
            let pass = diags.count(perf_core::diag::Severity::Error) == before;
            (ch, pass)
        } else {
            // Beyond the contract the interfaces are not accountable
            // for accuracy — but they must stay finite, and the
            // region must be declared, not silently mispredicted.
            let non_finite: usize = accs.iter().map(|a| a.non_finite).sum();
            diags.push(
                Diagnostic::info(
                    "CONF06",
                    format!(
                        "fault plan (seed {}, intensity {:.3}) exceeds contract max \
                         intensity {:.3}: operating region declared out of contract",
                        plan.seed, intensity, contract.max_intensity
                    ),
                )
                .with_origin(s.name()),
            );
            (Vec::new(), non_finite == 0)
        };
        faults.push(FaultRegion {
            seed: plan.seed,
            intensity,
            in_contract,
            channels,
            pass,
        });
        s.set_fault(None);
    }

    AccelReport {
        name: s.name(),
        cases: specs.len(),
        adversarial,
        rejected,
        nominal,
        nl,
        faults,
        counterexamples,
        diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perf_core::units::Cycles;

    #[test]
    fn relative_error_point_and_bounds() {
        assert!((relative_error(&Prediction::point(110.0), 100.0) - 0.1).abs() < 1e-12);
        let b = Prediction::bounds(90.0, 120.0);
        assert_eq!(relative_error(&b, 100.0), 0.0);
        assert!((relative_error(&b, 150.0) - 0.2).abs() < 1e-12);
        assert!((relative_error(&b, 60.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn p99_interpolates_at_small_n() {
        // Regression: with 16 samples where only the max is nonzero,
        // a truncated rank index ((16-1)*0.99 = 14.85 → 14) reported
        // p99 = 0.0 while max > 0. Interpolation must see the tail.
        let mut acc = ChannelAcc::default();
        for i in 0..16 {
            let rel = if i == 15 { 0.04 } else { 0.0 };
            acc.record(
                &CaseEval {
                    rel,
                    pred: Prediction::point(1.0),
                    actual: 1.0,
                },
                i,
            );
        }
        assert!(acc.max() > 0.0);
        assert!(acc.p99() > 0.0, "p99 must not truncate away the max");
        assert!(acc.p99() <= acc.max());
        // Single sample: p99 == max == that sample.
        let mut one = ChannelAcc::default();
        one.record(
            &CaseEval {
                rel: 0.25,
                pred: Prediction::point(1.0),
                actual: 1.0,
            },
            0,
        );
        assert_eq!(one.p99(), 0.25);
        // Empty stays 0.
        assert_eq!(ChannelAcc::default().p99(), 0.0);
    }

    #[test]
    fn atol_deadband_zeroes_tiny_absolute_gaps() {
        // 2 vs 1 cycle: 100% relative, but inside a 4-cycle deadband.
        let p = Prediction::point(2.0);
        assert_eq!(channel_error(&p, 1.0, Metric::Latency, 4.0), 0.0);
        assert!(channel_error(&p, 1.0, Metric::Latency, 0.5) > 0.9);
        // Throughput compares in the reciprocal (cycles-per-item)
        // domain: 0.5 vs 1.0 items/cycle is a 1-cycle gap.
        let t = Prediction::point(0.5);
        assert_eq!(cycle_distance(&t, 1.0, Metric::Throughput), 1.0);
        assert_eq!(channel_error(&t, 1.0, Metric::Throughput, 4.0), 0.0);
        // A 1.0-vs-0.2 divergence is 4 cycles off: outside a 2-cycle
        // deadband, so the full relative error survives.
        let d = Prediction::point(1.0);
        assert_eq!(cycle_distance(&d, 0.2, Metric::Throughput), 4.0);
        assert_eq!(channel_error(&d, 0.2, Metric::Throughput, 2.0), 4.0);
    }

    /// A toy subject whose program interface is wrong for workloads
    /// above a threshold: the harness must catch it and shrink to the
    /// smallest still-failing size.
    struct Toy {
        bad_above: u64,
    }

    impl Subject for Toy {
        type Spec = u64;
        type Workload = u64;

        fn name(&self) -> &'static str {
            "toy"
        }
        fn specs(&mut self, _quick: bool) -> Vec<CaseSpec<u64>> {
            vec![CaseSpec::random("small", 4), CaseSpec::random("large", 64)]
        }
        fn realize(&mut self, spec: &u64) -> u64 {
            *spec
        }
        fn describe(&self, spec: &u64) -> String {
            format!("size={spec}")
        }
        fn shrink(&mut self, spec: &u64) -> Vec<u64> {
            if *spec > 1 {
                vec![spec / 2, spec - 1]
            } else {
                vec![]
            }
        }
        fn measure(&mut self, w: &u64) -> Result<Observation, CoreError> {
            Ok(Observation::single_item(Cycles(10 * *w)))
        }
        fn predict(
            &mut self,
            _kind: InterfaceKind,
            w: &u64,
            metric: Metric,
        ) -> Result<Prediction, CoreError> {
            let lat = if *w > self.bad_above {
                20.0 * *w as f64 // Model bug: double latency.
            } else {
                10.0 * *w as f64
            };
            Ok(match metric {
                Metric::Latency => Prediction::point(lat),
                Metric::Throughput => Prediction::point(1.0 / lat),
            })
        }
        fn budget(&self, _kind: InterfaceKind, _metric: Metric) -> Budget {
            Budget::new(0.05, 0.10)
        }
        fn contract(&self) -> Contract {
            Contract::new(1.0, 0.5)
        }
        fn fault_plans(&self, _quick: bool) -> Vec<FaultPlan> {
            vec![]
        }
        fn set_fault(&mut self, _plan: Option<FaultPlan>) {}
        fn check_nl(&mut self) -> Vec<NlResult> {
            vec![NlResult {
                claim: "latency vs size".into(),
                holds: true,
                worst: 0.0,
            }]
        }
    }

    #[test]
    fn catches_and_shrinks_divergence() {
        let mut toy = Toy { bad_above: 16 };
        let rep = run_subject(&mut toy, true);
        assert!(!rep.pass());
        assert!(rep.diags.has_code("CONF01"));
        assert!(rep.diags.has_code("CONF02"));
        // Greedy shrink must land on the smallest failing size, 17.
        let cx = &rep.counterexamples[0];
        assert_eq!(cx.desc, "size=17");
        assert!(cx.shrink_steps > 0);
    }

    #[test]
    fn correct_toy_passes() {
        let mut toy = Toy {
            bad_above: u64::MAX,
        };
        let rep = run_subject(&mut toy, true);
        assert!(rep.pass(), "{}", rep.diags.render());
        assert!(rep.counterexamples.is_empty());
        assert_eq!(rep.nominal.len(), 4);
        assert!(rep.nominal.iter().all(|c| c.pass));
    }
}
