//! Differential conformance harness for performance interfaces.
//!
//! The paper's central promise is that an accelerator's performance
//! interface — prose claims, an executable program, or a Petri net —
//! is a *contract*: it predicts what the silicon (here, the
//! cycle-accurate simulators) will do, within a stated error. This
//! crate checks that contract mechanically, for all four accelerators
//! and all three representations at once:
//!
//! * randomized workloads from the shipped generators, plus
//!   adversarial edge cases (empty/singleton/maximal inputs,
//!   pathological Huffman tables, saturating queue depths),
//! * every prediction compared against the simulator under a
//!   per-accelerator, per-representation error budget (Table 1),
//! * budget violations shrunk to a minimal counterexample and
//!   reported as structured [`perf_core::diag`] diagnostics,
//! * deterministic fault injection ([`perf_sim::fault`]) applied to
//!   the simulators to verify that interfaces either stay within a
//!   widened budget or the operating region is explicitly declared
//!   out of contract — never silently wrong, never non-finite.
//!
//! Run it via `repro --conformance [--quick] [--json]`, which writes
//! `BENCH_conformance.json`.

pub mod budget;
pub mod harness;
pub mod report;
pub mod subjects;

pub use budget::{Budget, Contract};
pub use harness::{relative_error, run_subject, CaseSpec, Subject, CHANNELS};
pub use report::{AccelReport, ChannelReport, ConformanceReport, Counterexample, NlResult};

/// Runs the conformance harness over all four accelerators plus the
/// two composite pipeline subjects (composed simulators vs composed
/// interfaces, over a linear chain and a fan-out/fan-in DAG).
pub fn run_all(quick: bool) -> ConformanceReport {
    ConformanceReport {
        quick,
        accels: vec![
            run_subject(&mut subjects::jpeg::JpegSubject::new(), quick),
            run_subject(&mut subjects::bitcoin::BitcoinSubject::new(), quick),
            run_subject(&mut subjects::protoacc::ProtoaccSubject::new(), quick),
            run_subject(&mut subjects::vta::VtaSubject::new(), quick),
            run_subject(&mut subjects::pipeline::PipelineSubject::new(), quick),
            run_subject(&mut subjects::dag::DagSubject::new(), quick),
        ],
    }
}
