//! Error budgets and fault-operating contracts.
//!
//! A [`Budget`] says how far an interface representation's predictions
//! may drift from the cycle-accurate simulator before the harness
//! flags a divergence — one budget per (representation, metric)
//! channel, mirroring the per-accelerator error columns of the paper's
//! Table 1. A [`Contract`] declares the fault-injection regime an
//! interface is still accountable under: within the declared intensity
//! its (widened) budget must hold; beyond it the harness only requires
//! that predictions stay finite and the region is explicitly reported
//! as out of contract.

/// Relative-error budget for one (representation, metric) channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Budget {
    /// Ceiling on the mean relative error across all cases.
    pub avg: f64,
    /// Ceiling on any single case's relative error. For interval
    /// predictions the per-case error is zero when the observation is
    /// contained and the relative overshoot past the nearer bound
    /// otherwise, so `max` doubles as the containment tolerance.
    pub max: f64,
    /// Absolute deadband in *cycles* (throughput channels are compared
    /// in the reciprocal cycles-per-item domain). A prediction within
    /// `atol` cycles of the observation counts as zero error: on a
    /// one-cycle degenerate workload, being one cycle off is not a
    /// model divergence even though the relative error is 100%.
    pub atol: f64,
}

impl Budget {
    /// Creates a budget with no absolute deadband.
    pub const fn new(avg: f64, max: f64) -> Budget {
        Budget {
            avg,
            max,
            atol: 0.0,
        }
    }

    /// Sets the absolute cycle deadband.
    pub const fn with_atol(self, atol: f64) -> Budget {
        Budget { atol, ..self }
    }

    /// Returns this budget widened by an absolute relative-error
    /// `slack`, as allowed for in-contract fault-injected operation.
    /// The per-case ceiling gets three times the slack because a
    /// single unlucky case concentrates more injected cycles than the
    /// mean does.
    pub fn widen(self, slack: f64) -> Budget {
        Budget {
            avg: self.avg + slack,
            max: self.max + 3.0 * slack,
            atol: self.atol,
        }
    }
}

/// Fault-operating contract for one accelerator's interfaces.
///
/// `intensity` here is [`perf_sim::FaultPlan::intensity`]: the
/// expected number of extra cycles injected per fault opportunity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Contract {
    /// Highest fault intensity the interfaces remain accountable
    /// under. Regions beyond this are reported as out of contract.
    pub max_intensity: f64,
    /// Relative-error slack granted per unit of intensity while in
    /// contract (accelerator-specific: it reflects how many fault
    /// opportunities one predicted cycle spans).
    pub err_per_intensity: f64,
}

impl Contract {
    /// Creates a contract.
    pub const fn new(max_intensity: f64, err_per_intensity: f64) -> Contract {
        Contract {
            max_intensity,
            err_per_intensity,
        }
    }

    /// The absolute relative-error slack granted at `intensity`.
    pub fn slack(&self, intensity: f64) -> f64 {
        self.err_per_intensity * intensity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_adds_slack() {
        let b = Budget::new(0.10, 0.30).widen(0.05);
        assert!((b.avg - 0.15).abs() < 1e-12);
        assert!((b.max - 0.45).abs() < 1e-12);
    }

    #[test]
    fn widen_preserves_atol() {
        let b = Budget::new(0.10, 0.30).with_atol(4.0).widen(0.05);
        assert_eq!(b.atol, 4.0);
    }

    #[test]
    fn contract_slack_scales() {
        let c = Contract::new(1.0, 0.2);
        assert!((c.slack(0.5) - 0.1).abs() < 1e-12);
    }
}
