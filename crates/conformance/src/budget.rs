//! Error budgets and fault-operating contracts.
//!
//! The types and error measures formerly defined here moved to
//! [`perf_core::budget`] so the `perf-service` query server can tag
//! degraded responses with the same budgets the conformance harness
//! enforces. This module re-exports them under the historical paths.

pub use perf_core::budget::{Budget, Contract};
