//! Conformance subject for the VTA tensor accelerator.

use accel_vta::cycle::VtaCycleSim;
use accel_vta::gen::ProgGen;
use accel_vta::interface;
use accel_vta::isa::{DepFlags, Insn, MemBuffer, Opcode, Program};
use perf_core::iface::{InterfaceBundle, InterfaceKind, Metric};
use perf_core::{CoreError, GroundTruth, Observation, Prediction};
use perf_sim::FaultPlan;

use crate::budget::{Budget, Contract};
use crate::harness::{CaseSpec, Subject};
use crate::report::NlResult;

/// Generator-level description of one VTA program.
///
/// Shrinking regenerates from a smaller block budget instead of
/// deleting instructions, so dependency-token validity (balanced
/// push/pop) holds by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VtaSpec {
    /// Random dependency-correct program of up to `max_blocks` blocks.
    Random { seed: u64, max_blocks: usize },
    /// Single-block random program.
    Single { seed: u64 },
    /// The degenerate one-instruction program: just `Finish`.
    FinishOnly,
}

/// VTA subject: tick-accurate four-engine sim vs the interfaces.
pub struct VtaSubject {
    bundle: InterfaceBundle<Program>,
    fault: Option<FaultPlan>,
}

impl VtaSubject {
    /// Creates the subject with the shipped interface bundle.
    pub fn new() -> VtaSubject {
        VtaSubject {
            bundle: interface::bundle(),
            fault: None,
        }
    }
}

impl Default for VtaSubject {
    fn default() -> Self {
        VtaSubject::new()
    }
}

impl Subject for VtaSubject {
    type Spec = VtaSpec;
    type Workload = Program;

    fn name(&self) -> &'static str {
        "vta"
    }

    fn specs(&mut self, quick: bool) -> Vec<CaseSpec<VtaSpec>> {
        let mut v = Vec::new();
        let n_random = if quick { 6 } else { 16 };
        for seed in 0..n_random {
            // The default generator's block ceiling (24) saturates the
            // dependency queues; keep it.
            v.push(CaseSpec::random(
                format!("random-{seed}"),
                VtaSpec::Random {
                    seed,
                    max_blocks: 24,
                },
            ));
        }
        for seed in [100, 101, 102] {
            v.push(CaseSpec::adversarial(
                format!("single-block-{seed}"),
                VtaSpec::Single { seed },
            ));
        }
        v.push(CaseSpec::adversarial("finish-only", VtaSpec::FinishOnly));
        v
    }

    fn realize(&mut self, spec: &VtaSpec) -> Program {
        match *spec {
            VtaSpec::Random { seed, max_blocks } => {
                let mut g = ProgGen::new(seed);
                g.cfg.blocks = (1, max_blocks.max(1));
                g.gen_program()
            }
            VtaSpec::Single { seed } => {
                let mut g = ProgGen::new(seed);
                g.cfg.blocks = (1, 1);
                g.gen_program()
            }
            VtaSpec::FinishOnly => Program {
                insns: vec![Insn::plain(Opcode::Finish)],
            },
        }
    }

    fn describe(&self, spec: &VtaSpec) -> String {
        match *spec {
            VtaSpec::Random { seed, max_blocks } => {
                let mut g = ProgGen::new(seed);
                g.cfg.blocks = (1, max_blocks.max(1));
                let p = g.gen_program();
                format!(
                    "random program (seed {seed}, <= {max_blocks} blocks, {} insns)",
                    p.len()
                )
            }
            VtaSpec::Single { seed } => format!("single-block program (seed {seed})"),
            VtaSpec::FinishOnly => "finish-only program (1 insn, no memory traffic)".into(),
        }
    }

    fn shrink(&mut self, spec: &VtaSpec) -> Vec<VtaSpec> {
        match *spec {
            VtaSpec::Random { seed, max_blocks } => {
                let mut out = Vec::new();
                if max_blocks > 1 {
                    out.push(VtaSpec::Random {
                        seed,
                        max_blocks: max_blocks / 2,
                    });
                }
                out.push(VtaSpec::Single { seed });
                out.push(VtaSpec::FinishOnly);
                out
            }
            VtaSpec::Single { .. } => vec![VtaSpec::FinishOnly],
            VtaSpec::FinishOnly => vec![],
        }
    }

    fn measure(&mut self, w: &Program) -> Result<Observation, CoreError> {
        let mut sim = VtaCycleSim::default();
        sim.set_fault(self.fault);
        sim.measure(w)
    }

    fn predict(
        &mut self,
        kind: InterfaceKind,
        w: &Program,
        metric: Metric,
    ) -> Result<Prediction, CoreError> {
        self.bundle
            .get(kind)
            .ok_or_else(|| CoreError::Artifact(format!("no {} interface", kind.name())))?
            .predict(w, metric)
    }

    fn budget(&self, kind: InterfaceKind, _metric: Metric) -> Budget {
        // The 4-cycle deadband keeps the finish-only degenerate case
        // (1 hardware cycle) from inflating relative errors; every
        // genuine divergence found so far was tens of cycles off.
        match kind {
            // The closed-form program interface ignores inter-engine
            // overlap; the paper reports tens of percent for VTA too.
            InterfaceKind::Program => Budget::new(0.60, 2.5).with_atol(4.0),
            _ => Budget::new(0.05, 0.25).with_atol(4.0),
        }
    }

    fn contract(&self) -> Contract {
        Contract::new(0.5, 0.4)
    }

    fn fault_plans(&self, quick: bool) -> Vec<FaultPlan> {
        let mut v = vec![FaultPlan::mem_jitter(41, 50, 6)];
        if !quick {
            v.push(FaultPlan::mem_jitter(42, 100, 4));
        }
        v.push(FaultPlan::mem_jitter(43, 500, 80));
        v
    }

    fn set_fault(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    fn check_nl(&mut self) -> Vec<NlResult> {
        fn block_program(lp_out: u16, inp_count: u16) -> Program {
            Program {
                insns: vec![
                    Insn {
                        op: Opcode::Load {
                            buffer: MemBuffer::Inp,
                            sram_base: 0,
                            dram_base: 0,
                            count: inp_count,
                        },
                        flags: DepFlags {
                            push_next: true,
                            ..DepFlags::NONE
                        },
                    },
                    Insn {
                        op: Opcode::Gemm {
                            uop_begin: 0,
                            uop_end: 8,
                            lp_out,
                            lp_in: 4,
                            dst_factor: (1, 0),
                            src_factor: (1, 0),
                            wgt_factor: (0, 1),
                            reset: false,
                        },
                        flags: DepFlags {
                            pop_prev: true,
                            push_next: true,
                            ..DepFlags::NONE
                        },
                    },
                    Insn {
                        op: Opcode::Store {
                            sram_base: 0,
                            dram_base: 0,
                            count: 8,
                        },
                        flags: DepFlags {
                            pop_prev: true,
                            ..DepFlags::NONE
                        },
                    },
                    Insn::plain(Opcode::Finish),
                ],
            }
        }

        let nl = &self.bundle.natural_language;
        let mut sim = VtaCycleSim::default();
        let mut out = Vec::new();

        let macs_sweep: Vec<(f64, f64)> = [8u16, 32, 128, 512]
            .iter()
            .filter_map(|&lp| {
                let p = block_program(lp, 16);
                sim.measure(&p)
                    .ok()
                    .map(|obs| (p.total_macs() as f64, obs.latency.as_f64()))
            })
            .collect();
        if let Ok(v) = nl.claims[0].check(&macs_sweep) {
            out.push(NlResult {
                claim: "latency increasing in total MACs".into(),
                holds: v.holds,
                worst: v.worst_violation,
            });
        }

        let bytes_sweep: Vec<(f64, f64)> = [16u16, 256, 1024, 4096]
            .iter()
            .filter_map(|&c| {
                let p = block_program(512, c);
                sim.measure(&p)
                    .ok()
                    .map(|obs| (c as f64 * 16.0, obs.latency.as_f64()))
            })
            .collect();
        if let Ok(v) = nl.claims[1].check(&bytes_sweep) {
            out.push(NlResult {
                claim: "latency increasing in DMA bytes".into(),
                holds: v.holds,
                worst: v.worst_violation,
            });
        }
        out
    }
}
